"""Direct tests for small shared utilities and the error hierarchy."""

import time

import pytest

from repro.errors import (
    CapacityError,
    ConfigError,
    EmptyTreeError,
    InvalidKeyError,
    InvariantViolation,
    ReproError,
)
from repro.utils.timer import Timer, throughput


class TestErrorHierarchy:
    """Every library error is a ReproError *and* keeps its builtin lineage,
    so both `except ReproError` and idiomatic `except ValueError` work."""

    @pytest.mark.parametrize(
        "exc,builtin",
        [
            (InvalidKeyError, ValueError),
            (ConfigError, ValueError),
            (EmptyTreeError, ValueError),
            (CapacityError, ValueError),
            (InvariantViolation, AssertionError),
        ],
    )
    def test_dual_lineage(self, exc, builtin):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, builtin)

    def test_catchable_as_repro_error(self):
        from repro.utils.validation import ensure_fanout

        with pytest.raises(ReproError):
            ensure_fanout(1)


class TestTimer:
    def test_phase_accumulates(self):
        t = Timer()
        with t.phase("a"):
            time.sleep(0.01)
        with t.phase("a"):
            time.sleep(0.01)
        with t.phase("b"):
            pass
        assert t.get("a") >= 0.02
        assert t.get("b") >= 0.0
        assert t.total() == pytest.approx(t.get("a") + t.get("b"))

    def test_records_even_on_exception(self):
        t = Timer()
        with pytest.raises(RuntimeError):
            with t.phase("x"):
                raise RuntimeError
        assert "x" in t.seconds

    def test_reset(self):
        t = Timer()
        with t.phase("a"):
            pass
        t.reset()
        assert t.total() == 0.0

    def test_missing_phase_default(self):
        assert Timer().get("nope", default=-1.0) == -1.0

    def test_throughput(self):
        assert throughput(100, 2.0) == 50.0
        assert throughput(0, 0.0) == 0.0
        assert throughput(5, 0.0) == float("inf")


class TestMiniaturizedDevice:
    def test_identity_at_paper_size(self):
        from repro.gpusim.device import TITAN_V
        from repro.workloads.datasets import miniaturized_device

        dev = miniaturized_device(1 << 23, 100_000_000, TITAN_V)
        assert dev is TITAN_V

    def test_partial_shrink(self):
        from repro.gpusim.device import TITAN_V
        from repro.workloads.datasets import miniaturized_device

        # Small tree but paper-sized batch: only L2 shrinks.
        dev = miniaturized_device(1 << 17, 100_000_000, TITAN_V)
        assert dev.l2_bytes < TITAN_V.l2_bytes
        assert dev.launch_overhead_us == TITAN_V.launch_overhead_us

    def test_floor(self):
        from repro.gpusim.device import TITAN_V
        from repro.workloads.datasets import miniaturized_device

        dev = miniaturized_device(16, 16, TITAN_V)
        assert dev.l2_bytes >= 4096


class TestCLIParser:
    def test_subcommands_registered(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["build", "--random", "10", "--out", "x.npz"])
        assert args.command == "build"
        for argv in (["stats", "i.npz"], ["range", "i.npz", "1", "2"],
                     ["simulate", "i.npz"], ["query", "i.npz", "5"]):
            assert build_parser().parse_args(argv).command == argv[0]

    def test_build_requires_source(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["build", "--out", "x.npz"])


class TestScaleAccessors:
    def test_query_and_batch_accessors(self):
        from repro.workloads.datasets import (
            get_scale,
            scaled_batch_size,
            scaled_query_count,
        )

        sc = get_scale("smoke")
        assert scaled_query_count(sc) == sc.n_queries
        assert scaled_batch_size(sc) == sc.update_batch
