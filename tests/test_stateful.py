"""Stateful (model-based) property testing of HarmoniaTree.

Hypothesis drives arbitrary interleavings of batched inserts, updates,
deletes, point and range queries against a plain-dict model; after every
batch the full §3.1 invariant checker runs.  This is the strongest single
test in the repository: any divergence between the array machinery
(in-place edits, auxiliary nodes, movement re-chunking) and B+tree
semantics shows up as a minimal failing operation sequence.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.constants import NOT_FOUND
from repro.core import HarmoniaTree, UpdateConfig
from repro.core.update import Operation

KEYS = st.integers(min_value=0, max_value=500)
VALUES = st.integers(min_value=-(1 << 40), max_value=1 << 40)


class HarmoniaMachine(RuleBasedStateMachine):
    @initialize(
        base=st.sets(KEYS, min_size=1, max_size=60),
        fanout=st.sampled_from([4, 8, 16]),
        fill=st.sampled_from([0.6, 1.0]),
    )
    def build(self, base, fanout, fill):
        keys = np.array(sorted(base), dtype=np.int64)
        self.tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=fill)
        self.model = {int(k): int(k) for k in keys}
        self.pending = []

    # ------------------------------------------------------------- mutation

    @rule(key=KEYS, value=VALUES)
    def stage_insert(self, key, value):
        self.pending.append(Operation("insert", key, value))

    @rule(key=KEYS, value=VALUES)
    def stage_update(self, key, value):
        self.pending.append(Operation("update", key, value))

    @rule(key=KEYS)
    def stage_delete(self, key):
        self.pending.append(Operation("delete", key))

    @rule()
    def flush_batch(self):
        if not self.pending:
            return
        ops, self.pending = self.pending, []
        res = self.tree.apply_batch(ops, UpdateConfig(n_threads=1))
        # Replay sequentially on the model (single-threaded batch applies
        # in submission order).
        effective = 0
        for op in ops:
            if op.kind == "insert":
                if op.key not in self.model:
                    self.model[op.key] = op.value
                    effective += 1
            elif op.kind == "update":
                if op.key in self.model:
                    self.model[op.key] = op.value
                    effective += 1
            else:
                if self.model.pop(op.key, None) is not None:
                    effective += 1
        assert res.n_effective == effective
        assert res.failed == len(ops) - effective

    # --------------------------------------------------------------- checks

    @rule(key=KEYS)
    def point_query(self, key):
        # Pending (unflushed) ops are invisible to both tree and model —
        # phase semantics keep them aligned at all times.
        assert self.tree.search(key) == self.model.get(key)

    @rule(lo=KEYS, hi=KEYS)
    def range_query(self, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        k, v = self.tree.range_search(lo, hi)
        expect = sorted(
            (kk, vv) for kk, vv in self.model.items() if lo <= kk <= hi
        )
        assert k.tolist() == [kk for kk, _ in expect]
        assert v.tolist() == [vv for _, vv in expect]

    @rule()
    def batch_query_everything(self):
        if not self.model:
            return
        items = sorted(self.model.items())
        probes = np.array([k for k, _ in items], dtype=np.int64)
        got = self.tree.search_batch(probes)
        assert got.tolist() == [v for _, v in items]

    @invariant()
    def structure_is_sound(self):
        if hasattr(self, "tree"):
            self.tree.check_invariants()
            assert len(self.tree) == len(self.model)


HarmoniaMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestHarmoniaMachine = HarmoniaMachine.TestCase
