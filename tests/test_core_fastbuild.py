"""Tests for the vectorized layout builder (equivalence with the object
path is the contract)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree.bulk import _chunk_sizes, bulk_load
from repro.core.fastbuild import _chunk_sizes_fast, build_layout_fast
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError, EmptyTreeError


class TestChunkSizesFast:
    @settings(max_examples=300, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n=st.integers(0, 100_000),
        fanout=st.integers(3, 128),
        fill=st.floats(0.01, 1.0),
    )
    def test_matches_loop(self, n, fanout, fill):
        """The closed form reproduces the greedy loop exactly — over the
        same (target, minimum, maximum) space build_layout_fast uses for
        leaves and internal levels."""
        slots = fanout - 1
        for minimum, maximum in (
            ((slots + 1) // 2, slots),          # leaf chunking
            ((fanout + 1) // 2, fanout),        # internal chunking
        ):
            target = max(minimum, min(maximum, round(fill * maximum)))
            assert (
                _chunk_sizes_fast(n, target, minimum, maximum).tolist()
                == _chunk_sizes(n, target, minimum, maximum)
            )


def via_objects(keys, values, fanout, fill):
    return HarmoniaLayout.from_regular(
        bulk_load(keys, values, fanout=fanout, fill=fill)
    )


class TestEquivalence:
    @pytest.mark.parametrize("n", [1, 2, 7, 8, 63, 64, 1_000, 4_097])
    @pytest.mark.parametrize("fanout,fill", [(4, 1.0), (8, 0.7), (64, 0.5)])
    def test_byte_identical(self, n, fanout, fill):
        keys = np.arange(n, dtype=np.int64) * 5
        values = keys + 1
        fast = build_layout_fast(keys, values, fanout=fanout, fill=fill)
        slow = via_objects(keys, values, fanout=fanout, fill=fill)
        assert np.array_equal(fast.key_region, slow.key_region)
        assert np.array_equal(fast.prefix_sum, slow.prefix_sum)
        assert np.array_equal(fast.leaf_values, slow.leaf_values)
        assert np.array_equal(fast.level_starts, slow.level_starts)
        assert fast.height == slow.height

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        keys=st.sets(st.integers(0, (1 << 40) - 1), min_size=1, max_size=300),
        fanout=st.sampled_from([4, 8, 16, 64]),
        fill=st.sampled_from([0.5, 0.8, 1.0]),
    )
    def test_byte_identical_property(self, keys, fanout, fill):
        arr = np.array(sorted(keys), dtype=np.int64)
        fast = build_layout_fast(arr, fanout=fanout, fill=fill)
        slow = via_objects(arr, None, fanout=fanout, fill=fill)
        assert np.array_equal(fast.key_region, slow.key_region)
        assert np.array_equal(fast.prefix_sum, slow.prefix_sum)


class TestValidationAndScale:
    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            build_layout_fast(np.array([], dtype=np.int64))

    def test_misaligned_values(self):
        with pytest.raises(ConfigError):
            build_layout_fast(np.arange(5), values=np.arange(4))

    def test_bad_fill(self):
        with pytest.raises(ConfigError):
            build_layout_fast(np.arange(5), fill=0.0)

    def test_large_tree_fast_and_sound(self):
        keys = np.arange(1 << 19, dtype=np.int64) * 7
        layout = build_layout_fast(keys, fanout=64, fill=0.7)
        layout.check_invariants()
        from repro.core.search import search_batch

        probe = keys[:: 1 << 10]
        assert np.array_equal(search_batch(layout, probe), probe)

    def test_from_sorted_now_delegates(self):
        keys = np.arange(1_000, dtype=np.int64)
        a = HarmoniaLayout.from_sorted(keys, fanout=8, fill=0.7)
        b = build_layout_fast(keys, fanout=8, fill=0.7)
        assert np.array_equal(a.key_region, b.key_region)
