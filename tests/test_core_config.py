"""Tests for SearchConfig / UpdateConfig validation and presets."""

import pytest

from repro.core.config import SearchConfig, UpdateConfig
from repro.errors import ConfigError


class TestSearchConfig:
    def test_defaults_valid(self):
        cfg = SearchConfig()
        assert cfg.use_psa and cfg.ntg == "model"

    def test_presets(self):
        assert SearchConfig.baseline_tree().use_psa is False
        assert SearchConfig.baseline_tree().ntg == "fanout"
        assert SearchConfig.tree_psa().use_psa is True
        assert SearchConfig.tree_psa().ntg == "fanout"
        assert SearchConfig.full().ntg == "model"

    def test_with_updates_functionally(self):
        cfg = SearchConfig().with_(use_psa=False)
        assert not cfg.use_psa
        assert SearchConfig().use_psa  # original untouched

    def test_explicit_int_ntg(self):
        assert SearchConfig(ntg=4).ntg == 4

    @pytest.mark.parametrize("bad", [3, 64, 0])
    def test_bad_int_ntg(self, bad):
        with pytest.raises(ConfigError):
            SearchConfig(ntg=bad)

    def test_bad_string_ntg(self):
        with pytest.raises(ConfigError):
            SearchConfig(ntg="auto")

    def test_bad_warp_size(self):
        with pytest.raises(ConfigError):
            SearchConfig(warp_size=30)

    def test_bad_psa_bits(self):
        with pytest.raises(ConfigError):
            SearchConfig(psa_bits=70)

    def test_psa_bits_zero_ok(self):
        assert SearchConfig(psa_bits=0).psa_bits == 0

    def test_bad_profile_levels(self):
        with pytest.raises(ConfigError):
            SearchConfig(ntg_profile_levels=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            SearchConfig().use_psa = False


class TestUpdateConfig:
    def test_defaults(self):
        cfg = UpdateConfig()
        assert cfg.n_threads == 4
        assert cfg.rebuild_policy == "always"

    def test_bad_threads(self):
        with pytest.raises(ConfigError):
            UpdateConfig(n_threads=0)

    def test_bad_policy(self):
        with pytest.raises(ConfigError):
            UpdateConfig(rebuild_policy="sometimes")

    def test_bad_threshold(self):
        with pytest.raises(ConfigError):
            UpdateConfig(rebuild_policy="threshold", rebuild_threshold=0.0)
        with pytest.raises(ConfigError):
            UpdateConfig(rebuild_policy="threshold", rebuild_threshold=1.5)
