"""Tests for the braided GPU baseline and the CSS-tree CPU baseline."""

import numpy as np
import pytest

from repro.baselines.braided import simulate_braided_search
from repro.baselines.css_tree import CSSTree
from repro.baselines.hbtree import HBTree
from repro.constants import NOT_FOUND
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def layout():
    keys = np.arange(0, 80_000, 4, dtype=np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=64, fill=0.7)


class TestBraided:
    def test_one_query_per_thread(self, layout, rng):
        q = rng.choice(layout.all_keys(), 1_024)
        m = simulate_braided_search(layout, q)
        assert m.group_size == 1
        assert m.n_warps == 1_024 // 32

    def test_worst_memory_divergence(self, layout, rng):
        q = rng.choice(layout.all_keys(), 2_048)
        braided = simulate_braided_search(layout, q)
        from repro.gpusim.kernels import simulate_hbtree_search

        grouped = simulate_hbtree_search(layout, q)
        assert (
            braided.transactions_per_request
            > grouped.transactions_per_request
        )

    def test_better_utilization_than_full_scan(self, layout, rng):
        q = rng.choice(layout.all_keys(), 2_048)
        braided = simulate_braided_search(layout, q)
        from repro.gpusim.kernels import simulate_hbtree_search

        grouped = simulate_hbtree_search(layout, q)
        # A lone thread's sequential scan does no useless comparisons.
        assert braided.utilization > grouped.utilization


class TestCSSTree:
    @pytest.fixture(scope="class")
    def tree(self):
        keys = np.arange(0, 30_000, 3, dtype=np.int64)
        return CSSTree(keys, values=keys * 2)

    def test_doctest_cases(self):
        t = CSSTree(np.arange(0, 100, 2))
        assert t.search(4) == 4
        assert t.search(5) is None

    def test_hits_and_misses(self, tree, rng):
        q = np.concatenate([
            np.arange(0, 3_000, 3), np.arange(1, 3_000, 3)
        ]).astype(np.int64)
        out = tree.search_batch(q)
        hits = q % 3 == 0
        assert np.array_equal(out[hits], q[hits] * 2)
        assert np.all(out[~hits] == NOT_FOUND)

    def test_matches_dict_oracle(self, tree, rng):
        q = rng.integers(0, 31_000, size=3_000)
        out = tree.search_batch(q)
        expect = np.where((q % 3 == 0) & (q < 30_000), q * 2, NOT_FOUND)
        assert np.array_equal(out, expect)

    def test_boundary_keys(self, tree):
        assert tree.search(0) == 0
        assert tree.search(29_997) == 29_997 * 2
        assert tree.search(30_000) is None
        assert tree.search(-3) is None

    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 100, 5_000])
    def test_sizes(self, n):
        keys = np.arange(n, dtype=np.int64) * 2
        t = CSSTree(keys)
        assert len(t) == n
        if n:
            assert t.search(0) == 0
            assert t.search(2 * (n - 1)) == 2 * (n - 1)
            assert t.search(1) is None

    def test_directory_is_pointerless_and_small(self, tree):
        # Directory ≈ keys / node_keys_n entries — far below the data.
        assert tree.directory_bytes < tree.keys.nbytes

    def test_cache_line_sizing(self):
        t = CSSTree(np.arange(1_000), cache_line_bytes=128)
        assert t.node_keys_n == 16
        assert t.search(500) == 500

    def test_bad_cache_line(self):
        with pytest.raises(ConfigError):
            CSSTree(np.arange(10), cache_line_bytes=10)

    def test_rebuild(self, tree):
        t = CSSTree(np.arange(0, 100, 2))
        t.rebuild(np.arange(0, 50, 5), values=np.arange(0, 50, 5) + 1)
        assert len(t) == 10
        assert t.search(5) == 6
        assert t.search(2) is None

    def test_empty(self):
        t = CSSTree(np.array([], dtype=np.int64))
        assert t.search_batch(np.array([1, 2], dtype=np.int64)).tolist() == [
            NOT_FOUND, NOT_FOUND
        ]


class TestExtBaselinesExperiment:
    def test_shape(self):
        from repro.experiments import ext_baselines

        result = ext_baselines.run(scale="smoke", seed=0)
        assert len(result.rows) == 3
        assert ext_baselines.shape_ok(result), result.render()
