"""Tests for the user-facing HarmoniaTree API."""

import numpy as np
import pytest

from repro.constants import NOT_FOUND
from repro.core import HarmoniaTree, SearchConfig, UpdateConfig
from repro.core.update import Operation
from repro.errors import EmptyTreeError


class TestConstruction:
    def test_from_sorted(self, small_keys):
        t = HarmoniaTree.from_sorted(small_keys, fanout=8)
        assert len(t) == small_keys.size
        assert t.fanout == 8
        t.check_invariants()

    def test_empty(self):
        t = HarmoniaTree.empty(fanout=16)
        assert len(t) == 0
        assert t.height == 0
        assert t.search(1) is None
        with pytest.raises(EmptyTreeError):
            _ = t.layout

    def test_from_empty_sequence(self):
        t = HarmoniaTree.from_sorted([])
        assert len(t) == 0

    def test_doctest_example(self):
        t = HarmoniaTree.from_sorted(range(0, 1000, 2))
        assert int(t.search(4)) == 4
        assert t.search(5) is None


class TestSearchPipeline:
    @pytest.fixture(scope="class")
    def tree(self, medium_keys):
        return HarmoniaTree.from_sorted(medium_keys, fanout=64, fill=0.7)

    def test_configs_agree_on_results(self, tree, medium_keys, rng):
        q = np.concatenate([
            rng.choice(medium_keys, 2_000),
            rng.integers(0, 1 << 34, 2_000),
        ])
        expected = tree.search_batch(q, SearchConfig.baseline_tree())
        for cfg in (SearchConfig.tree_psa(), SearchConfig.full(),
                    SearchConfig(ntg=4), SearchConfig(psa_bits=6)):
            assert np.array_equal(tree.search_batch(q, cfg), expected)

    def test_results_in_input_order(self, tree, medium_keys):
        q = medium_keys[[5, 3, 9, 3]]
        out = tree.search_batch(q, SearchConfig.full())
        assert np.array_equal(out, q)

    def test_membership(self, tree, medium_keys):
        assert int(medium_keys[0]) in tree
        assert (int(medium_keys[-1]) + 1) not in tree

    def test_empty_tree_batch(self):
        t = HarmoniaTree.empty()
        out = t.search_batch(np.array([1, 2, 3]))
        assert np.all(out == NOT_FOUND)

    def test_range_search(self, tree, medium_keys):
        lo, hi = int(medium_keys[10]), int(medium_keys[60])
        k, v = tree.range_search(lo, hi)
        assert np.array_equal(k, medium_keys[10:61])

    def test_range_on_empty(self):
        t = HarmoniaTree.empty()
        k, v = t.range_search(0, 10)
        assert k.size == 0

    def test_prepare_queries_metadata(self, tree, medium_keys, rng):
        q = rng.choice(medium_keys, 4_000)
        prep = tree.prepare_queries(q, SearchConfig.full())
        assert prep.group_size >= 1
        assert prep.psa.n == q.size
        assert prep.ntg_selection is not None
        prep2 = tree.prepare_queries(q, SearchConfig(ntg=8, use_psa=False))
        assert prep2.group_size == 8
        assert prep2.ntg_selection is None


class TestUpdateAPI:
    def test_single_ops(self):
        t = HarmoniaTree.from_sorted(np.arange(0, 100, 2), fanout=8, fill=0.7)
        assert t.insert(1, 11)
        assert not t.insert(1, 12)
        assert t.search(1) == 11
        assert t.update(1, 13)
        assert t.search(1) == 13
        assert t.delete(1)
        assert not t.delete(1)
        t.check_invariants()

    def test_batch_accounting(self):
        t = HarmoniaTree.from_sorted(np.arange(0, 1_000, 2), fanout=8, fill=0.8)
        ops = [Operation("insert", k, k) for k in range(1, 100, 2)]
        ops += [Operation("update", k, 7) for k in range(0, 100, 2)]
        ops += [Operation("delete", k) for k in range(500, 600, 2)]
        res = t.apply_batch(ops, UpdateConfig(n_threads=2))
        assert res.inserted == 50
        assert res.updated == 50
        assert res.deleted == 50
        assert res.n_effective == 150
        assert res.timer.get("apply") >= 0
        assert res.timer.get("movement") >= 0
        t.check_invariants()

    def test_bootstrap_from_empty(self):
        t = HarmoniaTree.empty(fanout=8)
        ops = [Operation("insert", k, k * 2) for k in range(100)]
        ops += [Operation("update", 5, 99), Operation("delete", 7)]
        res = t.apply_batch(ops)
        assert res.inserted == 100
        assert res.updated == 1
        assert res.deleted == 1
        assert len(t) == 99
        assert t.search(5) == 99
        assert t.search(7) is None
        assert t.fanout == 8
        t.check_invariants()

    def test_delete_everything_then_reinsert(self):
        t = HarmoniaTree.from_sorted(np.arange(10), fanout=8)
        res = t.apply_batch([Operation("delete", k) for k in range(10)])
        assert res.deleted == 10
        assert len(t) == 0
        assert t.insert(3, 33)
        assert t.search(3) == 33
        assert t.fanout == 8  # configuration survives emptiness

    def test_repeated_batches_stay_consistent(self, rng):
        t = HarmoniaTree.from_sorted(np.arange(0, 5_000, 5), fanout=16, fill=0.7)
        ref = {int(k): int(k) for k in np.arange(0, 5_000, 5)}
        for round_ in range(5):
            ops = []
            for k in rng.choice(5_000, 200, replace=False):
                k = int(k)
                if k in ref:
                    if rng.random() < 0.5:
                        ops.append(Operation("update", k, round_))
                        ref[k] = round_
                    else:
                        ops.append(Operation("delete", k))
                        del ref[k]
                else:
                    ops.append(Operation("insert", k, k + round_))
                    ref[k] = k + round_
            t.apply_batch(ops, UpdateConfig(n_threads=1))
            t.check_invariants()
            assert len(t) == len(ref)
        items = sorted(ref.items())
        got = t.search_batch(np.array([k for k, _ in items]))
        assert np.array_equal(got, np.array([v for _, v in items]))
