"""Tests for the naive GPU regular-B+tree baseline (gap analysis)."""

import numpy as np
import pytest

from repro.baselines.gpu_regular import (
    best_case_transactions_per_warp,
    simulate_regular_gpu_search,
    worst_case_transactions_per_warp,
)
from repro.core.layout import HarmoniaLayout


@pytest.fixture(scope="module")
def layout():
    rng = np.random.default_rng(55)
    keys = np.sort(rng.choice(1 << 24, 3_500, replace=False)).astype(np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=8, fill=1.0)


class TestAnalyticCases:
    def test_paper_worst_325(self, layout):
        assert layout.height == 4
        assert worst_case_transactions_per_warp(layout, 4) == pytest.approx(3.25)

    def test_best_is_one(self, layout):
        assert best_case_transactions_per_warp(layout) == 1.0


class TestSimulated:
    def test_measured_near_worst(self, layout, rng):
        q = rng.choice(layout.all_keys(), 4_096)
        m = simulate_regular_gpu_search(layout, q)
        measured = m.avg_transactions_per_warp()
        # Paper: 3.16 of 3.25 (~97%).  Allow the band DESIGN.md sets.
        assert 0.9 * 3.25 <= measured <= 3.25

    def test_group_size_override(self, layout, rng):
        q = rng.choice(layout.all_keys(), 256)
        m = simulate_regular_gpu_search(layout, q, group_size=4)
        assert m.group_size == 4
