"""Tests for obs exporters (JSON snapshot, Chrome trace), report/diff
rendering and the ``harmonia-tool obs`` CLI subcommands."""

import json

import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.errors import ConfigError
from repro.obs.export import (
    chrome_trace,
    load_metrics,
    write_chrome_trace,
    write_snapshot,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.report import render_diff, render_report
from repro.obs.schema import SCHEMA_VERSION


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("engine.batches", 2)
    reg.counter("engine.unique_nodes.l0", 1)
    reg.counter("engine.unique_nodes.l1", 30)
    reg.gauge("gpusim.transactions_per_warp", 3.25)
    reg.gauge("stream.sort_hidden_ratio", 0.4)
    reg.histogram("stream.queue_depth", 1)
    reg.span_at("stream.sort", reg.t0_s + 0.001, reg.t0_s + 0.003,
                cat="stream", tid=999, batch=0)
    reg.span_at("stream.traverse", reg.t0_s + 0.002, reg.t0_s + 0.005,
                cat="stream", batch=0)
    return reg


class TestChromeTrace:
    def test_structure(self):
        trace = chrome_trace(_sample_registry())
        assert isinstance(trace["traceEvents"], list)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert len(events) == 2
        assert {e["name"] for e in meta} >= {"process_name", "thread_name"}
        for e in events:
            assert e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 1

    def test_microsecond_timestamps_relative_to_t0(self):
        reg = _sample_registry()
        events = [e for e in chrome_trace(reg)["traceEvents"] if e["ph"] == "X"]
        sort = next(e for e in events if e["name"] == "stream.sort")
        assert sort["ts"] == pytest.approx(1000.0, rel=1e-6)
        assert sort["dur"] == pytest.approx(2000.0, rel=1e-6)

    def test_worker_and_main_tracks_distinct(self):
        events = [
            e for e in chrome_trace(_sample_registry())["traceEvents"]
            if e["ph"] == "X"
        ]
        tids = {e["name"]: e["tid"] for e in events}
        assert tids["stream.sort"] != tids["stream.traverse"]
        assert tids["stream.traverse"] == 0

    def test_args_jsonable(self, tmp_path):
        import numpy as np

        reg = MetricsRegistry()
        reg.span_at("stream.sort", reg.t0_s, reg.t0_s + 1e-3,
                    batch=np.int64(3), ratio=np.float64(0.5))
        path = write_chrome_trace(reg, tmp_path / "t.json")
        loaded = json.loads(path.read_text())  # must round-trip as JSON
        ev = next(e for e in loaded["traceEvents"] if e["ph"] == "X")
        assert ev["args"] == {"batch": 3, "ratio": 0.5}


class TestSnapshotIO:
    def test_write_and_load_roundtrip(self, tmp_path):
        snap = _sample_registry().snapshot()
        path = write_snapshot(snap, tmp_path / "snap.json")
        assert load_metrics(path) == snap

    def test_load_bench_wrapper(self, tmp_path):
        snap = _sample_registry().snapshot()
        wrapper = {"bench": "engine", "rows": [], "metrics": snap}
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps(wrapper))
        assert load_metrics(path) == snap

    def test_load_errors(self, tmp_path):
        with pytest.raises(ConfigError):
            load_metrics(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigError):
            load_metrics(bad)
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        with pytest.raises(ConfigError):
            load_metrics(arr)


class TestReport:
    def test_renders_derived_and_units(self):
        text = render_report(_sample_registry().snapshot())
        assert "transactions/warp (Fig 2)" in text
        assert "3.25" in text
        assert "unique nodes per level" in text
        assert "sort/traverse ratio" in text and "hidden" in text
        assert "[batches]" in text  # catalogue units

    def test_handles_foreign_version(self):
        snap = _sample_registry().snapshot()
        snap["schema_version"] = SCHEMA_VERSION + 7
        assert "best-effort" in render_report(snap)


class TestDiff:
    def test_deltas_and_added_removed(self):
        a = _sample_registry().snapshot()
        reg_b = _sample_registry()
        reg_b.counter("engine.batches", 2)  # 2 -> 4
        reg_b.counter("stream.batches", 9)  # added
        b = reg_b.snapshot()
        del b["gauges"]["stream.sort_hidden_ratio"]  # removed
        text = render_diff(a, b)
        assert "engine.batches" in text and "+2" in text
        assert "(added) 9" in text
        assert "(removed)" in text

    def test_no_differences(self):
        snap = _sample_registry().snapshot()
        assert "(no differences)" in render_diff(snap, snap)


class TestObsCLI:
    def test_record_validate_report_diff(self, tmp_path, capsys):
        out = tmp_path / "run"
        rc = cli_main([
            "obs", "record", "--out", str(out),
            "--keys", "4096", "--queries", "4096", "--seed", "3",
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "transactions/warp" in captured
        assert "unique nodes per level" in captured
        snap_path = out / "snapshot.json"
        trace_path = out / "trace.json"
        assert snap_path.exists() and trace_path.exists()

        trace = json.loads(trace_path.read_text())
        sorts = [e for e in trace["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "stream.sort"]
        travs = [e for e in trace["traceEvents"]
                 if e.get("ph") == "X" and e["name"] == "stream.traverse"]
        assert sorts and travs
        # overlap mode: sort spans live on worker tracks, traverses on main
        assert {e["tid"] for e in sorts}.isdisjoint({e["tid"] for e in travs})

        assert cli_main(["obs", "validate", str(snap_path)]) == 0
        assert cli_main(["obs", "report", str(snap_path)]) == 0
        assert "gpusim.transactions_per_warp" in capsys.readouterr().out
        assert cli_main(["obs", "diff", str(snap_path), str(snap_path)]) == 0
        assert "(no differences)" in capsys.readouterr().out

    def test_validate_fails_on_unknown_metric(self, tmp_path, capsys):
        snap = _sample_registry().snapshot()
        snap["counters"]["rogue.metric"] = 1
        path = tmp_path / "drift.json"
        path.write_text(json.dumps(snap))
        assert cli_main(["obs", "validate", str(path)]) == 1
        assert "rogue.metric" in capsys.readouterr().out

    def test_diff_missing_file_errors(self, capsys):
        assert cli_main(["obs", "diff", "/no/such/a.json", "/no/b.json"]) == 2
        assert "error" in capsys.readouterr().err
