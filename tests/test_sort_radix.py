"""Tests for the LSD radix sort substrate."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sort.radix import (
    full_sort_cost,
    partial_radix_argsort,
    partial_sort_cost,
    radix_argsort,
    radix_passes,
)


class TestRadixPasses:
    @pytest.mark.parametrize(
        "bits,digits,expect",
        [(64, 8, 8), (19, 8, 3), (8, 8, 1), (1, 8, 1), (0, 8, 0), (64, 16, 4)],
    )
    def test_ceiling(self, bits, digits, expect):
        assert radix_passes(bits, digits) == expect

    def test_rejects_negative_bits(self):
        with pytest.raises(ConfigError):
            radix_passes(-1)

    def test_rejects_bad_digits(self):
        with pytest.raises(ConfigError):
            radix_passes(8, 0)


class TestFullSort:
    def test_sorts(self, rng):
        keys = rng.integers(0, 1 << 62, size=5_000)
        res = radix_argsort(keys)
        assert np.all(np.diff(keys[res.order]) >= 0)
        assert res.passes == 8

    def test_matches_argsort(self, rng):
        keys = rng.integers(0, 1 << 40, size=2_000)
        res = radix_argsort(keys)
        assert np.array_equal(np.sort(keys), keys[res.order])

    def test_stable_on_duplicates(self):
        keys = np.array([5, 3, 5, 3, 5], dtype=np.int64)
        res = radix_argsort(keys)
        assert res.order.tolist() == [1, 3, 0, 2, 4]

    def test_inverse_permutation(self, rng):
        keys = rng.integers(0, 1 << 30, size=1_000)
        res = radix_argsort(keys)
        inv = res.inverse()
        assert res.inverse() is inv  # cached, not recomputed per lookup
        assert np.array_equal(inv[res.order], np.arange(keys.size))
        sorted_vals = keys[res.order]
        assert np.array_equal(sorted_vals[inv], keys)

    def test_negative_keys_sorted_correctly(self, rng):
        # Signed keys go through the order-preserving sign-flip transform.
        keys = rng.integers(-(1 << 40), 1 << 40, size=3_000)
        res = radix_argsort(keys)
        assert np.array_equal(keys[res.order], np.sort(keys))

    def test_negative_partial_sort_groups(self, rng):
        keys = rng.integers(-(1 << 40), 1 << 40, size=2_000)
        res = partial_radix_argsort(keys, bits=8)
        # Top 8 bits of the sign-flipped image: all negatives before all
        # non-negatives.
        sorted_keys = keys[res.order]
        first_nonneg = np.argmax(sorted_keys >= 0)
        if (sorted_keys < 0).any() and (sorted_keys >= 0).any():
            assert np.all(sorted_keys[:first_nonneg] < 0)
            assert np.all(sorted_keys[first_nonneg:] >= 0)

    def test_rejects_2d(self):
        with pytest.raises(ConfigError):
            radix_argsort(np.zeros((2, 2), dtype=np.int64))

    def test_empty_and_single(self):
        assert radix_argsort(np.array([], dtype=np.int64)).order.size == 0
        assert radix_argsort(np.array([9], dtype=np.int64)).order.tolist() == [0]

    def test_non_digit_aligned_key_bits(self, rng):
        # 64 bits with 12-bit digits: 6 passes, clamped bottom digit.
        keys = rng.integers(0, 1 << 62, size=3_000)
        res = radix_argsort(keys, digit_bits=12)
        assert np.all(np.diff(keys[res.order]) >= 0)
        assert res.passes == 6


class TestPartialSort:
    def test_groups_by_top_bits(self, rng):
        keys = rng.integers(0, 1 << 32, size=4_000)
        res = partial_radix_argsort(keys, bits=8, key_bits=32)
        tops = keys[res.order] >> 24
        assert np.all(np.diff(tops) >= 0)
        assert res.passes == 1

    def test_zero_bits_identity(self, rng):
        keys = rng.integers(0, 1 << 30, size=100)
        res = partial_radix_argsort(keys, bits=0)
        assert np.array_equal(res.order, np.arange(100))
        assert res.passes == 0

    def test_full_bits_equals_full_sort(self, rng):
        keys = rng.integers(0, 1 << 62, size=2_000)
        a = partial_radix_argsort(keys, bits=64)
        b = radix_argsort(keys)
        assert np.array_equal(keys[a.order], keys[b.order])

    def test_bits_out_of_range(self, rng):
        keys = rng.integers(0, 10, size=5)
        with pytest.raises(ConfigError):
            partial_radix_argsort(keys, bits=65)

    def test_paper_19_bits(self, rng):
        keys = rng.integers(0, 1 << 62, size=2_000)
        res = partial_radix_argsort(keys, bits=19)
        assert res.passes == 3  # ceil(19/8)
        assert res.bits_sorted == 19  # exactly the request — narrow top pass
        tops = keys[res.order] >> (64 - 19)
        assert np.all(np.diff(tops) >= 0)

    def test_narrow_top_pass_sorts_only_requested_bits(self, rng):
        # bits=19 with 8-bit digits: passes of 8, 8 and 3 bits.  The bit
        # just below the participating range must stay unsorted within
        # equal-top-19 groups (the old top-aligned ladder ordered it too).
        keys = rng.integers(0, 1 << 62, size=4_000)
        res = partial_radix_argsort(keys, bits=19)
        sorted_keys = keys[res.order]
        tops = sorted_keys >> (64 - 19)
        assert np.all(np.diff(tops) >= 0)
        # Stability: within an equal-top-bits group, input order survives.
        for g in np.unique(tops[:50]):
            grp = res.order[tops == g]
            assert np.all(np.diff(grp) > 0)

    def test_cost_pinned_to_executed_passes(self, rng):
        # §4.1.2's model unit is the counting pass; the implementation
        # must execute exactly the passes the model charges for.
        keys = rng.integers(0, 1 << 62, size=512)
        for bits in (1, 7, 8, 9, 16, 19, 24, 33, 64):
            res = partial_radix_argsort(keys, bits=bits)
            assert res.passes == radix_passes(bits)
            assert partial_sort_cost(keys.size, bits) == keys.size * res.passes
            assert res.bits_sorted == bits


class TestCostModel:
    def test_full_cost_linear_in_n(self):
        assert full_sort_cost(2_000) == 2 * full_sort_cost(1_000)

    def test_partial_fraction(self):
        # 19 bits = 3 passes of 8 -> 3/8 of the full 8-pass cost.
        assert partial_sort_cost(100, 19) / full_sort_cost(100) == pytest.approx(3 / 8)

    def test_zero_bits_zero_cost(self):
        assert partial_sort_cost(100, 0) == 0.0

    def test_invalid_bits(self):
        with pytest.raises(ConfigError):
            partial_sort_cost(100, -1)
