"""Tests for the batch-update machinery (§3.2.2): in-place edits,
auxiliary nodes, and the movement pass."""

import numpy as np
import pytest

from repro.constants import KEY_MAX, NOT_FOUND
from repro.core.layout import HarmoniaLayout
from repro.core.search import search_batch, search_scalar
from repro.core.update import (
    AuxiliaryNode,
    BatchUpdater,
    Operation,
)
from repro.errors import ConfigError


def layout_of(keys, fanout=8, fill=0.8):
    return HarmoniaLayout.from_sorted(np.asarray(keys, dtype=np.int64),
                                      fanout=fanout, fill=fill)


class TestOperation:
    def test_valid(self):
        Operation("insert", 1, 2)
        Operation("update", 1, 2)
        Operation("delete", 1)

    def test_bad_kind(self):
        with pytest.raises(ConfigError):
            Operation("upsert", 1, 2)

    def test_sentinel_key_rejected(self):
        with pytest.raises(Exception):
            Operation("insert", KEY_MAX, 0)


class TestAuxiliaryNode:
    def test_from_row_skips_padding(self):
        row = np.array([1, 5, KEY_MAX, KEY_MAX], dtype=np.int64)
        vals = np.array([10, 50, NOT_FOUND, NOT_FOUND], dtype=np.int64)
        aux = AuxiliaryNode.from_row(row, vals)
        assert aux.keys == [1, 5] and aux.values == [10, 50]

    def test_insert_sorted(self):
        aux = AuxiliaryNode(keys=[1, 5], values=[10, 50])
        assert aux.insert(3, 30)
        assert aux.keys == [1, 3, 5]

    def test_insert_duplicate(self):
        aux = AuxiliaryNode(keys=[1], values=[10])
        assert not aux.insert(1, 99)
        assert aux.values == [10]

    def test_update_delete_find(self):
        aux = AuxiliaryNode(keys=[1, 2], values=[10, 20])
        assert aux.update(2, 22)
        assert aux.find(2) == 22
        assert aux.delete(1)
        assert aux.find(1) is None
        assert not aux.delete(1)


class TestInPlaceOps:
    def test_update_in_place(self):
        layout = layout_of(range(0, 100, 2))
        up = BatchUpdater(layout, fill=0.8)
        up.apply_op(Operation("update", 10, 999))
        assert search_scalar(layout, 10) == 999
        assert up.result.updated == 1
        assert not up.aux

    def test_update_missing_fails(self):
        layout = layout_of(range(0, 100, 2))
        up = BatchUpdater(layout, fill=0.8)
        up.apply_op(Operation("update", 11, 999))
        assert up.result.failed == 1

    def test_insert_into_free_slot(self):
        layout = layout_of(range(0, 100, 2), fill=0.5)  # room in leaves
        up = BatchUpdater(layout, fill=0.5)
        up.apply_op(Operation("insert", 11, 111))
        assert up.result.inserted == 1
        assert search_scalar(layout, 11) == 111
        assert not up.aux  # no split needed

    def test_insert_duplicate_fails(self):
        layout = layout_of(range(0, 100, 2), fill=0.5)
        up = BatchUpdater(layout, fill=0.5)
        up.apply_op(Operation("insert", 10, 1))
        assert up.result.failed == 1

    def test_delete_in_place(self):
        layout = layout_of(range(0, 200, 2), fill=1.0)  # full leaves
        up = BatchUpdater(layout, fill=1.0)
        up.apply_op(Operation("delete", 10))
        assert up.result.deleted == 1
        assert search_scalar(layout, 10) is None


class TestStructuralOps:
    def test_insert_into_full_leaf_stages_aux(self):
        layout = layout_of(range(0, 100, 2), fill=1.0)
        up = BatchUpdater(layout, fill=1.0)
        up.apply_op(Operation("insert", 11, 111))
        assert up.result.inserted == 1
        assert up.result.split_leaves == 1
        assert len(up.aux) == 1
        # The key region itself is untouched until movement.
        assert search_scalar(layout, 11) is None

    def test_ops_on_aux_leaf_redirect(self):
        layout = layout_of(range(0, 100, 2), fill=1.0)
        up = BatchUpdater(layout, fill=1.0)
        up.apply_op(Operation("insert", 11, 111))
        leaf = next(iter(up.aux))
        # A later update to a key in that leaf must hit the aux node.
        target = up.aux[leaf].keys[0]
        up.apply_op(Operation("update", int(target), 4242))
        assert up.aux[leaf].find(int(target)) == 4242

    def test_delete_below_min_goes_structural(self):
        layout = layout_of(range(0, 40, 2), fanout=8, fill=0.5)
        up = BatchUpdater(layout, fill=0.5)
        # Leaves at fill 0.5 hold ~the minimum; deleting twice from one leaf
        # must escalate to the structural path.
        row = layout.key_region[layout.leaf_start]
        victims = row[row != KEY_MAX][:2]
        for v in victims:
            up.apply_op(Operation("delete", int(v)))
        assert up.result.deleted == 2
        assert up.result.split_leaves >= 1  # aux was created


class TestMovement:
    def test_noop_batch_keeps_layout_equal(self):
        layout = layout_of(range(0, 100, 2))
        up = BatchUpdater(layout, fill=0.8)
        new = up.movement()
        new.check_invariants()
        assert np.array_equal(new.all_keys(), layout.all_keys())

    def test_split_materializes(self):
        layout = layout_of(range(0, 100, 2), fill=1.0)
        up = BatchUpdater(layout, fill=1.0)
        up.apply_op(Operation("insert", 11, 111))
        new = up.movement()
        new.check_invariants()
        assert search_scalar(new, 11) == 111
        assert new.n_keys == layout.n_keys + 1

    def test_mass_inserts_grow_height_legally(self):
        layout = layout_of(range(0, 2_000, 2), fanout=8, fill=1.0)
        up = BatchUpdater(layout, fill=1.0)
        for k in range(1, 2_000, 2):
            up.apply_op(Operation("insert", k, k))
        new = up.movement()
        new.check_invariants()
        assert new.n_keys == 2_000
        out = search_batch(new, np.arange(2_000))
        assert np.array_equal(out, np.where(np.arange(2000) % 2 == 0,
                                            np.arange(2000), np.arange(2000)))

    def test_mass_deletes_shrink(self):
        layout = layout_of(range(1_000), fanout=8, fill=0.8)
        up = BatchUpdater(layout, fill=0.8)
        for k in range(0, 1_000, 2):
            up.apply_op(Operation("delete", k))
        new = up.movement()
        new.check_invariants()
        assert new.n_keys == 500
        assert search_scalar(new, 0) is None
        assert search_scalar(new, 1) == 1

    def test_delete_everything_returns_none(self):
        layout = layout_of(range(10), fanout=8)
        up = BatchUpdater(layout, fill=1.0)
        for k in range(10):
            up.apply_op(Operation("delete", k))
        assert up.movement() is None

    def test_clean_rows_reused_verbatim(self):
        layout = layout_of(range(0, 10_000, 2), fanout=16, fill=0.7)
        up = BatchUpdater(layout, fill=0.7)
        up.apply_op(Operation("update", 0, 42))  # in-place, leaf 0 stays clean
        new = up.movement()
        assert up.result.moved_clean > 0
        assert search_scalar(new, 0) == 42

    def test_movement_counts_add_up(self):
        layout = layout_of(range(0, 1_000, 2), fanout=8, fill=1.0)
        up = BatchUpdater(layout, fill=1.0)
        for k in range(1, 200, 2):
            up.apply_op(Operation("insert", k, k))
        new = up.movement()
        assert up.result.moved_clean + up.result.rebuilt_dirty == new.n_leaves
