"""Tests for the HB+Tree comparator."""

import numpy as np
import pytest

from repro.baselines.hbtree import HBTree, HBTreeDeviceImage
from repro.btree.bulk import bulk_load
from repro.constants import NOT_FOUND
from repro.core.update import Operation
from repro.errors import EmptyTreeError


@pytest.fixture(scope="module")
def keys():
    rng = np.random.default_rng(41)
    return np.sort(rng.choice(1 << 26, 20_000, replace=False)).astype(np.int64)


@pytest.fixture(scope="module")
def hb(keys):
    return HBTree.from_sorted(keys, fanout=16, fill=0.7)


class TestDeviceImage:
    def test_empty_rejected(self):
        from repro.btree.regular import RegularBPlusTree

        with pytest.raises(EmptyTreeError):
            HBTreeDeviceImage.from_regular(RegularBPlusTree(4))

    def test_child_pointers_consistent(self, keys):
        tree = bulk_load(keys[:2_000], fanout=8, fill=0.8)
        img = HBTreeDeviceImage.from_regular(tree)
        # Every internal node's children must point forward in BFS order.
        for node in range(img.leaf_start):
            ptrs = img.child_ptr[node]
            valid = ptrs[ptrs >= 0]
            assert valid.size >= 2
            assert np.all(valid > node)
        # Leaves have no children.
        assert np.all(img.child_ptr[img.leaf_start:] == -1)

    def test_search_matches_master(self, hb, keys, rng):
        q = np.concatenate([rng.choice(keys, 1_000),
                            rng.integers(0, 1 << 26, 1_000)])
        out = hb.image.search_batch(q)
        for qi, r in zip(q[:200], out[:200]):
            master = hb.master.search(int(qi))
            if master is None:
                assert r == NOT_FOUND
            else:
                assert r == master


class TestHBTreeQueries:
    def test_scalar(self, hb, keys):
        assert hb.search(int(keys[0])) == int(keys[0])
        assert hb.search(int(keys[-1]) + 1) is None

    def test_len_height_fanout(self, hb, keys):
        assert len(hb) == keys.size
        assert hb.fanout == 16
        assert hb.height == hb.master.height

    def test_simulate_produces_metrics(self, hb, keys, rng):
        q = rng.choice(keys, 512)
        m = hb.simulate_search(q)
        assert m.n_queries == 512
        assert m.gld_transactions > 0
        assert m.child_transactions.sum() > 0  # pointer layout


class TestHBTreeUpdates:
    def test_batch_update_and_sync(self, keys):
        hb = HBTree.from_sorted(keys[:5_000], fanout=16, fill=0.7)
        stored = keys[:5_000]
        fresh = np.setdiff1d(np.arange(1, 2_000), stored)[:200]
        ops = (
            [Operation("insert", int(k), 1) for k in fresh]
            + [Operation("update", int(k), 2) for k in stored[:300]]
            + [Operation("delete", int(k)) for k in stored[-100:]]
        )
        counts = hb.apply_batch(ops, n_threads=4)
        assert counts["inserted"] == 200
        assert counts["updated"] == 300
        assert counts["deleted"] == 100
        assert counts["total_s"] > 0
        hb.master.check_invariants()
        # The device image must reflect the new state (sync happened).
        out = hb.search_batch(fresh)
        assert np.all(out == 1)
        out = hb.search_batch(stored[-100:])
        assert np.all(out == NOT_FOUND)

    def test_single_thread_path(self, keys):
        hb = HBTree.from_sorted(keys[:500], fanout=8)
        counts = hb.apply_batch([Operation("update", int(keys[0]), 9)],
                                n_threads=1)
        assert counts["updated"] == 1
        assert hb.search(int(keys[0])) == 9
