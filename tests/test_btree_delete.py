"""Tests for RegularBPlusTree deletion: borrow, merge, root collapse."""

import numpy as np
import pytest

from repro.btree.regular import RegularBPlusTree


def build(keys, fanout=4):
    t = RegularBPlusTree(fanout=fanout)
    for k in keys:
        t.insert(int(k), int(k) * 10)
    return t


class TestSimpleDelete:
    def test_delete_from_leaf_root(self):
        t = build([1, 2])
        assert t.delete(1)
        assert t.search(1) is None
        assert t.search(2) == 20
        t.check_invariants()

    def test_delete_missing(self):
        t = build([1, 2])
        assert not t.delete(9)
        assert len(t) == 2

    def test_delete_to_empty(self):
        t = build([1, 2, 3])
        for k in (1, 2, 3):
            assert t.delete(k)
        assert len(t) == 0
        assert t.height == 1
        t.check_invariants()

    def test_delete_then_reinsert(self):
        t = build(range(50))
        assert t.delete(25)
        assert t.insert(25, 999)
        assert t.search(25) == 999
        t.check_invariants()


class TestRebalancing:
    def test_sequential_deletes_front(self):
        t = build(range(200))
        for k in range(150):
            assert t.delete(k)
            if k % 25 == 0:
                t.check_invariants()
        t.check_invariants()
        assert len(t) == 50
        assert t.min_key() == 150

    def test_sequential_deletes_back(self):
        t = build(range(200))
        for k in reversed(range(50, 200)):
            assert t.delete(k)
        t.check_invariants()
        assert t.max_key() == 49

    def test_random_deletes(self):
        rng = np.random.default_rng(3)
        keys = rng.permutation(1_000)
        t = build(keys, fanout=5)
        victims = keys[:700]
        for i, k in enumerate(victims):
            assert t.delete(int(k))
            if i % 100 == 0:
                t.check_invariants()
        t.check_invariants()
        survivors = sorted(int(k) for k in keys[700:])
        assert list(t.keys()) == survivors

    def test_root_collapse_reduces_height(self):
        t = build(range(200), fanout=4)
        h0 = t.height
        for k in range(195):
            t.delete(k)
        t.check_invariants()
        assert t.height < h0

    def test_delete_all_then_rebuild(self):
        t = build(range(300), fanout=6)
        for k in range(300):
            t.delete(k)
        assert len(t) == 0
        for k in range(100):
            t.insert(k, k)
        t.check_invariants()
        assert len(t) == 100

    @pytest.mark.parametrize("fanout", [3, 4, 5, 8, 16])
    def test_fanouts_interleaved_ops(self, fanout):
        rng = np.random.default_rng(fanout)
        t = RegularBPlusTree(fanout=fanout)
        ref = {}
        for _ in range(1_500):
            k = int(rng.integers(0, 400))
            if rng.random() < 0.55:
                if t.insert(k, k):
                    ref[k] = k
            else:
                removed = t.delete(k)
                assert removed == (k in ref)
                ref.pop(k, None)
        t.check_invariants()
        assert sorted(ref) == list(t.keys())
