"""Tests for KernelMetrics derived quantities."""

import numpy as np
import pytest

from repro.gpusim.metrics import KernelMetrics


def make_metrics(**overrides):
    m = KernelMetrics(n_queries=128, n_warps=16, group_size=8, height=3)
    for k, v in overrides.items():
        setattr(m, k, v)
    return m


class TestDerived:
    def test_zero_defaults(self):
        m = make_metrics()
        assert m.gld_transactions == 0
        assert m.gld_requests == 0
        assert m.transactions_per_request == 0.0
        assert m.warp_coherence == 1.0
        assert m.utilization == 1.0

    def test_gld_totals(self):
        m = make_metrics(
            key_transactions=np.array([4, 8, 16]),
            child_transactions=np.array([1, 1, 0]),
            value_transactions=6,
        )
        assert m.gld_transactions == 36

    def test_transactions_per_request(self):
        m = make_metrics(
            key_transactions=np.array([10, 0, 0]),
            requests=np.array([5, 0, 0]),
        )
        assert m.transactions_per_request == 2.0

    def test_coherence_counts_memory_replays(self):
        # Pure compute, fully coherent, but divergent memory: 10 requests
        # fanning into 30 transactions must pull coherence below 1.
        m = make_metrics(
            warp_steps=np.array([10, 0, 0]),
            coherent_steps=np.array([10, 0, 0]),
            key_transactions=np.array([30, 0, 0]),
            requests=np.array([10, 0, 0]),
        )
        assert m.warp_coherence == pytest.approx((10 + 10) / (10 + 30))

    def test_coherence_counts_compute_divergence(self):
        m = make_metrics(
            warp_steps=np.array([10, 0, 0]),
            coherent_steps=np.array([5, 0, 0]),
        )
        assert m.warp_coherence == pytest.approx(0.5)

    def test_utilization(self):
        m = make_metrics(useful_comparisons=50, executed_comparisons=200)
        assert m.utilization == 0.25

    def test_fig2_average(self):
        m = make_metrics(key_transactions=np.array([16, 48, 64]))
        per_level = m.transactions_per_warp_level()
        assert per_level.tolist() == [1.0, 3.0, 4.0]
        assert m.avg_transactions_per_warp() == pytest.approx(8 / 3)

    def test_dram_split_properties(self):
        m = make_metrics(
            key_transactions=np.array([10, 10, 10]),
            dram_transactions=np.array([1, 2, 3]),
            value_dram_transactions=2,
        )
        assert m.total_dram_transactions == 8
        assert m.total_l2_transactions == 30 - 8

    def test_summary_keys(self):
        s = make_metrics().summary()
        for key in ("queries", "gld_transactions", "warp_coherence",
                    "utilization", "group_size"):
            assert key in s
