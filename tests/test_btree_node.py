"""Tests for repro.btree.node — leaf and internal node primitives."""

import pytest

from repro.btree.node import InternalNode, LeafNode
from repro.errors import CapacityError


class TestLeafNode:
    def test_starts_empty(self):
        leaf = LeafNode()
        assert leaf.is_leaf
        assert leaf.n_keys() == 0
        assert leaf.next_leaf is None

    def test_insert_keeps_order(self):
        leaf = LeafNode()
        for k in (5, 1, 3):
            leaf.insert_entry(k, k * 10, max_keys=7)
        assert leaf.keys == [1, 3, 5]
        assert leaf.values == [10, 30, 50]

    def test_insert_overflow_rejected(self):
        leaf = LeafNode()
        leaf.insert_entry(1, 1, max_keys=1)
        with pytest.raises(CapacityError):
            leaf.insert_entry(2, 2, max_keys=1)

    def test_find(self):
        leaf = LeafNode()
        leaf.insert_entry(4, 44, max_keys=3)
        assert leaf.find(4) == 44
        assert leaf.find(5) is None

    def test_set_value(self):
        leaf = LeafNode()
        leaf.insert_entry(4, 44, max_keys=3)
        assert leaf.set_value(4, 99)
        assert leaf.find(4) == 99
        assert not leaf.set_value(5, 0)

    def test_remove_entry(self):
        leaf = LeafNode()
        leaf.insert_entry(4, 44, max_keys=3)
        assert leaf.remove_entry(4)
        assert leaf.keys == [] and leaf.values == []
        assert not leaf.remove_entry(4)

    def test_value_zero_findable(self):
        leaf = LeafNode()
        leaf.insert_entry(1, 0, max_keys=3)
        assert leaf.find(1) == 0


class TestInternalNode:
    def _node(self, keys):
        node = InternalNode()
        node.keys = list(keys)
        node.children = [LeafNode() for _ in range(len(keys) + 1)]
        return node

    def test_not_leaf(self):
        assert not self._node([10]).is_leaf

    def test_child_index_left(self):
        node = self._node([10, 20])
        assert node.child_index_for(5) == 0

    def test_child_index_equal_goes_right(self):
        # Right-inclusive separator convention (module docstring).
        node = self._node([10, 20])
        assert node.child_index_for(10) == 1
        assert node.child_index_for(20) == 2

    def test_child_index_between(self):
        node = self._node([10, 20])
        assert node.child_index_for(15) == 1

    def test_child_index_above_all(self):
        node = self._node([10, 20])
        assert node.child_index_for(99) == 2

    def test_child_slot_of_identity(self):
        node = self._node([10])
        assert node.child_slot_of(node.children[1]) == 1

    def test_child_slot_of_foreign_node(self):
        node = self._node([10])
        with pytest.raises(ValueError):
            node.child_slot_of(LeafNode())
