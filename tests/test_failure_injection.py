"""Failure injection: corruption detection and crash consistency.

A production index must fail loudly on corrupt state and atomically on
interrupted maintenance.  These tests corrupt each structural component of
a layout and assert the invariant checker names it, and interrupt batch
machinery mid-flight to assert the published structure is never the
damaged one.
"""

import threading

import numpy as np
import pytest

from repro.constants import KEY_MAX, NOT_FOUND
from repro.core import EpochManager, HarmoniaTree
from repro.core.layout import HarmoniaLayout
from repro.core.update import BatchUpdater, Operation
from repro.errors import InvariantViolation


@pytest.fixture
def layout():
    keys = np.arange(0, 4_000, 2, dtype=np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=8, fill=0.8)


class TestCorruptionDetection:
    """Every class of structural damage is caught by check_invariants."""

    def test_swapped_keys_in_row(self, layout):
        layout.key_region[5, 0], layout.key_region[5, 1] = (
            int(layout.key_region[5, 1]), int(layout.key_region[5, 0]),
        )
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_prefix_sum_off_by_one(self, layout):
        layout.prefix_sum[3] += 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_prefix_sum_decreasing(self, layout):
        layout.prefix_sum[2] = layout.prefix_sum[3] + 5
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_level_starts_truncated(self, layout):
        layout.level_starts[-1] -= 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_leaf_key_duplicated_across_leaves(self, layout):
        a = layout.leaf_start
        layout.key_region[a + 1, 0] = layout.key_region[a, 0]
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_internal_key_count_mismatch(self, layout):
        # Blank an internal separator: key count no longer children-1.
        layout.key_region[0, 0] = KEY_MAX
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_phantom_key(self, layout):
        layout.n_keys -= 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_leaf_claiming_children(self, layout):
        layout.prefix_sum[layout.leaf_start + 1 :] += 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()


class TestCrashConsistency:
    def test_movement_failure_leaves_old_layout_usable(self):
        """Movement builds fresh arrays: an exception mid-movement must not
        damage the structure queries are using."""
        keys = np.arange(0, 2_000, 2, dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, fanout=8, fill=1.0)
        snapshot = tree.layout

        updater = BatchUpdater(snapshot.copy(), fill=1.0)
        for k in range(1, 400, 2):
            updater.apply_op(Operation("insert", k, k))

        # Sabotage the movement by corrupting the updater's aux bookkeeping.
        bad_leaf = next(iter(updater.aux))
        updater.aux[bad_leaf].keys = None  # type: ignore[assignment]
        with pytest.raises(TypeError):
            updater.movement()

        # The tree's own snapshot was never touched.
        snapshot.check_invariants()
        tree.check_invariants()
        assert tree.search(0) == 0

    @pytest.mark.parametrize("mode,target", [
        ("scalar", "repro.core.update.BatchUpdater.movement"),
        ("vectorized",
         "repro.core.update_plan.VectorizedBatchUpdater._movement"),
    ])
    def test_epoch_flush_failure_keeps_old_epoch(self, monkeypatch, mode,
                                                 target):
        from repro.core import UpdateConfig

        keys = np.arange(0, 1_000, 2, dtype=np.int64)
        em = EpochManager(
            HarmoniaTree.from_sorted(keys, fanout=8, fill=0.8),
            update_config=UpdateConfig(mode=mode),
        )

        def boom(*args, **kwargs):
            raise RuntimeError("injected movement failure")

        monkeypatch.setattr(target, boom)
        em.submit(Operation("insert", 1, 1))
        with pytest.raises(RuntimeError):
            em.flush()
        # The failed epoch was never published.
        assert em.epoch == 0
        assert em.search(0) == 0
        assert em.search(1) is None
        em._tree.check_invariants()

    def test_worker_exception_does_not_wedge_locks(self):
        """A fine-grained op that raises must not leave the global counter
        high (which would deadlock every structural op forever)."""
        keys = np.arange(0, 1_000, 2, dtype=np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=8, fill=1.0)
        up = BatchUpdater(layout, fill=1.0)

        original = up._inplace_update
        calls = {"n": 0}

        def flaky(leaf, key, value):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected")
            return original(leaf, key, value)

        up._inplace_update = flaky  # type: ignore[assignment]
        with pytest.raises(RuntimeError):
            up.apply_op(Operation("update", 0, 5))
        assert up.locks.global_count == 0
        # Structural ops still proceed afterwards.
        up.apply_op(Operation("insert", 1, 1))
        assert up.result.inserted == 1

    def test_concurrent_corruption_free_under_failures(self):
        """Threads racing updates with one poisoned op: the batch completes
        for the healthy ops and invariants hold after movement."""
        keys = np.arange(0, 20_000, 4, dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, fanout=16, fill=0.7)
        updater = BatchUpdater(tree.layout, fill=0.7)

        errors = []

        def worker(start):
            try:
                for k in range(start, start + 500, 4):
                    updater.apply_op(Operation("update", k, -1))
            except Exception as exc:  # pragma: no cover - should not happen
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in (0, 4_000, 8_000, 12_000)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        new = updater.movement()
        new.check_invariants()
        assert updater.result.updated == 4 * 125
