"""Directed tests for the sharded service tier (repro.shard).

Covers the pieces in isolation — partitioner routing/balancing, the
shared-memory transport's windowed streaming, concat_sorted_runs — and
the assembled service: lifecycle, restart-and-rebuild, checkpoint,
rebalance, obs instrumentation, and the CLI entry.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.constants import NOT_FOUND
from repro.core.merge import concat_sorted_runs
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.errors import ConfigError
from repro.obs.schema import validate_snapshot
from repro.shard import Partitioner, ShardChannel, ShardedTree


# --------------------------------------------------------------------------
# Partitioner
# --------------------------------------------------------------------------


class TestPartitioner:
    def test_quantile_balance(self):
        keys = np.arange(0, 9000, 3)
        part = Partitioner.from_keys(keys, 3)
        ids = part.shard_of(keys)
        counts = np.bincount(ids, minlength=3)
        assert counts.sum() == keys.size
        assert Partitioner.skew(counts) < 1.01

    def test_boundary_key_routes_to_ending_shard(self):
        part = Partitioner(n_shards=2, boundaries=np.asarray([100]))
        assert part.shard_of([100])[0] == 0  # equal routes left
        assert part.shard_of([101])[0] == 1

    def test_stored_keys_route_to_their_slice(self):
        keys = np.arange(0, 1000, 7)
        part = Partitioner.from_keys(keys, 4)
        ids = part.shard_of(keys)
        # Routing must reproduce the contiguous slices from_sorted cuts.
        assert np.all(np.diff(ids) >= 0)

    def test_scatter_stable_within_shard(self):
        part = Partitioner(n_shards=2, boundaries=np.asarray([50]))
        keys = np.asarray([10, 60, 20, 70, 30])
        ids, order, bounds = part.scatter(keys)
        # Shard 0 sees 10, 20, 30 in arrival order; shard 1 sees 60, 70.
        assert order[bounds[0]:bounds[1]].tolist() == [0, 2, 4]
        assert order[bounds[1]:bounds[2]].tolist() == [1, 3]

    def test_single_shard(self):
        part = Partitioner.from_keys(np.arange(10), 1)
        assert part.boundaries.size == 0
        assert np.all(part.shard_of(np.arange(100)) == 0)

    def test_clip(self):
        part = Partitioner(n_shards=3, boundaries=np.asarray([10, 20]))
        assert part.clip(0, -5, 100) == (-5, 10)
        assert part.clip(1, -5, 100) == (11, 20)
        assert part.clip(2, -5, 100) == (21, 100)

    def test_shard_range(self):
        part = Partitioner(n_shards=3, boundaries=np.asarray([10, 20]))
        assert part.shard_range(5, 15) == (0, 1)
        assert part.shard_range(11, 12) == (1, 1)
        assert part.shard_range(0, 100) == (0, 2)

    def test_few_distinct_keys_pads_boundaries(self):
        part = Partitioner.from_keys(np.asarray([5, 6]), 4)
        assert part.n_shards == 4
        assert part.boundaries.size == 3
        assert np.all(np.diff(part.boundaries) > 0)

    def test_empty_keys(self):
        part = Partitioner.from_keys(np.empty(0, dtype=np.int64), 3)
        assert part.n_shards == 3
        assert part.boundaries.size == 2

    def test_skew(self):
        assert Partitioner.skew([10, 10]) == pytest.approx(1.0)
        assert Partitioner.skew([30, 10]) == pytest.approx(1.5)
        assert Partitioner.skew([0, 0]) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            Partitioner(n_shards=0, boundaries=np.empty(0, dtype=np.int64))
        with pytest.raises(ConfigError):
            Partitioner(n_shards=3, boundaries=np.asarray([1]))
        with pytest.raises(ConfigError):
            Partitioner(n_shards=3, boundaries=np.asarray([5, 5]))


# --------------------------------------------------------------------------
# concat_sorted_runs
# --------------------------------------------------------------------------


class TestConcatSortedRuns:
    def test_joins_disjoint_runs(self):
        k, v = concat_sorted_runs([
            (np.asarray([1, 2]), np.asarray([10, 20])),
            (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)),
            (np.asarray([5, 9]), np.asarray([50, 90])),
        ])
        assert k.tolist() == [1, 2, 5, 9]
        assert v.tolist() == [10, 20, 50, 90]

    def test_empty(self):
        k, v = concat_sorted_runs([])
        assert k.size == 0 and v.size == 0

    def test_rejects_overlap(self):
        with pytest.raises(ConfigError):
            concat_sorted_runs([
                (np.asarray([1, 5]), np.asarray([1, 5])),
                (np.asarray([5, 9]), np.asarray([5, 9])),
            ])

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigError):
            concat_sorted_runs([(np.asarray([1, 2]), np.asarray([1]))])


# --------------------------------------------------------------------------
# Transport
# --------------------------------------------------------------------------


def _roundtrip(a, b, arr):
    """Send on ``a``, drain on ``b`` — in a thread, because the windowed
    protocol is lock-step (each window waits for the receiver's ack)."""
    import threading

    got = {}
    t = threading.Thread(target=lambda: got.update(out=b.recv_array()))
    t.start()
    a.send_array(arr)
    t.join(timeout=10)
    assert not t.is_alive(), "transport round-trip deadlocked"
    return got["out"]


class TestShardChannel:
    def test_roundtrip_within_capacity(self):
        a, b = ShardChannel.pair(capacity_bytes=1024)
        arr = np.arange(32, dtype=np.int64)
        out = _roundtrip(a, b, arr)
        assert np.array_equal(out, arr)
        assert out.dtype == np.int64

    def test_roundtrip_windowed(self):
        # 1 KiB block = 128 int64 slots; stream 1000 elements through it.
        a, b = ShardChannel.pair(capacity_bytes=1024)
        arr = np.arange(1000, dtype=np.int64)
        assert np.array_equal(_roundtrip(a, b, arr), arr)

    def test_dtypes(self):
        a, b = ShardChannel.pair(capacity_bytes=1024)
        for arr in (
            np.asarray([1, -2, 3], dtype=np.int8),
            np.asarray([1.5, -2.5], dtype=np.float64),
            np.empty(0, dtype=np.int64),
        ):
            out = _roundtrip(a, b, arr)
            assert np.array_equal(out, arr) and out.dtype == arr.dtype

    def test_unsupported_dtype(self):
        a, _b = ShardChannel.pair(capacity_bytes=1024)
        with pytest.raises(ConfigError):
            a.send_array(np.asarray([1], dtype=np.uint16))

    def test_control_roundtrip_and_timeout(self):
        a, b = ShardChannel.pair(capacity_bytes=64)
        a.send("ping", 1)
        assert b.recv(timeout=5.0) == ("ping", 1)
        assert b.recv(timeout=0.01) is None

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            ShardChannel.pair(capacity_bytes=4)


# --------------------------------------------------------------------------
# ShardedTree service
# --------------------------------------------------------------------------


KEYS = np.arange(0, 4000, 2)


@pytest.fixture
def sharded():
    with ShardedTree.from_sorted(KEYS, n_shards=2, fanout=16) as st:
        yield st


class TestShardedTree:
    def test_search_and_len(self, sharded):
        assert len(sharded) == KEYS.size
        assert sharded.search(4) == 4
        assert sharded.search(5) is None
        q = np.asarray([0, 3998, 999, 2000])
        out = sharded.search_many(q)
        assert out.tolist() == [0, 3998, NOT_FOUND, 2000]

    def test_apply_batch_and_conveniences(self, sharded):
        res = sharded.apply_batch([
            Operation("insert", 1, 11),
            Operation("delete", 2),
            Operation("update", 4, 44),
            Operation("insert", 4, 1),   # duplicate → failed
        ])
        assert (res.inserted, res.updated, res.deleted, res.failed) == \
            (1, 1, 1, 1)
        assert sharded.search(1) == 11
        assert sharded.search(2) is None
        assert sharded.search(4) == 44
        assert sharded.insert(5, 55) and sharded.search(5) == 55
        assert sharded.update(5, 56) and sharded.search(5) == 56
        assert sharded.delete(5) and sharded.search(5) is None

    def test_range_search(self, sharded):
        ref = HarmoniaTree.from_sorted(KEYS, fanout=16)
        k, v = sharded.range_search(100, 2900)
        rk, rv = ref.range_search(100, 2900)
        assert np.array_equal(k, rk) and np.array_equal(v, rv)

    def test_range_search_batch(self, sharded):
        ref = HarmoniaTree.from_sorted(KEYS, fanout=16)
        los = [0, 3000, 500, 10, 3999]
        his = [4000, 3100, 400, 10, 5000]  # includes inverted + empty
        got = sharded.range_search_batch(los, his)
        want = ref.range_search_batch(los, his)
        assert len(got) == len(want)
        for (gk, gv), (wk, wv) in zip(got, want):
            assert np.array_equal(gk, wk) and np.array_equal(gv, wv)

    def test_empty_batches(self, sharded):
        assert sharded.search_many(np.empty(0, dtype=np.int64)).size == 0
        res = sharded.apply_batch([])
        assert res.inserted == 0
        assert sharded.range_search_batch([], []) == []

    def test_single_shard_service(self):
        with ShardedTree.from_sorted(KEYS, n_shards=1, fanout=16) as st:
            assert st.search(2) == 2
            assert len(st) == KEYS.size

    def test_empty_tree_service(self):
        part = Partitioner.from_keys(np.empty(0, dtype=np.int64), 2)
        with ShardedTree(part, fanout=16) as st:
            assert len(st) == 0
            assert st.search(1) is None
            res = st.apply_batch([Operation("insert", 7, 70)])
            assert res.inserted == 1
            assert st.search(7) == 70

    def test_close_idempotent(self):
        st = ShardedTree.from_sorted(KEYS[:100], n_shards=2, fanout=16)
        st.close()
        st.close()

    def test_stats(self, sharded):
        rows = sharded.stats()
        assert len(rows) == 2
        assert rows[0]["range_lo"] is None
        assert rows[-1]["range_hi"] is None
        assert sum(r["n_keys"] for r in rows) == KEYS.size


class TestRestartAndRebuild:
    def test_crash_then_search(self, sharded):
        before = sharded.search_many(np.asarray([0, 2000, 3998]))
        sharded._shards[0].channel.send("crash")
        sharded._shards[0].proc.join(timeout=10)
        out = sharded.search_many(np.asarray([0, 2000, 3998]))
        assert np.array_equal(out, before)
        assert sharded._shards[0].restarts == 1

    def test_health_check_revives(self, sharded):
        sharded._shards[1].channel.send("crash")
        sharded._shards[1].proc.join(timeout=10)
        revived = sharded.health_check()
        assert revived == [1]
        assert sharded.health_check() == []

    def test_rebuild_replays_oplog(self, sharded):
        sharded.apply_batch([Operation("insert", 1, 11),
                             Operation("delete", 2)])
        sharded.apply_batch([Operation("update", 1, 12)])
        for s in range(sharded.n_shards):
            sharded._shards[s].channel.send("crash")
            sharded._shards[s].proc.join(timeout=10)
        assert sharded.search(1) == 12
        assert sharded.search(2) is None
        assert len(sharded) == KEYS.size  # +1 insert, -1 delete

    def test_checkpoint_compacts_oplog(self, sharded):
        sharded.apply_batch([Operation("insert", 1, 11)])
        assert any(s.oplog for s in sharded._shards)
        sharded.checkpoint()
        assert all(not s.oplog for s in sharded._shards)
        sharded._shards[0].channel.send("crash")
        sharded._shards[0].proc.join(timeout=10)
        assert sharded.search(1) == 11


class TestRebalance:
    def test_no_rebalance_when_balanced(self, sharded):
        assert sharded.rebalance(threshold=1.5) is False

    def test_skewed_growth_triggers_rebalance(self):
        with ShardedTree.from_sorted(KEYS, n_shards=2, fanout=16) as st:
            # Pour keys into the top shard's range only.
            ops = [Operation("insert", int(k), 1)
                   for k in range(4001, 8001, 2)]
            st.apply_batch(ops)
            assert st.skew() > 1.2
            ref_k, ref_v = st.range_search(0, 10000)
            assert st.rebalance(threshold=1.2) is True
            counts = st.shard_counts()
            assert Partitioner.skew(counts) < 1.1
            k, v = st.range_search(0, 10000)
            assert np.array_equal(k, ref_k) and np.array_equal(v, ref_v)
            # Rebalance resets the rebuild base: op logs are compacted.
            assert all(not s.oplog for s in st._shards)

    def test_force_rebalance(self, sharded):
        assert sharded.rebalance(force=True) is True
        assert sharded.search(2) == 2

    def test_threshold_validation(self, sharded):
        with pytest.raises(ConfigError):
            sharded.rebalance(threshold=0.5)


class TestShardObs:
    def test_metrics_recorded_and_catalogued(self, sharded):
        with obs.recording() as rec:
            sharded.search_many(np.asarray([0, 2, 4, 3001]))
            sharded.apply_batch([Operation("insert", 9, 90)])
            sharded.range_search(0, 500)
            sharded.rebalance(force=True)
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        counters = snap["counters"]
        assert counters["shard.batches"] == 2
        assert counters["shard.queries"] == 4
        assert counters["shard.ops"] == 1
        assert counters["shard.range_queries"] == 1
        assert counters["shard.rebalances"] == 1
        assert "shard.batch_size" in snap["histograms"]
        assert "shard.skew" in snap["gauges"]
        names = snap["spans"]["names"]
        for span in ("shard.scatter", "shard.dispatch", "shard.gather"):
            assert span in names

    def test_restart_counter(self, sharded):
        sharded._shards[0].channel.send("crash")
        sharded._shards[0].proc.join(timeout=10)
        with obs.recording() as rec:
            sharded.health_check()
        assert rec.snapshot()["counters"]["shard.restarts"] == 1


def test_cli_shard(capsys):
    rc = cli_main([
        "shard", "--keys", "2000", "--shards", "2",
        "--batches", "1", "--batch", "512",
    ])
    out = capsys.readouterr().out
    assert rc == 0
    assert "shard 0:" in out and "shard 1:" in out
    assert "served" in out
