"""Tests for the range-scan kernel model."""

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError
from repro.gpusim.kernels import SimConfig
from repro.gpusim.range_scan import simulate_range_scan


@pytest.fixture(scope="module")
def layout():
    keys = np.arange(0, 120_000, 3, dtype=np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=16, fill=0.7)


def cfg(structure="harmonia", gs=16):
    return SimConfig(structure=structure, group_size=gs, early_exit=False,
                     cached_children=(structure == "harmonia"))


class TestRangeScan:
    def test_appends_scan_level(self, layout):
        los = np.array([0, 300], dtype=np.int64)
        his = np.array([30, 600], dtype=np.int64)
        m, scanned = simulate_range_scan(layout, los, his, cfg())
        assert m.height == layout.height + 1
        assert m.key_transactions.shape == (m.height,)
        assert scanned.shape == (2,)
        assert np.all(scanned > 0)

    def test_scanned_keys_cover_result(self, layout):
        los = np.array([0], dtype=np.int64)
        his = np.array([2_997], dtype=np.int64)  # 1000 stored keys
        _, scanned = simulate_range_scan(layout, los, his, cfg())
        assert scanned[0] >= 1_000

    def test_wider_span_more_traffic(self, layout):
        narrow, _ = simulate_range_scan(
            layout, np.array([0]), np.array([30]), cfg()
        )
        wide, _ = simulate_range_scan(
            layout, np.array([0]), np.array([30_000]), cfg()
        )
        assert wide.gld_transactions > narrow.gld_transactions
        assert wide.total_warp_steps > narrow.total_warp_steps

    def test_pointer_layout_costs_more(self, layout):
        los = np.array([0, 9_000, 60_000], dtype=np.int64)
        his = los + 6_000
        ha, _ = simulate_range_scan(layout, los, his, cfg("harmonia"))
        rp, _ = simulate_range_scan(layout, los, his, cfg("regular_pointer"))
        assert rp.gld_transactions > ha.gld_transactions
        assert rp.child_transactions[-1] > 0  # next-leaf pointer chasing
        assert ha.child_transactions[-1] == 0

    def test_empty_batch(self, layout):
        m, scanned = simulate_range_scan(
            layout, np.array([], dtype=np.int64), np.array([], dtype=np.int64),
            cfg(),
        )
        assert scanned.size == 0
        assert m.gld_transactions == 0

    def test_misaligned_bounds(self, layout):
        with pytest.raises(ConfigError):
            simulate_range_scan(layout, np.array([1, 2]), np.array([3]), cfg())

    def test_inverted_bounds(self, layout):
        with pytest.raises(ConfigError):
            simulate_range_scan(layout, np.array([10]), np.array([5]), cfg())

    def test_dram_annotation_extended(self, layout):
        m, _ = simulate_range_scan(
            layout, np.array([0]), np.array([10_000]), cfg()
        )
        assert m.dram_transactions is not None
        assert m.dram_transactions.shape == (m.height,)
        assert m.total_dram_transactions <= m.gld_transactions + m.value_transactions
