"""Tests for coalescing arithmetic."""

import numpy as np
import pytest

from repro.gpusim.coalesce import (
    INACTIVE,
    align_up,
    span_line_range,
    transactions_per_warp,
)


class TestTransactionsPerWarp:
    def test_fully_coalesced(self):
        lines = np.full((3, 32), 7, dtype=np.int64)
        assert transactions_per_warp(lines).tolist() == [1, 1, 1]

    def test_fully_divergent(self):
        lines = np.arange(32, dtype=np.int64)[None, :]
        assert transactions_per_warp(lines).tolist() == [32]

    def test_mixed(self):
        row = np.array([1, 1, 2, 2, 9, 9, 9, 3], dtype=np.int64)[None, :]
        assert transactions_per_warp(row).tolist() == [4]

    def test_inactive_lanes_ignored(self):
        row = np.array([5, INACTIVE, 5, INACTIVE], dtype=np.int64)[None, :]
        assert transactions_per_warp(row).tolist() == [1]

    def test_all_inactive(self):
        row = np.full((2, 8), INACTIVE, dtype=np.int64)
        assert transactions_per_warp(row).tolist() == [0, 0]

    def test_unsorted_input_ok(self):
        row = np.array([9, 1, 9, 1, 5], dtype=np.int64)[None, :]
        assert transactions_per_warp(row).tolist() == [3]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            transactions_per_warp(np.array([1, 2, 3], dtype=np.int64))


class TestSpanLineRange:
    def test_within_one_line(self):
        first, last = span_line_range(np.array([0]), 64, 128)
        assert first.tolist() == [0] and last.tolist() == [0]

    def test_straddles(self):
        first, last = span_line_range(np.array([100]), 64, 128)
        assert first.tolist() == [0] and last.tolist() == [1]

    def test_exact_boundary(self):
        first, last = span_line_range(np.array([128]), 128, 128)
        assert first.tolist() == [1] and last.tolist() == [1]


class TestAlignUp:
    @pytest.mark.parametrize(
        "value,alignment,expect",
        [(0, 128, 0), (1, 128, 128), (128, 128, 128), (129, 128, 256), (504, 128, 512)],
    )
    def test_values(self, value, alignment, expect):
        assert align_up(value, alignment) == expect
