"""Scalar ≡ vectorized equivalence for the batch-update pipeline.

The contract the vectorized plan/apply/movement pipeline ships under
(docs/update.md): for any batch, ``UpdateConfig(mode="vectorized")``
produces a layout byte-identical to ``UpdateConfig(mode="scalar",
n_threads=1)`` and an identical :class:`~repro.core.update.BatchResult`.
Hypothesis pins the contract over random trees and op mixes; directed
tests cover the structural extremes (split-heavy, merge-heavy,
delete-everything) and the pipeline's own guarantees (non-mutation of the
input snapshot, thread-count independence, plan shape).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EpochManager, HarmoniaTree, UpdateConfig
from repro.core.layout import HarmoniaLayout
from repro.core.update import Operation
from repro.core.update_plan import (
    K_UPDATE,
    VectorizedBatchUpdater,
    plan_batch,
)


def make_tree(n_keys, fanout, fill, stride=2):
    keys = np.arange(0, n_keys * stride, stride, dtype=np.int64)
    return HarmoniaTree.from_sorted(keys, fanout=fanout, fill=fill)


def run_both(n_keys, fanout, fill, ops, n_threads=1):
    """Apply ``ops`` through both executors on identical trees."""
    scalar_tree = make_tree(n_keys, fanout, fill)
    vector_tree = make_tree(n_keys, fanout, fill)
    sres = scalar_tree.apply_batch(
        ops, UpdateConfig(mode="scalar", n_threads=1)
    )
    vres = vector_tree.apply_batch(
        ops, UpdateConfig(mode="vectorized", n_threads=n_threads)
    )
    return scalar_tree, sres, vector_tree, vres


def assert_layouts_identical(a, b):
    if a is None or b is None:
        assert a is None and b is None
        return
    assert np.array_equal(a.key_region, b.key_region)
    assert np.array_equal(a.prefix_sum, b.prefix_sum)
    assert np.array_equal(a.leaf_values, b.leaf_values)
    assert np.array_equal(a.level_starts, b.level_starts)
    assert a.n_keys == b.n_keys
    assert a.fanout == b.fanout
    assert a.height == b.height


def assert_results_identical(sres, vres):
    for field in ("inserted", "updated", "deleted", "failed",
                  "split_leaves", "underflow_leaves",
                  "moved_clean", "rebuilt_dirty"):
        assert getattr(sres, field) == getattr(vres, field), field


# --------------------------------------------------------------------------
# Property: random trees × random mixed batches
# --------------------------------------------------------------------------

op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(0, 400),
)


class TestEquivalenceProperty:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(1, 200),
        fanout=st.sampled_from([4, 8, 16]),
        fill=st.sampled_from([0.5, 0.7, 1.0]),
        raw_ops=st.lists(op_strategy, min_size=0, max_size=120),
    )
    def test_random_mix(self, n_keys, fanout, fill, raw_ops):
        # Even keys populate the tree; op keys span odd (miss) and even
        # (hit) values, so inserts collide with existing keys, updates
        # and deletes miss, and repeated ops conflict on the same leaf.
        ops = [Operation(kind, key, key * 10 + 1)
               for kind, key in raw_ops]
        stree, sres, vtree, vres = run_both(n_keys, fanout, fill, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)
        if vtree._layout is not None:
            vtree._layout.check_invariants()

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**31 - 1),
        fanout=st.sampled_from([4, 8]),
    )
    def test_structural_heavy(self, seed, fanout):
        """Mixes weighted towards splits and merges."""
        rng = np.random.default_rng(seed)
        n_keys = int(rng.integers(20, 300))
        kinds = rng.choice(["insert", "delete"], size=150,
                           p=[0.5, 0.5])
        keys = rng.integers(0, 2 * n_keys, size=150)
        ops = [Operation(str(k), int(key), int(key) + 7)
               for k, key in zip(kinds, keys)]
        stree, sres, vtree, vres = run_both(n_keys, fanout, 1.0, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)


# --------------------------------------------------------------------------
# Directed structural extremes
# --------------------------------------------------------------------------

class TestDirected:
    def test_split_heavy_full_leaves(self):
        """fill=1.0 tree: every odd-key insert forces a split staging."""
        ops = [Operation("insert", k, k) for k in range(1, 1200, 2)]
        stree, sres, vtree, vres = run_both(600, 8, 1.0, ops)
        assert sres.split_leaves > 0
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)

    def test_merge_heavy(self):
        """Deleting most keys forces merge staging and absorb loops."""
        ops = [Operation("delete", k, 0) for k in range(0, 1800, 2)]
        stree, sres, vtree, vres = run_both(1000, 8, 0.7, ops)
        assert sres.deleted == 900
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)

    def test_delete_everything(self):
        ops = [Operation("delete", k, 0) for k in range(0, 200, 2)]
        stree, sres, vtree, vres = run_both(100, 8, 0.7, ops)
        assert stree._layout is None and vtree._layout is None
        assert_results_identical(sres, vres)

    def test_update_only_fast_path(self):
        """A pure-update batch runs entirely through the vectorized fast
        path (no replay groups)."""
        tree = make_tree(500, 16, 0.7)
        ops = ([Operation("update", k, -k) for k in range(0, 400, 2)]
               + [Operation("update", 3, 0)])  # one miss
        up = VectorizedBatchUpdater(tree.layout, fill=0.7)
        res = up.run(ops)
        assert up.plan.n_fast == len(ops)
        assert up.plan.n_replay == 0
        assert res.updated == 200
        assert res.failed == 1
        # Fast-path writes land in the new snapshot, not the old one.
        from repro.core.search import search_batch
        probe = np.array([4], dtype=np.int64)
        assert search_batch(up.new_layout, probe)[0] == -4
        assert search_batch(tree.layout, probe)[0] == 4
        stree, sres, vtree, vres = run_both(500, 16, 0.7, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)

    def test_same_leaf_conflicts_last_wins(self):
        """Repeated updates of one key: arrival-order winner is kept."""
        ops = [Operation("update", 10, v) for v in (1, 2, 3)]
        stree, sres, vtree, vres = run_both(300, 8, 0.7, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert vtree.search(10) == 3

    def test_insert_delete_insert_same_key_full_leaf(self):
        """Structural state machine: once a leaf goes aux it stays aux."""
        ops = [
            Operation("insert", 11, 1),
            Operation("delete", 11, 0),
            Operation("insert", 11, 2),
            Operation("update", 11, 3),
        ]
        stree, sres, vtree, vres = run_both(64, 8, 1.0, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)
        assert vtree.search(11) == 3

    def test_kept_leaves_with_changed_minima(self):
        """In-place deletes of leaf minima / inserts below them: no leaf
        moves, but internal separators must be repatched up the tree."""
        tree = make_tree(4_000, 64, 0.7)
        layout = tree.layout
        mins = layout.key_region[layout.leaf_start :, 0]
        ops = []
        for m in mins[1::2]:
            ops.append(Operation("delete", int(m), 0))   # min leaves the leaf
        for m in mins[2::4]:
            ops.append(Operation("insert", int(m) - 1, -1))  # new, lower min
        stree, sres, vtree, vres = run_both(4_000, 64, 0.7, ops)
        assert sres.rebuilt_dirty == 0  # stays on the kept-leaves path
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)
        vtree._layout.check_invariants()

    def test_single_leaf_tree(self):
        ops = [Operation("insert", 1, 1), Operation("delete", 0, 0),
               Operation("update", 2, -2)]
        stree, sres, vtree, vres = run_both(3, 8, 1.0, ops)
        assert_layouts_identical(stree._layout, vtree._layout)
        assert_results_identical(sres, vres)

    def test_empty_batch(self):
        stree, sres, vtree, vres = run_both(100, 8, 0.7, [])
        assert_layouts_identical(stree._layout, vtree._layout)
        assert vres.n_effective == 0

    def test_bootstrap_on_empty_tree(self):
        """Both modes share the bootstrap path on an empty tree."""
        for mode in ("scalar", "vectorized"):
            tree = HarmoniaTree.empty(fanout=8)
            res = tree.apply_batch(
                [Operation("insert", k, k) for k in range(50)],
                UpdateConfig(mode=mode),
            )
            assert res.inserted == 50
            assert tree.search(17) == 17


# --------------------------------------------------------------------------
# Pipeline guarantees
# --------------------------------------------------------------------------

class TestPipelineGuarantees:
    def test_input_layout_never_mutated(self):
        tree = make_tree(400, 8, 0.7)
        layout = tree.layout
        before_keys = layout.key_region.copy()
        before_vals = layout.leaf_values.copy()
        before_prefix = layout.prefix_sum.copy()
        ops = ([Operation("insert", k, k) for k in range(1, 200, 2)]
               + [Operation("update", k, -k) for k in range(0, 200, 4)]
               + [Operation("delete", k, 0) for k in range(200, 300, 2)])
        up = VectorizedBatchUpdater(layout, fill=0.7)
        up.run(ops)
        assert np.array_equal(layout.key_region, before_keys)
        assert np.array_equal(layout.leaf_values, before_vals)
        assert np.array_equal(layout.prefix_sum, before_prefix)
        assert up.new_layout is not layout

    def test_thread_count_independence(self):
        """Sharded replay (forced via replay_parallel_min=1) matches the
        serial result exactly — leaf groups are independent."""
        tree = make_tree(2_000, 8, 0.7)
        rng = np.random.default_rng(7)
        kinds = rng.choice(["insert", "update", "delete"], size=600)
        keys = rng.integers(0, 4_000, size=600)
        ops = [Operation(str(k), int(key), int(key))
               for k, key in zip(kinds, keys)]
        serial = VectorizedBatchUpdater(tree.layout, fill=0.7)
        serial.run(ops, n_threads=1)
        sharded = VectorizedBatchUpdater(
            tree.layout, fill=0.7, replay_parallel_min=1
        )
        sharded.run(ops, n_threads=4)
        assert_layouts_identical(serial.new_layout, sharded.new_layout)
        assert_results_identical(serial.result, sharded.result)

    def test_timer_phases_present(self):
        tree = make_tree(100, 8, 0.7)
        res = tree.apply_batch(
            [Operation("insert", 1, 1)], UpdateConfig(mode="vectorized")
        )
        for phase in ("plan", "apply", "movement"):
            assert res.timer.get(phase) >= 0.0

    def test_epoch_manager_skips_copy(self):
        """The vectorized flush must not clone the outgoing snapshot, and
        readers pinned on the old epoch keep their data."""
        keys = np.arange(0, 2_000, 2, dtype=np.int64)
        em = EpochManager(
            HarmoniaTree.from_sorted(keys, fanout=8, fill=0.7),
            update_config=UpdateConfig(mode="vectorized"),
        )
        pinned = em._snapshot()
        old_layout = pinned._layout
        em.submit(Operation("insert", 1, 1))
        em.submit(Operation("delete", 0, 0))
        em.flush()
        assert em.epoch == 1
        # New epoch is a distinct object; the pinned snapshot is the very
        # same array-backed layout, untouched.
        assert em._tree._layout is not old_layout
        assert pinned.search(0) == 0
        assert pinned.search(1) is None
        assert em.search(1) == 1
        assert em.search(0) is None
        em._tree.check_invariants()


# --------------------------------------------------------------------------
# Plan stage
# --------------------------------------------------------------------------

class TestPlanStage:
    def test_groups_partition_and_stay_in_arrival_order(self):
        layout = HarmoniaLayout.from_sorted(
            np.arange(0, 2_000, 2, dtype=np.int64), fanout=8, fill=0.7
        )
        rng = np.random.default_rng(3)
        keys = rng.integers(0, 2_000, size=300)
        ops = [Operation("update", int(k), 0) for k in keys]
        plan = plan_batch(layout, ops)
        assert plan.n_ops == 300
        assert plan.group_bounds[0] == 0
        assert plan.group_bounds[-1] == 300
        seen = set()
        for g in range(plan.n_groups):
            idx = plan.order[plan.group_bounds[g]:plan.group_bounds[g + 1]]
            # Same leaf throughout the group, arrival order preserved.
            assert np.all(plan.leaves[idx] == plan.group_leaves[g])
            assert np.all(np.diff(idx) > 0)
            seen.update(int(i) for i in idx)
        assert seen == set(range(300))

    def test_update_only_classification(self):
        layout = HarmoniaLayout.from_sorted(
            np.arange(0, 400, 2, dtype=np.int64), fanout=8, fill=0.7
        )
        ops = [Operation("update", 0, 1),   # leaf A: update-only
               Operation("update", 2, 1),
               Operation("update", 398, 1),  # leaf Z: poisoned by insert
               Operation("insert", 399, 1)]
        plan = plan_batch(layout, ops)
        assert plan.n_fast == 2
        assert plan.n_replay == 2
        by_leaf = dict(zip(plan.group_leaves.tolist(),
                           plan.group_update_only.tolist()))
        assert sorted(by_leaf.values()) == [False, True]

    def test_empty_plan(self):
        layout = HarmoniaLayout.from_sorted(
            np.arange(10, dtype=np.int64), fanout=4
        )
        plan = plan_batch(layout, [])
        assert plan.n_ops == 0
        assert plan.n_groups == 0
        assert plan.n_fast == 0

    def test_kind_codes(self):
        layout = HarmoniaLayout.from_sorted(
            np.arange(10, dtype=np.int64), fanout=4
        )
        plan = plan_batch(layout, [Operation("update", 1, 2)])
        assert plan.kinds[0] == K_UPDATE
