"""Directed tests for the tracing plumbing and the flight recorder:
``bucket_quantile``, registry export/merge across processes, namespaced
schema lookup, the multi-process Chrome exporter lanes, ``TraceContext``
wire format, and :class:`~repro.obs.flight.FlightRecorder`.

The end-to-end sharded-service trace (router + real worker processes)
lives in ``test_shard_tracing.py``.
"""

import json
import threading

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.obs.export import chrome_trace
from repro.obs.flight import (
    FLIGHT_DIR_ENV,
    FlightRecorder,
    crash_dump_path,
    dump_on_crash,
    flight_dir,
)
from repro.obs.registry import Histogram, MetricsRegistry, bucket_quantile
from repro.obs.schema import TIME_EDGES_S, lookup, strip_namespace, \
    validate_snapshot
from repro.obs.trace import TraceContext, new_trace_id, shard_prefix


# --------------------------------------------------------------------------
# bucket_quantile / Histogram.quantile
# --------------------------------------------------------------------------


class TestBucketQuantile:
    def test_empty_is_none(self):
        assert bucket_quantile([1.0, 2.0], [0, 0, 0], 0.5) is None

    def test_single_value_exact_with_bounds(self):
        # One observation: every quantile must collapse to it when the
        # observed min/max clamp the bucket.
        edges = [1.0, 2.0, 4.0]
        counts = [0, 1, 0, 0]
        for q in (0.0, 0.5, 0.99, 1.0):
            assert bucket_quantile(edges, counts, q, lo=1.5, hi=1.5) == 1.5

    def test_interpolates_inside_bucket(self):
        # 10 values uniform in [0, 10): p50 sits mid-bucket.
        assert bucket_quantile([0.0, 10.0], [0, 10, 0], 0.5) == \
            pytest.approx(5.0, abs=1.0)

    def test_overflow_bucket_clamps_to_hi(self):
        edges = [1.0]
        counts = [0, 4]  # everything above the last edge
        assert bucket_quantile(edges, counts, 0.99, hi=7.0) <= 7.0
        assert bucket_quantile(edges, counts, 0.01) >= 1.0

    def test_histogram_quantile_single_observation(self):
        h = Histogram(TIME_EDGES_S)
        h.observe(0.0012)
        assert h.quantile(0.5) == pytest.approx(0.0012)
        assert h.quantile(0.99) == pytest.approx(0.0012)

    def test_histogram_quantile_ordering(self):
        h = Histogram(TIME_EDGES_S)
        for v in (1e-5, 1e-4, 1e-3, 1e-2, 1e-1):
            h.observe(v)
        p50, p95, p99 = (h.quantile(q) for q in (0.5, 0.95, 0.99))
        assert p50 <= p95 <= p99
        assert p99 <= h.max

    def test_merge_dict_edge_mismatch(self):
        h = Histogram((1.0, 2.0))
        with pytest.raises(ConfigError):
            h.merge_dict({"edges": [1.0, 3.0], "counts": [0, 0, 0],
                          "count": 0, "sum": 0.0, "min": None, "max": None})


# --------------------------------------------------------------------------
# schema namespaces
# --------------------------------------------------------------------------


class TestNamespace:
    def test_strip(self):
        assert strip_namespace("shard[3].engine.batches") == "engine.batches"
        assert strip_namespace("engine.batches") == "engine.batches"
        # Nested prefixes strip iteratively.
        assert strip_namespace("shard[0].shard[1].x") == "x"

    def test_lookup_resolves_namespaced(self):
        row = lookup("shard[2].engine.batches")
        assert row is not None and row.name == "engine.batches"
        assert lookup("shard[2].rogue.metric") is None

    def test_validate_accepts_namespaced_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("engine.batches", 1)
        remote = MetricsRegistry()
        remote.counter("engine.batches", 3)
        reg.merge_remote(remote.export_remote(label="w"),
                         prefix=shard_prefix(0))
        problems = validate_snapshot(reg.snapshot())
        assert problems == []


# --------------------------------------------------------------------------
# TraceContext wire format
# --------------------------------------------------------------------------


class TestTraceContext:
    def test_mint_and_wire_roundtrip(self):
        ctx = TraceContext.mint()
        assert len(ctx.trace_id) == 16
        wire = ctx.for_shard(3)
        back = TraceContext.from_wire(wire)
        assert back is not None
        assert back.trace_id == ctx.trace_id and back.shard == 3

    def test_from_wire_rejects_non_contexts(self):
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire(42) is None
        assert TraceContext.from_wire({"shard": 1}) is None

    def test_ids_unique(self):
        assert len({new_trace_id() for _ in range(64)}) == 64


# --------------------------------------------------------------------------
# registry export / merge
# --------------------------------------------------------------------------


def _remote_payload(pid_label="w0", spans=2):
    reg = MetricsRegistry()
    reg.counter("engine.batches", 5)
    reg.gauge("stream.sort_hidden_ratio", 0.25)
    reg.histogram("epoch.publish_wait_s", 0.002)
    for i in range(spans):
        reg.span_at("worker.execute", reg.t0_s + i * 1e-3,
                    reg.t0_s + i * 1e-3 + 5e-4, cat="shard",
                    trace_id="abc", shard=0)
    return reg.export_remote(label=pid_label)


class TestExportMerge:
    def test_export_clears_by_default(self):
        reg = MetricsRegistry()
        reg.counter("engine.batches", 1)
        reg.span_at("worker.execute", reg.t0_s, reg.t0_s + 1e-3)
        payload = reg.export_remote(label="x")
        assert payload["counters"]["engine.batches"] == 1
        assert len(payload["spans"]) == 1
        # cleared: a second export ships nothing
        again = reg.export_remote(label="x")
        assert again["counters"] == {} and again["spans"] == []

    def test_merge_prefixes_and_counts(self):
        host = MetricsRegistry()
        host.counter("engine.batches", 2)
        n = host.merge_remote(_remote_payload(), prefix=shard_prefix(1))
        assert n == 2
        snap = host.snapshot()
        assert snap["counters"]["engine.batches"] == 2
        assert snap["counters"]["shard[1].engine.batches"] == 5
        assert snap["counters"]["trace.spans_merged"] == 2
        assert "shard[1].epoch.publish_wait_s" in snap["histograms"]
        assert validate_snapshot(snap) == []

    def test_merge_same_prefix_accumulates(self):
        host = MetricsRegistry()
        host.merge_remote(_remote_payload(), prefix=shard_prefix(0))
        host.merge_remote(_remote_payload(), prefix=shard_prefix(0))
        snap = host.snapshot()
        assert snap["counters"]["shard[0].engine.batches"] == 10
        hist = snap["histograms"]["shard[0].epoch.publish_wait_s"]
        assert hist["count"] == 2

    def test_merge_histogram_into_existing(self):
        host = MetricsRegistry()
        host.histogram("epoch.publish_wait_s", 0.001)
        remote = MetricsRegistry()
        remote.histogram("epoch.publish_wait_s", 0.004)
        host.merge_remote(remote.export_remote(label="w"), prefix="")
        hist = host.snapshot()["histograms"]["epoch.publish_wait_s"]
        assert hist["count"] == 2
        assert hist["min"] == pytest.approx(0.001)
        assert hist["max"] == pytest.approx(0.004)

    def test_remote_dropped_spans_propagate(self):
        remote = MetricsRegistry(max_spans=1)
        remote.span_at("worker.execute", remote.t0_s, remote.t0_s + 1e-3)
        remote.span_at("worker.execute", remote.t0_s, remote.t0_s + 1e-3)
        payload = remote.export_remote(label="w")
        assert payload["dropped_spans"] == 1
        host = MetricsRegistry()
        host.merge_remote(payload, prefix=shard_prefix(0))
        snap = host.snapshot()
        assert snap["counters"]["obs.dropped_spans"] == 1
        assert snap["spans"]["dropped"] == 1
        assert validate_snapshot(snap) == []

    def test_snapshot_lists_processes(self):
        host = MetricsRegistry()
        payload = _remote_payload()
        host.merge_remote(payload, prefix=shard_prefix(0))
        block = host.snapshot()["spans"]
        procs = block["processes"]
        assert str(payload["pid"]) in procs
        assert procs[str(payload["pid"])]["spans"] == 2
        # namespaced span names appear in the summary
        assert "shard[0].worker.execute" in block["names"]

    def test_clear_drops_remote(self):
        host = MetricsRegistry()
        host.merge_remote(_remote_payload(), prefix=shard_prefix(0))
        host.clear()
        assert host.remote_processes() == {}
        assert "processes" not in host.snapshot()["spans"]

    def test_merge_under_concurrent_recording(self):
        """Satellite: merging remote payloads while other threads record
        locally must lose nothing and corrupt nothing."""
        host = MetricsRegistry(max_spans=100_000)
        n_threads, per_thread, merges = 4, 200, 8
        stop = threading.Event()

        def record(tid):
            for i in range(per_thread):
                host.counter("engine.batches", 1)
                host.span_at("stream.traverse", host.t0_s + i * 1e-6,
                             host.t0_s + i * 1e-6 + 1e-7)
            stop.set()

        threads = [threading.Thread(target=record, args=(t,))
                   for t in range(n_threads)]
        for t in threads:
            t.start()
        merged = 0
        for _ in range(merges):
            merged += host.merge_remote(_remote_payload(),
                                        prefix=shard_prefix(0))
        for t in threads:
            t.join()
        snap = host.snapshot()
        assert snap["counters"]["engine.batches"] == n_threads * per_thread
        assert snap["counters"]["shard[0].engine.batches"] == 5 * merges
        assert merged == 2 * merges
        assert snap["spans"]["names"]["stream.traverse"] == \
            n_threads * per_thread
        assert snap["spans"]["names"]["shard[0].worker.execute"] == merged
        assert validate_snapshot(snap) == []


# --------------------------------------------------------------------------
# Chrome exporter: per-process lanes
# --------------------------------------------------------------------------


class TestChromeLanes:
    def _merged_registry(self):
        host = MetricsRegistry()
        host.span_at("shard.request", host.t0_s, host.t0_s + 2e-3,
                     cat="shard", trace_id="t1")
        a, b = _remote_payload("shard-0"), _remote_payload("shard-1")
        # distinct fake pids so the lanes separate even in one process
        a["pid"], b["pid"] = 11111, 22222
        host.merge_remote(a, prefix=shard_prefix(0))
        host.merge_remote(b, prefix=shard_prefix(1))
        return host

    def test_local_lane_keeps_pid_1(self):
        trace = chrome_trace(self._merged_registry())
        local = [e for e in trace["traceEvents"]
                 if e["ph"] == "X" and e["name"] == "shard.request"]
        assert local and all(e["pid"] == 1 for e in local)

    def test_one_lane_per_worker_process(self):
        trace = chrome_trace(self._merged_registry())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        assert pids == {1, 11111, 22222}
        worker_events = [e for e in events if e["pid"] == 22222]
        assert {e["name"] for e in worker_events} == {"worker.execute"}
        assert all(e["args"]["trace_id"] == "abc" for e in worker_events)

    def test_process_metadata_names_lanes(self):
        trace = chrome_trace(self._merged_registry())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        proc_names = {e["pid"]: e["args"]["name"] for e in meta
                      if e["name"] == "process_name"}
        assert proc_names[11111].startswith("shard-0")
        assert proc_names[22222].startswith("shard-1")
        sort_keys = {e["pid"]: e["args"]["sort_index"] for e in meta
                     if e["name"] == "process_sort_index"}
        # router lane sorts first, workers in pid order after it
        assert sort_keys[1] < sort_keys[11111] < sort_keys[22222]

    def test_trace_json_serializable(self, tmp_path):
        trace = chrome_trace(self._merged_registry())
        (tmp_path / "t.json").write_text(json.dumps(trace))


# --------------------------------------------------------------------------
# FlightRecorder
# --------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_wraps_and_counts_drops(self):
        fr = FlightRecorder(capacity=4)
        for i in range(10):
            fr.note("op", {"i": i})
        assert fr.events_recorded == 10
        assert fr.dropped == 6
        events = fr.events()
        assert len(events) == 4
        assert [e[0] for e in events] == [6, 7, 8, 9]  # oldest first
        assert events[-1][4] == {"i": 9}

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            FlightRecorder(capacity=0)

    def test_latency_summary_percentiles(self):
        fr = FlightRecorder()
        for _ in range(100):
            fr.latency("router.search", 0.002)
        fr.latency("router.search", 0.5)
        summary = fr.latency_summary()["router.search"]
        assert summary["count"] == 101
        # p50 stays inside the bucket holding the 0.002 mass
        assert 0.002 <= summary["p50_s"] <= 0.005
        assert summary["p99_s"] >= summary["p50_s"]

    def test_dump_roundtrip(self, tmp_path):
        fr = FlightRecorder(capacity=8)
        fr.note("search", {"n": 4})
        fr.latency("router.search", 1e-3)
        path = tmp_path / "f.json"
        fr.dump_to(str(path), reason="test")
        loaded = json.loads(path.read_text())
        assert loaded["flight"] == 1 and loaded["reason"] == "test"
        assert loaded["events_recorded"] == 1 and loaded["dropped"] == 0
        assert loaded["events"][0]["kind"] == "search"
        assert "router.search" in loaded["latency"]

    def test_publish_gauges(self):
        fr = FlightRecorder(capacity=2)
        for _ in range(5):
            fr.note("x")
        reg = MetricsRegistry()
        fr.publish(reg)
        snap = reg.snapshot()
        assert snap["gauges"]["flight.events"] == 2
        assert snap["gauges"]["flight.dropped"] == 3
        assert validate_snapshot(snap) == []

    def test_publish_noop_when_disabled(self):
        fr = FlightRecorder()
        fr.note("x")
        fr.publish(obs.NULL_RECORDER)  # must not raise

    def test_clear(self):
        fr = FlightRecorder(capacity=2)
        fr.note("x")
        fr.latency("op", 1.0)
        fr.clear()
        assert fr.events() == [] and fr.events_recorded == 0
        assert fr.latency_summary() == {}

    def test_crash_dump_path_honours_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        assert flight_dir() == str(tmp_path)
        assert crash_dump_path(123).endswith("harmonia-flight-123.json")
        assert crash_dump_path(123).startswith(str(tmp_path))
        monkeypatch.setenv(FLIGHT_DIR_ENV, "")
        assert flight_dir() is None
        assert crash_dump_path() is None
        assert dump_on_crash("disabled") is None

    def test_dump_on_crash_writes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        path = dump_on_crash("test-crash")
        assert path is not None
        loaded = json.loads(open(path).read())
        assert loaded["reason"] == "test-crash"
