"""Tests for the implicit (BFS-array) B+tree."""

import numpy as np
import pytest

from repro.btree.implicit import ImplicitBPlusTree
from repro.constants import NOT_FOUND


class TestConstruction:
    def test_empty(self):
        t = ImplicitBPlusTree([], fanout=4)
        assert len(t) == 0
        assert t.search(1) is None
        t.check_invariants()

    @pytest.mark.parametrize("n", [1, 3, 7, 8, 64, 1000])
    def test_sizes(self, n):
        keys = np.arange(n) * 2
        t = ImplicitBPlusTree(keys, fanout=8)
        t.check_invariants()
        assert len(t) == n

    def test_completeness_arithmetic(self):
        t = ImplicitBPlusTree(np.arange(100), fanout=4)
        # n_internal = (n_leaves - 1) / (fanout - 1) for a complete tree.
        assert t.n_internal == (t.n_leaves - 1) // 3
        assert t.n_nodes == t.n_internal + t.n_leaves

    def test_child_index_arithmetic(self):
        t = ImplicitBPlusTree(np.arange(100), fanout=4)
        assert t.child_index(0, 0) == 1
        assert t.child_index(0, 3) == 4
        assert t.child_index(2, 1) == 2 * 4 + 2


class TestSearch:
    @pytest.fixture(scope="class")
    def tree(self):
        return ImplicitBPlusTree(np.arange(0, 4_000, 3), fanout=8)

    def test_hits(self, tree):
        for k in (0, 3, 1998, 3996):
            assert tree.search(k) == k

    def test_misses(self, tree):
        for k in (1, 2, 4_000, 10**9):
            assert tree.search(k) is None

    def test_batch_matches_scalar(self, tree, rng):
        q = rng.integers(0, 4_100, size=500)
        batch = tree.search_batch(q)
        for qi, r in zip(q, batch):
            scalar = tree.search(int(qi))
            assert (r == NOT_FOUND) == (scalar is None)
            if scalar is not None:
                assert r == scalar


class TestUpdates:
    def test_update_in_place(self):
        t = ImplicitBPlusTree([1, 2, 3], fanout=4)
        assert t.update(2, 99)
        assert t.search(2) == 99
        t.check_invariants()

    def test_update_missing(self):
        t = ImplicitBPlusTree([1, 2, 3], fanout=4)
        assert not t.update(9, 99)

    def test_insert_restructures(self):
        t = ImplicitBPlusTree(np.arange(0, 100, 2), fanout=4)
        nodes_before = t.n_nodes
        assert t.insert(1, 11)
        t.check_invariants()
        assert t.search(1) == 11
        assert len(t) == 51
        # restructure may change the node count — the paper's point is the
        # full rebuild, not the count; at minimum the keys are re-packed.
        assert t.n_nodes >= 1 and nodes_before >= 1

    def test_insert_duplicate(self):
        t = ImplicitBPlusTree([1, 2], fanout=4)
        assert not t.insert(2, 99)
        assert t.search(2) == 2

    def test_delete(self):
        t = ImplicitBPlusTree(np.arange(50), fanout=4)
        assert t.delete(25)
        assert t.search(25) is None
        assert len(t) == 49
        t.check_invariants()

    def test_delete_missing(self):
        t = ImplicitBPlusTree([1, 2], fanout=4)
        assert not t.delete(9)

    def test_insert_preserves_values(self):
        t = ImplicitBPlusTree([1, 3], values=[10, 30], fanout=4)
        t.insert(2, 20)
        assert t.search(1) == 10
        assert t.search(2) == 20
        assert t.search(3) == 30

    def test_grow_across_height_boundary(self):
        t = ImplicitBPlusTree(np.arange(3), fanout=4)
        h0 = t.height
        for k in range(3, 40):
            t.insert(int(k), int(k))
        t.check_invariants()
        assert t.height > h0
        assert all(t.search(k) == k for k in range(40))
