"""Tests for the roofline performance model."""

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.gpusim.device import TITAN_V, DeviceSpec
from repro.gpusim.kernels import simulate_harmonia_search
from repro.gpusim.perfmodel import (
    KernelTime,
    estimate_kernel_time,
    estimate_sort_time,
    l2_resident_levels,
    modeled_throughput,
)


@pytest.fixture(scope="module")
def layout():
    rng = np.random.default_rng(31)
    keys = np.sort(rng.choice(1 << 28, 40_000, replace=False)).astype(np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=32, fill=0.7)


@pytest.fixture(scope="module")
def metrics(layout):
    rng = np.random.default_rng(32)
    q = rng.choice(layout.all_keys(), 4_096)
    return simulate_harmonia_search(layout, q, 8)


class TestKernelTime:
    def test_total_is_roofline_plus_launch(self):
        kt = KernelTime(compute_s=3.0, dram_s=1.0, l2_s=0.5, const_s=0.1,
                        launch_s=0.2)
        assert kt.memory_s == pytest.approx(1.6)
        assert kt.total_s == pytest.approx(3.2)  # max(compute, mem) + launch

    def test_memory_bound_case(self):
        kt = KernelTime(compute_s=1.0, dram_s=4.0, l2_s=0.0, const_s=0.0,
                        launch_s=0.0)
        assert kt.total_s == 4.0

    def test_throughput(self):
        kt = KernelTime(1.0, 0, 0, 0, 0)
        assert kt.throughput(1_000) == pytest.approx(1_000.0)


class TestResidency:
    def test_upper_levels_resident(self, layout):
        res = l2_resident_levels(layout, TITAN_V, row_stride=512)
        assert res[0]  # root always fits
        assert res.shape == (layout.height,)

    def test_tiny_l2_evicts_leaves(self, layout):
        dev = DeviceSpec(name="mini", l2_bytes=4096)
        res = l2_resident_levels(layout, dev, row_stride=512)
        assert not res[-1]


class TestEstimates:
    def test_components_positive(self, metrics, layout):
        kt = estimate_kernel_time(metrics, layout)
        assert kt.compute_s > 0
        assert kt.memory_s > 0
        assert kt.total_s > kt.launch_s

    def test_more_sms_faster_compute(self, metrics, layout):
        from dataclasses import replace

        fast = replace(TITAN_V, n_sms=160)
        a = estimate_kernel_time(metrics, layout, TITAN_V)
        b = estimate_kernel_time(metrics, layout, fast)
        assert b.compute_s < a.compute_s

    def test_more_bandwidth_faster_memory(self, metrics, layout):
        from dataclasses import replace

        fat = replace(TITAN_V, dram_bandwidth_gbs=2 * TITAN_V.dram_bandwidth_gbs)
        a = estimate_kernel_time(metrics, layout, TITAN_V)
        b = estimate_kernel_time(metrics, layout, fat)
        assert b.dram_s < a.dram_s

    def test_throughput_includes_sort(self, metrics, layout):
        base = modeled_throughput(metrics, layout)
        with_sort = modeled_throughput(metrics, layout, sort_s=1.0)
        assert with_sort < base


class TestLatencyBound:
    def test_zero_for_empty(self):
        from repro.gpusim.metrics import KernelMetrics
        from repro.gpusim.perfmodel import latency_bound_seconds

        m = KernelMetrics(n_queries=0, n_warps=0, group_size=8, height=3)
        assert latency_bound_seconds(m) == 0.0

    def test_scales_with_warps(self, metrics):
        from dataclasses import replace as dc_replace

        from repro.gpusim.perfmodel import latency_bound_seconds

        base = latency_bound_seconds(metrics)
        assert base > 0
        # Fewer resident warps -> less hiding -> larger bound.
        starved = dc_replace(TITAN_V, resident_warps_per_sm=4)
        assert latency_bound_seconds(metrics, starved) > base

    def test_included_in_total_by_default(self, metrics, layout):
        with_l = estimate_kernel_time(metrics, layout)
        without = estimate_kernel_time(metrics, layout,
                                       include_latency_bound=False)
        assert with_l.latency_s > 0
        assert without.latency_s == 0.0
        assert with_l.total_s >= without.total_s

    def test_event_sim_confirms_bound(self, metrics):
        """The event-driven simulation of one SM's complement must never
        finish faster than the per-SM share of the latency bound."""
        from repro.gpusim.eventsim import validate_roofline
        from repro.gpusim.perfmodel import latency_bound_seconds

        report = validate_roofline(metrics)
        per_sm_share = (
            latency_bound_seconds(metrics) * TITAN_V.clock_ghz * 1e9
            * TITAN_V.n_sms / max(metrics.n_warps / TITAN_V.resident_warps_per_sm, 1)
        )
        # The simulated complement covers resident_warps of the batch; its
        # makespan must be at least one warp's chain (critical path), which
        # the bound is built from.
        assert report["simulated"] >= report["critical_path"] - 1e-9


class TestSortTime:
    def test_linear_in_passes_minus_launch(self):
        a = estimate_sort_time(1 << 20, 1)
        b = estimate_sort_time(1 << 20, 2)
        assert b > a
        # streaming part doubles exactly
        launch = TITAN_V.launch_overhead_us * 1e-6
        assert (b - 2 * launch) == pytest.approx(2 * (a - launch))

    def test_zero_cases(self):
        assert estimate_sort_time(0, 5) == 0.0
        assert estimate_sort_time(100, 0) == 0.0

    def test_linear_in_n(self):
        launch = TITAN_V.launch_overhead_us * 1e-6
        a = estimate_sort_time(1000, 1) - launch
        b = estimate_sort_time(2000, 1) - launch
        assert b == pytest.approx(2 * a)
