"""Tests for the simulated GPU radix-sort kernel."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpusim.device import TITAN_V
from repro.gpusim.sort_kernel import simulate_radix_sort
from repro.sort.radix import partial_radix_argsort, radix_passes


class TestPassStructure:
    def test_pass_count_matches_algorithm(self, rng):
        keys = rng.integers(0, 1 << 40, size=4_000)
        for bits in (8, 19, 40):
            m = simulate_radix_sort(keys, bits=bits)
            assert m.n_passes == radix_passes(bits)

    def test_zero_bits_no_passes(self, rng):
        keys = rng.integers(0, 1 << 20, size=100)
        m = simulate_radix_sort(keys, bits=0)
        assert m.n_passes == 0
        assert m.total_transactions == 0

    def test_empty_input(self):
        m = simulate_radix_sort(np.array([], dtype=np.int64), bits=8)
        assert m.n == 0 and m.n_passes == 0

    def test_bits_validated(self, rng):
        keys = rng.integers(0, 10, size=10)
        with pytest.raises(ConfigError):
            simulate_radix_sort(keys, bits=65)


class TestMemoryBehaviour:
    def test_reads_are_footprint(self, rng):
        keys = rng.integers(0, 1 << 40, size=8_192)
        m = simulate_radix_sort(keys, bits=8)
        line = TITAN_V.cache_line_bytes
        expect = -(-8_192 * 8 // line) + -(-8_192 * 16 // line)
        assert m.passes[0].read_transactions == expect

    def test_random_data_scatters(self, rng):
        keys = rng.integers(0, 1 << 40, size=8_192)
        m = simulate_radix_sort(keys, bits=8, key_bits=40)
        # Random top digits: a warp's 32 writes land in ~distinct buckets,
        # far above the coalesced floor of 4 lines (32 × 16B / 128B line).
        assert m.passes[0].scatter_divergence > 10.0

    def test_sorted_data_coalesces(self):
        keys = np.sort(np.random.default_rng(1).integers(0, 1 << 40, 8_192))
        m = simulate_radix_sort(keys, bits=8, key_bits=40)
        # Already-sorted keys scatter to consecutive destinations: the
        # coalesced floor is 4 lines per warp (32 lanes × 16B records).
        assert m.passes[0].scatter_divergence <= 4.5

    def test_sorted_cheaper_than_random(self, rng):
        random_keys = rng.integers(0, 1 << 40, size=8_192)
        sorted_keys = np.sort(random_keys)
        m_rand = simulate_radix_sort(random_keys, bits=16, key_bits=40)
        m_sort = simulate_radix_sort(sorted_keys, bits=16, key_bits=40)
        assert m_sort.total_transactions < m_rand.total_transactions

    def test_more_bits_more_traffic(self, rng):
        keys = rng.integers(0, 1 << 40, size=4_096)
        a = simulate_radix_sort(keys, bits=8, key_bits=40)
        b = simulate_radix_sort(keys, bits=32, key_bits=40)
        assert b.total_transactions > a.total_transactions

    def test_modeled_seconds_positive_and_scales(self, rng):
        keys = rng.integers(0, 1 << 40, size=4_096)
        t1 = simulate_radix_sort(keys, bits=8, key_bits=40).modeled_seconds()
        t4 = simulate_radix_sort(keys, bits=32, key_bits=40).modeled_seconds()
        assert 0 < t1 < t4


class TestConsistencyWithAlgorithm:
    def test_final_order_matches_partial_sort(self, rng):
        """The simulated passes must carry the same permutation the real
        partial sort produces (same digit ladder, same stability)."""
        keys = rng.integers(0, 1 << 30, size=2_000)
        bits, key_bits = 16, 30
        res = partial_radix_argsort(keys, bits=bits, key_bits=key_bits)

        # Replay the simulator's permutation bookkeeping.
        from repro.gpusim.sort_kernel import _pass_shifts

        order = np.arange(keys.size, dtype=np.int64)
        mask = (1 << 8) - 1
        for shift in _pass_shifts(bits, key_bits, 8):
            if shift < 0:
                digits = keys[order] & ((1 << (8 + shift)) - 1)
            else:
                digits = (keys[order] >> shift) & mask
            order = order[np.argsort(digits, kind="stable")]
        assert np.array_equal(order, res.order)
