"""Tests for the epoch manager (phase-discipline wrapper)."""

import threading

import numpy as np
import pytest

from repro.constants import NOT_FOUND
from repro.core.epoch import EpochManager
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.errors import ConfigError


def manager(n=2_000, capacity=1 << 16):
    keys = np.arange(0, n * 2, 2, dtype=np.int64)
    tree = HarmoniaTree.from_sorted(keys, fanout=8, fill=0.8)
    return EpochManager(tree, batch_capacity=capacity), keys


class TestBasics:
    def test_reads_pass_through(self):
        em, keys = manager()
        assert em.search(int(keys[3])) == int(keys[3])
        out = em.search_batch(keys[:10])
        assert np.array_equal(out, keys[:10])
        k, _ = em.range_search(int(keys[0]), int(keys[5]))
        assert k.size == 6
        assert len(em) == keys.size

    def test_submit_buffers_until_flush(self):
        em, keys = manager()
        assert em.submit(Operation("insert", 1, 11)) is None
        assert em.pending_operations() == 1
        # Not visible before the flush (phase semantics).
        assert em.search(1) is None
        res = em.flush()
        assert res.inserted == 1
        assert em.search(1) == 11
        assert em.pending_operations() == 0

    def test_flush_empty_is_noop(self):
        em, _ = manager()
        assert em.flush() is None
        assert em.epoch == 0

    def test_epoch_counter(self):
        em, _ = manager()
        em.submit(Operation("insert", 1, 1))
        em.flush()
        em.submit(Operation("delete", 1))
        em.flush()
        assert em.epoch == 2

    def test_auto_flush_at_capacity(self):
        em, _ = manager(capacity=4)
        results = []
        for k in (1, 3, 5, 7):
            r = em.submit(Operation("insert", k, k))
            if r is not None:
                results.append(r)
        assert len(results) == 1
        assert results[0].inserted == 4
        assert em.pending_operations() == 0

    def test_submit_many(self):
        em, _ = manager(capacity=10)
        ops = [Operation("insert", k, k) for k in range(1, 50, 2)]
        flushes = em.submit_many(ops)
        assert len(flushes) == len(ops) // 10
        em.flush()
        assert em.search(1) == 1

    def test_submit_type_checked(self):
        em, _ = manager()
        with pytest.raises(ConfigError):
            em.submit(("insert", 1, 2))


class TestSnapshotIsolation:
    def test_pinned_snapshot_survives_flush(self):
        em, keys = manager()
        snap = em._snapshot()
        victim = int(keys[10])
        em.submit(Operation("delete", victim))
        em.flush()
        # New reads miss the key; the pinned snapshot still has it.
        assert em.search(victim) is None
        assert snap.search(victim) == victim

    def test_concurrent_readers_during_flush(self):
        em, keys = manager(n=5_000)
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                out = em.search_batch(keys[:256])
                # Snapshot reads are all-or-nothing: stored keys always
                # resolve to their (current or previous) value, never to
                # garbage.
                bad = (out == NOT_FOUND) & (keys[:256] % 4 != 0)
                if bad.any():
                    errors.append(int(bad.sum()))

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        # Delete every key divisible by 4, in several epochs.
        for start in range(0, 5_000, 1_000):
            ops = [
                Operation("delete", int(k))
                for k in keys[start : start + 1_000]
                if k % 4 == 0
            ]
            em.submit_many(ops)
            em.flush()
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert em.epoch == 5
        em._tree.check_invariants()

    def test_bootstrap_through_epoch_manager(self):
        em = EpochManager(HarmoniaTree.empty(fanout=8))
        em.submit_many([Operation("insert", k, k) for k in range(50)])
        em.flush()
        assert len(em) == 50
        assert em.search(25) == 25
