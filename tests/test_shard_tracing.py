"""End-to-end distributed tracing through the sharded service tier.

The PR 8 acceptance path: a recorded batch through a 2-worker
:class:`~repro.shard.ShardedTree` must produce ONE merged registry —
router scatter/gather spans plus per-worker execution spans from two
real worker processes, tied together by shared trace ids — exporting as
a single Chrome trace with one lane per process.  Also covers the
untraced default (wire compatibility, empty merge state), flight-
recorder integration on the serving path, and the ``--trace-out`` CLI.
"""

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.cli import main as cli_main
from repro.obs.export import chrome_trace
from repro.obs.schema import validate_snapshot
from repro.shard import ShardedTree

KEYS = np.arange(0, 4000, 2)  # shard boundary near 2000 for 2 shards


@pytest.fixture
def sharded():
    with ShardedTree.from_sorted(KEYS, n_shards=2, fanout=16) as st:
        yield st


def _traced_round(st):
    """One query + update + range round spanning both shards."""
    from repro.core.update import Operation

    queries = KEYS[::4]  # both halves of the key space
    res = st.search_many(queries)
    stats = st.apply_batch([Operation("insert", 3001, 1),
                            Operation("insert", 999, 9)])
    ranges = st.range_search_batch([100, 3000], [200, 3100])
    return res, stats, ranges


class TestTracedRun:
    def test_merged_trace_spans_all_processes(self, sharded):
        with obs.recording() as rec:
            res, stats, _ = _traced_round(sharded)
        # results stay byte-correct under tracing
        assert np.array_equal(res, KEYS[::4])
        assert stats.inserted == 2  # both keys odd, so absent before
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []

        # one lane per worker process, both present
        procs = rec.remote_processes()
        assert len(procs) == 2
        prefixes = {entry["prefix"] for entry in procs.values()}
        assert prefixes == {"shard[0].", "shard[1]."}

        # every routed request minted a trace id...
        assert snap["counters"]["trace.requests"] == 3
        assert snap["counters"]["trace.spans_merged"] > 0
        spans = rec.spans()
        request_ids = {s[6]["trace_id"] for s in spans
                       if s[0] == "shard.request"}
        assert len(request_ids) == 3
        # ...and the worker-side execution spans carry the same ids
        worker_ids = set()
        for entry in procs.values():
            for name, _cat, _s, _e, _t, _d, args in entry["spans"]:
                if name == "worker.execute":
                    worker_ids.add(args["trace_id"])
        assert worker_ids and worker_ids <= request_ids

    def test_single_chrome_trace_has_process_lanes(self, sharded):
        with obs.recording() as rec:
            _traced_round(sharded)
        trace = chrome_trace(rec)
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        pids = {e["pid"] for e in events}
        assert 1 in pids and len(pids) == 3  # router + 2 workers
        names_by_pid = {}
        for e in events:
            names_by_pid.setdefault(e["pid"], set()).add(e["name"])
        assert {"shard.scatter", "shard.gather", "shard.request"} <= \
            names_by_pid[1]
        for pid in pids - {1}:
            assert "worker.execute" in names_by_pid[pid]
        json.dumps(trace)  # must serialize as one file

    def test_request_latency_histogram(self, sharded):
        with obs.recording() as rec:
            _traced_round(sharded)
        hist = rec.snapshot()["histograms"]["shard.request_s"]
        assert hist["count"] == 3
        assert hist["min"] > 0

    def test_flight_gauges_published(self, sharded):
        with obs.recording() as rec:
            _traced_round(sharded)
        gauges = rec.snapshot()["gauges"]
        assert gauges["flight.events"] >= 3

    def test_worker_metrics_merge_namespaced(self, sharded):
        with obs.recording() as rec:
            sharded.search_many(KEYS[::4])
        counters = rec.snapshot()["counters"]
        shard_keys = [k for k in counters if k.startswith("shard[")]
        assert shard_keys  # e.g. shard[0].engine.batches
        assert validate_snapshot(rec.snapshot()) == []

    def test_consecutive_recordings_stay_separate(self, sharded):
        with obs.recording() as rec1:
            sharded.search_many(KEYS[:64])
        with obs.recording() as rec2:
            sharded.search_many(KEYS[:64])
        assert rec1.snapshot()["counters"]["trace.requests"] == 1
        assert rec2.snapshot()["counters"]["trace.requests"] == 1
        # worker registries were export-cleared: no double-shipped spans
        for rec in (rec1, rec2):
            for entry in rec.remote_processes().values():
                names = [s[0] for s in entry["spans"]]
                assert names.count("worker.execute") == 1


class TestUntracedDefault:
    def test_no_recording_no_trace_state(self, sharded):
        res = sharded.search_many(KEYS[::4])
        assert np.array_equal(res, KEYS[::4])
        # the ambient recorder stayed null: nothing merged anywhere
        assert obs.active is obs.NULL_RECORDER

    def test_flight_recorder_always_on(self, sharded):
        before = obs.FLIGHT.events_recorded
        sharded.search_many(KEYS[:32])
        assert obs.FLIGHT.events_recorded > before
        summary = obs.FLIGHT.latency_summary()
        assert "router.search" in summary

    def test_traced_then_untraced_round(self, sharded):
        """Wire compat: a traced request must not leave the protocol in a
        state that corrupts the next untraced one."""
        with obs.recording():
            sharded.search_many(KEYS[:32])
        res = sharded.search_many(KEYS[::4])
        assert np.array_equal(res, KEYS[::4])


class TestTraceCLI:
    def test_shard_trace_out(self, tmp_path, capsys):
        out = tmp_path / "run"
        rc = cli_main([
            "shard", "--keys", "4096", "--batch", "1024", "--batches", "1",
            "--shards", "2", "--trace-out", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "3 process lanes" in captured
        trace = json.loads((out / "trace.json").read_text())
        pids = {e["pid"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert len(pids) == 3
        snap = json.loads((out / "snapshot.json").read_text())
        assert snap["counters"]["trace.requests"] >= 1
        assert validate_snapshot(snap) == []

    def test_obs_flight_lists_and_renders(self, tmp_path, capsys,
                                          monkeypatch):
        from repro.obs.flight import FLIGHT_DIR_ENV, dump_on_crash

        monkeypatch.setenv(FLIGHT_DIR_ENV, str(tmp_path))
        path = dump_on_crash("test")
        assert cli_main(["obs", "flight"]) == 0
        assert "harmonia-flight" in capsys.readouterr().out
        assert cli_main(["obs", "flight", path]) == 0
        out = capsys.readouterr().out
        assert "test" in out and "pid" in out
