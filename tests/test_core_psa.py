"""Tests for partially-sorted aggregation (PSA, §4.1)."""

import numpy as np
import pytest

from repro.core.psa import (
    PSABatch,
    fully_sorted_batch,
    identity_batch,
    optimal_sort_bits,
    prepare_batch,
    sort_cost_ratio,
)
from repro.errors import ConfigError


class TestEquation2:
    def test_paper_example(self):
        # B=64, T=2^23, K=16  =>  N = 19  (§4.1.2)
        assert optimal_sort_bits(2**23, 16) == 19

    @pytest.mark.parametrize(
        "tree_size,k,expect",
        [(2**24, 16, 20), (2**26, 16, 22), (2**23, 8, 20), (16, 16, 0)],
    )
    def test_formula(self, tree_size, k, expect):
        assert optimal_sort_bits(tree_size, k) == expect

    def test_clamped_to_key_bits(self):
        assert optimal_sort_bits(2**60, 1, key_bits=32) == 32

    def test_never_negative(self):
        assert optimal_sort_bits(1, 1024) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            optimal_sort_bits(0)


class TestAdaptiveBits:
    def test_full_span_matches_eq2(self):
        from repro.core.psa import adaptive_sort_bits

        sample = np.array([0, (1 << 40) - 1], dtype=np.int64)
        assert adaptive_sort_bits(sample, 2**23) == optimal_sort_bits(2**23)

    def test_narrow_span_caps_bits(self):
        from repro.core.psa import adaptive_sort_bits

        sample = np.array([100, 140], dtype=np.int64)  # 6-bit span
        assert adaptive_sort_bits(sample, 2**23) == 6

    def test_degenerate_samples(self):
        from repro.core.psa import adaptive_sort_bits

        assert adaptive_sort_bits(np.array([5], dtype=np.int64), 100) == 0
        assert adaptive_sort_bits(np.array([5, 5], dtype=np.int64), 100) == 0

    def test_never_exceeds_eq2(self, rng):
        from repro.core.psa import adaptive_sort_bits

        sample = rng.integers(0, 1 << 20, size=100)
        assert adaptive_sort_bits(sample, 2**23) <= optimal_sort_bits(2**23)


class TestPrepareBatch:
    @pytest.fixture
    def queries(self, rng):
        return rng.integers(0, 1 << 30, size=4_000)

    def test_restore_permutation(self, queries):
        psa = prepare_batch(queries, bits=12, key_bits=30)
        assert np.array_equal(psa.queries[psa.restore], queries)
        assert np.array_equal(queries[psa.order], psa.queries)

    def test_grouped_by_top_bits(self, queries):
        bits = 10
        psa = prepare_batch(queries, bits=bits, key_bits=30)
        tops = psa.queries >> (30 - bits)
        assert np.all(np.diff(tops) >= 0)

    def test_stability_within_groups(self):
        # Equal top bits keep arrival order (Figure 6c semantics).  Use a
        # digit-aligned split (top 8 of 16 bits) since partial sorts round
        # to whole radix digits.
        top = 1 << 8
        q = np.array(
            [5 * top + 1, 5 * top + 0, 1 * top + 3, 5 * top + 2], dtype=np.int64
        )
        psa = prepare_batch(q, bits=8, key_bits=16)
        assert psa.queries.tolist() == [
            1 * top + 3, 5 * top + 1, 5 * top + 0, 5 * top + 2
        ]

    def test_bits_zero_is_identity_order(self, queries):
        psa = prepare_batch(queries, bits=0)
        assert np.array_equal(psa.queries, queries)
        assert psa.sort_passes == 0
        assert psa.sort_cost == 0.0

    def test_tree_size_path_uses_equation2(self, queries):
        psa = prepare_batch(queries, tree_size=2**23, key_bits=30)
        # N = 19 -> 3 radix passes at 8-bit digits.
        assert psa.sort_passes == 3

    def test_bits_and_tree_size_exclusive(self, queries):
        with pytest.raises(ConfigError):
            prepare_batch(queries, bits=4, tree_size=100)

    def test_neither_given(self, queries):
        with pytest.raises(ConfigError):
            prepare_batch(queries)

    def test_bits_out_of_range(self, queries):
        with pytest.raises(ConfigError):
            prepare_batch(queries, bits=99)

    def test_empty_batch(self):
        psa = prepare_batch(np.array([], dtype=np.int64), bits=8)
        assert psa.n == 0
        assert psa.restore.size == 0


class TestConvenienceBatches:
    def test_identity(self, rng):
        q = rng.integers(0, 100, size=50)
        psa = identity_batch(q)
        assert np.array_equal(psa.queries, q)
        assert psa.sort_cost == 0.0

    def test_fully_sorted(self, rng):
        q = rng.integers(0, 1 << 40, size=500)
        psa = fully_sorted_batch(q)
        assert np.all(np.diff(psa.queries) >= 0)
        assert psa.sort_passes == 8  # 64 bits / 8-bit digits

    def test_fully_sorted_restore(self, rng):
        q = rng.integers(0, 1 << 40, size=500)
        psa = fully_sorted_batch(q)
        assert np.array_equal(psa.queries[psa.restore], q)


class TestCostModel:
    def test_paper_35_percent(self):
        # 19 of 64 bits => 3/8 passes = 0.375 ≈ "about 35%".
        assert sort_cost_ratio(19) == pytest.approx(0.375)

    def test_zero_and_full(self):
        assert sort_cost_ratio(0) == 0.0
        assert sort_cost_ratio(64) == 1.0

    def test_monotone_in_bits(self):
        ratios = [sort_cost_ratio(b) for b in range(0, 65, 8)]
        assert ratios == sorted(ratios)


class TestScatterRestore:
    def test_matches_gather(self, rng):
        q = rng.integers(0, 1 << 40, size=800)
        psa = prepare_batch(q, bits=16)
        issue_results = psa.queries * 3  # any issue-order payload
        assert np.array_equal(
            psa.scatter_restore(issue_results), issue_results[psa.restore]
        )

    def test_out_buffer(self, rng):
        q = rng.integers(0, 1 << 40, size=300)
        psa = prepare_batch(q, bits=12)
        out = np.empty(q.size, dtype=np.int64)
        got = psa.scatter_restore(psa.queries, out=out)
        assert got is out
        assert np.array_equal(out, q)  # scattering the issued queries
        with pytest.raises(ConfigError):
            psa.scatter_restore(psa.queries, out=np.empty(q.size - 1, dtype=np.int64))
        with pytest.raises(ConfigError):
            psa.scatter_restore(psa.queries[:-1])

    def test_restore_is_lazy_and_cached(self, rng):
        q = rng.integers(0, 1 << 40, size=100)
        psa = prepare_batch(q, bits=8)
        assert "_restore" not in psa.__dict__
        first = psa.restore
        assert psa.restore is first  # cached, not recomputed
        assert np.array_equal(first[psa.order], np.arange(q.size))

    def test_identity_batch_scatter(self, rng):
        q = rng.integers(0, 1 << 30, size=64)
        psa = identity_batch(q)
        payload = np.arange(64, dtype=np.int64)
        assert np.array_equal(psa.scatter_restore(payload), payload)
