"""The mergeable delta index and its last-wins merge primitive.

Three layers of contract, each hypothesis-pinned against a dict model:

* :func:`repro.core.merge.concat_sorted_runs` with ``policy="last_wins"``
  — newest run wins per key, with duplicates across runs, empty runs,
  and the disjoint fast path all covered (the ``"disjoint"`` default
  keeps its reject-on-overlap behavior, pinned in ``test_shard.py``);
* :class:`repro.core.delta.DeltaView` overlays (point, existence, merge,
  range) — last-wins over runs, tombstones mask base entries;
* :func:`repro.core.delta.resolve_batch` — per-op outcomes and counts
  identical to the scalar replay reference, with the published run equal
  to the batch's net effect.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import NOT_FOUND, VALUE_DTYPE
from repro.core.delta import (
    DeltaIndex,
    DeltaRun,
    DeltaView,
    resolve_batch,
)
from repro.core.merge import concat_sorted_runs
from repro.core.update import Operation
from repro.errors import ConfigError


def make_run(entries):
    """``{key: (value, tombstoned)}`` → DeltaRun (net computed as 0)."""
    keys = np.asarray(sorted(entries), dtype=np.int64)
    values = np.asarray([entries[k][0] for k in keys.tolist()],
                        dtype=VALUE_DTYPE)
    tombs = np.asarray([entries[k][1] for k in keys.tolist()], dtype=bool)
    return DeltaRun(keys=keys, values=values, tombstones=tombs, net=0)


# --------------------------------------------------------------------------
# concat_sorted_runs: last-wins policy (satellite 1)
# --------------------------------------------------------------------------

run_strategy = st.lists(
    st.tuples(st.integers(0, 60), st.integers(-5, 5)), max_size=12,
).map(lambda pairs: dict(pairs))


class TestConcatLastWins:
    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError):
            concat_sorted_runs([], policy="newest")

    def test_rejects_unsorted_run(self):
        run = (np.asarray([3, 1], dtype=np.int64),
               np.asarray([0, 0], dtype=VALUE_DTYPE))
        with pytest.raises(ConfigError):
            concat_sorted_runs([run], policy="last_wins")

    def test_rejects_duplicate_within_run(self):
        run = (np.asarray([1, 1], dtype=np.int64),
               np.asarray([0, 1], dtype=VALUE_DTYPE))
        with pytest.raises(ConfigError):
            concat_sorted_runs([run], policy="last_wins")

    def test_overlap_keeps_newest(self):
        a = (np.asarray([1, 2, 3], dtype=np.int64),
             np.asarray([10, 20, 30], dtype=VALUE_DTYPE))
        b = (np.asarray([2, 4], dtype=np.int64),
             np.asarray([99, 40], dtype=VALUE_DTYPE))
        keys, values = concat_sorted_runs([a, b], policy="last_wins")
        assert keys.tolist() == [1, 2, 3, 4]
        assert values.tolist() == [10, 99, 30, 40]

    def test_disjoint_default_still_rejects_overlap(self):
        a = (np.asarray([1, 5], dtype=np.int64),
             np.asarray([0, 0], dtype=VALUE_DTYPE))
        b = (np.asarray([5, 9], dtype=np.int64),
             np.asarray([0, 0], dtype=VALUE_DTYPE))
        with pytest.raises(ConfigError):
            concat_sorted_runs([a, b])
        keys, _ = concat_sorted_runs([a, b], policy="last_wins")
        assert keys.tolist() == [1, 5, 9]

    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(runs=st.lists(run_strategy, max_size=6))
    def test_matches_dict_model(self, runs):
        """Later runs overwrite earlier ones, exactly like dict.update —
        with empty runs, full overlaps, and disjoint runs all mixed in."""
        parts = []
        for entries in runs:
            keys = np.asarray(sorted(entries), dtype=np.int64)
            vals = np.asarray([entries[k] for k in keys.tolist()],
                              dtype=VALUE_DTYPE)
            parts.append((keys, vals))
        model = {}
        for entries in runs:
            model.update(entries)
        keys, values = concat_sorted_runs(parts, policy="last_wins")
        assert keys.tolist() == sorted(model)
        assert values.tolist() == [model[k] for k in sorted(model)]
        assert keys.dtype == np.int64 and values.dtype == VALUE_DTYPE


# --------------------------------------------------------------------------
# DeltaView overlays
# --------------------------------------------------------------------------

entries_strategy = st.dictionaries(
    st.integers(0, 50),
    st.tuples(st.integers(-100, 100), st.booleans()),
    max_size=10,
)


def model_of(base, runs):
    """Visible state as a dict: base overlaid by runs oldest→newest."""
    model = dict(base)
    for entries in runs:
        for k, (v, tomb) in entries.items():
            if tomb:
                model.pop(k, None)
            else:
                model[k] = v
    return model


class TestDeltaView:
    @settings(max_examples=100, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        base=st.dictionaries(st.integers(0, 50), st.integers(-100, 100),
                             max_size=20),
        runs=st.lists(entries_strategy, min_size=1, max_size=5),
        probes=st.lists(st.integers(0, 60), max_size=20),
    )
    def test_overlays_match_model(self, base, runs, probes):
        view = DeltaView(tuple(make_run(r) for r in runs), net=0)
        model = model_of(base, runs)
        q = np.asarray(probes, dtype=np.int64)

        # overlay_values: start from base lookups; the newest run touching
        # a key decides it, keys no run touched keep their base answer.
        out = np.asarray(
            [base.get(k, NOT_FOUND) for k in probes], dtype=VALUE_DTYPE
        )
        view.overlay_values(q, out)
        assert out.tolist() == [model.get(k, NOT_FOUND) for k in probes]

        exists = np.asarray([k in base for k in probes], dtype=bool)
        view.overlay_exists(q, exists)
        assert exists.tolist() == [k in model for k in probes]

        for k in probes:
            hit = view.lookup(k)
            touched = any(k in r for r in runs)
            if not touched:
                assert hit is None
            else:
                tomb, value = hit
                # Newest run touching k decides: tombstoned keys are
                # absent from the merged state regardless of base.
                assert tomb == (k not in model_of({k: 123}, runs))
                if not tomb:
                    assert value == model[k]

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        base=st.dictionaries(st.integers(0, 50), st.integers(-100, 100),
                             max_size=20),
        runs=st.lists(entries_strategy, min_size=1, max_size=5),
        lo=st.integers(0, 55),
        span=st.integers(0, 30),
    )
    def test_merge_items_and_range(self, base, runs, lo, span):
        view = DeltaView(tuple(make_run(r) for r in runs), net=0)
        model = model_of(base, runs)
        bk = np.asarray(sorted(base), dtype=np.int64)
        bv = np.asarray([base[k] for k in sorted(base)], dtype=VALUE_DTYPE)

        keys, values = view.merge_items(bk, bv)
        assert keys.tolist() == sorted(model)
        assert values.tolist() == [model[k] for k in sorted(model)]

        hi = lo + span
        in_r = [k for k in sorted(model) if lo <= k <= hi]
        rbk_mask = (bk >= lo) & (bk <= hi)
        rkeys, rvalues = view.merge_range(lo, hi, bk[rbk_mask], bv[rbk_mask])
        assert rkeys.tolist() == in_r
        assert rvalues.tolist() == [model[k] for k in in_r]

    def test_tombstone_value_equal_to_sentinel_reads_absent(self):
        # A *stored* value equal to NOT_FOUND must read back as NOT_FOUND
        # via overlay (indistinguishable in the array API), but existence
        # must still say present — the reason contains_batch exists.
        run = DeltaRun(
            keys=np.asarray([7], dtype=np.int64),
            values=np.asarray([NOT_FOUND], dtype=VALUE_DTYPE),
            tombstones=np.asarray([False]),
            net=1,
        )
        view = DeltaView((run,), net=1)
        exists = np.asarray([False])
        view.overlay_exists(np.asarray([7], dtype=np.int64), exists)
        assert exists[0]


class TestDeltaIndex:
    def test_collapse_respects_floor(self):
        idx = DeltaIndex(max_runs=2)
        for i in range(6):
            idx.append_run(make_run({i: (i, False)}), collapse_floor=3)
        # Runs 0-2 are pinned by the floor (an in-flight drain); only the
        # suffix collapses.
        assert idx.n_runs == 3 + 1
        assert idx.collapses >= 1
        keys, values, tombs = idx.view().entries()
        assert keys.tolist() == list(range(6))

    def test_drop_prefix(self):
        idx = DeltaIndex(max_runs=100)
        for i in range(4):
            idx.append_run(DeltaRun(
                keys=np.asarray([i], dtype=np.int64),
                values=np.asarray([i], dtype=VALUE_DTYPE),
                tombstones=np.asarray([False]),
                net=1,
            ))
        assert idx.size == 4 and idx.net == 4
        idx.drop_prefix(3, drained_net=3)
        assert idx.n_runs == 1 and idx.net == 1
        assert idx.view().entries()[0].tolist() == [3]

    def test_empty_view_is_none(self):
        idx = DeltaIndex()
        assert idx.view() is None
        idx.append_run(make_run({}))  # empty run is dropped
        assert idx.view() is None and idx.n_runs == 0


# --------------------------------------------------------------------------
# resolve_batch vs the scalar replay model
# --------------------------------------------------------------------------

op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(0, 40),
    st.integers(-50, 50),
)


class TestResolveBatch:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        visible=st.dictionaries(st.integers(0, 40), st.integers(-50, 50),
                                max_size=15),
        raw_ops=st.lists(op_strategy, max_size=60),
    )
    def test_matches_scalar_replay(self, visible, raw_ops):
        ops = [Operation(kind, key, val) for kind, key, val in raw_ops]

        def exists_fn(ukeys):
            return np.asarray([k in visible for k in ukeys.tolist()])

        run, result = resolve_batch(ops, exists_fn)

        # Scalar reference: replay against a dict of the visible state.
        state = dict(visible)
        ins = upd = dele = fail = 0
        for op in ops:
            if op.kind == "insert":
                if op.key in state:
                    fail += 1
                else:
                    state[op.key] = op.value
                    ins += 1
            elif op.kind == "update":
                if op.key in state:
                    state[op.key] = op.value
                    upd += 1
                else:
                    fail += 1
            else:
                if op.key in state:
                    del state[op.key]
                    dele += 1
                else:
                    fail += 1
        assert (result.inserted, result.updated,
                result.deleted, result.failed) == (ins, upd, dele, fail)
        # Structural counters defer to the drain.
        assert result.split_leaves == 0 and result.underflow_leaves == 0

        # The run is the batch's net effect on its touched keys.
        assert np.all(run.keys[1:] > run.keys[:-1]) if run.n > 1 else True
        for k, v, tomb in zip(run.keys.tolist(), run.values.tolist(),
                              run.tombstones.tolist()):
            if tomb:
                assert k in visible and k not in state
            else:
                assert state[k] == v
        # Untouched-by-the-run keys are unchanged vs visible.
        touched = set(run.keys.tolist())
        for k in set(visible) | set(state):
            if k not in touched:
                assert visible.get(k) == state.get(k)
        assert run.net == len(state) - len(visible)

    def test_empty_batch(self):
        run, result = resolve_batch([], lambda u: np.zeros(u.size, bool))
        assert run.n == 0 and result.n_effective == 0
