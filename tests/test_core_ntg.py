"""Tests for narrowed thread-group traversal (NTG, §4.2)."""

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.core.ntg import (
    NTGSelection,
    choose_group_size,
    fanout_group_size,
    group_steps,
    profile_group_size,
    warp_max_steps,
)
from repro.errors import ConfigError


class TestFanoutGroupSize:
    @pytest.mark.parametrize(
        "fanout,expect", [(4, 4), (8, 8), (16, 16), (32, 32), (64, 32), (128, 32)]
    )
    def test_cap_at_warp(self, fanout, expect):
        # Footnote 2: groups wider than a warp collapse to the warp.
        assert fanout_group_size(fanout, warp_size=32) == expect

    def test_non_power_of_two_fanout_rounds_up(self):
        assert fanout_group_size(6, warp_size=32) == 8
        assert fanout_group_size(33, warp_size=64) == 64


class TestGroupSteps:
    def test_exact_division(self):
        cmp = np.array([8, 16])
        assert group_steps(cmp, 8).tolist() == [1, 2]

    def test_ceiling(self):
        cmp = np.array([9, 1])
        assert group_steps(cmp, 8).tolist() == [2, 1]

    def test_minimum_one_step(self):
        assert group_steps(np.array([0]), 8).tolist() == [1]


class TestWarpMaxSteps:
    def test_single_query_per_warp(self):
        cmp = np.array([[4, 8, 12, 16]])
        out = warp_max_steps(cmp, gs=32, warp_size=32)
        assert out.shape == (1, 4)
        assert out.tolist() == [[1, 1, 1, 1]]

    def test_two_queries_take_max(self):
        cmp = np.array([[2, 30, 4, 4]])  # gs=16 -> 2 queries/warp
        out = warp_max_steps(cmp, gs=16, warp_size=32)
        # warp 0: max(ceil(2/16), ceil(30/16)) = 2; warp 1: 1
        assert out.tolist() == [[2, 1]]

    def test_padding_does_not_inflate(self):
        cmp = np.array([[10, 10, 10]])  # 3 queries, 2 per warp -> 2 warps
        out = warp_max_steps(cmp, gs=16, warp_size=32)
        assert out.shape == (1, 2)

    def test_gs_larger_than_warp_rejected(self):
        with pytest.raises(ConfigError):
            warp_max_steps(np.ones((1, 4), dtype=np.int64), gs=64, warp_size=32)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            warp_max_steps(np.ones((1, 4), dtype=np.int64), gs=3, warp_size=32)


class TestProfileAndChoose:
    @pytest.fixture(scope="class")
    def layout(self):
        keys = np.sort(
            np.random.default_rng(5).choice(1 << 30, 60_000, replace=False)
        ).astype(np.int64)
        return HarmoniaLayout.from_sorted(keys, fanout=64, fill=0.6)

    def test_profile_counts(self, layout, rng):
        q = rng.choice(layout.all_keys(), 1_000)
        from repro.core.search import traverse_batch

        cmp = traverse_batch(layout, q).comparisons
        prof = profile_group_size(cmp, gs=8, warp_size=32)
        assert prof.queries_per_warp == 4
        assert prof.avg_warp_steps > 0
        assert prof.per_level.shape == (layout.height,)

    def test_levels_restriction(self, layout, rng):
        q = rng.choice(layout.all_keys(), 1_000)
        from repro.core.search import traverse_batch

        cmp = traverse_batch(layout, q).comparisons
        full = profile_group_size(cmp, gs=8, warp_size=32, levels=None)
        last2 = profile_group_size(cmp, gs=8, warp_size=32, levels=2)
        assert last2.per_level.shape == (2,)
        assert last2.avg_warp_steps <= full.avg_warp_steps

    def test_choose_returns_power_of_two_within_warp(self, layout, rng):
        q = rng.choice(layout.all_keys(), 1_000)
        sel = choose_group_size(layout, q, warp_size=32)
        assert isinstance(sel, NTGSelection)
        gs = sel.group_size
        assert gs & (gs - 1) == 0 and 1 <= gs <= 32

    def test_choose_narrows_below_fanout_width(self, layout, rng):
        # With early exit vs full-scan baseline, narrowing must help at
        # least once for a 64-fanout tree of half-full nodes (the paper's
        # whole premise).
        q = rng.choice(layout.all_keys(), 1_000)
        sel = choose_group_size(layout, q, warp_size=32)
        assert sel.group_size < fanout_group_size(layout.fanout, 32)
        assert sel.ratios[0] > 1.0

    def test_ratio_trail_consistent(self, layout, rng):
        q = rng.choice(layout.all_keys(), 1_000)
        sel = choose_group_size(layout, q, warp_size=32)
        # Every accepted halving had ratio > 1; a trailing rejected one <= 1.
        assert all(r > 1.0 for r in sel.ratios[:-1])
        assert len(sel.profiles) == len(sel.ratios) + 1

    def test_min_gs_respected(self, layout, rng):
        q = rng.choice(layout.all_keys(), 500)
        sel = choose_group_size(layout, q, warp_size=32, min_gs=8)
        assert sel.group_size >= 8

    def test_throughput_proxy(self):
        from repro.core.ntg import NTGProfile

        p = NTGProfile(gs=4, queries_per_warp=8, avg_warp_steps=2.0,
                       per_level=np.array([1.0, 1.0]))
        assert p.throughput_proxy() == pytest.approx(4.0)


class TestSelectionCache:
    """The module-level LRU behind HarmoniaTree.prepare_queries."""

    def _layout(self, n=2_000, fanout=16):
        keys = np.arange(0, n * 2, 2, dtype=np.int64)
        return HarmoniaLayout.from_sorted(keys, fanout=fanout, fill=0.7)

    def _selection(self):
        return NTGSelection(group_size=4)

    def test_hit_requires_same_identity_and_key(self):
        from repro.core.ntg import SelectionCache

        cache = SelectionCache(capacity=4)
        a, b = self._layout(), self._layout()
        sel = self._selection()
        cache.put(a, 32, 2, sel)
        assert cache.get(a, 32, 2) is sel
        assert cache.get(b, 32, 2) is None          # different snapshot
        assert cache.get(a, 64, 2) is None          # different warp size
        assert cache.get(a, 32, None) is None       # different levels

    def test_alternating_layouts_both_stay_cached(self):
        # The regression this cache exists for: a single-slot cache
        # thrashes when callers alternate between two live snapshots
        # (epoch facades, shard round-robin).
        from repro.core.ntg import SelectionCache

        cache = SelectionCache(capacity=4)
        a, b = self._layout(), self._layout()
        sa, sb = self._selection(), self._selection()
        cache.put(a, 32, 2, sa)
        cache.put(b, 32, 2, sb)
        for _ in range(5):
            assert cache.get(a, 32, 2) is sa
            assert cache.get(b, 32, 2) is sb

    def test_lru_eviction_order(self):
        from repro.core.ntg import SelectionCache

        cache = SelectionCache(capacity=2)
        layouts = [self._layout(200) for _ in range(3)]
        sels = [self._selection() for _ in range(3)]
        cache.put(layouts[0], 32, 2, sels[0])
        cache.put(layouts[1], 32, 2, sels[1])
        cache.get(layouts[0], 32, 2)            # refresh 0 → 1 is now LRU
        cache.put(layouts[2], 32, 2, sels[2])   # evicts 1
        assert cache.get(layouts[0], 32, 2) is sels[0]
        assert cache.get(layouts[1], 32, 2) is None
        assert cache.get(layouts[2], 32, 2) is sels[2]

    def test_dead_layout_id_reuse_cannot_alias(self):
        # Entries hold weakrefs: once the snapshot dies, a recycled id()
        # must not resurrect the stale selection.
        from repro.core.ntg import SelectionCache

        cache = SelectionCache(capacity=4)
        a = self._layout(100)
        cache.put(a, 32, 2, self._selection())
        key = (id(a), 32, 2)
        del a
        # Forge a fresh layout; even if id() matched, the weakref target
        # differs, so get() must miss and drop the entry.
        b = self._layout(100)
        ref, sel = cache._entries.get(key, (None, None))
        if ref is not None:
            assert ref() is None  # original is gone
        assert cache.get(b, 32, 2) is None

    def test_prepare_queries_reuses_across_tree_facades(self):
        # EpochManager builds a fresh HarmoniaTree facade per query call;
        # the selection must still be computed once per snapshot.
        from repro.core.config import SearchConfig
        from repro.core.ntg import selection_cache
        from repro.core.tree import HarmoniaTree

        selection_cache.clear()
        layout = self._layout()
        cfg = SearchConfig(ntg="model")
        q = np.arange(0, 2_000, 2, dtype=np.int64)
        first = HarmoniaTree(layout).prepare_queries(q, cfg)
        second = HarmoniaTree(layout).prepare_queries(q, cfg)
        assert first.ntg_selection is second.ntg_selection

    def test_capacity_must_be_positive(self):
        from repro.core.ntg import SelectionCache

        with pytest.raises(ConfigError):
            SelectionCache(capacity=0)

    def test_capacity_floor_of_two_stops_join_alternation_thrash(self):
        # Regression for the dual-tree merge-join: it alternates lookups
        # between both trees' layouts in a tight loop, so a capacity-1
        # cache would evict and re-profile on every alternation.  The
        # constructor floors capacity at two live layouts.
        from repro.core.ntg import SelectionCache

        cache = SelectionCache(capacity=1)
        assert cache.capacity == 2
        a, b = self._layout(), self._layout()
        sa, sb = self._selection(), self._selection()
        cache.put(a, 32, 2, sa)
        cache.put(b, 32, 2, sb)
        for _ in range(5):  # both sides must stay resident
            assert cache.get(a, 32, 2) is sa
            assert cache.get(b, 32, 2) is sb
