"""Tests for repro.utils.prefix — the child-region arithmetic."""

import numpy as np
import pytest

from repro.errors import InvariantViolation
from repro.utils.prefix import (
    children_counts_from_prefix,
    exclusive_prefix_sum,
    validate_prefix_array,
)


class TestExclusivePrefixSum:
    def test_paper_example(self):
        # Figure 4: prefix-sum child array [1, 4, 6, 7, 9 ...] means the
        # root's first child is at 1 and it has 4-1=3 children.
        counts = [3, 2, 1, 2]
        out = exclusive_prefix_sum(counts, base=1)
        assert out.tolist() == [1, 4, 6, 7, 9]

    def test_empty(self):
        assert exclusive_prefix_sum([], base=0).tolist() == [0]

    def test_roundtrip_with_counts(self):
        counts = np.array([0, 3, 1, 0, 7])
        prefix = exclusive_prefix_sum(counts, base=1)
        assert np.array_equal(children_counts_from_prefix(prefix), counts)

    def test_base_offsets_everything(self):
        a = exclusive_prefix_sum([1, 1], base=0)
        b = exclusive_prefix_sum([1, 1], base=5)
        assert np.array_equal(b, a + 5)


class TestChildrenCounts:
    def test_rejects_decreasing(self):
        with pytest.raises(InvariantViolation):
            children_counts_from_prefix(np.array([3, 1]))

    def test_rejects_empty(self):
        with pytest.raises(InvariantViolation):
            children_counts_from_prefix(np.array([]))


class TestValidatePrefixArray:
    def test_valid_tree(self):
        # root(2 children) + 2 leaves.
        prefix = np.array([1, 3, 3, 3])
        validate_prefix_array(prefix, 3)

    def test_shape_mismatch(self):
        with pytest.raises(InvariantViolation):
            validate_prefix_array(np.array([1, 3, 3]), 3)

    def test_wrong_start(self):
        with pytest.raises(InvariantViolation):
            validate_prefix_array(np.array([0, 2, 3, 3]), 3)

    def test_wrong_total(self):
        with pytest.raises(InvariantViolation):
            validate_prefix_array(np.array([1, 3, 4, 4]), 3)

    def test_child_before_parent_rejected(self):
        # Node 1 claiming its first child at index 1 (itself) is invalid.
        prefix = np.array([1, 1, 3, 3])
        with pytest.raises(InvariantViolation):
            validate_prefix_array(prefix, 3)

    def test_single_leaf_root(self):
        validate_prefix_array(np.array([1, 1]), 1)
