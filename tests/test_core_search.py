"""Tests for Harmonia traversal and batch search."""

import numpy as np
import pytest

from repro.constants import NOT_FOUND
from repro.core.layout import HarmoniaLayout
from repro.core.search import (
    range_search,
    search_batch,
    search_scalar,
    traverse_batch,
)


class TestScalarSearch:
    def test_hits(self, small_layout, small_keys):
        for k in small_keys[[0, 1, len(small_keys) // 2, -1]]:
            assert search_scalar(small_layout, int(k)) == int(k)

    def test_misses(self, small_layout, small_keys):
        missing = int(small_keys[-1]) + 1
        assert search_scalar(small_layout, missing) is None
        assert search_scalar(small_layout, -1) is None

    def test_between_keys(self, small_layout, small_keys):
        gaps = np.setdiff1d(small_keys[:-1] + 1, small_keys)
        if gaps.size:
            assert search_scalar(small_layout, int(gaps[0])) is None


class TestBatchSearch:
    def test_matches_scalar_oracle(self, small_layout, rng):
        top = int(small_layout.max_key()) + 10
        q = rng.integers(0, top, size=2_000)
        batch = search_batch(small_layout, q)
        for i in rng.choice(q.size, 200, replace=False):
            scalar = search_scalar(small_layout, int(q[i]))
            if scalar is None:
                assert batch[i] == NOT_FOUND
            else:
                assert batch[i] == scalar

    def test_empty_batch(self, small_layout):
        out = search_batch(small_layout, np.array([], dtype=np.int64))
        assert out.size == 0

    def test_all_hits(self, medium_layout, medium_keys, rng):
        q = rng.choice(medium_keys, 5_000)
        out = search_batch(medium_layout, q)
        assert np.array_equal(out, q)  # default values == keys

    def test_all_misses(self, medium_layout, medium_keys):
        q = medium_keys[:1000] + 1
        q = np.setdiff1d(q, medium_keys)
        out = search_batch(medium_layout, q)
        assert np.all(out == NOT_FOUND)

    def test_duplicated_queries(self, small_layout, small_keys):
        k = int(small_keys[3])
        out = search_batch(small_layout, np.full(64, k))
        assert np.all(out == k)

    @pytest.mark.parametrize("fanout,fill", [(4, 1.0), (8, 0.5), (64, 0.7), (128, 1.0)])
    def test_fanout_fill_grid(self, fanout, fill, rng):
        keys = np.sort(rng.choice(1 << 24, 5_000, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=fanout, fill=fill)
        q = np.concatenate([rng.choice(keys, 500), rng.integers(0, 1 << 24, 500)])
        out = search_batch(layout, q)
        inset = np.isin(q, keys)
        assert np.array_equal(out[inset], q[inset])
        assert np.all(out[~inset] == NOT_FOUND)


class TestTraverseBatch:
    def test_shapes(self, small_layout, small_keys):
        q = small_keys[:50]
        tr = traverse_batch(small_layout, q)
        h = small_layout.height
        assert tr.node_idx.shape == (h, 50)
        assert tr.child_slot.shape == (h, 50)
        assert tr.comparisons.shape == (h, 50)
        assert tr.found.shape == (50,)
        assert tr.height == h and tr.n_queries == 50

    def test_starts_at_root(self, small_layout, small_keys):
        tr = traverse_batch(small_layout, small_keys[:10])
        assert np.all(tr.node_idx[0] == 0)

    def test_ends_at_leaves(self, small_layout, small_keys):
        tr = traverse_batch(small_layout, small_keys[:10])
        assert np.all(tr.node_idx[-1] >= small_layout.leaf_start)

    def test_path_follows_equation1(self, small_layout, small_keys):
        tr = traverse_batch(small_layout, small_keys[:20])
        for lvl in range(small_layout.height - 1):
            expect = (
                small_layout.prefix_sum[tr.node_idx[lvl]] + tr.child_slot[lvl]
            )
            assert np.array_equal(tr.node_idx[lvl + 1], expect)

    def test_found_flags_and_values(self, small_layout, small_keys):
        q = np.concatenate([small_keys[:10], small_keys[:10] + 1])
        q = q[np.isin(q, small_keys) | ~np.isin(q, small_keys)]
        tr = traverse_batch(small_layout, q)
        hits = np.isin(q, small_keys)
        assert np.array_equal(tr.found, hits)
        assert np.all(tr.values[hits] == q[hits])
        assert np.all(tr.values[~hits] == NOT_FOUND)

    def test_comparisons_positive_and_bounded(self, medium_layout, medium_keys, rng):
        q = rng.choice(medium_keys, 500)
        tr = traverse_batch(medium_layout, q)
        assert tr.comparisons.min() >= 1
        assert tr.comparisons.max() <= medium_layout.slots
