"""Integration tests across the operational features: merge, compaction,
persistence, epochs and the record store composing into real workflows."""

import numpy as np
import pytest

from repro import (
    EpochManager,
    HarmoniaTree,
    Operation,
    RecordStore,
    compact,
    layout_stats,
    load_tree,
    merge_layouts,
    save_tree,
)
from repro.workloads.generators import make_key_set


class TestDeltaMergeWorkflow:
    """Base index + delta index → merged index, the nightly-compaction
    pattern the merge API exists for."""

    def test_base_plus_delta(self, rng):
        base_keys = make_key_set(10_000, rng=rng)
        base = HarmoniaTree.from_sorted(base_keys, base_keys * 2,
                                        fanout=32, fill=0.7)
        # The delta overrides some base keys and adds fresh ones.
        overlap = base_keys[:500]
        fresh = np.setdiff1d(
            make_key_set(2_000, rng=rng), base_keys
        )[:1_000]
        delta_keys = np.sort(np.concatenate([overlap, fresh]))
        delta = HarmoniaTree.from_sorted(delta_keys, -delta_keys,
                                         fanout=32, fill=0.9)

        merged = merge_layouts(base.layout, delta.layout, prefer="b")
        merged.check_invariants()
        assert merged.n_keys == base_keys.size + fresh.size

        tree = HarmoniaTree(merged, fill=0.7)
        # Delta wins on overlap, base survives elsewhere, fresh present.
        assert tree.search(int(overlap[0])) == -int(overlap[0])
        assert tree.search(int(base_keys[-1])) == int(base_keys[-1]) * 2
        assert tree.search(int(fresh[0])) == -int(fresh[0])

    def test_delete_heavy_then_compact(self, rng):
        keys = make_key_set(8_000, rng=rng)
        tree = HarmoniaTree.from_sorted(keys, fanout=16, fill=0.9)
        ops = [Operation("delete", int(k)) for k in keys[::2]]
        tree.apply_batch(ops)
        before = layout_stats(tree.layout)
        dense = compact(tree.layout, fill=1.0)
        after = layout_stats(dense)
        assert after.n_keys == before.n_keys
        assert after.mean_leaf_occupancy > before.mean_leaf_occupancy
        assert after.n_leaves < before.n_leaves


class TestPersistenceThroughEpochs:
    def test_save_load_resume(self, tmp_path, rng):
        keys = make_key_set(3_000, rng=rng)
        em = EpochManager(HarmoniaTree.from_sorted(keys, fanout=16, fill=0.7))
        em.submit_many([Operation("update", int(k), -9) for k in keys[:100]])
        em.flush()

        path = tmp_path / "snap.npz"
        save_tree(em._tree, path)
        resumed = EpochManager(load_tree(path, fill=0.7))
        assert resumed.search(int(keys[0])) == -9
        # The resumed service keeps evolving correctly.
        resumed.submit(Operation("insert", int(keys[-1]) + 7, 1))
        resumed.flush()
        assert resumed.search(int(keys[-1]) + 7) == 1
        resumed._tree.check_invariants()


class TestRecordStoreWorkflow:
    def test_document_store_lifecycle(self, rng):
        docs = {
            int(k): f"doc body {int(k)}".encode()
            for k in make_key_set(500, rng=rng)
        }
        store = RecordStore.from_items(list(docs.items()), fanout=16)

        # Point + range reads.
        some = sorted(docs)[:50]
        assert store.get_batch(some) == [docs[k] for k in some]
        lo, hi = sorted(docs)[10], sorted(docs)[20]
        for key, body in store.range(lo, hi):
            assert docs[key] == body

        # Rewrites grow the heap; vacuum reclaims it.
        for k in some:
            store.put(k, b"rewritten")
        grown = store.heap.bytes_used()
        reclaimed = store.vacuum()
        assert reclaimed > 0
        assert store.heap.bytes_used() < grown
        assert store.get(some[0]) == b"rewritten"
        assert store.get(sorted(docs)[-1]) == docs[sorted(docs)[-1]]
        store.tree.check_invariants()


class TestExperimentRegistry:
    def test_registry_matches_modules_on_disk(self):
        """Every experiment module on disk is registered and vice versa."""
        import pathlib

        from repro.experiments.runner import EXPERIMENTS

        exp_dir = (
            pathlib.Path(__file__).parent.parent
            / "src" / "repro" / "experiments"
        )
        on_disk = {
            p.stem for p in exp_dir.glob("*.py")
            if p.stem not in ("__init__", "common", "runner")
        }
        registered = {m.rsplit(".", 1)[1] for m in EXPERIMENTS.values()}
        assert registered == on_disk

    def test_every_experiment_has_contract(self):
        import importlib

        from repro.experiments.runner import EXPERIMENTS

        for module_name in EXPERIMENTS.values():
            mod = importlib.import_module(module_name)
            assert callable(mod.run)
            assert callable(mod.shape_ok)
