"""Tests for layout statistics/introspection."""

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.core.stats import (
    expected_sequential_comparisons,
    layout_stats,
    theoretical_memory_per_query,
)


@pytest.fixture(scope="module")
def layout():
    keys = np.arange(0, 60_000, 3, dtype=np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=16, fill=0.7)


class TestLayoutStats:
    def test_totals_consistent(self, layout):
        st = layout_stats(layout)
        assert st.n_nodes == layout.n_nodes
        assert st.n_leaves == layout.n_leaves
        assert st.n_keys == layout.n_keys
        assert sum(l.n_nodes for l in st.levels) == st.n_nodes

    def test_occupancy_near_fill(self, layout):
        st = layout_stats(layout)
        assert 0.6 <= st.mean_leaf_occupancy <= 0.8

    def test_level_key_bytes(self, layout):
        st = layout_stats(layout)
        assert st.levels[0].n_nodes == 1  # root
        total = sum(l.key_bytes for l in st.levels)
        assert total == st.key_region_bytes

    def test_const_residency(self, layout):
        st = layout_stats(layout)
        # A 20k-key tree's child region is < 64KB: fully resident.
        assert st.fits_constant_memory()
        assert st.const_resident_levels() == layout.height
        # With a tiny 64-byte budget only the top levels fit.
        tiny = st.const_resident_levels(const_bytes=64)
        assert 0 < tiny < layout.height

    def test_to_dict_keys(self, layout):
        d = layout_stats(layout).to_dict()
        for k in ("fanout", "height", "n_keys", "key_region_mb",
                  "mean_leaf_occupancy"):
            assert k in d


class TestModels:
    def test_expected_comparisons_matches_measurement(self, layout, rng):
        from repro.core.search import traverse_batch

        q = rng.choice(layout.all_keys(), 4_000)
        measured = traverse_batch(layout, q).comparisons.mean()
        model = expected_sequential_comparisons(layout)
        assert model == pytest.approx(measured, rel=0.25)

    def test_pointer_layout_moves_more_bytes(self, layout):
        t = theoretical_memory_per_query(layout)
        assert t["pointer_bytes"] > t["harmonia_bytes"]
        assert t["levels"] == layout.height
