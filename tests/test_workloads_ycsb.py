"""Tests for the YCSB workload presets."""

import numpy as np
import pytest

from repro.core import HarmoniaTree
from repro.errors import ConfigError
from repro.workloads.generators import make_key_set
from repro.workloads.ycsb import PRESETS, make_ycsb_round, run_ycsb


@pytest.fixture(scope="module")
def keys():
    return make_key_set(5_000, rng=13)


class TestRoundComposition:
    def test_workload_a_half_updates(self, keys):
        r = make_ycsb_round("A", keys, 1_000, rng=1)
        assert r.point_queries.size == 500
        assert len(r.updates) == 500
        assert all(op.kind == "update" for op in r.updates)
        assert r.range_bounds is None

    def test_workload_b_mostly_reads(self, keys):
        r = make_ycsb_round("B", keys, 1_000, rng=1)
        assert r.point_queries.size == 950
        assert len(r.updates) == 50

    def test_workload_c_read_only(self, keys):
        r = make_ycsb_round("C", keys, 1_000, rng=1)
        assert r.point_queries.size == 1_000
        assert not r.updates

    def test_workload_d_inserts_and_latest_reads(self, keys):
        r = make_ycsb_round("D", keys, 1_000, rng=1)
        inserts = [op for op in r.updates if op.kind == "insert"]
        assert len(inserts) == 50
        # Latest-skew: reads concentrate near the top of the key range.
        median_read = np.median(r.point_queries)
        assert median_read > np.median(keys)

    def test_workload_e_ranges(self, keys):
        r = make_ycsb_round("E", keys, 1_000, rng=1)
        assert r.range_bounds is not None
        los, his = r.range_bounds
        assert los.size == 950
        assert np.all(los <= his)
        assert len(r.updates) == 50

    def test_workload_f_rmw(self, keys):
        r = make_ycsb_round("F", keys, 1_000, rng=1)
        assert r.rmw_reads.size == 500
        update_keys = {op.key for op in r.updates}
        assert set(int(k) for k in r.rmw_reads) <= update_keys

    def test_zipf_skew_present(self, keys):
        r = make_ycsb_round("B", keys, 5_000, rng=1)
        _, counts = np.unique(r.point_queries, return_counts=True)
        assert counts.max() > 5  # hot keys

    def test_case_insensitive(self, keys):
        assert make_ycsb_round("a", keys, 100, rng=1).point_queries.size == 50

    def test_unknown_preset(self, keys):
        with pytest.raises(ConfigError):
            make_ycsb_round("Z", keys, 100)

    def test_deterministic(self, keys):
        a = make_ycsb_round("A", keys, 200, rng=9)
        b = make_ycsb_round("A", keys, 200, rng=9)
        assert np.array_equal(a.point_queries, b.point_queries)
        assert a.updates == b.updates


class TestRunYCSB:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_all_presets_drive_a_tree(self, keys, preset):
        tree = HarmoniaTree.from_sorted(keys, fanout=16, fill=0.7)
        totals = run_ycsb(preset, tree, rounds=2, ops_per_round=500, rng=4)
        tree.check_invariants()
        assert totals["reads"] + totals["ranges"] + totals["ops"] > 0
        if PRESETS[preset].read_fraction:
            assert totals["reads"] > 0
        if PRESETS[preset].range_fraction:
            assert totals["ranges"] > 0

    def test_epoch_manager_driver(self, keys):
        from repro.core import EpochManager

        em = EpochManager(HarmoniaTree.from_sorted(keys, fanout=16, fill=0.7))
        totals = run_ycsb("A", em, rounds=1, ops_per_round=400, rng=4)
        assert totals["ops"] == 200
        assert em.epoch == 1
