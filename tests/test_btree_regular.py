"""Tests for RegularBPlusTree: search / insert / update / range."""

import numpy as np
import pytest

from repro.btree.regular import RegularBPlusTree
from repro.errors import ConfigError, EmptyTreeError, InvalidKeyError


class TestBasics:
    def test_empty_tree(self):
        t = RegularBPlusTree(fanout=4)
        assert len(t) == 0
        assert not t
        assert t.height == 1
        assert t.search(1) is None
        t.check_invariants()

    def test_min_max_on_empty_raise(self):
        t = RegularBPlusTree(fanout=4)
        with pytest.raises(EmptyTreeError):
            t.min_key()
        with pytest.raises(EmptyTreeError):
            t.max_key()

    def test_invalid_fanout(self):
        with pytest.raises(ConfigError):
            RegularBPlusTree(fanout=2)

    def test_single_insert(self):
        t = RegularBPlusTree(fanout=4)
        assert t.insert(5, 50)
        assert t.search(5) == 50
        assert 5 in t
        assert len(t) == 1

    def test_duplicate_insert_returns_false(self):
        t = RegularBPlusTree(fanout=4)
        t.insert(5, 50)
        assert not t.insert(5, 99)
        assert t.search(5) == 50  # original value preserved

    def test_upsert_overwrites(self):
        t = RegularBPlusTree(fanout=4)
        assert t.upsert(5, 50)
        assert not t.upsert(5, 99)
        assert t.search(5) == 99

    def test_update_existing(self):
        t = RegularBPlusTree(fanout=4)
        t.insert(5, 50)
        assert t.update(5, 60)
        assert t.search(5) == 60

    def test_update_missing(self):
        t = RegularBPlusTree(fanout=4)
        assert not t.update(5, 60)

    def test_sentinel_key_rejected(self):
        t = RegularBPlusTree(fanout=4)
        with pytest.raises(InvalidKeyError):
            t.insert(np.iinfo(np.int64).max, 1)


class TestSplits:
    def test_root_leaf_split(self):
        t = RegularBPlusTree(fanout=3)  # max 2 keys per node
        for k in (1, 2, 3):
            t.insert(k, k)
        assert t.height == 2
        t.check_invariants()
        assert [t.search(k) for k in (1, 2, 3)] == [1, 2, 3]

    def test_sequential_inserts_stay_balanced(self):
        t = RegularBPlusTree(fanout=4)
        for k in range(500):
            t.insert(k, k * 2)
        t.check_invariants()
        assert len(t) == 500
        assert t.min_key() == 0 and t.max_key() == 499

    def test_reverse_inserts(self):
        t = RegularBPlusTree(fanout=4)
        for k in reversed(range(300)):
            t.insert(k, k)
        t.check_invariants()
        assert list(t.keys()) == list(range(300))

    def test_random_inserts_match_dict(self, rng):
        t = RegularBPlusTree(fanout=5)
        ref = {}
        for k in rng.permutation(2_000):
            t.insert(int(k), int(k) * 3)
            ref[int(k)] = int(k) * 3
        t.check_invariants()
        sample = rng.choice(2_000, size=200)
        for k in sample:
            assert t.search(int(k)) == ref[int(k)]

    def test_height_grows_logarithmically(self):
        t = RegularBPlusTree(fanout=8)
        for k in range(4_000):
            t.insert(k, k)
        # 4000 keys, fanout 8: height must stay small.
        assert t.height <= 6
        t.check_invariants()


class TestRangeSearch:
    @pytest.fixture
    def tree(self):
        t = RegularBPlusTree(fanout=4)
        for k in range(0, 100, 2):  # evens 0..98
            t.insert(k, k * 10)
        return t

    def test_full_range(self, tree):
        out = tree.range_search(0, 98)
        assert len(out) == 50
        assert out[0] == (0, 0) and out[-1] == (98, 980)

    def test_inclusive_bounds(self, tree):
        out = tree.range_search(10, 20)
        assert [k for k, _ in out] == [10, 12, 14, 16, 18, 20]

    def test_bounds_between_keys(self, tree):
        out = tree.range_search(11, 19)
        assert [k for k, _ in out] == [12, 14, 16, 18]

    def test_empty_range(self, tree):
        assert tree.range_search(11, 11) == []

    def test_inverted_range(self, tree):
        assert tree.range_search(20, 10) == []

    def test_range_beyond_max(self, tree):
        out = tree.range_search(96, 10_000)
        assert [k for k, _ in out] == [96, 98]

    def test_range_before_min(self, tree):
        out = tree.range_search(-100, 2)
        assert [k for k, _ in out] == [0, 2]

    def test_results_sorted(self, tree):
        out = tree.range_search(0, 98)
        keys = [k for k, _ in out]
        assert keys == sorted(keys)


class TestIteration:
    def test_items_in_order(self):
        t = RegularBPlusTree(fanout=4)
        for k in (5, 1, 9, 3):
            t.insert(k, k)
        assert list(t.items()) == [(1, 1), (3, 3), (5, 5), (9, 9)]

    def test_level_nodes_structure(self):
        t = RegularBPlusTree(fanout=3)
        for k in range(20):
            t.insert(k, k)
        levels = t.level_nodes()
        assert len(levels) == t.height
        assert len(levels[0]) == 1  # root
        assert t.node_count() == sum(len(l) for l in levels)
