"""Tests for the multi-threaded CPU searcher baseline."""

import numpy as np
import pytest

from repro.baselines.cpu_btree import CPUBTreeSearcher
from repro.constants import NOT_FOUND


@pytest.fixture(scope="module")
def searcher():
    keys = np.arange(0, 30_000, 3, dtype=np.int64)
    return CPUBTreeSearcher.from_sorted(keys, fanout=16, n_threads=4)


class TestCPUSearcher:
    def test_hits_and_misses(self, searcher):
        q = np.array([0, 3, 1, 29_997, 10**7], dtype=np.int64)
        out = searcher.search_batch(q)
        assert out.tolist() == [0, 3, NOT_FOUND, 29_997, NOT_FOUND]

    def test_empty_batch(self, searcher):
        assert searcher.search_batch(np.array([], dtype=np.int64)).size == 0

    def test_single_thread_equals_multi(self, searcher, rng):
        q = rng.integers(0, 31_000, size=2_000)
        single = CPUBTreeSearcher(searcher.tree, n_threads=1)
        assert np.array_equal(single.search_batch(q), searcher.search_batch(q))

    def test_small_batch_shortcut(self, searcher):
        q = np.array([3, 6], dtype=np.int64)
        assert searcher.search_batch(q).tolist() == [3, 6]

    def test_result_order_preserved(self, searcher, rng):
        q = rng.integers(0, 31_000, size=999)  # odd size across 4 chunks
        out = searcher.search_batch(q)
        hits = q % 3 == 0
        hits &= q < 30_000
        hits &= q >= 0
        assert np.array_equal(out[hits], q[hits])

    def test_invalid_threads(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            CPUBTreeSearcher.from_sorted(np.arange(10), n_threads=0)
