"""Shared fixtures for the Harmonia reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.btree.bulk import bulk_load
from repro.core.layout import HarmoniaLayout
from repro.core.tree import HarmoniaTree
from repro.workloads.generators import make_key_set


@pytest.fixture
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def small_keys():
    """~3k distinct sorted keys, reused across read-only tests."""
    return make_key_set(3_000, key_space_bits=24, rng=11)


@pytest.fixture(scope="session")
def medium_keys():
    """~50k distinct sorted keys for batch-level tests."""
    return make_key_set(50_000, key_space_bits=34, rng=12)


@pytest.fixture(scope="session")
def small_layout(small_keys):
    return HarmoniaLayout.from_sorted(small_keys, fanout=8, fill=0.8)


@pytest.fixture(scope="session")
def medium_layout(medium_keys):
    return HarmoniaLayout.from_sorted(medium_keys, fanout=64, fill=0.7)


@pytest.fixture
def small_tree(small_keys):
    """A fresh mutable HarmoniaTree per test."""
    return HarmoniaTree.from_sorted(small_keys, fanout=8, fill=0.8)


@pytest.fixture
def regular_tree(small_keys):
    return bulk_load(small_keys, fanout=8, fill=0.8)


def reference_lookup(keys: np.ndarray, values: np.ndarray):
    """Plain-dict oracle for search results."""
    return {int(k): int(v) for k, v in zip(keys, values)}
