"""Tests for the Figures 5-7 worked example."""

import numpy as np
import pytest

from repro.analysis.coalescing_demo import (
    PAPER_EXAMPLE_TARGETS,
    coalescing_demo,
    demo_tree,
)


class TestCoalescingDemo:
    @pytest.fixture(scope="class")
    def results(self):
        return coalescing_demo(demo_tree())

    def test_all_orderings_present(self, results):
        assert set(results) == {"original", "sorted", "partially_sorted"}

    def test_orderings_are_permutations(self, results):
        for r in results.values():
            assert sorted(r.issue_order) == sorted(PAPER_EXAMPLE_TARGETS)

    def test_sorted_is_sorted(self, results):
        assert results["sorted"].issue_order == sorted(PAPER_EXAMPLE_TARGETS)

    def test_partial_groups_without_full_order(self, results):
        ps = results["partially_sorted"].issue_order
        # 1 and 2 share a group; coarse bits keep arrival order within it:
        # 2 (arrived first) precedes 1 — the Figure 6c point.
        assert ps.index(2) < ps.index(1)
        # ...but the small-key group still precedes 20 and 35.
        assert max(ps.index(1), ps.index(2)) < min(ps.index(20), ps.index(35))

    def test_figure6_relationship(self, results):
        """6a (original) needs at least as many transactions as 6b
        (sorted); 6c (partial) matches 6b exactly."""
        orig = results["original"].total_transactions
        full = results["sorted"].total_transactions
        part = results["partially_sorted"].total_transactions
        assert orig >= full
        assert part == full

    def test_root_always_one_transaction(self, results):
        for r in results.values():
            assert r.transactions_per_level[0] == 1

    def test_larger_batch_same_direction(self):
        layout = demo_tree(fanout=8)
        rng = np.random.default_rng(0)
        targets = rng.choice(layout.all_keys(), 64)
        res = coalescing_demo(layout, targets, group_size=8)
        assert (
            res["sorted"].total_transactions
            <= res["original"].total_transactions
        )
        assert (
            res["partially_sorted"].total_transactions
            <= res["original"].total_transactions
        )
