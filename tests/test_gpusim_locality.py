"""Tests for the temporal-locality (DRAM vs L2) model."""

import numpy as np
import pytest

from repro.gpusim.device import TITAN_V, DeviceSpec
from repro.gpusim.locality import (
    LevelSpans,
    choose_block_queries,
    dram_transactions_per_level,
    unique_lines_per_block,
)


def spans(start, end, mask=None):
    return LevelSpans(
        start=np.asarray(start, dtype=np.int64),
        end=np.asarray(end, dtype=np.int64),
        mask=None if mask is None else np.asarray(mask, dtype=bool),
    )


class TestUniqueLinesPerBlock:
    def test_single_block_dedupes(self):
        s = spans([0, 0, 4], [1, 1, 4])
        blocks = np.zeros(3, dtype=np.int64)
        assert unique_lines_per_block(s, blocks) == 3  # {0,1,4}

    def test_blocks_charge_separately(self):
        s = spans([0, 0], [0, 0])
        blocks = np.array([0, 1], dtype=np.int64)
        assert unique_lines_per_block(s, blocks) == 2

    def test_mask_excludes(self):
        s = spans([0, 9], [0, 9], mask=[True, False])
        blocks = np.zeros(2, dtype=np.int64)
        assert unique_lines_per_block(s, blocks) == 1

    def test_empty(self):
        s = spans([], [])
        assert unique_lines_per_block(s, np.zeros(0, dtype=np.int64)) == 0

    def test_range_expansion(self):
        s = spans([10], [13])
        blocks = np.zeros(1, dtype=np.int64)
        assert unique_lines_per_block(s, blocks) == 4


class TestChooseBlockQueries:
    def test_scales_with_l2(self):
        small = DeviceSpec(name="s", l2_bytes=128 * 100)
        big = DeviceSpec(name="b", l2_bytes=128 * 10_000)
        a = choose_block_queries(10_000, 1_000, small)
        b = choose_block_queries(10_000, 1_000, big)
        assert b > a

    def test_minimum_one(self):
        dev = DeviceSpec(name="s", l2_bytes=128)
        assert choose_block_queries(10**9, 10, dev) >= 1

    def test_zero_queries(self):
        assert choose_block_queries(0, 0, TITAN_V) == 1


class TestDramPerLevel:
    def test_hot_level_charged_once(self):
        # 1000 queries all touching line 0: resident -> 1 DRAM miss total.
        n = 1000
        s = spans(np.zeros(n), np.zeros(n))
        out = dram_transactions_per_level([s], n, TITAN_V)
        assert out.tolist() == [1]

    def test_streaming_counts_unique(self):
        # Each query touches its own line: misses everywhere (working set
        # exceeds the resident budget on a tiny device).
        dev = DeviceSpec(name="mini", l2_bytes=128 * 8)
        n = 1000
        s = spans(np.arange(n), np.arange(n))
        out = dram_transactions_per_level([s], n, dev)
        assert out[0] == n

    def test_random_vs_sorted_order(self):
        # Same touched set; sorted order yields fewer modeled misses on a
        # device whose L2 holds a fraction of it.
        rng = np.random.default_rng(0)
        dev = DeviceSpec(name="mini", l2_bytes=128 * 64)
        lines_sorted = np.repeat(np.arange(500), 4)  # 2000 touches, sorted
        lines_random = rng.permutation(lines_sorted)
        s_sorted = spans(lines_sorted, lines_sorted)
        s_random = spans(lines_random, lines_random)
        miss_sorted = dram_transactions_per_level([s_sorted], 2000, dev)[0]
        miss_random = dram_transactions_per_level([s_random], 2000, dev)[0]
        assert miss_sorted < miss_random

    def test_levels_independent(self):
        s1 = spans([0, 0], [0, 0])
        s2 = spans([100, 200], [100, 200])
        out = dram_transactions_per_level([s1, s2], 2, TITAN_V)
        assert out.tolist() == [1, 2]
