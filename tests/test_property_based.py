"""Hypothesis property-based tests on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.btree.bulk import _chunk_sizes, bulk_load
from repro.btree.regular import RegularBPlusTree
from repro.constants import KEY_MAX, NOT_FOUND
from repro.core.layout import HarmoniaLayout
from repro.core.psa import optimal_sort_bits, prepare_batch
from repro.core.search import search_batch, search_scalar
from repro.core.update import BatchUpdater, Operation
from repro.sort.radix import partial_radix_argsort

# Keys well inside int64 and below the sentinel.
key_strategy = st.integers(min_value=0, max_value=(1 << 48) - 1)
fanout_strategy = st.sampled_from([3, 4, 5, 8, 16, 64])

common_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@common_settings
@given(keys=st.sets(key_strategy, min_size=1, max_size=300),
       fanout=fanout_strategy,
       fill=st.sampled_from([0.5, 0.7, 1.0]))
def test_bulk_load_preserves_contents(keys, fanout, fill):
    sorted_keys = sorted(keys)
    tree = bulk_load(sorted_keys, fanout=fanout, fill=fill)
    tree.check_invariants()
    assert list(tree.keys()) == sorted_keys


@common_settings
@given(keys=st.lists(key_strategy, min_size=1, max_size=200, unique=True),
       fanout=fanout_strategy)
def test_insertion_order_irrelevant(keys, fanout):
    tree = RegularBPlusTree(fanout)
    for k in keys:
        tree.insert(k, k)
    tree.check_invariants()
    assert list(tree.keys()) == sorted(keys)


@common_settings
@given(data=st.data())
def test_insert_delete_roundtrip(data):
    keys = data.draw(st.lists(key_strategy, min_size=2, max_size=150,
                              unique=True))
    fanout = data.draw(fanout_strategy)
    n_del = data.draw(st.integers(min_value=1, max_value=len(keys)))
    tree = RegularBPlusTree(fanout)
    for k in keys:
        tree.insert(k, k * 2)
    victims = keys[:n_del]
    for k in victims:
        assert tree.delete(k)
    tree.check_invariants()
    survivors = sorted(set(keys) - set(victims))
    assert list(tree.keys()) == survivors
    for k in victims:
        assert tree.search(k) is None


@common_settings
@given(keys=st.sets(key_strategy, min_size=1, max_size=300),
       fanout=fanout_strategy,
       fill=st.sampled_from([0.6, 1.0]))
def test_layout_roundtrip_and_search(keys, fanout, fill):
    sorted_keys = np.array(sorted(keys), dtype=np.int64)
    layout = HarmoniaLayout.from_sorted(sorted_keys, fanout=fanout, fill=fill)
    layout.check_invariants()
    assert np.array_equal(layout.all_keys(), sorted_keys)
    # Every stored key is found; probes between keys are not.
    out = search_batch(layout, sorted_keys)
    assert np.array_equal(out, sorted_keys)
    probes = sorted_keys[:-1] + 1
    probes = probes[~np.isin(probes, sorted_keys)]
    if probes.size:
        assert np.all(search_batch(layout, probes) == NOT_FOUND)


@common_settings
@given(queries=st.lists(key_strategy, min_size=0, max_size=400),
       bits=st.integers(min_value=0, max_value=48))
def test_psa_is_a_permutation(queries, bits):
    q = np.array(queries, dtype=np.int64)
    psa = prepare_batch(q, bits=bits, key_bits=48)
    assert np.array_equal(np.sort(psa.order), np.arange(q.size))
    assert np.array_equal(psa.queries[psa.restore], q)
    # Grouping property: top `bits_sorted` bits are non-decreasing.
    if q.size and psa.bits_sorted:
        tops = psa.queries >> max(48 - psa.bits_sorted, 0)
        assert np.all(np.diff(tops) >= 0)


@common_settings
@given(keys=st.lists(key_strategy, min_size=0, max_size=500),
       bits=st.sampled_from([0, 8, 16, 48]))
def test_radix_partial_refines_to_full(keys, bits):
    arr = np.array(keys, dtype=np.int64)
    res = partial_radix_argsort(arr, bits=bits, key_bits=48)
    if bits == 48 and arr.size:
        assert np.array_equal(arr[res.order], np.sort(arr))


@common_settings
@given(n=st.integers(min_value=0, max_value=3_000),
       target=st.integers(min_value=1, max_value=64))
def test_chunk_sizes_legal(n, target):
    minimum = max(1, (target + 1) // 2)
    maximum = max(target, 2 * minimum - 1)
    sizes = _chunk_sizes(n, target, minimum, maximum)
    assert sum(sizes) == n
    if n >= 2 * minimum:
        assert all(minimum <= s <= maximum for s in sizes)
    elif n > 0:
        assert len(sizes) == 1


@common_settings
@given(tree_size=st.integers(min_value=1, max_value=1 << 40),
       k=st.sampled_from([4, 8, 16, 32]))
def test_equation2_bounds(tree_size, k):
    n = optimal_sort_bits(tree_size, k)
    assert 0 <= n <= 64
    # N grows with tree size, shrinks with cache-line capacity.
    assert optimal_sort_bits(tree_size, k) >= optimal_sort_bits(
        max(tree_size // 2, 1), k
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_batch_update_matches_dict_model(data):
    base = data.draw(
        st.sets(st.integers(min_value=0, max_value=2_000), min_size=10,
                max_size=200)
    )
    base_keys = np.array(sorted(base), dtype=np.int64)
    layout = HarmoniaLayout.from_sorted(base_keys, fanout=8, fill=0.8)
    up = BatchUpdater(layout, fill=0.8)
    model = {int(k): int(k) for k in base_keys}

    n_ops = data.draw(st.integers(min_value=1, max_value=60))
    for _ in range(n_ops):
        kind = data.draw(st.sampled_from(["insert", "update", "delete"]))
        key = data.draw(st.integers(min_value=0, max_value=2_100))
        if kind == "insert":
            up.apply_op(Operation("insert", key, key + 1))
            model.setdefault(key, key + 1)
        elif kind == "update":
            up.apply_op(Operation("update", key, -5))
            if key in model:
                model[key] = -5
        else:
            up.apply_op(Operation("delete", key))
            model.pop(key, None)

    new = up.movement()
    if not model:
        assert new is None
        return
    new.check_invariants()
    items = sorted(model.items())
    got = search_batch(new, np.array([k for k, _ in items], dtype=np.int64))
    assert got.tolist() == [v for _, v in items]
