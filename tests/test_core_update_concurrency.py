"""Concurrency tests for Algorithm 1 (two-grained locking).

These run real threads against the protocol: the mutual-exclusion
guarantees must hold under the GIL's arbitrary interleavings.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.core.search import search_batch
from repro.core.update import BatchUpdater, Operation, TwoGrainedLocks


class TestTwoGrainedLocks:
    def test_fine_ops_run_concurrently_on_distinct_leaves(self):
        locks = TwoGrainedLocks()
        inside = []
        barrier = threading.Barrier(2, timeout=5)

        def body():
            inside.append(threading.get_ident())
            barrier.wait()  # both fine ops must be inside simultaneously

        threads = [
            threading.Thread(target=locks.fine_op, args=(i, body))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert len(inside) == 2
        assert locks.global_count == 0

    def test_fine_ops_serialize_on_same_leaf(self):
        locks = TwoGrainedLocks()
        active = []
        overlap = []

        def body():
            active.append(1)
            if len(active) > 1:
                overlap.append(True)
            time.sleep(0.01)
            active.pop()

        threads = [
            threading.Thread(target=locks.fine_op, args=(7, body))
            for _ in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=5)
        assert not overlap

    def test_coarse_waits_for_fine_drain(self):
        locks = TwoGrainedLocks()
        order = []
        release = threading.Event()

        def slow_fine():
            order.append("fine-start")
            release.wait(timeout=5)
            order.append("fine-end")

        def structural():
            order.append("coarse")

        t1 = threading.Thread(target=locks.fine_op, args=(1, slow_fine))
        t1.start()
        time.sleep(0.05)  # let the fine op take the counter
        t2 = threading.Thread(target=locks.coarse_op, args=(structural,))
        t2.start()
        time.sleep(0.05)
        assert "coarse" not in order  # must be spinning
        release.set()
        t1.join(timeout=5)
        t2.join(timeout=5)
        assert order == ["fine-start", "fine-end", "coarse"]

    def test_counter_returns_to_zero_after_exception(self):
        locks = TwoGrainedLocks()

        def boom():
            raise RuntimeError("op failed")

        with pytest.raises(RuntimeError):
            locks.fine_op(1, boom)
        assert locks.global_count == 0
        # Coarse path must not be blocked afterwards.
        done = []
        locks.coarse_op(lambda: done.append(1))
        assert done == [1]

    def test_fine_lock_reused_per_leaf(self):
        locks = TwoGrainedLocks()
        assert locks.fine_lock_for(3) is locks.fine_lock_for(3)
        assert locks.fine_lock_for(3) is not locks.fine_lock_for(4)


class TestConcurrentBatches:
    @pytest.mark.parametrize("n_threads", [1, 2, 8])
    def test_parallel_batch_equals_reference(self, n_threads):
        rng = np.random.default_rng(99)
        base = np.arange(0, 40_000, 4, dtype=np.int64)
        layout = HarmoniaLayout.from_sorted(base, fanout=16, fill=0.7)
        up = BatchUpdater(layout, fill=0.7)

        # Disjoint key sets per op kind so results are order-independent.
        inserts = rng.choice(np.arange(1, 40_000, 4), 3_000, replace=False)
        updates = rng.choice(base[: base.size // 2], 2_000, replace=False)
        deletes = rng.choice(base[base.size // 2 :], 1_000, replace=False)
        ops = (
            [Operation("insert", int(k), int(k) * 2) for k in inserts]
            + [Operation("update", int(k), -1) for k in updates]
            + [Operation("delete", int(k)) for k in deletes]
        )
        rng.shuffle(ops)
        up.apply_batch(ops, n_threads=n_threads)
        new = up.movement()
        new.check_invariants()

        assert up.result.inserted == 3_000
        assert up.result.updated == 2_000
        assert up.result.deleted == 1_000
        assert up.result.failed == 0
        assert new.n_keys == base.size + 3_000 - 1_000

        got = search_batch(new, inserts)
        assert np.array_equal(got, inserts * 2)
        got = search_batch(new, updates)
        assert np.all(got == -1)
        from repro.constants import NOT_FOUND

        got = search_batch(new, deletes)
        assert np.all(got == NOT_FOUND)

    def test_contended_single_leaf(self):
        # Hammer one leaf from many threads: all inserts must land.
        layout = HarmoniaLayout.from_sorted(
            np.arange(0, 4_000, 40, dtype=np.int64), fanout=64, fill=0.9
        )
        up = BatchUpdater(layout, fill=0.9)
        ops = [Operation("insert", k, k) for k in range(1, 39)]  # one leaf
        up.apply_batch(ops, n_threads=8)
        new = up.movement()
        new.check_invariants()
        got = search_batch(new, np.arange(1, 39))
        assert np.array_equal(got, np.arange(1, 39))
