"""Gapped ≡ scalar *result* equivalence for the in-place update executor.

The contract :class:`~repro.core.update_plan.GappedBatchUpdater` ships
under (docs/update.md): for any batch, ``UpdateConfig(mode="gapped")``
produces identical accounting (inserted/updated/deleted/failed), identical
query results and identical logical ``(key, value)`` content to
``UpdateConfig(mode="scalar", n_threads=1)`` — **not** byte-identical
layouts (gaps change the physical layout by design).  Hypothesis pins the
contract over random trees and op mixes, including through
:class:`~repro.core.epoch.EpochManager`; directed tests cover the movement
-epoch triggers (overflow, watermark, occupancy), windowed streaming,
emptying the tree mid-batch, and the non-mutation guarantee.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import EpochManager, HarmoniaTree, UpdateConfig
from repro.core.update import Operation
from repro.core.update_plan import GappedBatchUpdater


def make_tree(n_keys, fanout, fill, stride=2):
    keys = np.arange(0, n_keys * stride, stride, dtype=np.int64)
    return HarmoniaTree.from_sorted(keys, fanout=fanout, fill=fill)


def run_both(n_keys, fanout, fill, ops, config=None):
    scalar_tree = make_tree(n_keys, fanout, fill)
    gapped_tree = make_tree(n_keys, fanout, fill)
    sres = scalar_tree.apply_batch(
        ops, UpdateConfig(mode="scalar", n_threads=1)
    )
    gres = gapped_tree.apply_batch(
        ops, config or UpdateConfig(mode="gapped")
    )
    return scalar_tree, sres, gapped_tree, gres


def assert_results_equivalent(scalar_tree, sres, gapped_tree, gres,
                              probe_hi=500):
    """The gapped contract: accounting, membership and values match; the
    physical layout is free to differ."""
    for field in ("inserted", "updated", "deleted", "failed"):
        assert getattr(sres, field) == getattr(gres, field), field
    assert len(scalar_tree) == len(gapped_tree)
    assert list(scalar_tree.items()) == list(gapped_tree.items())
    probe = np.arange(probe_hi, dtype=np.int64)
    assert np.array_equal(
        scalar_tree.search_batch(probe), gapped_tree.search_batch(probe)
    )
    if gapped_tree._layout is not None:
        gapped_tree._layout.check_invariants()


op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(0, 400),
)


def to_ops(raw):
    return [Operation(kind, key, key * 7 + 1) for kind, key in raw]


class TestEquivalenceProperty:
    @settings(max_examples=50, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(1, 200),
        fanout=st.sampled_from([4, 8, 16]),
        fill=st.sampled_from([0.6, 0.7, 1.0]),
        raw=st.lists(op_strategy, min_size=0, max_size=120),
    )
    def test_mixed_batches(self, n_keys, fanout, fill, raw):
        run = run_both(n_keys, fanout, fill, to_ops(raw))
        assert_results_equivalent(*run)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(1, 150),
        raw=st.lists(op_strategy, min_size=1, max_size=100),
        window=st.sampled_from([1, 3, 17]),
    )
    def test_windowed_streaming(self, n_keys, raw, window):
        """Tiny plan windows (down to one op per window) stream the batch
        through many plan/apply rounds — results must not depend on the
        window size."""
        cfg = UpdateConfig(mode="gapped", plan_window=window)
        run = run_both(n_keys, 8, 0.7, to_ops(raw), config=cfg)
        assert_results_equivalent(*run)

    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(1, 150),
        raws=st.lists(
            st.lists(op_strategy, min_size=0, max_size=40),
            min_size=2, max_size=4,
        ),
    )
    def test_sequential_batches(self, n_keys, raws):
        """Gaps accumulate across batches; every batch must stay
        equivalent to the scalar path applied to the same history."""
        scalar_tree = make_tree(n_keys, 8, 0.7)
        gapped_tree = make_tree(n_keys, 8, 0.7)
        for raw in raws:
            ops = to_ops(raw)
            sres = scalar_tree.apply_batch(
                ops, UpdateConfig(mode="scalar", n_threads=1)
            )
            gres = gapped_tree.apply_batch(ops, UpdateConfig(mode="gapped"))
            assert_results_equivalent(scalar_tree, sres, gapped_tree, gres)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(1, 120),
        raw=st.lists(op_strategy, min_size=1, max_size=80),
    )
    def test_through_epoch_manager(self, n_keys, raw):
        ops = to_ops(raw)
        scalar_mgr = EpochManager(
            make_tree(n_keys, 8, 0.7),
            update_config=UpdateConfig(mode="scalar", n_threads=1),
        )
        gapped_mgr = EpochManager(
            make_tree(n_keys, 8, 0.7),
            update_config=UpdateConfig(mode="gapped"),
        )
        scalar_mgr.submit_many(ops)
        gapped_mgr.submit_many(ops)
        sres = scalar_mgr.flush()
        gres = gapped_mgr.flush()
        for field in ("inserted", "updated", "deleted", "failed"):
            assert getattr(sres, field) == getattr(gres, field), field
        probe = np.arange(500, dtype=np.int64)
        assert np.array_equal(
            scalar_mgr.search_batch(probe), gapped_mgr.search_batch(probe)
        )
        assert 0.0 <= gapped_mgr.occupancy() <= 1.0
        assert 0.0 <= gapped_mgr.compaction_pending() <= 1.0


class TestMovementTriggers:
    def test_pure_updates_never_run_an_epoch(self):
        tree = make_tree(400, 8, 0.7)
        ops = [Operation("update", k, k + 1) for k in range(0, 800, 2)]
        updater = GappedBatchUpdater(tree.layout, fill=0.7)
        res = updater.run(ops)
        assert res.failed == 0 and res.updated == 400
        assert updater.movement_epochs == 0
        assert updater.absorbed_ops == 400

    def test_light_inserts_absorb_without_an_epoch(self):
        tree = make_tree(400, 8, 0.7)
        # One insert per distinct leaf region; fill 0.7 of 7 slots leaves
        # slack everywhere, so nothing overflows and the watermark holds.
        ops = [Operation("insert", k, k) for k in range(1, 40, 8)]
        updater = GappedBatchUpdater(tree.layout, fill=0.7)
        res = updater.run(ops)
        assert res.inserted == len(ops)
        assert updater.movement_epochs == 0
        assert updater.new_layout.leaf_counts is not None

    def test_overflowing_one_leaf_forces_an_epoch(self):
        tree = make_tree(400, 8, 0.7)
        # 20 inserts into one leaf's key range cannot fit in its slack.
        ops = [Operation("insert", 801 + 2 * i, i) for i in range(20)]
        updater = GappedBatchUpdater(tree.layout, fill=0.7)
        res = updater.run(ops)
        assert res.inserted == 20
        assert updater.movement_epochs >= 1
        assert updater.overflow_ops > 0
        updater.new_layout.check_invariants()

    def test_delete_heavy_drift_triggers_occupancy_epoch(self):
        tree = make_tree(512, 8, 0.7)
        # Delete ~80% of the keys: occupancy sinks far below the default
        # 0.35 watermark, so a compaction epoch must re-chunk the leaves.
        ops = [Operation("delete", k) for k in range(0, 820, 2)]
        updater = GappedBatchUpdater(tree.layout, fill=0.7)
        res = updater.run(ops)
        assert res.deleted == 410
        assert updater.movement_epochs >= 1
        new = updater.new_layout
        new.check_invariants()
        assert new.occupancy() >= 0.35

    def test_watermark_knob_controls_epoch_frequency(self):
        # With watermark 1.0 and occupancy_low 0, only hard overflow can
        # force movement — deletes just leave gaps behind.
        tree = make_tree(256, 8, 0.7)
        ops = [Operation("delete", k) for k in range(0, 200, 2)]
        lax = UpdateConfig(mode="gapped", gap_watermark=1.0,
                           occupancy_low=0.0)
        updater = GappedBatchUpdater(tree.layout, fill=0.7, config=lax)
        updater.run(ops)
        assert updater.movement_epochs == 0
        counts = updater.new_layout.leaf_key_counts()
        assert counts.min() >= 0  # gaps, even empty leaves, are legal
        assert updater.new_layout.n_keys == 256 - 100

    def test_emptying_the_tree_mid_batch_bootstraps(self):
        tree = make_tree(10, 4, 1.0)
        ops = [Operation("delete", k) for k in range(0, 20, 2)]
        ops += [Operation("insert", 5, 55), Operation("insert", 7, 77)]
        cfg = UpdateConfig(mode="gapped", plan_window=10)
        res = tree.apply_batch(ops, cfg)
        assert res.deleted == 10 and res.inserted == 2
        assert list(tree.items()) == [(5, 55), (7, 77)]

    def test_emptying_the_tree_entirely_yields_empty(self):
        tree = make_tree(8, 4, 1.0)
        ops = [Operation("delete", k) for k in range(0, 16, 2)]
        res = tree.apply_batch(ops, UpdateConfig(mode="gapped"))
        assert res.deleted == 8
        assert len(tree) == 0
        assert tree.search(0) is None


class TestExecutorGuarantees:
    def test_input_layout_never_mutated(self):
        tree = make_tree(300, 8, 0.7)
        before_k = tree.layout.key_region.copy()
        before_v = tree.layout.leaf_values.copy()
        snapshot = tree.layout
        ops = [Operation("insert", k, k) for k in range(1, 100, 2)]
        ops += [Operation("delete", k) for k in range(0, 100, 4)]
        ops += [Operation("update", k, 0) for k in range(100, 200, 2)]
        updater = GappedBatchUpdater(snapshot, fill=0.7)
        updater.run(ops)
        assert np.array_equal(snapshot.key_region, before_k)
        assert np.array_equal(snapshot.leaf_values, before_v)

    def test_empty_batch_returns_same_snapshot(self):
        tree = make_tree(50, 8, 0.7)
        snapshot = tree.layout
        updater = GappedBatchUpdater(snapshot, fill=0.7)
        res = updater.run([])
        assert updater.new_layout is snapshot
        assert res.n_effective == 0

    def test_last_wins_within_a_key_chain(self):
        tree = make_tree(50, 8, 0.7)
        ops = [
            Operation("insert", 7, 1),
            Operation("update", 7, 2),
            Operation("delete", 7),
            Operation("insert", 7, 3),
            Operation("update", 7, 4),
        ]
        res = tree.apply_batch(ops, UpdateConfig(mode="gapped"))
        assert (res.inserted, res.updated, res.deleted, res.failed) \
            == (2, 2, 1, 0)
        assert tree.search(7) == 4

    def test_n_threads_accepted_and_ignored(self):
        tree = make_tree(100, 8, 0.7)
        ops = [Operation("update", k, 9) for k in range(0, 100, 2)]
        res = tree.apply_batch(ops, UpdateConfig(mode="gapped", n_threads=8))
        assert res.updated == 50

    def test_gap_absorption_reported(self):
        import repro.obs as obs
        from repro.obs.schema import validate_snapshot

        tree = make_tree(400, 16, 0.7)
        ops = [Operation("update", k, 1) for k in range(0, 700, 2)]
        ops += [Operation("insert", k, 1) for k in range(1, 40, 8)]
        with obs.recording() as reg:
            tree.apply_batch(ops, UpdateConfig(mode="gapped"))
        snap = reg.snapshot()
        validate_snapshot(snap)
        assert snap["gauges"]["update.gap_absorption"] == 1.0
        assert snap["counters"]["update.movement_epochs"] == 0
        assert 0.0 < snap["gauges"]["layout.occupancy"] <= 1.0


class TestShardedGapped:
    def test_sharded_tree_inherits_gapped_mode(self):
        pytest.importorskip("multiprocessing")
        from repro.shard import ShardedTree

        keys = np.arange(0, 4000, 2, dtype=np.int64)
        ops = [Operation("insert", k, k) for k in range(1, 400, 8)]
        ops += [Operation("update", k, 5) for k in range(0, 400, 2)]
        ops += [Operation("delete", k) for k in range(400, 500, 4)]

        ref = HarmoniaTree.from_sorted(keys, fanout=16, fill=0.7)
        sref = ref.apply_batch(ops, UpdateConfig(mode="scalar", n_threads=1))

        with ShardedTree.from_sorted(
            keys, n_shards=2, fanout=16, fill=0.7,
            update_config=UpdateConfig(mode="gapped"),
        ) as sharded:
            gres = sharded.apply_batch(ops)
            for field in ("inserted", "updated", "deleted", "failed"):
                assert getattr(sref, field) == getattr(gres, field), field
            probe = np.arange(600, dtype=np.int64)
            assert np.array_equal(
                ref.search_batch(probe), sharded.search_many(probe)
            )
