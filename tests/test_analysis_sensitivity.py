"""Tests for the calibration-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import sweep_cycles_per_step


class TestSensitivity:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep_cycles_per_step(
            values=(8.0, 16.0, 24.0), n_keys=1 << 13, n_queries=1 << 11, rng=5
        )

    def test_points_cover_sweep(self, report):
        assert [p.cycles_per_step for p in report.points] == [8.0, 16.0, 24.0]

    def test_throughput_monotone_in_compute_cost(self, report):
        gqs = [p.harmonia_gqs for p in report.points]
        assert gqs == sorted(gqs, reverse=True)

    def test_speedup_always_above_one(self, report):
        assert all(p.speedup > 1.0 for p in report.points)

    def test_shape_is_calibration_robust(self, report):
        # The docs/model.md claim: ratios move < ~15% over the 8-24 range.
        assert report.max_ratio_swing < 0.35

    def test_rows_render(self, report):
        rows = report.rows()
        assert len(rows) == 3
        assert {"cycles_per_step", "speedup"} <= set(rows[0])
