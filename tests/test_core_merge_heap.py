"""Tests for layout merging, compaction, the value heap, cursors and
fanout tuning."""

import numpy as np
import pytest

from repro.constants import KEY_MAX
from repro.core import HarmoniaTree
from repro.core.heap import RecordStore, ValueHeap
from repro.core.layout import HarmoniaLayout
from repro.core.merge import compact, merge_layouts, merged_items
from repro.core.search import search_batch
from repro.errors import ConfigError


def lay(keys, values=None, fanout=8, fill=0.8):
    return HarmoniaLayout.from_sorted(
        np.asarray(keys, dtype=np.int64), values, fanout=fanout, fill=fill
    )


class TestMerge:
    def test_disjoint_union(self):
        a = lay(range(0, 100, 2))
        b = lay(range(1, 100, 2))
        merged = merge_layouts(a, b)
        merged.check_invariants()
        assert merged.n_keys == 100
        assert np.array_equal(merged.all_keys(), np.arange(100))

    def test_collision_prefers_b(self):
        a = lay([1, 2, 3], values=[10, 20, 30])
        b = lay([2, 4], values=[-2, -4])
        merged = merge_layouts(a, b, prefer="b")
        out = search_batch(merged, np.array([1, 2, 3, 4]))
        assert out.tolist() == [10, -2, 30, -4]

    def test_collision_prefers_a(self):
        a = lay([1, 2], values=[10, 20])
        b = lay([2, 3], values=[-2, -3])
        merged = merge_layouts(a, b, prefer="a")
        out = search_batch(merged, np.array([1, 2, 3]))
        assert out.tolist() == [10, 20, -3]

    def test_bad_prefer(self):
        a = lay([1])
        with pytest.raises(ConfigError):
            merged_items(a, a, prefer="c")

    def test_fanout_override(self):
        a = lay(range(100), fanout=8)
        b = lay(range(100, 200), fanout=8)
        merged = merge_layouts(a, b, fanout=16)
        assert merged.fanout == 16
        merged.check_invariants()

    def test_merge_is_commutative_for_disjoint(self):
        a = lay(range(0, 50, 2))
        b = lay(range(1, 50, 2))
        ab = merge_layouts(a, b)
        ba = merge_layouts(b, a)
        assert np.array_equal(ab.all_keys(), ba.all_keys())


class TestCompact:
    def test_repacks_to_fill(self):
        sparse = lay(range(2_000), fanout=16, fill=0.5)
        dense = compact(sparse, fill=1.0)
        dense.check_invariants()
        assert dense.n_keys == sparse.n_keys
        assert dense.n_leaves < sparse.n_leaves
        assert np.array_equal(dense.all_keys(), sparse.all_keys())

    def test_values_preserved(self):
        src = lay(range(100), values=np.arange(100) * 9, fanout=8, fill=0.5)
        out = compact(src)
        got = search_batch(out, np.arange(100))
        assert np.array_equal(got, np.arange(100) * 9)


class TestValueHeap:
    def test_roundtrip(self):
        h = ValueHeap(capacity=8)  # forces growth
        offsets = [h.append(f"record-{i}".encode()) for i in range(100)]
        for i, off in enumerate(offsets):
            assert h.get(off) == f"record-{i}".encode()

    def test_empty_record(self):
        h = ValueHeap()
        off = h.append(b"")
        assert h.get(off) == b""

    def test_bad_offset(self):
        h = ValueHeap()
        h.append(b"x")
        with pytest.raises(ConfigError):
            h.get(999)

    def test_type_checked(self):
        with pytest.raises(ConfigError):
            ValueHeap().append("not bytes")


class TestRecordStore:
    def test_from_items_and_get(self):
        store = RecordStore.from_items(
            [(5, b"five"), (1, b"one"), (9, b"nine")], fanout=4
        )
        assert len(store) == 3
        assert store.get(5) == b"five"
        assert store.get(2) is None
        assert store.get_batch([1, 2, 9]) == [b"one", None, b"nine"]

    def test_put_overwrites(self):
        store = RecordStore.from_items([(1, b"a")], fanout=4)
        store.put(1, b"updated")
        store.put(2, b"new")
        assert store.get(1) == b"updated"
        assert store.get(2) == b"new"

    def test_put_batch_upserts(self):
        store = RecordStore.from_items([(1, b"a"), (2, b"b")], fanout=4)
        store.put_batch([(2, b"B"), (3, b"C")])
        assert store.get(2) == b"B"
        assert store.get(3) == b"C"
        assert len(store) == 3

    def test_range(self):
        store = RecordStore.from_items(
            [(i, str(i).encode()) for i in range(0, 50, 5)], fanout=4
        )
        got = store.range(10, 26)
        assert got == [(10, b"10"), (15, b"15"), (20, b"20"), (25, b"25")]

    def test_delete_and_vacuum(self):
        store = RecordStore.from_items(
            [(i, bytes(50)) for i in range(40)], fanout=8
        )
        used_before = store.heap.bytes_used()
        for k in range(0, 40, 2):
            assert store.delete(k)
        reclaimed = store.vacuum()
        assert reclaimed > 0
        assert store.heap.bytes_used() < used_before
        assert store.get(1) == bytes(50)
        assert store.get(0) is None
        store.tree.check_invariants()

    def test_vacuum_empty(self):
        store = RecordStore.from_items([(1, b"x")], fanout=4)
        store.delete(1)
        assert store.vacuum() > 0
        assert len(store) == 0


class TestCursors:
    @pytest.fixture(scope="class")
    def tree(self):
        keys = np.arange(0, 3_000, 3, dtype=np.int64)
        return HarmoniaTree.from_sorted(keys, keys * 2, fanout=8, fill=0.6)

    def test_full_scan_in_order(self, tree):
        items = list(tree.items())
        assert len(items) == 1_000
        keys = [k for k, _ in items]
        assert keys == sorted(keys)
        assert items[0] == (0, 0)
        assert items[-1] == (2_997, 5_994)

    def test_start_positions_cursor(self, tree):
        items = list(tree.items(start=100))
        assert items[0][0] == 102  # first stored key >= 100
        assert all(k >= 100 for k, _ in items)

    def test_start_on_existing_key(self, tree):
        assert next(tree.items(start=99))[0] == 99

    def test_start_beyond_max(self, tree):
        assert list(tree.items(start=10**9)) == []

    def test_keys_cursor(self, tree):
        ks = list(tree.keys(start=2_990))
        assert ks == [2_991, 2_994, 2_997]

    def test_empty_tree_cursor(self):
        assert list(HarmoniaTree.empty().items()) == []

    def test_lazy(self, tree):
        gen = tree.items()
        assert next(gen) == (0, 0)  # no materialization required


class TestTuning:
    def test_recommendation(self):
        from repro.core.tuning import recommend_fanout

        rec = recommend_fanout(
            1 << 20, candidates=(16, 64), sample_keys=1 << 12,
            sample_queries=1 << 10, rng=3,
        )
        assert rec.fanout in (16, 64)
        assert set(rec.modeled_gqs_by_fanout) == {16, 64}
        assert all(v > 0 for v in rec.modeled_gqs_by_fanout.values())
        assert rec.row()["recommended_fanout"] == rec.fanout

    def test_empty_candidates(self):
        from repro.core.tuning import recommend_fanout

        with pytest.raises(ConfigError):
            recommend_fanout(100, candidates=())


class TestKwayMergeRuns:
    """The heap path behind ``concat_sorted_runs(policy="last_wins")``
    for >= 3 runs — must stay byte-identical to the concatenate/argsort/
    keep-last reference it replaces."""

    @staticmethod
    def _reference(parts):
        ks = np.concatenate([k for k, _ in parts])
        vs = np.concatenate([v for _, v in parts])
        order = np.argsort(ks, kind="stable")
        ks, vs = ks[order], vs[order]
        keep = np.ones(ks.size, dtype=bool)
        keep[:-1] = ks[1:] != ks[:-1]  # last occurrence wins
        return ks[keep], vs[keep]

    def test_fuzz_matches_argsort_reference(self):
        from repro.core.heap import kway_merge_runs

        rng = np.random.default_rng(7)
        for _ in range(50):
            n_runs = rng.integers(2, 6)
            parts = []
            for _ in range(n_runs):
                n = int(rng.integers(0, 40))
                k = np.unique(rng.integers(0, 60, size=n).astype(np.int64))
                v = rng.integers(-100, 100, size=k.size).astype(np.int64)
                parts.append((k, v))
            got_k, got_v = kway_merge_runs(parts)
            exp_k, exp_v = self._reference(parts)
            assert np.array_equal(got_k, exp_k)
            assert np.array_equal(got_v, exp_v)

    def test_latest_run_wins_on_ties(self):
        from repro.core.heap import kway_merge_runs

        parts = [
            (np.array([1, 5]), np.array([10, 50])),
            (np.array([5, 9]), np.array([-5, 90])),
            (np.array([5]), np.array([555])),
        ]
        k, v = kway_merge_runs(parts)
        assert k.tolist() == [1, 5, 9]
        assert v.tolist() == [10, 555, 90]

    def test_disjoint_runs_gallop_whole_blocks(self):
        from repro.core.heap import kway_merge_runs

        parts = [
            (np.arange(0, 100), np.arange(0, 100) * 2),
            (np.arange(100, 200), np.arange(100, 200) * 3),
            (np.arange(200, 300), np.arange(200, 300) * 5),
        ]
        k, v = kway_merge_runs(parts)
        exp_k, exp_v = self._reference(parts)
        assert np.array_equal(k, exp_k) and np.array_equal(v, exp_v)

    def test_empty_runs_and_empty_input(self):
        from repro.core.heap import kway_merge_runs

        empty = np.empty(0, dtype=np.int64)
        k, v = kway_merge_runs([(empty, empty)] * 3)
        assert k.size == 0 and v.size == 0
        k, v = kway_merge_runs([])
        assert k.size == 0 and v.size == 0

    def test_mismatched_run_rejected(self):
        from repro.core.heap import kway_merge_runs

        with pytest.raises(ConfigError):
            kway_merge_runs([(np.arange(3), np.arange(2))])

    def test_concat_sorted_runs_dispatches_to_heap(self):
        from repro.core.merge import concat_sorted_runs

        parts = [
            (np.array([1, 4, 9]), np.array([1, 2, 3])),
            (np.array([2, 4, 11]), np.array([4, 5, 6])),
            (np.array([4, 10]), np.array([7, 8])),
        ]
        k, v = concat_sorted_runs(parts, policy="last_wins")
        exp_k, exp_v = TestKwayMergeRuns._reference(parts)
        assert np.array_equal(k, exp_k)
        assert np.array_equal(v, exp_v)
