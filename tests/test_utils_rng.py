"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(7)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(ensure_rng(ss), np.random.Generator)

    def test_rejects_strings(self):
        with pytest.raises(TypeError):
            ensure_rng("not a seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(3, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(3, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(3, -1)

    def test_children_deterministic_from_seed(self):
        a = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 4)]
        b = [g.integers(0, 1 << 30) for g in spawn_rngs(9, 4)]
        assert a == b

    def test_children_independent(self):
        children = spawn_rngs(9, 4)
        draws = [int(g.integers(0, 1 << 62)) for g in children]
        assert len(set(draws)) == 4


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(3, salt=1) == derive_seed(3, salt=1)

    def test_salt_changes_seed(self):
        assert derive_seed(3, salt=1) != derive_seed(3, salt=2)
