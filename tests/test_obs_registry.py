"""Unit tests for the obs registry: counters, histograms, spans, scoping."""

import threading

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.obs.registry import (
    INT64_MAX,
    INT64_MIN,
    Histogram,
    MetricsRegistry,
    NULL_RECORDER,
    NullRecorder,
    TraceConfig,
)
from repro.obs.schema import (
    DEPTH_EDGES,
    SCHEMA_VERSION,
    default_edges_for,
    lookup,
    validate_snapshot,
)


class TestCounters:
    def test_increment_and_default(self):
        reg = MetricsRegistry()
        reg.counter("engine.batches")
        reg.counter("engine.batches", 5)
        assert reg.counter_value("engine.batches") == 6
        assert reg.counter_value("never.recorded") == 0

    def test_saturates_at_int64_max(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries", INT64_MAX - 1)
        reg.counter("engine.queries", 10)
        assert reg.counter_value("engine.queries") == INT64_MAX
        reg.counter("engine.queries", 1)  # stays saturated, no wrap
        assert reg.counter_value("engine.queries") == INT64_MAX

    def test_saturates_at_int64_min(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries", INT64_MIN)
        reg.counter("engine.queries", -10)
        assert reg.counter_value("engine.queries") == INT64_MIN

    def test_negative_increment(self):
        reg = MetricsRegistry()
        reg.counter("engine.queries", 10)
        reg.counter("engine.queries", -3)
        assert reg.counter_value("engine.queries") == 7


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("stream.wall_s", 1.0)
        reg.gauge("stream.wall_s", 2.5)
        assert reg.gauge_value("stream.wall_s") == 2.5
        assert reg.gauge_value("missing", default=-1.0) == -1.0


class TestHistogram:
    def test_bucket_edges_left_closed(self):
        h = Histogram((1.0, 2.0, 4.0))
        # bucket 0 = (-inf, 1), 1 = [1, 2), 2 = [2, 4), 3 = [4, inf)
        for v in (0.0, 0.999):
            h.observe(v)
        h.observe(1.0)  # edge value belongs to the bucket it starts
        h.observe(1.999)
        h.observe(2.0)
        h.observe(4.0)
        h.observe(100.0)
        assert h.counts == [2, 2, 1, 2]
        assert h.count == 7 == sum(h.counts)
        assert h.min == 0.0 and h.max == 100.0

    def test_stats(self):
        h = Histogram((10.0,))
        assert h.mean == 0.0
        h.observe(2.0)
        h.observe(4.0)
        assert h.mean == 3.0
        d = h.to_dict()
        assert d["count"] == 2 and d["sum"] == 6.0
        assert len(d["counts"]) == len(d["edges"]) + 1

    def test_empty_to_dict_min_max_none(self):
        d = Histogram((1.0,)).to_dict()
        assert d["min"] is None and d["max"] is None

    def test_invalid_edges(self):
        with pytest.raises(ConfigError):
            Histogram(())
        with pytest.raises(ConfigError):
            Histogram((1.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram((2.0, 1.0))

    def test_registry_uses_catalogue_edges(self):
        reg = MetricsRegistry()
        reg.histogram("stream.queue_depth", 3)
        snap = reg.snapshot()
        assert tuple(snap["histograms"]["stream.queue_depth"]["edges"]) == DEPTH_EDGES

    def test_default_edges_for_uncatalogued(self):
        assert default_edges_for("no.such.histogram") == default_edges_for(
            "another.unknown"
        )


class TestSpans:
    def test_span_records_on_exit(self):
        reg = MetricsRegistry()
        with reg.span("engine.execute", cat="engine", nq=7):
            pass
        spans = reg.spans()
        assert len(spans) == 1
        name, cat, start, end, track, depth, args = spans[0]
        assert name == "engine.execute" and cat == "engine"
        assert end >= start and depth == 0 and args == {"nq": 7}
        assert track == 0  # main thread

    def test_nesting_depth(self):
        reg = MetricsRegistry()
        with reg.span("stream.run"):
            with reg.span("stream.traverse"):
                with reg.span("engine.execute"):
                    pass
        by_name = {s[0]: s for s in reg.spans()}
        assert by_name["stream.run"][5] == 0
        assert by_name["stream.traverse"][5] == 1
        assert by_name["engine.execute"][5] == 2

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with reg.span("stream.run"):
                raise RuntimeError("boom")
        assert len(reg.spans()) == 1
        # depth bookkeeping recovered: a new span is top-level again
        with reg.span("stream.run"):
            pass
        assert reg.spans()[1][5] == 0

    def test_span_at_absolute_timestamps(self):
        reg = MetricsRegistry()
        reg.span_at("stream.sort", reg.t0_s + 0.5, reg.t0_s + 0.7,
                    tid=12345, batch=3)
        (name, _, start, end, track, _, args) = reg.spans()[0]
        assert end - start == pytest.approx(0.2)
        assert track != 0  # foreign tid lands on a worker track
        assert args["batch"] == 3

    def test_max_spans_drops_and_counts(self):
        reg = MetricsRegistry(max_spans=2)
        for _ in range(5):
            with reg.span("stream.scatter"):
                pass
        assert len(reg.spans()) == 2
        assert reg.dropped_spans == 3
        assert reg.snapshot()["spans"]["dropped"] == 3

    def test_record_spans_false(self):
        reg = MetricsRegistry(record_spans=False)
        with reg.span("stream.run"):
            pass
        assert reg.spans() == []
        assert reg.dropped_spans == 1


class TestSnapshot:
    def test_shape_and_validation(self):
        reg = MetricsRegistry()
        reg.counter("engine.batches", 2)
        reg.gauge("gpusim.utilization", 0.5)
        reg.histogram("engine.run_length", 16.0)
        with reg.span("engine.execute"):
            pass
        snap = reg.snapshot()
        assert snap["schema_version"] == SCHEMA_VERSION
        assert validate_snapshot(snap) == []
        assert snap["spans"]["names"] == {"engine.execute": 1}

    def test_validation_catches_unknown_names(self):
        reg = MetricsRegistry()
        reg.counter("made.up.counter")
        problems = validate_snapshot(reg.snapshot())
        assert any("made.up.counter" in p for p in problems)

    def test_validation_catches_kind_mismatch(self):
        reg = MetricsRegistry()
        reg.counter("stream.wall_s")  # catalogued as a gauge
        problems = validate_snapshot(reg.snapshot())
        assert any("stream.wall_s" in p for p in problems)

    def test_validation_catches_version_and_structure(self):
        assert validate_snapshot(None)
        assert any("schema_version" in p for p in validate_snapshot({}))
        bad = {"schema_version": SCHEMA_VERSION + 1}
        assert any("schema_version" in p for p in validate_snapshot(bad))
        broken_hist = {
            "schema_version": SCHEMA_VERSION,
            "histograms": {
                "engine.run_length": {"edges": [1.0], "counts": [1], "count": 1}
            },
        }
        assert any("buckets" in p for p in validate_snapshot(broken_hist))

    def test_wildcard_families_resolve(self):
        assert lookup("engine.unique_nodes.l0") is not None
        assert lookup("engine.unique_nodes.l13") is not None
        assert lookup("gpusim.pipeline.serial.total_s") is not None
        assert lookup("bench.engine.naive_s") is not None
        assert lookup("engine.unique_nodes.") is None  # bare prefix
        assert lookup("enginex.unique") is None

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("engine.batches")
        with reg.span("engine.execute"):
            pass
        reg.clear()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["spans"]["count"] == 0


class TestThreadSafety:
    def test_concurrent_mutation_exact_totals(self):
        reg = MetricsRegistry(max_spans=10_000)
        n_threads, n_iter = 8, 500

        def work():
            for _ in range(n_iter):
                reg.counter("stream.queries", 2)
                reg.histogram("stream.queue_depth", 1)
                reg.span_at("stream.sort", reg.t0_s, reg.t0_s + 1e-6)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * n_iter
        assert reg.counter_value("stream.queries") == 2 * total
        snap = reg.snapshot()
        assert snap["histograms"]["stream.queue_depth"]["count"] == total
        assert snap["spans"]["count"] + snap["spans"]["dropped"] == total

    def test_worker_tracks_are_stable_and_distinct(self):
        reg = MetricsRegistry()
        # Hold all workers alive across the recording: the OS reuses thread
        # idents after join, so distinctness only holds for live threads.
        barrier = threading.Barrier(4)

        def work():
            reg.span_at("stream.sort", reg.t0_s, reg.t0_s + 1e-6)
            barrier.wait()

        threads = [threading.Thread(target=work) for _ in range(3)]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join()
        tracks = {s[4] for s in reg.spans()}
        assert len(tracks) == 3 and 0 not in tracks


class TestNullRecorder:
    def test_all_noops(self):
        rec = NULL_RECORDER
        assert rec.enabled is False
        rec.counter("x")
        rec.gauge("x", 1.0)
        rec.histogram("x", 1.0)
        rec.span_at("x", 0.0, 1.0)
        with rec.span("x"):
            pass
        assert rec.snapshot() is None

    def test_singleton_span_reused(self):
        assert NullRecorder().span("a") is NULL_RECORDER.span("b")


class TestRecordingActivation:
    def test_swap_and_restore(self):
        assert obs.active is NULL_RECORDER
        with obs.recording() as rec:
            assert obs.active is rec
            assert rec.enabled
        assert obs.active is NULL_RECORDER

    def test_nesting_restores_outer(self):
        with obs.recording() as outer:
            with obs.recording() as inner:
                assert obs.active is inner
            assert obs.active is outer
        assert obs.active is NULL_RECORDER

    def test_restore_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.recording():
                raise RuntimeError("boom")
        assert obs.active is NULL_RECORDER

    def test_explicit_registry(self):
        reg = MetricsRegistry(max_spans=1)
        with obs.recording(reg) as rec:
            assert rec is reg
        with pytest.raises(TypeError):
            with obs.recording(reg, max_spans=2):
                pass

    def test_constructor_kwargs(self):
        with obs.recording(max_spans=3) as rec:
            assert rec.max_spans == 3


class TestScoped:
    def test_none_leaves_ambient(self):
        with obs.recording() as rec:
            with obs.scoped(None):
                assert obs.active is rec

    def test_disabled_forces_null(self):
        with obs.recording():
            with obs.scoped(TraceConfig(enabled=False)):
                assert obs.active is NULL_RECORDER

    def test_registry_routes(self):
        reg = MetricsRegistry()
        with obs.scoped(TraceConfig(registry=reg)):
            assert obs.active is reg
        assert obs.active is NULL_RECORDER

    def test_enabled_without_registry_keeps_ambient(self):
        with obs.scoped(TraceConfig()):
            assert obs.active is NULL_RECORDER
        with obs.recording() as rec:
            with obs.scoped(TraceConfig()):
                assert obs.active is rec


class TestTraceConfig:
    def test_registry_type_checked(self):
        with pytest.raises(ConfigError):
            TraceConfig(registry="not a registry")

    def test_on_search_config(self):
        from repro.core.config import SearchConfig

        reg = MetricsRegistry()
        cfg = SearchConfig(trace=TraceConfig(registry=reg))
        assert cfg.trace.registry is reg
        with pytest.raises(ConfigError):
            SearchConfig(trace="nope")

    def test_max_spans_validation(self):
        with pytest.raises(ConfigError):
            MetricsRegistry(max_spans=-1)
