"""Hypothesis properties of the SIMT simulator.

These encode the physical laws any SIMT execution obeys; the simulator
must satisfy them for *every* tree shape, batch, and configuration —
exactly the kind of contract example-based tests under-sample.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layout import HarmoniaLayout
from repro.core.psa import prepare_batch
from repro.gpusim.kernels import SimConfig, simulate_search

key_sets = st.sets(
    st.integers(min_value=0, max_value=(1 << 32) - 1), min_size=2, max_size=400
)

sim_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def build(keys, fanout, fill):
    arr = np.array(sorted(keys), dtype=np.int64)
    return HarmoniaLayout.from_sorted(arr, fanout=fanout, fill=fill)


@sim_settings
@given(
    data=st.data(),
    fanout=st.sampled_from([4, 8, 32, 64]),
    fill=st.sampled_from([0.6, 1.0]),
    gs=st.sampled_from([1, 2, 8, 32]),
    structure=st.sampled_from(["harmonia", "regular_pointer"]),
    early_exit=st.booleans(),
)
def test_simulator_physical_invariants(data, fanout, fill, gs, structure,
                                       early_exit):
    keys = data.draw(key_sets)
    layout = build(keys, fanout, fill)
    all_keys = layout.all_keys()
    n_q = data.draw(st.integers(min_value=1, max_value=200))
    idx = data.draw(
        st.lists(st.integers(0, all_keys.size - 1), min_size=n_q, max_size=n_q)
    )
    queries = all_keys[np.array(idx, dtype=np.int64)]

    cfg = SimConfig(
        structure=structure,
        group_size=gs,
        early_exit=early_exit,
        cached_children=(structure == "harmonia"),
    )
    m = simulate_search(layout, queries, cfg)

    warp = cfg.device.warp_size
    qpw = warp // gs
    # Warp count is exactly ceil(nq / qpw).
    assert m.n_warps == -(-queries.size // qpw)
    # A request's transactions are bounded by its lanes; per level the
    # key transactions cannot exceed requests × warp_size nor fall below
    # the request count.
    assert m.gld_transactions <= m.gld_requests * warp
    assert m.gld_transactions >= m.gld_requests
    # Coherence and utilization are proper fractions.
    assert 0.0 < m.warp_coherence <= 1.0
    assert 0.0 < m.utilization <= 1.0
    # Every query compares at least one key per level.
    assert m.useful_comparisons >= queries.size * layout.height
    # Modeled misses never exceed issued transactions.
    assert m.total_dram_transactions <= m.gld_transactions + m.value_transactions
    # Steps: at least one per warp per level; coherent ≤ total.
    assert np.all(m.warp_steps >= 1) or queries.size == 0
    assert np.all(m.coherent_steps <= m.warp_steps)


@sim_settings
@given(
    data=st.data(),
    gs=st.sampled_from([2, 8]),
)
def test_psa_never_hurts_counters(data, gs):
    """Partially sorting a batch can only reduce (or keep) the modeled
    DRAM misses — the property PSA's whole design rests on."""
    keys = data.draw(key_sets)
    layout = build(keys, 16, 0.8)
    all_keys = layout.all_keys()
    n_q = data.draw(st.integers(min_value=32, max_value=256))
    idx = data.draw(
        st.lists(st.integers(0, all_keys.size - 1), min_size=n_q, max_size=n_q)
    )
    queries = all_keys[np.array(idx, dtype=np.int64)]

    cfg = SimConfig(group_size=gs)
    plain = simulate_search(layout, queries, cfg)
    bits = layout.key_space_bits()
    psa = prepare_batch(queries, bits=bits, key_bits=bits)
    sorted_m = simulate_search(layout, psa.queries, cfg)
    assert (
        sorted_m.total_dram_transactions
        <= plain.total_dram_transactions * 1.01 + 2
    )


@sim_settings
@given(data=st.data())
def test_narrowing_monotone_in_executed_comparisons(data):
    """With early exit, halving the group size does not meaningfully
    increase the executed lane-comparisons (the NTG utilization argument).

    Exact monotonicity does not hold: chunk-boundary rounding (a query
    needing ``GS + 1`` comparisons) and partial trailing warps can cost a
    few extra warp-steps — so the property allows one warp-step of slack
    per warp, which is the rounding ceiling.
    """
    keys = data.draw(key_sets)
    layout = build(keys, 32, 0.7)
    all_keys = layout.all_keys()
    queries = all_keys[
        data.draw(st.lists(st.integers(0, all_keys.size - 1), min_size=64,
                           max_size=64))
    ]
    warp = 32
    executed = []
    for gs in (32, 16, 8, 4):
        cfg = SimConfig(group_size=gs, early_exit=True)
        m = simulate_search(layout, queries, cfg)
        executed.append((m.executed_comparisons, m.n_warps))
    for (a, _), (b, warps_b) in zip(executed, executed[1:]):
        slack = warps_b * layout.height * warp  # 1 step/warp/level rounding
        assert b <= a + slack
