"""Tests for workload generators, mixes and scales."""

import numpy as np
import pytest

from repro.core.update import DELETE, INSERT, UPDATE
from repro.errors import ConfigError
from repro.workloads.datasets import (
    PAPER_TREE_SIZES,
    get_scale,
    scaled_device,
    scaled_tree_sizes,
)
from repro.workloads.generators import (
    make_key_set,
    normal_queries,
    range_query_bounds,
    sequential_queries,
    uniform_queries,
    zipf_queries,
)
from repro.workloads.mixes import PAPER_UPDATE_MIX, UpdateMix, make_update_batch


class TestKeySet:
    def test_sorted_unique(self):
        keys = make_key_set(10_000, rng=1)
        assert np.all(np.diff(keys) > 0)
        assert keys.size == 10_000

    def test_deterministic(self):
        assert np.array_equal(make_key_set(100, rng=3), make_key_set(100, rng=3))

    def test_within_space(self):
        keys = make_key_set(100, key_space_bits=10, rng=1)
        assert keys.max() < 1 << 10

    def test_dense_regime(self):
        keys = make_key_set(1_000, key_space_bits=10, rng=1)
        assert keys.size == 1_000

    def test_space_too_small(self):
        with pytest.raises(ConfigError):
            make_key_set(2_000, key_space_bits=10)

    def test_bad_bits(self):
        with pytest.raises(ConfigError):
            make_key_set(10, key_space_bits=0)


class TestQueryGenerators:
    @pytest.fixture(scope="class")
    def keys(self):
        return make_key_set(5_000, rng=7)

    def test_uniform_all_hits(self, keys):
        q = uniform_queries(keys, 1_000, rng=1)
        assert np.all(np.isin(q, keys))

    def test_uniform_hit_ratio(self, keys):
        q = uniform_queries(keys, 20_000, hit_ratio=0.5, rng=1)
        frac = np.isin(q, keys).mean()
        assert 0.4 < frac < 0.62  # misses can collide with stored keys

    def test_uniform_bad_ratio(self, keys):
        with pytest.raises(ConfigError):
            uniform_queries(keys, 10, hit_ratio=1.5)

    def test_zipf_skew(self, keys):
        q = zipf_queries(keys, 20_000, alpha=1.3, rng=1)
        _, counts = np.unique(q, return_counts=True)
        # Heavy skew: the hottest key gets far more than uniform share.
        assert counts.max() > 20_000 / keys.size * 20

    def test_zipf_alpha_validated(self, keys):
        with pytest.raises(ConfigError):
            zipf_queries(keys, 10, alpha=1.0)

    def test_normal_clusters(self, keys):
        q = normal_queries(keys, 5_000, center=0.5, spread=0.01, rng=1)
        idx = np.searchsorted(keys, q)
        assert np.std(idx) < keys.size * 0.05

    def test_sequential_wraps(self, keys):
        q = sequential_queries(keys, keys.size + 10)
        assert np.array_equal(q[: keys.size], keys)
        assert np.array_equal(q[keys.size :], keys[:10])

    def test_sequential_stride(self, keys):
        q = sequential_queries(keys, 5, stride=2)
        assert np.array_equal(q, keys[[0, 2, 4, 6, 8]])

    def test_range_bounds(self, keys):
        los, his = range_query_bounds(keys, 50, span_keys=16, rng=1)
        assert np.all(los <= his)
        counts = np.searchsorted(keys, his, side="right") - np.searchsorted(keys, los)
        assert np.all(counts <= 16)
        assert np.all(counts >= 1)


class TestMixes:
    def test_paper_mix(self):
        assert PAPER_UPDATE_MIX.insert == 0.05
        assert PAPER_UPDATE_MIX.update == 0.95

    def test_mix_must_sum_to_one(self):
        with pytest.raises(ConfigError):
            UpdateMix(insert=0.5, update=0.2, delete=0.1)

    def test_batch_composition(self):
        keys = make_key_set(2_000, rng=5)
        ops = make_update_batch(keys, 1_000, rng=6)
        kinds = [op.kind for op in ops]
        assert kinds.count(INSERT) == 50
        assert kinds.count(UPDATE) == 950
        assert len(ops) == 1_000

    def test_inserts_are_fresh_keys(self):
        keys = make_key_set(2_000, rng=5)
        ops = make_update_batch(keys, 400, rng=6)
        key_set = set(int(k) for k in keys)
        for op in ops:
            if op.kind == INSERT:
                assert op.key not in key_set

    def test_deletes_target_stored(self):
        keys = make_key_set(1_000, rng=5)
        mix = UpdateMix(insert=0.0, update=0.5, delete=0.5)
        ops = make_update_batch(keys, 200, mix=mix, rng=6)
        dels = [op.key for op in ops if op.kind == DELETE]
        assert len(dels) == 100
        assert len(set(dels)) == 100  # without replacement
        assert all(k in set(int(x) for x in keys) for k in dels)

    def test_too_many_deletes_rejected(self):
        keys = make_key_set(10, rng=5)
        mix = UpdateMix(insert=0.0, update=0.0, delete=1.0)
        with pytest.raises(ConfigError):
            make_update_batch(keys, 100, mix=mix)

    def test_shuffled_but_deterministic(self):
        keys = make_key_set(500, rng=5)
        a = make_update_batch(keys, 100, rng=8)
        b = make_update_batch(keys, 100, rng=8)
        assert a == b


class TestScales:
    def test_paper_sizes(self):
        assert PAPER_TREE_SIZES == [2**23, 2**24, 2**25, 2**26]
        paper = get_scale("paper")
        assert scaled_tree_sizes(paper) == PAPER_TREE_SIZES
        assert paper.n_queries == 100_000_000

    def test_sweep_spans(self):
        # default/paper keep the paper's factor-8 sweep; smoke trades span
        # for runtime but still sweeps.
        for name, factor in (("smoke", 4), ("default", 8), ("paper", 8)):
            sizes = scaled_tree_sizes(get_scale(name))
            assert sizes[-1] // sizes[0] == factor

    def test_unknown_scale(self):
        with pytest.raises(ConfigError):
            get_scale("huge")

    def test_scaled_device_identity_at_paper(self):
        from repro.gpusim.device import TITAN_V

        assert scaled_device(get_scale("paper"), TITAN_V) is TITAN_V

    def test_scaled_device_shrinks_l2(self):
        from repro.gpusim.device import TITAN_V

        mini = scaled_device(get_scale("default"), TITAN_V)
        assert mini.l2_bytes < TITAN_V.l2_bytes
        assert mini.launch_overhead_us < TITAN_V.launch_overhead_us
        # Bandwidths and SM counts are *not* scaled.
        assert mini.dram_bandwidth_gbs == TITAN_V.dram_bandwidth_gbs
        assert mini.n_sms == TITAN_V.n_sms
