"""Dual-tree merge-join + tiled batch search: equivalence and bounds.

The join subsystem's contract is *byte-identity*: whatever combination
of hinting, tiling, gapped layouts, concurrent-epoch overlays, and
sharding carries the probe stream, ``merge_join`` must return exactly
the numpy sort-merge join of the two trees' visible items.  The
hypothesis suites here pin that contract on every surface (mirroring
``tests/test_ntg_perlevel.py``'s equivalence style); the directed
classes pin the hinted engine walk, the tile scheduler's measured
memory bound, and the k-way heap path under ``concat_sorted_runs``.

Values are drawn >= 1 throughout: a stored value equal to the
``NOT_FOUND`` sentinel is indistinguishable from a miss by design
(documented in ``repro/join/mergejoin.py``).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import NOT_FOUND
from repro.core.config import SearchConfig, UpdateConfig
from repro.core.engine import BatchQueryEngine
from repro.core.epoch import EpochManager
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.errors import ConfigError
from repro.join import (
    JOIN_MODES,
    JoinResult,
    TileConfig,
    TileScheduler,
    merge_join,
    sort_merge_reference,
)
from repro.workloads.generators import make_key_set, uniform_queries

join_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _items(keys, seed):
    """Sorted-unique keys with values in [1, 2**40) — never the sentinel."""
    rng = np.random.default_rng(seed)
    values = rng.integers(1, 1 << 40, size=keys.size, dtype=np.int64)
    return np.asarray(keys, dtype=np.int64), values


def _tree(keys, seed, fanout=16, keep_every=1):
    keys, values = _items(keys, seed)
    fill = 1.0 if keep_every > 1 else 0.7
    tree = HarmoniaTree.from_sorted(keys, values, fanout=fanout, fill=fill)
    if keep_every > 1:
        doomed = keys[np.arange(keys.size) % keep_every != 0]
        tree.apply_batch(
            [Operation("delete", int(k)) for k in doomed],
            UpdateConfig(mode="gapped", gap_watermark=1.0,
                         occupancy_low=0.0),
        )
    return tree


def _assert_matches_reference(tree_a, tree_b, items_a, items_b):
    for mode in JOIN_MODES:
        res = merge_join(tree_a, tree_b, mode=mode)
        ref = sort_merge_reference(items_a, items_b, mode)
        assert res.mode == mode
        assert np.array_equal(res.keys, ref.keys)
        assert np.array_equal(res.values_a, ref.values_a)
        if mode == "inner":
            assert np.array_equal(res.values_b, ref.values_b)
        else:
            assert res.values_b is None
        assert res.n_probes == ref.n_probes
        assert res.n_matches == ref.n_matches


@st.composite
def two_key_sets(draw):
    """Two sorted-unique key sets with tunable overlap, plus seeds."""
    n_a = draw(st.integers(min_value=0, max_value=512))
    n_b = draw(st.integers(min_value=1, max_value=512))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    overlap = draw(st.sampled_from([0.0, 0.3, 1.0]))
    rng = np.random.default_rng(seed)
    keys_b = np.unique(rng.integers(0, 4096, size=n_b, dtype=np.int64))
    shared = keys_b[rng.random(keys_b.size) < overlap]
    own = np.unique(rng.integers(0, 8192, size=n_a, dtype=np.int64))
    keys_a = np.unique(np.concatenate([shared, own]))
    return keys_a, keys_b, seed


# ------------------------------------------------- reference equivalence


class TestMergeJoinEquivalence:
    @join_settings
    @given(two_key_sets(), st.sampled_from([1, 1, 4, 8]))
    def test_plain_and_gapped_trees(self, sets, keep_every):
        keys_a, keys_b, seed = sets
        tree_a = _tree(keys_a, seed)
        tree_b = _tree(keys_b, seed + 1, keep_every=keep_every)
        _assert_matches_reference(
            tree_a, tree_b, tree_a._merged_items(), tree_b._merged_items()
        )

    @join_settings
    @given(two_key_sets())
    def test_tiled_and_unhinted_identical(self, sets):
        keys_a, keys_b, seed = sets
        tree_a = _tree(keys_a, seed)
        tree_b = _tree(keys_b, seed + 1)
        base = merge_join(tree_a, tree_b, mode="inner")
        tiled = merge_join(tree_a, tree_b, mode="inner",
                           tile=TileConfig(tile_size=64))
        plain = merge_join(tree_a, tree_b, mode="inner", hinted=False)
        for other in (tiled, plain):
            assert np.array_equal(base.keys, other.keys)
            assert np.array_equal(base.values_b, other.values_b)

    def test_empty_probe_side(self):
        tree_a = _tree(np.empty(0, dtype=np.int64), 1)
        tree_b = _tree(np.arange(100, dtype=np.int64), 2)
        res = merge_join(tree_a, tree_b, mode="inner")
        assert res.n_probes == 0 and res.keys.size == 0
        assert res.selectivity == 0.0

    def test_invalid_mode_rejected(self):
        tree = _tree(np.arange(10, dtype=np.int64), 3)
        with pytest.raises(ConfigError):
            merge_join(tree, tree, mode="outer")
        with pytest.raises(ConfigError):
            sort_merge_reference(
                tree._merged_items(), tree._merged_items(), "outer"
            )

    def test_selectivity(self):
        r = JoinResult("inner", np.arange(3), np.arange(3), np.arange(3),
                       n_probes=12, n_matches=3)
        assert r.selectivity == 0.25


class TestJoinConcurrentEpoch:
    def test_epoch_build_side_with_pending_delta(self):
        keys_b = np.arange(0, 2000, 2, dtype=np.int64)
        mgr = EpochManager(_tree(keys_b, 41), concurrent=True)
        mgr.submit_many(
            [Operation("insert", 2001 + 2 * i, 7 + i) for i in range(50)]
        )
        mgr.flush()  # publish a delta run, base snapshot stays behind
        mgr.submit(Operation("insert", 5001, 9))  # pending, unflushed
        tree_a = _tree(np.arange(0, 6000, 3, dtype=np.int64), 42)
        _assert_matches_reference(
            tree_a, mgr, tree_a._merged_items(), mgr.dump_items()
        )
        mgr.close()

    def test_epoch_probe_side(self):
        mgr = EpochManager(
            _tree(np.arange(0, 1000, 3, dtype=np.int64), 43),
            concurrent=True,
        )
        mgr.submit_many([Operation("insert", 1 + 3 * i, 5) for i in range(40)])
        mgr.flush()
        tree_b = _tree(np.arange(0, 1200, 2, dtype=np.int64), 44)
        _assert_matches_reference(
            mgr, tree_b, mgr.dump_items(), tree_b._merged_items()
        )
        mgr.close()


class TestJoinSharded:
    def test_sharded_both_sides(self):
        from repro.shard import ShardedTree

        keys_b = make_key_set(4096, rng=51)
        vals_b = (np.arange(keys_b.size, dtype=np.int64) % 997) + 1
        rng = np.random.default_rng(52)
        keys_a = np.unique(np.concatenate([
            keys_b[rng.random(keys_b.size) < 0.4],
            np.unique(rng.integers(0, int(keys_b.max()) + 500, 1000)),
        ]))
        vals_a = (keys_a % 991) + 1
        tree_a = HarmoniaTree.from_sorted(keys_a, vals_a, fanout=16)
        with ShardedTree.from_sorted(
            keys_b, vals_b, n_shards=3, fanout=16
        ) as st_b:
            _assert_matches_reference(
                tree_a, st_b, tree_a._merged_items(), (keys_b, vals_b)
            )
            with ShardedTree.from_sorted(
                keys_a, vals_a, n_shards=2, fanout=16
            ) as st_a:
                res = merge_join(st_a, st_b, mode="inner")
                ref = sort_merge_reference((keys_a, vals_a), (keys_b, vals_b))
                assert np.array_equal(res.keys, ref.keys)
                assert np.array_equal(res.values_b, ref.values_b)


# ------------------------------------------------------ hinted engine walk


class TestExecuteHinted:
    @join_settings
    @given(st.integers(min_value=1, max_value=2048),
           st.integers(min_value=0, max_value=2**16),
           st.sampled_from([8, 16, 64]))
    def test_byte_identical_to_execute(self, n_keys, seed, fanout):
        keys = make_key_set(n_keys, rng=seed)
        tree = _tree(keys, seed + 1, fanout=fanout)
        q = np.sort(np.concatenate([
            uniform_queries(keys, 256, rng=seed + 2),
            uniform_queries(keys, 64, rng=seed + 3) + 1,  # misses
        ]))
        eng = BatchQueryEngine(tree.layout)
        assert np.array_equal(
            eng.execute_hinted(q), eng.execute(q, issue_sorted=True)
        )

    def test_rejects_unsorted(self):
        tree = _tree(np.arange(200, dtype=np.int64), 61)
        eng = BatchQueryEngine(tree.layout)
        with pytest.raises(ConfigError):
            eng.execute_hinted(np.array([5, 3, 9], dtype=np.int64))

    def test_stats_flag_and_frontier(self):
        tree = _tree(np.arange(0, 20000, 2, dtype=np.int64), 62)
        q = np.arange(0, 20000, 7, dtype=np.int64)
        eng = BatchQueryEngine(tree.layout)
        eng.execute_hinted(q)
        stats = eng.last_stats
        assert stats.hinted
        assert stats.unique_nodes_per_level[0] == 1  # root
        # Frontier counts never exceed the execute() compaction counts.
        eng2 = BatchQueryEngine(tree.layout)
        eng2.execute(q, issue_sorted=True)
        assert stats.total_node_reads <= eng2.last_stats.total_node_reads

    def test_out_of_range_probes_prune(self):
        # Probes past every key ride the KEY_MAX-padded rightmost path:
        # one node per level, all misses.
        tree = _tree(np.arange(1000, dtype=np.int64), 63)
        q = np.arange(10_000, 10_064, dtype=np.int64)
        eng = BatchQueryEngine(tree.layout)
        out = eng.execute_hinted(q)
        assert np.all(out == NOT_FOUND)
        assert np.all(eng.last_stats.unique_nodes_per_level == 1)


class TestSearchSortedMany:
    def test_matches_search_many_with_delta_overlay(self):
        mgr = EpochManager(
            _tree(np.arange(0, 3000, 2, dtype=np.int64), 71),
            concurrent=True,
        )
        mgr.submit_many(
            [Operation("insert", 1 + 2 * i, 3 + i) for i in range(100)]
        )
        mgr.flush()
        tree = mgr.pin()  # snapshot + pinned delta overlay
        q = np.sort(uniform_queries(np.arange(0, 3100, dtype=np.int64),
                                    2048, rng=72))
        expect = tree.search_many(q)
        assert np.array_equal(tree.search_sorted_many(q), expect)
        assert np.array_equal(
            tree.search_sorted_many(q, tile=TileConfig(tile_size=256)),
            expect,
        )
        assert np.array_equal(
            tree.search_sorted_many(q, hinted=False), expect
        )


# ------------------------------------------------------- tile scheduler


class TestTileScheduler:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TileConfig(tile_size=0)
        with pytest.raises(ConfigError):
            TileConfig(tile_size=64, max_resident_tiles=0)

    def test_bounded_peak_and_identity(self):
        keys = make_key_set(1 << 14, rng=81)
        tree = _tree(keys, 82, fanout=64)
        q = np.sort(uniform_queries(keys, 1 << 14, rng=83))
        untiled = BatchQueryEngine(tree.layout)
        baseline = untiled.execute(q, issue_sorted=True)
        sched = TileScheduler(
            BatchQueryEngine(tree.layout), TileConfig(tile_size=1 << 10)
        )
        assert np.array_equal(sched.run(q), baseline)
        assert sched.last_tiles == 16
        assert sched.last_peak_bytes < untiled.scratch_nbytes
        # re-running must not grow the footprint (ring + scratch recycled)
        peak = sched.last_peak_bytes
        sched.run(q)
        assert sched.last_peak_bytes == peak

    def test_hinted_tiles_identical(self):
        keys = make_key_set(4096, rng=84)
        tree = _tree(keys, 85)
        q = np.sort(uniform_queries(keys, 4096, rng=86))
        baseline = BatchQueryEngine(tree.layout).execute(q, issue_sorted=True)
        sched = TileScheduler(
            BatchQueryEngine(tree.layout), TileConfig(tile_size=512)
        )
        assert np.array_equal(sched.run(q, hinted=True), baseline)

    def test_stream_tile_config_matches_plain(self):
        keys = make_key_set(4096, rng=87)
        tree = _tree(keys, 88)
        q = uniform_queries(keys, 4096, rng=89)
        cfg = SearchConfig(stream_batch=1024, stream_tile=256)
        assert np.array_equal(
            tree.search_stream(q, cfg),
            tree.search_many(q),
        )


# ------------------------------------------------------------ observability


class TestJoinObservability:
    def test_join_metrics_recorded_and_valid(self):
        import repro.obs as obs
        from repro.obs.report import render_report
        from repro.obs.schema import validate_snapshot

        tree_a = _tree(np.arange(0, 2000, 3, dtype=np.int64), 91)
        tree_b = _tree(np.arange(0, 2000, 2, dtype=np.int64), 92)
        with obs.recording() as rec:
            merge_join(tree_a, tree_b, mode="inner",
                       tile=TileConfig(tile_size=128))
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        assert snap["counters"]["join.joins"] == 1
        assert snap["counters"]["join.probes"] == tree_a._merged_items()[0].size
        assert snap["counters"]["stream.tiles"] > 1
        assert snap["gauges"]["stream.tile_peak_bytes"] > 0
        report = render_report(snap)
        assert "dual-tree joins" in report
        assert "tiled peak footprint" in report
