"""Tests for the harmonia-tool CLI."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def index_path(tmp_path):
    path = tmp_path / "idx.npz"
    assert main(["build", "--random", "5000", "--out", str(path),
                 "--fanout", "16", "--seed", "3"]) == 0
    return path


class TestBuild:
    def test_build_random(self, tmp_path, capsys):
        path = tmp_path / "idx.npz"
        assert main(["build", "--random", "5000", "--out", str(path),
                     "--fanout", "16"]) == 0
        out = capsys.readouterr().out
        assert "5000 keys" in out and "fanout 16" in out

    def test_build_from_text_file(self, tmp_path, capsys):
        keys = tmp_path / "keys.txt"
        keys.write_text("\n".join(str(k) for k in range(0, 1000, 2)))
        path = tmp_path / "idx.npz"
        assert main(["build", "--keys", str(keys), "--out", str(path)]) == 0
        assert "500 keys" in capsys.readouterr().out

    def test_build_from_npy(self, tmp_path, capsys):
        keys = tmp_path / "keys.npy"
        np.save(keys, np.arange(100, dtype=np.int64))
        path = tmp_path / "idx.npz"
        assert main(["build", "--keys", str(keys), "--out", str(path)]) == 0

    def test_missing_file_is_reported(self, tmp_path, capsys):
        code = main(["build", "--keys", str(tmp_path / "nope.txt"),
                     "--out", str(tmp_path / "x.npz")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestQuery:
    def test_query_args(self, tmp_path, capsys):
        keys = tmp_path / "keys.txt"
        keys.write_text("\n".join(str(k) for k in range(0, 100, 2)))
        path = tmp_path / "idx.npz"
        main(["build", "--keys", str(keys), "--out", str(path)])
        capsys.readouterr()
        assert main(["query", str(path), "4", "5"]) == 0
        captured = capsys.readouterr()
        lines = captured.out.strip().splitlines()
        assert lines[0] == "4\t4"
        assert lines[1] == "5\tMISS"
        assert "1/2 hits" in captured.err

    def test_query_file(self, tmp_path, capsys):
        keys = tmp_path / "keys.txt"
        keys.write_text("\n".join(str(k) for k in range(0, 100, 2)))
        path = tmp_path / "idx.npz"
        main(["build", "--keys", str(keys), "--out", str(path)])
        qfile = tmp_path / "queries.txt"
        qfile.write_text("2\n3\n")
        capsys.readouterr()
        assert main(["query", str(path), "--file", str(qfile),
                     "--no-optimized"]) == 0
        out = capsys.readouterr().out
        assert "2\t2" in out and "3\tMISS" in out


class TestRangeStatsSimulate:
    def test_range(self, tmp_path, capsys):
        keys = tmp_path / "keys.txt"
        keys.write_text("\n".join(str(k) for k in range(0, 100, 10)))
        path = tmp_path / "idx.npz"
        main(["build", "--keys", str(keys), "--out", str(path)])
        capsys.readouterr()
        assert main(["range", str(path), "15", "45"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines() == ["20\t20", "30\t30", "40\t40"]

    def test_stats(self, index_path, capsys):
        capsys.readouterr()
        assert main(["stats", str(index_path)]) == 0
        out = capsys.readouterr().out
        assert "fanout" in out and "level 0" in out

    def test_simulate(self, index_path, capsys):
        capsys.readouterr()
        assert main(["simulate", str(index_path), "--queries", "2048",
                     "--device", "k80"]) == 0
        out = capsys.readouterr().out
        assert "modeled throughput" in out
        assert "Tesla K80" in out
        assert "gld_transactions" in out
