"""Tests for the event-driven SM simulator and its roofline validation."""

import numpy as np
import pytest

from repro.gpusim.device import TITAN_V
from repro.gpusim.eventsim import (
    WarpTask,
    analytical_bounds,
    simulate_sm,
    validate_roofline,
    warp_tasks_from_metrics,
)


def task(*segments):
    return WarpTask(segments=tuple(segments))


class TestSimulateSM:
    def test_empty(self):
        assert simulate_sm([]) == 0.0

    def test_single_warp_is_critical_path(self):
        t = task((10.0, 100.0), (5.0, 50.0))
        assert simulate_sm([t]) == 165.0

    def test_compute_only_serializes(self):
        tasks = [task((10.0, 0.0))] * 4
        assert simulate_sm(tasks) == 40.0

    def test_memory_overlaps(self):
        # Two warps: second computes while the first waits on memory.
        tasks = [task((10.0, 100.0))] * 2
        assert simulate_sm(tasks) == 120.0  # 10 + 10 compute, overlap waits

    def test_perfect_hiding_hits_issue_bound(self):
        # Many warps, short memory: the SM never starves.
        tasks = [task((10.0, 20.0), (10.0, 20.0))] * 16
        sim = simulate_sm(tasks)
        bounds = analytical_bounds(tasks)
        assert sim == pytest.approx(bounds["issue"], rel=0.2)

    def test_latency_bound_with_one_warp(self):
        tasks = [task((1.0, 500.0), (1.0, 500.0))]
        sim = simulate_sm(tasks)
        assert sim == pytest.approx(analytical_bounds(tasks)["critical_path"])

    def test_sim_never_below_bounds(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            tasks = [
                task(*[(float(rng.integers(1, 20)), float(rng.integers(0, 300)))
                       for _ in range(rng.integers(1, 5))])
                for _ in range(rng.integers(1, 24))
            ]
            sim = simulate_sm(tasks)
            bounds = analytical_bounds(tasks)
            assert sim >= max(bounds.values()) - 1e-9


class TestFromMetrics:
    @pytest.fixture(scope="class")
    def metrics(self):
        from repro.core.layout import HarmoniaLayout
        from repro.gpusim.kernels import simulate_harmonia_search

        rng = np.random.default_rng(8)
        keys = np.sort(rng.choice(1 << 28, 30_000, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=64, fill=0.7)
        q = rng.choice(keys, 4_096)
        return simulate_harmonia_search(layout, q, 8)

    def test_task_shape(self, metrics):
        tasks = warp_tasks_from_metrics(metrics)
        assert len(tasks) == TITAN_V.resident_warps_per_sm
        assert len(tasks[0].segments) == metrics.height
        assert tasks[0].compute_cycles > 0

    def test_validation_report(self, metrics):
        report = validate_roofline(metrics)
        assert report["simulated"] >= max(
            report["issue"], report["critical_path"]
        ) - 1e-9
        # With a full resident complement, hiding is good: the closed-form
        # max-bound is within ~2x of the simulated makespan.
        assert 1.0 <= report["hiding_factor"] < 2.0

    def test_empty_metrics(self):
        from repro.gpusim.metrics import KernelMetrics

        m = KernelMetrics(n_queries=0, n_warps=0, group_size=8, height=3)
        assert warp_tasks_from_metrics(m) == []
        assert validate_roofline(m)["simulated"] == 0.0
