"""Tests for the frontier-compacted batch query engine.

Three layers of assurance:

* unit behaviour — scratch reuse, stats, sharding, config wiring;
* property-based equivalence — :class:`BatchQueryEngine` vs
  :func:`search_batch` vs :func:`search_scalar` on random trees (fanout,
  fill, duplicate-at-separator edge cases) and on PSA-sorted vs unsorted
  batches, results bit-identical including restore-to-issue-order;
* the tier-1 smoke test pinning the ``unique_nodes_per_level`` counter's
  monotonicity (the Equation 1 disjoint-children property).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import NOT_FOUND
from repro.core import BatchQueryEngine, HarmoniaTree, SearchConfig
from repro.core.engine import EngineScratch
from repro.core.layout import HarmoniaLayout
from repro.core.psa import fully_sorted_batch, identity_batch, prepare_batch
from repro.core.search import search_batch, search_scalar
from repro.errors import ConfigError
from repro.workloads.generators import make_key_set

key_strategy = st.integers(min_value=0, max_value=(1 << 48) - 1)
fanout_strategy = st.sampled_from([3, 4, 8, 16, 64])

common_settings = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ------------------------------------------------------------------ units


class TestEngineScratch:
    def test_same_shape_reuses_buffer(self):
        s = EngineScratch()
        a = s.array("node", 128)
        b = s.array("node", 128)
        assert a is b

    def test_shape_change_reallocates(self):
        s = EngineScratch()
        a = s.array("node", 128)
        b = s.array("node", 256)
        assert a is not b and b.size == 256

    def test_dtype_change_reallocates(self):
        s = EngineScratch()
        a = s.array("x", 16, np.int64)
        b = s.array("x", 16, np.bool_)
        assert b.dtype == np.bool_ and a.dtype == np.int64

    def test_nbytes_and_clear(self):
        s = EngineScratch()
        s.array("a", 100)
        assert s.nbytes >= 800
        s.clear()
        assert s.nbytes == 0


class TestEngineUnits:
    def test_invalid_config(self, small_layout):
        with pytest.raises(ConfigError):
            BatchQueryEngine(small_layout, n_workers=0)
        with pytest.raises(ConfigError):
            BatchQueryEngine(small_layout, min_parallel=0)
        with pytest.raises(ConfigError):
            BatchQueryEngine(small_layout, group_threshold=0)
        with pytest.raises(ConfigError):
            BatchQueryEngine("not a layout")

    def test_empty_batch(self, small_layout):
        eng = BatchQueryEngine(small_layout)
        out = eng.execute(np.array([], dtype=np.int64))
        assert out.size == 0
        assert eng.last_stats.n_queries == 0
        assert eng.last_stats.unique_nodes_per_level.size == small_layout.height

    def test_matches_naive_on_fixture(self, medium_layout, medium_keys, rng):
        q = np.concatenate([
            rng.choice(medium_keys, 3_000),
            rng.integers(0, 1 << 34, 3_000),
        ]).astype(np.int64)
        eng = BatchQueryEngine(medium_layout)
        assert np.array_equal(eng.execute(q), search_batch(medium_layout, q))

    def test_stats_shape_and_ratio(self, medium_layout, medium_keys):
        q = np.sort(medium_keys[:4_000])
        eng = BatchQueryEngine(medium_layout)
        eng.execute(q, issue_sorted=True)
        st_ = eng.last_stats
        assert st_.unique_nodes_per_level.shape == (medium_layout.height,)
        assert st_.unique_nodes_per_level[0] == 1  # single root run
        assert st_.issue_sorted is True
        assert st_.total_node_reads < st_.naive_node_reads
        assert st_.compaction_ratio > 1.0
        assert st_.grouped_levels + st_.broadcast_levels == (
            medium_layout.height - 1
        )

    def test_scratch_reused_across_same_shape_batches(self, medium_layout, rng):
        eng = BatchQueryEngine(medium_layout)
        q1 = np.sort(rng.integers(0, 1 << 34, 4_096).astype(np.int64))
        q2 = np.sort(rng.integers(0, 1 << 34, 4_096).astype(np.int64))
        eng.execute(q1)
        buffers_before = dict(eng._scratch[0]._buffers)
        eng.execute(q2)
        assert all(
            eng._scratch[0]._buffers[k] is v for k, v in buffers_before.items()
        )

    def test_sharded_matches_single_worker(self, medium_layout, medium_keys, rng):
        q = np.sort(rng.choice(medium_keys, 20_000))
        solo = BatchQueryEngine(medium_layout)
        sharded = BatchQueryEngine(medium_layout, n_workers=3, min_parallel=1)
        a = solo.execute(q)
        b = sharded.execute(q)
        assert np.array_equal(a, b)
        assert sharded.last_stats.n_chunks == 3
        # Shard counters sum; each shard's frontier is still monotone.
        assert np.all(np.diff(sharded.last_stats.unique_nodes_per_level) >= 0)

    def test_sharding_gated_by_min_parallel(self, medium_layout, medium_keys):
        eng = BatchQueryEngine(medium_layout, n_workers=4, min_parallel=1 << 20)
        eng.execute(medium_keys[:1_000])
        assert eng.last_stats.n_chunks == 1

    def test_single_key_tree(self):
        layout = HarmoniaLayout.from_sorted(np.array([42], dtype=np.int64))
        eng = BatchQueryEngine(layout)
        out = eng.execute(np.array([41, 42, 43], dtype=np.int64))
        assert list(out) == [NOT_FOUND, 42, NOT_FOUND]


class TestTreeWiring:
    def test_search_many_default_is_compacted(self, small_tree, small_keys):
        out = small_tree.search_many(small_keys[:100])
        assert np.array_equal(out, small_keys[:100])
        assert small_tree.last_engine_stats is not None

    def test_search_many_naive_flag(self, small_tree, small_keys, rng):
        q = np.concatenate([small_keys[:50], small_keys[:50] + 1])
        a = small_tree.search_many(q, SearchConfig(engine="naive"))
        b = small_tree.search_many(q, SearchConfig(engine="compacted"))
        assert np.array_equal(a, b)

    def test_engine_rebound_after_update(self, small_tree, small_keys):
        small_tree.search_many(small_keys[:10])
        eng_before = small_tree._engine
        from repro.core.update import Operation

        new_key = int(small_keys[-1]) + 1000
        small_tree.apply_batch([Operation("insert", new_key, 7)])
        small_tree.search_many(np.array([new_key]))
        assert small_tree._engine is not eng_before
        assert small_tree.search_many(np.array([new_key]))[0] == 7

    def test_empty_tree(self):
        tree = HarmoniaTree.empty()
        out = tree.search_many(np.array([1, 2], dtype=np.int64))
        assert np.all(out == NOT_FOUND)

    def test_config_rejects_bad_engine(self):
        with pytest.raises(ConfigError):
            SearchConfig(engine="warp-speed")
        with pytest.raises(ConfigError):
            SearchConfig(engine_workers=0)


# ------------------------------------------------- property-based equivalence


@common_settings
@given(
    keys=st.sets(key_strategy, min_size=1, max_size=400),
    fanout=fanout_strategy,
    fill=st.sampled_from([0.5, 0.7, 1.0]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_engine_equals_batch_and_scalar(keys, fanout, fill, seed):
    """Engine vs search_batch vs search_scalar on random trees, with hit,
    miss, below-min, above-max, and duplicate-at-separator probes."""
    karr = np.array(sorted(keys), dtype=np.int64)
    layout = HarmoniaLayout.from_sorted(karr, fanout=fanout, fill=fill)
    rng = np.random.default_rng(seed)
    # Separator keys are the internal rows' real entries: querying exactly
    # those values exercises the equal-keys-route-right edge.
    separators = layout.key_region[: layout.leaf_start].ravel()
    separators = separators[separators != np.iinfo(np.int64).max]
    q = np.concatenate([
        rng.choice(karr, 50),
        rng.integers(0, 1 << 48, 50),
        karr[:1] - 1,
        karr[-1:] + 1,
        separators[:50],
        np.repeat(rng.choice(karr, 5), 8),  # duplicated queries
    ]).astype(np.int64)
    q = np.maximum(q, 0)
    eng = BatchQueryEngine(layout)
    oracle = search_batch(layout, q)
    assert np.array_equal(eng.execute(q), oracle)
    assert np.array_equal(eng.execute(np.sort(q)), search_batch(layout, np.sort(q)))
    for i in rng.choice(q.size, 20, replace=False):
        scalar = search_scalar(layout, int(q[i]))
        assert (scalar is None and oracle[i] == NOT_FOUND) or scalar == oracle[i]


@common_settings
@given(
    keys=st.sets(key_strategy, min_size=2, max_size=300),
    fanout=fanout_strategy,
    bits=st.sampled_from([0, 4, 11, 48, None]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_engine_psa_sorted_vs_unsorted(keys, fanout, bits, seed):
    """PSA-sorted, fully-sorted, and arrival-order batches all agree with
    the oracle, and restore-to-issue-order round-trips exactly."""
    karr = np.array(sorted(keys), dtype=np.int64)
    layout = HarmoniaLayout.from_sorted(karr, fanout=fanout)
    rng = np.random.default_rng(seed)
    q = rng.choice(karr, 120).astype(np.int64)
    if bits is None:
        psa = fully_sorted_batch(q, key_bits=48)
    elif bits == 0:
        psa = identity_batch(q)
    else:
        psa = prepare_batch(q, bits=bits, key_bits=48)
    eng = BatchQueryEngine(layout)
    issue_vals = eng.execute(psa.queries, issue_sorted=psa.issue_sorted)
    assert np.array_equal(
        issue_vals, search_batch(layout, psa.queries)
    )
    # Restore-to-arrival-order must reproduce the unpermuted execution.
    assert np.array_equal(issue_vals[psa.restore], search_batch(layout, q))
    assert eng.last_stats.issue_sorted == psa.issue_sorted
    if bits is None:
        assert psa.issue_sorted  # a full sort is by definition issue-sorted


@common_settings
@given(
    keys=st.sets(key_strategy, min_size=1, max_size=300),
    fanout=fanout_strategy,
    use_psa=st.booleans(),
    workers=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_search_many_equals_search_batch(keys, fanout, use_psa, workers, seed):
    """End-to-end: HarmoniaTree.search_many is bit-identical to the
    search_batch oracle under every config combination."""
    karr = np.array(sorted(keys), dtype=np.int64)
    tree = HarmoniaTree.from_sorted(karr, fanout=fanout)
    rng = np.random.default_rng(seed)
    q = np.concatenate([
        rng.choice(karr, 60),
        rng.integers(0, 1 << 48, 60),
    ]).astype(np.int64)
    cfg = SearchConfig(
        use_psa=use_psa, engine_workers=workers, engine_min_parallel=16
    )
    assert np.array_equal(tree.search_many(q, cfg), tree.search_batch(q, cfg))


# ------------------------------------------------------------ tier-1 smoke


def test_engine_smoke_counter_monotone(medium_layout, medium_keys, rng):
    """Tier-1 smoke: a small compacted batch runs in well under a second
    and its unique_nodes_per_level counter is monotonically non-decreasing
    down the tree (disjoint children can only split runs, never merge
    them) — the host-side analog of the simulator's per-level
    gld_transactions growth."""
    q = np.sort(rng.choice(medium_keys, 2_048))
    eng = BatchQueryEngine(medium_layout)
    out = eng.execute(q, issue_sorted=True)
    assert np.array_equal(out, q)  # fixture values == keys, all hits
    counter = eng.last_stats.unique_nodes_per_level
    assert counter.size == medium_layout.height
    assert np.all(np.diff(counter) >= 0)
    assert counter[0] == 1 and counter[-1] <= q.size


# -------------------------------------------------- out= and leaf sharing


def test_execute_out_buffer(medium_layout, medium_keys, rng):
    """Caller-supplied output buffers are filled exactly like a fresh
    allocation, including the NOT_FOUND prefill for misses."""
    q = rng.choice(medium_keys, 1_000).astype(np.int64)
    q[::5] += 1  # force some misses
    eng = BatchQueryEngine(medium_layout)
    ref = eng.execute(q)
    out = np.full(q.size, 123, dtype=np.int64)
    got = eng.execute(q, out=out)
    assert got is out
    assert np.array_equal(out, ref)
    with pytest.raises(ConfigError):
        eng.execute(q, out=np.empty(q.size + 1, dtype=np.int64))
    with pytest.raises(ConfigError):
        eng.execute(q, out=np.empty(q.size, dtype=np.float32))


def test_share_packed_leaves(medium_layout, medium_keys, rng):
    donor = BatchQueryEngine(medium_layout)
    taker = BatchQueryEngine(medium_layout)
    taker.share_packed_leaves(donor)
    # Shared block is the same object, built once.
    assert taker._packed_keys is donor._packed_keys
    assert taker._packed_values is donor._packed_values
    q = rng.choice(medium_keys, 500).astype(np.int64)
    assert np.array_equal(taker.execute(q), donor.execute(q))
    other = HarmoniaLayout.from_sorted(make_key_set(100, rng=3), fanout=8)
    with pytest.raises(ConfigError):
        BatchQueryEngine(other).share_packed_leaves(donor)
