"""Tests for the SIMT kernel simulator."""

import numpy as np
import pytest

from repro.core.layout import HarmoniaLayout
from repro.core.psa import prepare_batch
from repro.gpusim.device import TITAN_V
from repro.gpusim.kernels import (
    AddressModel,
    SimConfig,
    make_address_model,
    simulate_harmonia_search,
    simulate_hbtree_search,
    simulate_search,
)
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def layout():
    rng = np.random.default_rng(21)
    keys = np.sort(rng.choice(1 << 30, 30_000, replace=False)).astype(np.int64)
    return HarmoniaLayout.from_sorted(keys, fanout=64, fill=0.7)


@pytest.fixture(scope="module")
def queries(layout):
    rng = np.random.default_rng(22)
    return rng.choice(layout.all_keys(), 4_096)


class TestSimConfig:
    def test_defaults(self):
        cfg = SimConfig()
        assert cfg.structure == "harmonia"

    def test_bad_structure(self):
        with pytest.raises(ConfigError):
            SimConfig(structure="btree")

    def test_group_too_wide(self):
        with pytest.raises(ConfigError):
            SimConfig(group_size=64)


class TestAddressModel:
    def test_harmonia_row_stride_aligned(self, layout):
        am = make_address_model(layout, SimConfig(structure="harmonia"))
        assert am.row_stride % TITAN_V.cache_line_bytes == 0
        assert am.row_stride >= layout.slots * 8

    def test_regular_nodes_fatter(self, layout):
        ha = make_address_model(layout, SimConfig(structure="harmonia"))
        hb = make_address_model(layout, SimConfig(structure="regular_pointer"))
        assert hb.node_stride > ha.node_stride

    def test_unaligned_packs_tight(self, layout):
        am = make_address_model(
            layout, SimConfig(structure="harmonia", align_rows=False)
        )
        assert am.row_stride == layout.slots * 8

    def test_regions_disjoint(self, layout):
        am = make_address_model(layout, SimConfig())
        max_key_byte = am.key_byte(np.array([layout.n_nodes]))[0]
        assert max_key_byte < am.values_base < am.child_region_base


class TestCounters:
    def test_empty_batch(self, layout):
        m = simulate_harmonia_search(layout, np.array([], dtype=np.int64), 8)
        assert m.n_queries == 0 and m.n_warps == 0
        assert m.gld_transactions == 0

    def test_warp_count(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, group_size=8)
        assert m.n_warps == queries.size // (32 // 8)

    def test_key_transactions_positive_every_level(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, 8)
        assert np.all(m.key_transactions > 0)
        assert m.key_transactions.shape == (layout.height,)

    def test_cached_children_no_child_transactions(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, 8, cached_children=True)
        assert m.child_transactions.sum() == 0
        assert m.const_requests > 0

    def test_uncached_children_cost_transactions(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, 8, cached_children=False)
        assert m.child_transactions.sum() > 0
        assert m.const_requests == 0

    def test_hbtree_has_pointer_traffic(self, layout, queries):
        m = simulate_hbtree_search(layout, queries)
        assert m.child_transactions.sum() > 0
        assert m.group_size == 32  # fanout 64 capped at warp

    def test_value_fetch_counted_for_hits(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, 8)
        assert m.value_transactions > 0
        assert m.value_requests > 0

    def test_no_value_fetch_for_misses(self, layout):
        misses = np.full(256, int(layout.max_key()) + 5, dtype=np.int64)
        m = simulate_harmonia_search(layout, misses, 8)
        assert m.value_transactions == 0

    def test_early_exit_reduces_steps(self, layout, queries):
        fast = simulate_harmonia_search(layout, queries, 8, early_exit=True)
        slow = simulate_harmonia_search(layout, queries, 8, early_exit=False)
        assert fast.total_warp_steps < slow.total_warp_steps
        assert fast.utilization > slow.utilization

    def test_psa_improves_coalescing(self, layout, queries):
        psa = prepare_batch(queries, bits=20, key_bits=30)
        plain = simulate_harmonia_search(layout, queries, 4)
        sorted_ = simulate_harmonia_search(layout, psa.queries, 4)
        assert sorted_.gld_transactions < plain.gld_transactions
        assert (
            sorted_.transactions_per_request < plain.transactions_per_request
        )

    def test_narrower_groups_fewer_executed_comparisons(self, layout, queries):
        wide = simulate_harmonia_search(layout, queries, 32, early_exit=True)
        narrow = simulate_harmonia_search(layout, queries, 4, early_exit=True)
        assert narrow.executed_comparisons < wide.executed_comparisons

    def test_trace_reuse_matches(self, layout, queries):
        from repro.core.search import traverse_batch

        trace = traverse_batch(layout, queries)
        a = simulate_harmonia_search(layout, queries, 8)
        b = simulate_harmonia_search(layout, queries, 8, trace=trace)
        assert a.gld_transactions == b.gld_transactions
        assert a.total_warp_steps == b.total_warp_steps

    def test_locality_annotation_bounds(self, layout, queries):
        m = simulate_harmonia_search(layout, queries, 8)
        assert m.dram_transactions is not None
        assert m.total_dram_transactions <= m.gld_transactions
        assert m.total_l2_transactions >= 0

    def test_locality_can_be_disabled(self, layout, queries):
        cfg = SimConfig(group_size=8, model_locality=False)
        m = simulate_search(layout, queries, cfg)
        assert m.dram_transactions is None
        assert m.total_dram_transactions is None


class TestFigure2Setup:
    def test_four_queries_per_warp_at_fanout8(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.choice(1 << 24, 3_500, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=8, fill=1.0)
        assert layout.height == 4
        from repro.baselines.gpu_regular import simulate_regular_gpu_search

        q = rng.choice(keys, 2_048)
        m = simulate_regular_gpu_search(layout, q)
        assert m.group_size == 8
        assert m.n_warps == q.size // 4
        # Root level is always fully coalesced: 1 transaction per warp.
        assert m.key_transactions[0] == m.n_warps
        # Lower levels approach 4 distinct nodes per warp.
        per_warp = m.transactions_per_warp_level()
        assert per_warp[-1] > 3.5
