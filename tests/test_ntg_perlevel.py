"""Per-level NTG: degree vector, scan widths, caching depth, equivalence.

The per-level path (``SearchConfig.ntg_per_level=True``, the default) is a
*kernel-shape* optimization — it changes which lanes compare which slots
and how the host engine chunks, never what a query returns.  The
hypothesis suites here pin that contract byte-identical against the
global single-width ablation across every read surface (point, range,
stream) and through the snapshot wrappers (EpochManager, ShardedTree);
the directed classes pin the degree DP, the scan-width derivation, the
level-aware chunk quantum, and the caching-depth memory split.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import SearchConfig, UpdateConfig
from repro.core.layout import HarmoniaLayout
from repro.core.ntg import (
    NTGSelection,
    SelectionCache,
    choose_group_size,
    choose_level_degrees,
    level_scan_widths,
)
from repro.core.tree import HarmoniaTree, _profile_sample
from repro.core.update import Operation
from repro.errors import ConfigError
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.device import TITAN_V
from repro.workloads.generators import make_key_set, uniform_queries


def _is_pow2(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def make_skewed_tree(n_keys=4096, fanout=16, keep_every=8, seed=3):
    """Dense internals over gap-thinned leaves: the occupancy skew the
    per-level degrees exist for."""
    keys = make_key_set(n_keys, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=1.0)
    doomed = keys[np.arange(keys.size) % keep_every != 0]
    tree.apply_batch(
        [Operation("delete", int(k)) for k in doomed],
        UpdateConfig(mode="gapped", gap_watermark=1.0, occupancy_low=0.0),
    )
    survivors = keys[np.arange(keys.size) % keep_every == 0]
    return tree, survivors


# --------------------------------------------------------------- degree DP


class TestChooseLevelDegrees:
    def test_non_increasing_and_power_of_two(self):
        rng = np.random.default_rng(1)
        full = rng.integers(1, 15, size=(4, 256)).astype(np.int64)
        early = np.maximum(full - rng.integers(0, 5, size=full.shape), 1)
        degrees = choose_level_degrees(full, early, warp_size=32,
                                       fanout_gs=16)
        assert len(degrees) == 4
        assert all(_is_pow2(d) and d <= 16 for d in degrees)
        assert all(a >= b for a, b in zip(degrees, degrees[1:]))

    def test_skewed_leaf_narrower_than_internal(self):
        # Dense internals (8 comparisons — every halving below 8 costs
        # the same warp-step slots, so the wide tie-break keeps 8) over
        # gap-thinned leaves that resolve in one comparison (degree 1 is
        # strictly cheapest).  The DP must narrow only the leaf.
        full = np.full((3, 512), 15, dtype=np.int64)
        early = np.vstack([
            np.full(512, 8, dtype=np.int64),    # root: dense
            np.full(512, 8, dtype=np.int64),    # mid: dense
            np.full(512, 1, dtype=np.int64),    # leaf: thin
        ])
        degrees = choose_level_degrees(full, early, warp_size=32,
                                       fanout_gs=16)
        assert degrees[-1] < degrees[0]
        assert degrees[0] == 8

    def test_wide_tie_break(self):
        # One comparison everywhere: every degree costs the same number
        # of warp step-slots... except that narrower degrees pack more
        # queries per warp, so the widest choice is only kept on real
        # ties.  With a single query there is exactly one warp whatever
        # the degree — a true tie — and the DP must keep the fanout
        # width (fewer splits, better locality).
        full = np.ones((3, 1), dtype=np.int64)
        early = np.ones((3, 1), dtype=np.int64)
        degrees = choose_level_degrees(full, early, warp_size=32,
                                       fanout_gs=8)
        assert degrees == (8, 8, 8)

    def test_min_gs_floor(self):
        full = np.full((2, 128), 1, dtype=np.int64)
        early = full.copy()
        degrees = choose_level_degrees(full, early, warp_size=32,
                                       min_gs=4, fanout_gs=16)
        assert all(d >= 4 for d in degrees)

    def test_min_gs_above_fanout_rejected(self):
        full = np.ones((1, 8), dtype=np.int64)
        with pytest.raises(ConfigError):
            choose_level_degrees(full, full, warp_size=32,
                                 min_gs=32, fanout_gs=8)

    def test_empty_trace(self):
        empty = np.empty((0, 0), dtype=np.int64)
        assert choose_level_degrees(empty, empty) == ()


class TestLevelScanWidths:
    def test_width_is_degree_multiple_covering_quantile(self):
        early = np.array([[3, 3, 3, 3, 3, 3, 3, 9]], dtype=np.int64)
        (w,) = level_scan_widths(early, (4,), slots=15, quantile=0.8)
        # 80th percentile is 3 → smallest multiple of 4 covering it.
        assert w == 4
        (w,) = level_scan_widths(early, (4,), slots=15, quantile=1.0)
        assert w == 12  # must cover the 9-comparison tail

    def test_capped_at_slots(self):
        early = np.full((1, 32), 60, dtype=np.int64)
        (w,) = level_scan_widths(early, (8,), slots=15)
        assert w == 15

    def test_empty_row_falls_back_to_slots(self):
        early = np.empty((1, 0), dtype=np.int64)
        (w,) = level_scan_widths(early, (4,), slots=15)
        assert w == 15

    def test_mismatched_degrees_rejected(self):
        early = np.ones((2, 4), dtype=np.int64)
        with pytest.raises(ConfigError):
            level_scan_widths(early, (4,), slots=15)

    def test_bad_quantile_rejected(self):
        early = np.ones((1, 4), dtype=np.int64)
        with pytest.raises(ConfigError):
            level_scan_widths(early, (4,), slots=15, quantile=0.0)


# ---------------------------------------------------- vector-valued cache


class TestSelectionCacheVectors:
    def test_cached_selection_preserves_vectors(self):
        keys = make_key_set(2_000, rng=5)
        layout = HarmoniaLayout.from_sorted(keys, fanout=16, fill=0.7)
        sel = choose_group_size(layout, keys[:512], warp_size=32)
        assert sel.ntg_degrees and sel.scan_widths
        assert len(sel.ntg_degrees) == layout.height
        cache = SelectionCache(capacity=2)
        cache.put(layout, 32, 2, sel)
        hit = cache.get(layout, 32, 2)
        assert hit is sel
        assert hit.ntg_degrees == sel.ntg_degrees
        assert hit.scan_widths == sel.scan_widths

    def test_eviction_drops_vector_entries_in_lru_order(self):
        keys = make_key_set(1_000, rng=6)
        layouts = [
            HarmoniaLayout.from_sorted(keys, fanout=8, fill=0.7 + 0.1 * i)
            for i in range(3)
        ]
        sels = [
            NTGSelection(group_size=4, ntg_degrees=(4,) * lay.height,
                         scan_widths=(lay.slots,) * lay.height)
            for lay in layouts
        ]
        cache = SelectionCache(capacity=2)
        for lay, sel in zip(layouts, sels):
            cache.put(lay, 32, 2, sel)
        assert cache.get(layouts[0], 32, 2) is None  # evicted
        assert cache.get(layouts[1], 32, 2) is sels[1]
        assert cache.get(layouts[2], 32, 2) is sels[2]

    def test_prepare_queries_returns_cached_vector(self):
        tree, survivors = make_skewed_tree(n_keys=2048)
        q = uniform_queries(survivors, 1024, rng=7)
        cfg = SearchConfig.full()
        p1 = tree.prepare_queries(q, cfg)
        p2 = tree.prepare_queries(q, cfg)
        assert p1.ntg_degrees == p2.ntg_degrees
        assert p1.scan_widths == p2.scan_widths
        assert p1.ntg_selection is p2.ntg_selection  # cache hit


# ------------------------------------------------- level-aware chunking


class TestChunkQuantum:
    def test_skewed_tree_uses_narrowest_level_cohort(self):
        # Regression: the legacy quantum came from the single aggregate
        # group size, so a skewed tree (wide internals, thin leaves)
        # sharded its batches into chunks that split the larger cohorts
        # the narrow levels form.  The quantum must follow the narrowest
        # degree: warp_size // min(ntg_degrees).
        tree, survivors = make_skewed_tree()
        q = uniform_queries(survivors, 2048, rng=9)
        prep = tree.prepare_queries(q, SearchConfig.full())
        assert prep.ntg_degrees, "skewed tree must profile per level"
        expect = max(1, prep.warp_size // min(prep.ntg_degrees))
        assert prep.chunk_quantum == expect
        # The narrow levels pack more queries per warp than the aggregate
        # width would — the old quantum under-counts the cohort.
        assert prep.chunk_quantum >= prep.group_size

    def test_global_fallback_keeps_legacy_quantum(self):
        tree, survivors = make_skewed_tree()
        q = uniform_queries(survivors, 2048, rng=9)
        prep = tree.prepare_queries(
            q, SearchConfig.full().with_(ntg_per_level=False)
        )
        assert prep.ntg_degrees == ()
        assert prep.chunk_quantum == max(1, prep.group_size)

    def test_sharded_engine_matches_solo_on_skewed_tree(self):
        tree, survivors = make_skewed_tree()
        q = uniform_queries(survivors, 4096, rng=10)
        cfg = SearchConfig.full()
        solo = tree.search_many(q, cfg)
        sharded = tree.search_many(
            q, cfg.with_(engine_workers=4, engine_min_parallel=1 << 8)
        )
        assert np.array_equal(solo, sharded)


# ------------------------------------------------ caching-depth memory model


class TestCachingDepthModel:
    def test_tiny_budget_lowers_depth_and_costs_transactions(self):
        tree, survivors = make_skewed_tree()
        lay = tree.layout
        q = np.sort(uniform_queries(survivors, 2048, rng=11))
        prep = tree.prepare_queries(q, SearchConfig.full())
        from dataclasses import replace
        tiny_dev = replace(TITAN_V, const_budget_bytes=64)
        assert lay.caching_depth(64) < lay.caching_depth()
        m_full = simulate_harmonia_search(lay, prep.queries, prep.group_size)
        m_tiny = simulate_harmonia_search(
            lay, prep.queries, prep.group_size, device=tiny_dev
        )
        assert m_tiny.caching_depth == lay.caching_depth(64)
        assert m_tiny.gld_transactions > m_full.gld_transactions

    def test_uniform_degrees_identical_to_legacy_kernel(self):
        # A per-level vector of all-equal degrees must be bit-for-bit the
        # single-width kernel: same transactions at every level, same
        # summary counters.
        tree, survivors = make_skewed_tree()
        lay = tree.layout
        q = np.sort(uniform_queries(survivors, 2048, rng=12))
        gs = 4
        legacy = simulate_harmonia_search(lay, q, gs)
        uniform = simulate_harmonia_search(
            lay, q, gs, ntg_degrees=(gs,) * lay.height
        )
        assert np.array_equal(legacy.key_transactions,
                              uniform.key_transactions)
        assert legacy.summary() == uniform.summary()


# -------------------------------------------------------- profiling sample


class TestProfileSample:
    def test_small_batch_passthrough(self):
        q = np.arange(100, dtype=np.int64)
        assert _profile_sample(q, 1000, 32) is q

    def test_sorted_stays_sorted_and_spans_range(self):
        q = np.arange(100_000, dtype=np.int64)
        s = _profile_sample(q, 1000, 32)
        assert s.size <= 1000
        assert np.all(np.diff(s) > 0)
        # Blocks must reach both ends of the stream, not just the prefix
        # (the bias that mis-profiled upper levels).
        assert s[0] == 0 and s[-1] == q[-1]

    def test_blocks_are_contiguous_warp_multiples(self):
        q = np.arange(50_000, dtype=np.int64)
        s = _profile_sample(q, 1024, 32)
        block = 4 * 32
        assert s.size % block == 0
        runs = s.reshape(-1, block)
        assert np.all(np.diff(runs, axis=1) == 1)  # contiguous inside


# ------------------------------------------------ byte-identical contract


def _equiv_trees(n_keys, fanout, keep_every, seed):
    keys = make_key_set(n_keys, rng=seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=1.0)
    if keep_every > 1:
        doomed = keys[np.arange(keys.size) % keep_every != 0]
        tree.apply_batch(
            [Operation("delete", int(k)) for k in doomed],
            UpdateConfig(mode="gapped", gap_watermark=1.0,
                         occupancy_low=0.0),
        )
        keys = keys[np.arange(keys.size) % keep_every == 0]
    return tree, keys


CFG_PL = SearchConfig.full()
CFG_GL = SearchConfig.full().with_(ntg_per_level=False)

equiv_settings = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def tree_and_queries(draw):
    n_keys = draw(st.integers(min_value=64, max_value=2048))
    fanout = draw(st.sampled_from([8, 16, 64]))
    keep_every = draw(st.sampled_from([1, 1, 4, 8]))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    nq = draw(st.integers(min_value=1, max_value=1024))
    return n_keys, fanout, keep_every, seed, nq


class TestPerLevelEquivalence:
    @equiv_settings
    @given(tree_and_queries())
    def test_point_lookups_byte_identical(self, params):
        n_keys, fanout, keep_every, seed, nq = params
        tree, keys = _equiv_trees(n_keys, fanout, keep_every, seed)
        q = uniform_queries(keys, nq, rng=seed + 1)
        # include guaranteed misses
        q = np.concatenate([q, q + 1])
        assert np.array_equal(
            tree.search_many(q, CFG_PL), tree.search_many(q, CFG_GL)
        )

    @equiv_settings
    @given(tree_and_queries())
    def test_range_scans_byte_identical(self, params):
        n_keys, fanout, keep_every, seed, nq = params
        tree, keys = _equiv_trees(n_keys, fanout, keep_every, seed)
        rng = np.random.default_rng(seed + 2)
        lo = rng.integers(0, keys.max() + 1, size=min(nq, 64))
        hi = lo + rng.integers(0, keys.max() // 4 + 1, size=lo.size)
        tree.search_config = CFG_PL
        a = tree.range_search_batch(lo, hi)
        tree.search_config = CFG_GL
        b = tree.range_search_batch(lo, hi)
        for (ka, va), (kb, vb) in zip(a, b):
            assert np.array_equal(ka, kb) and np.array_equal(va, vb)

    @equiv_settings
    @given(tree_and_queries())
    def test_stream_byte_identical(self, params):
        n_keys, fanout, keep_every, seed, nq = params
        tree, keys = _equiv_trees(n_keys, fanout, keep_every, seed)
        q = uniform_queries(keys, nq, rng=seed + 3)
        stream_pl = CFG_PL.with_(stream_batch=256, stream_mode="serial",
                                 stream_depth=1)
        stream_gl = CFG_GL.with_(stream_batch=256, stream_mode="serial",
                                 stream_depth=1)
        assert np.array_equal(
            tree.search_stream(q, stream_pl),
            tree.search_stream(q, stream_gl),
        )

    def test_epoch_manager_byte_identical(self):
        from repro.core.epoch import EpochManager

        tree_pl, keys = _equiv_trees(2048, 16, 8, seed=21)
        tree_gl, _ = _equiv_trees(2048, 16, 8, seed=21)
        q = uniform_queries(keys, 4096, rng=22)
        mgr_pl = EpochManager(tree_pl)
        mgr_gl = EpochManager(tree_gl)
        # interleave updates so both managers publish fresh epochs
        ops = [Operation("insert", int(keys[-1]) + 10 + i, i)
               for i in range(64)]
        mgr_pl.submit_many(ops)
        mgr_pl.flush()
        mgr_gl.submit_many(ops)
        mgr_gl.flush()
        assert np.array_equal(
            mgr_pl.search_many(q, CFG_PL), mgr_gl.search_many(q, CFG_GL)
        )
        assert np.array_equal(
            mgr_pl.search_stream(q, CFG_PL.with_(stream_batch=512)),
            mgr_gl.search_stream(q, CFG_GL.with_(stream_batch=512)),
        )

    def test_sharded_tree_byte_identical(self):
        from repro.shard import ShardedTree

        keys = make_key_set(4096, rng=31)
        q = np.concatenate([
            uniform_queries(keys, 2048, rng=32),
            uniform_queries(keys, 64, rng=33) + 1,  # misses
        ])
        with ShardedTree.from_sorted(
            keys, n_shards=2, fanout=16, search_config=CFG_PL
        ) as st_pl, ShardedTree.from_sorted(
            keys, n_shards=2, fanout=16, search_config=CFG_GL
        ) as st_gl:
            assert np.array_equal(
                st_pl.search_many(q), st_gl.search_many(q)
            )
