"""Cross-implementation and end-to-end integration tests.

Every index structure in the repository answers the same queries the same
way; the full pipeline (build → PSA → NTG → search → batch update →
re-search) holds together; simulated kernels agree with the executed
searches on *what* was traversed.
"""

import numpy as np
import pytest

from repro import (
    CPUBTreeSearcher,
    HarmoniaTree,
    HBTree,
    ImplicitBPlusTree,
    NOT_FOUND,
    Operation,
    RegularBPlusTree,
    SearchConfig,
    bulk_load,
)
from repro.core.search import search_batch
from repro.workloads.generators import make_key_set, uniform_queries


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(77)
    keys = make_key_set(20_000, key_space_bits=30, rng=rng)
    values = (keys * 13 + 1).astype(np.int64)
    queries = np.concatenate([
        uniform_queries(keys, 3_000, rng=rng),
        rng.integers(0, 1 << 30, size=3_000),
    ])
    return keys, values, queries


class TestCrossImplementationAgreement:
    def test_all_structures_agree(self, world):
        keys, values, queries = world
        harmonia = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        hb = HBTree.from_sorted(keys, values, fanout=32, fill=0.7)
        implicit = ImplicitBPlusTree(keys, values, fanout=32)
        cpu = CPUBTreeSearcher.from_sorted(keys, values, fanout=32, fill=0.7,
                                           n_threads=2)

        expected = harmonia.search_batch(queries, SearchConfig.full())
        assert np.array_equal(hb.search_batch(queries), expected)
        assert np.array_equal(implicit.search_batch(queries), expected)
        assert np.array_equal(cpu.search_batch(queries), expected)

    def test_regular_tree_is_the_oracle(self, world):
        keys, values, queries = world
        harmonia = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        regular = bulk_load(keys, values, fanout=32, fill=0.7)
        got = harmonia.search_batch(queries[:500])
        for q, r in zip(queries[:500], got):
            oracle = regular.search(int(q))
            assert (r == NOT_FOUND) == (oracle is None)
            if oracle is not None:
                assert r == oracle

    def test_range_queries_agree(self, world):
        keys, values, _ = world
        harmonia = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        regular = bulk_load(keys, values, fanout=32, fill=0.7)
        lo, hi = int(keys[100]), int(keys[400])
        hk, hv = harmonia.range_search(lo, hi)
        pairs = regular.range_search(lo, hi)
        assert hk.tolist() == [k for k, _ in pairs]
        assert hv.tolist() == [v for _, v in pairs]


class TestEndToEndPipeline:
    def test_query_update_query_cycle(self, world):
        keys, values, _ = world
        tree = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        regular = RegularBPlusTree(32)
        for k, v in zip(keys, values):
            regular.insert(int(k), int(v))

        rng = np.random.default_rng(78)
        for round_ in range(3):
            ops = []
            fresh = rng.integers(0, 1 << 30, size=300)
            for k in fresh:
                ops.append(Operation("insert", int(k), round_))
            targets = rng.choice(keys, 300)
            for k in targets:
                ops.append(Operation("update", int(k), -round_))
            tree.apply_batch(ops)
            for op in ops:
                if op.kind == "insert":
                    regular.insert(op.key, op.value)
                else:
                    regular.update(op.key, op.value)
            tree.check_invariants()
            regular.check_invariants()
            assert len(tree) == len(regular)

        probes = rng.integers(0, 1 << 30, size=2_000)
        got = tree.search_batch(probes, SearchConfig.full())
        for q, r in zip(probes[:400], got[:400]):
            oracle = regular.search(int(q))
            assert (r == NOT_FOUND) == (oracle is None)
            if oracle is not None:
                assert r == oracle

    def test_simulation_is_pure_observation(self, world):
        # Running the simulator must not perturb results or state.
        keys, values, queries = world
        tree = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        before = tree.search_batch(queries)
        from repro.gpusim import simulate_harmonia_search

        prep = tree.prepare_queries(queries, SearchConfig.full())
        simulate_harmonia_search(tree.layout, prep.queries, prep.group_size)
        after = tree.search_batch(queries)
        assert np.array_equal(before, after)
        tree.check_invariants()

    def test_simulated_traversals_match_search(self, world):
        keys, values, queries = world
        tree = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        from repro.core.search import traverse_batch

        trace = traverse_batch(tree.layout, queries)
        direct = search_batch(tree.layout, queries)
        assert np.array_equal(trace.values, direct)

    def test_hbtree_and_harmonia_same_tree_shape(self, world):
        keys, values, _ = world
        hb = HBTree.from_sorted(keys, values, fanout=32, fill=0.7)
        ha = HarmoniaTree.from_sorted(keys, values, fanout=32, fill=0.7)
        assert hb.height == ha.height
        assert np.array_equal(hb._layout.prefix_sum, ha.layout.prefix_sum)
