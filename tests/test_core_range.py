"""Tests for range queries over the Harmonia layout."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.layout import HarmoniaLayout
from repro.core.search import range_search, range_search_batch


@pytest.fixture(scope="module")
def setup():
    keys = np.arange(0, 10_000, 3, dtype=np.int64)  # 0,3,6,...
    layout = HarmoniaLayout.from_sorted(keys, values=keys * 2, fanout=8, fill=0.6)
    return layout, keys


class TestRangeSearch:
    def test_inclusive_both_ends(self, setup):
        layout, keys = setup
        k, v = range_search(layout, 3, 12)
        assert k.tolist() == [3, 6, 9, 12]
        assert v.tolist() == [6, 12, 18, 24]

    def test_bounds_between_keys(self, setup):
        layout, _ = setup
        k, _ = range_search(layout, 4, 11)
        assert k.tolist() == [6, 9]

    def test_full_span(self, setup):
        layout, keys = setup
        k, v = range_search(layout, -5, 10**6)
        assert np.array_equal(k, keys)
        assert np.array_equal(v, keys * 2)

    def test_empty_window(self, setup):
        layout, _ = setup
        k, v = range_search(layout, 4, 5)
        assert k.size == 0 and v.size == 0

    def test_inverted(self, setup):
        layout, _ = setup
        k, v = range_search(layout, 10, 5)
        assert k.size == 0

    def test_single_key_window(self, setup):
        layout, _ = setup
        k, v = range_search(layout, 9, 9)
        assert k.tolist() == [9] and v.tolist() == [18]

    def test_crosses_many_leaves(self, setup):
        layout, keys = setup
        lo, hi = int(keys[100]), int(keys[800])
        k, _ = range_search(layout, lo, hi)
        assert np.array_equal(k, keys[100:801])

    def test_matches_bruteforce(self, setup, rng):
        layout, keys = setup
        for _ in range(25):
            lo, hi = sorted(rng.integers(0, 10_100, size=2).tolist())
            k, v = range_search(layout, lo, hi)
            ref = keys[(keys >= lo) & (keys <= hi)]
            assert np.array_equal(k, ref)
            assert np.array_equal(v, ref * 2)

    def test_padding_never_leaks(self, rng):
        # Half-full leaves put KEY_MAX padding inside the scan window.
        keys = np.sort(rng.choice(1 << 20, 4_000, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=16, fill=0.5)
        k, _ = range_search(layout, int(keys[10]), int(keys[-10]))
        assert np.array_equal(k, keys[10:-9])


class TestRangeBatch:
    def test_batch_matches_single(self, setup):
        layout, keys = setup
        los = [0, 100, 5_000]
        his = [30, 200, 5_100]
        batch = range_search_batch(layout, los, his)
        for (bk, bv), lo, hi in zip(batch, los, his):
            sk, sv = range_search(layout, lo, hi)
            assert np.array_equal(bk, sk)
            assert np.array_equal(bv, sv)

    def test_misaligned_bounds_rejected(self, setup):
        layout, _ = setup
        with pytest.raises(ValueError):
            range_search_batch(layout, [1, 2], [3])


class TestRangeBatchVectorized:
    """The batched-traversal rewrite: one level-synchronous pass locates
    every lo/hi leaf; outputs stay bit-identical to scalar range_search."""

    def test_random_bounds_match_scalar(self, setup, rng=None):
        layout, keys = setup
        gen = np.random.default_rng(99)
        los = gen.integers(-5, 10_500, 200).astype(np.int64)
        his = los + gen.integers(0, 2_000, 200).astype(np.int64)
        his[::5] = los[::5] - 1  # inverted bounds -> empty results
        los = np.maximum(los, 0)
        his = np.maximum(his, 0)
        batch = range_search_batch(layout, los, his)
        assert len(batch) == los.size
        for (bk, bv), lo, hi in zip(batch, los, his):
            sk, sv = range_search(layout, int(lo), int(hi))
            assert np.array_equal(bk, sk)
            assert np.array_equal(bv, sv)

    def test_empty_batch(self, setup):
        layout, _ = setup
        assert range_search_batch(layout, [], []) == []

    def test_locate_leaves_batch_agrees_with_traversal(self, setup):
        from repro.core.search import locate_leaves_batch, traverse_batch

        layout, keys = setup
        targets = np.array([0, 1, 4_999, 9_999, 20_000], dtype=np.int64)
        leaves = locate_leaves_batch(layout, targets)
        trace = traverse_batch(layout, targets)
        assert np.array_equal(leaves, trace.node_idx[-1] - layout.leaf_start)

    def test_locate_leaves_bounds_agrees_with_traversal(self, setup):
        from repro.core.search import locate_leaves_batch, locate_leaves_bounds

        layout, _ = setup
        gen = np.random.default_rng(7)
        targets = gen.integers(-100, 11_000, 500).astype(np.int64)
        targets = np.maximum(targets, 0)
        assert np.array_equal(
            locate_leaves_bounds(layout, targets),
            locate_leaves_batch(layout, targets),
        )


class TestRangeBatchEdgeCases:
    """Hypothesis coverage of the edge geometry: empty/inverted/duplicate
    bounds, bound pairs that collapse to one leaf, and windows spanning
    gapped leaves (slack, empty rows) produced by the gapped executor."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        bounds=st.lists(
            st.tuples(st.integers(-50, 10_200), st.integers(-50, 10_200)),
            min_size=1, max_size=30,
        )
    )
    def test_arbitrary_bound_pairs_match_bruteforce(self, setup, bounds):
        layout, keys = setup
        los = np.asarray([max(a, 0) for a, _ in bounds], dtype=np.int64)
        his = np.asarray([max(b, 0) for _, b in bounds], dtype=np.int64)
        out = range_search_batch(layout, los, his)
        for (bk, bv), lo, hi in zip(out, los, his):
            ref = keys[(keys >= lo) & (keys <= hi)]
            assert np.array_equal(bk, ref)
            assert np.array_equal(bv, ref * 2)

    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(lo=st.integers(0, 10_200))
    def test_duplicate_and_inverted_bounds(self, setup, lo):
        layout, keys = setup
        los = np.asarray([lo, lo, lo + 1], dtype=np.int64)
        his = np.asarray([lo, lo - 1, lo], dtype=np.int64)  # point/inverted
        point, inverted, backwards = range_search_batch(layout, los, his)
        ref = keys[(keys >= lo) & (keys <= lo)]
        assert np.array_equal(point[0], ref)
        assert inverted[0].size == 0
        assert backwards[0].size == 0

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        dels=st.lists(st.integers(0, 199), min_size=0, max_size=120,
                      unique=True),
        ins=st.lists(st.integers(0, 420), min_size=0, max_size=40,
                     unique=True),
        lo=st.integers(-5, 430),
        width=st.integers(0, 430),
    )
    def test_windows_spanning_gapped_leaves(self, dels, ins, lo, width):
        """Build a gapped layout (slack + possibly emptied leaves) through
        the gapped executor, then check windows crossing it: sentinel pads
        and empty rows inside the window must never leak."""
        from repro.core import HarmoniaTree, UpdateConfig
        from repro.core.update import Operation

        keys = np.arange(0, 400, 2, dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, values=keys * 3,
                                        fanout=8, fill=0.7)
        ops = [Operation("delete", 2 * d) for d in dels]
        ops += [Operation("insert", 2 * i + 1, (2 * i + 1) * 3)
                for i in ins]
        lax = UpdateConfig(mode="gapped", gap_watermark=1.0,
                           occupancy_low=0.0)
        tree.apply_batch(ops, lax)
        if tree._layout is None:
            return
        stored = np.asarray([k for k, _ in tree.items()], dtype=np.int64)
        lo = max(lo, 0)
        hi = lo + width
        (k, v), = range_search_batch(
            tree._layout, np.asarray([lo]), np.asarray([hi])
        )
        ref = stored[(stored >= lo) & (stored <= hi)]
        assert np.array_equal(k, ref)
        assert np.array_equal(v, ref * 3)
