"""Documentation-drift guards.

Docs that reference modules, experiments, or CLIs that no longer exist are
worse than no docs; these tests pin the load-bearing references.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestDesignDoc:
    def test_every_module_in_inventory_exists(self):
        """DESIGN.md's §3 module map names real files."""
        text = read("DESIGN.md")
        for match in re.finditer(r"^\s{4}(\w[\w/]*\.py)", text, re.M):
            name = match.group(1)
            if name.count("/") > 1:
                continue  # shorthand rows like "ext_a/b/c.py"
            hits = list((ROOT / "src" / "repro").rglob(name))
            assert hits, f"DESIGN.md names missing module {name}"

    def test_experiment_ids_match_registry(self):
        from repro.experiments.runner import EXPERIMENTS

        text = read("DESIGN.md")
        for exp in ("fig02", "fig03", "fig08", "fig10", "fig11", "fig12",
                    "fig13", "fig14", "ext_range", "ext_skew"):
            assert exp in EXPERIMENTS
        # Every extension row in DESIGN §5 is registered.
        for match in re.finditer(r"\| (ext_\w+) \|", text):
            assert match.group(1) in EXPERIMENTS, match.group(1)


class TestReadme:
    def test_example_scripts_exist(self):
        text = read("README.md")
        for match in re.finditer(r"`(\w+\.py)`", text):
            name = match.group(1)
            if name in ("setup.py",):
                continue
            assert (ROOT / "examples" / name).exists(), name

    def test_cli_entry_points_exist(self):
        import repro.cli
        import repro.experiments.runner

        text = read("README.md")
        assert "harmonia-experiments" in text
        assert "harmonia-tool" in text
        assert callable(repro.cli.main)
        assert callable(repro.experiments.runner.main)

    def test_quickstart_code_runs(self):
        """The README's quickstart block must actually execute."""
        text = read("README.md")
        block = re.search(r"```python\n(.*?)```", text, re.S).group(1)
        namespace = {}
        exec(compile(block, "README-quickstart", "exec"), namespace)
        assert "tree" in namespace

    def test_doc_files_referenced_exist(self):
        text = read("README.md") + read("EXPERIMENTS.md") + read("CONTRIBUTING.md")
        for name in ("DESIGN.md", "EXPERIMENTS.md", "docs/model.md",
                     "docs/api.md", "docs/paper_mapping.md"):
            if name in text:
                assert (ROOT / name).exists(), name


class TestExperimentsDoc:
    def test_summary_covers_every_paper_figure(self):
        text = read("EXPERIMENTS.md")
        for fig in ("Fig 2", "Fig 3", "Fig 8", "Fig 10", "Fig 11", "Fig 12",
                    "Fig 13", "Fig 14"):
            assert fig in text, f"EXPERIMENTS.md summary missing {fig}"

    def test_extension_table_matches_registry(self):
        from repro.experiments.runner import EXPERIMENTS

        text = read("EXPERIMENTS.md")
        documented = set(re.findall(r"\| (ext_\w+) \|", text))
        registered = {k for k in EXPERIMENTS if k.startswith("ext_")}
        assert documented == registered

    def test_calibration_constant_matches_code(self):
        from repro.gpusim.device import TITAN_V

        text = read("EXPERIMENTS.md")
        m = re.search(r"`cycles_per_step = (\d+)`", text)
        assert m and float(m.group(1)) == TITAN_V.cycles_per_step


class TestPaperMapping:
    def test_every_mapped_module_exists(self):
        text = read("docs/paper_mapping.md")
        for match in re.finditer(r"`((?:gpusim|core|btree|baselines|sort|"
                                 r"workloads|analysis|experiments)/\w+\.py)`",
                                 text):
            path = ROOT / "src" / "repro" / match.group(1)
            assert path.exists(), match.group(1)

    def test_mapped_callables_resolve(self):
        """Dotted references like `core/psa.optimal_sort_bits` resolve."""
        import importlib

        text = read("docs/paper_mapping.md")
        for match in re.finditer(r"`((?:\w+/)+\w+)\.(\w+)`", text):
            mod_path, attr = match.group(1), match.group(2)
            if attr == "py" or mod_path.endswith(".py") or "." in mod_path:
                continue  # `pkg/file.py` references, not attributes
            module_name = "repro." + mod_path.replace("/", ".")
            try:
                module = importlib.import_module(module_name)
            except ModuleNotFoundError:
                continue  # not a module reference (e.g. a file path)
            # The attribute may live on the module or on a class in it
            # (e.g. `core/tree.apply_batch` is HarmoniaTree.apply_batch).
            on_module = hasattr(module, attr)
            on_class = any(
                hasattr(obj, attr)
                for obj in vars(module).values()
                if isinstance(obj, type)
            )
            assert on_module or on_class, f"{module_name}.{attr}"
