"""Smoke-run every figure experiment and check its shape criteria.

These are the repository's acceptance tests: each paper figure must
regenerate with the right qualitative shape at the smoke scale.
"""

import importlib

import pytest

from repro.experiments.common import ExperimentResult, geomean, resolve_scale
from repro.experiments.runner import EXPERIMENTS, run_experiments


class TestCommon:
    def test_table_rendering(self):
        r = ExperimentResult(experiment="x", title="t", scale="smoke")
        r.add_row(a=1, b="y")
        r.add_row(a=22, c=3.5)
        table = r.to_table()
        assert "| a " in table and "22" in table and "3.5" in table
        assert r.columns() == ["a", "b", "c"]

    def test_render_includes_reference_and_notes(self):
        r = ExperimentResult(
            experiment="figx", title="t", scale="smoke",
            paper_reference={"speedup": "3.4x"},
        )
        r.add_row(a=1)
        r.note("hello")
        text = r.render()
        assert "3.4x" in text and "hello" in text

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0

    def test_resolve_scale(self):
        assert resolve_scale("smoke").name == "smoke"
        sc = resolve_scale(resolve_scale("default"))
        assert sc.name == "default"


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_shape(name):
    """Every experiment regenerates with the paper's qualitative shape."""
    module = importlib.import_module(EXPERIMENTS[name])
    result = module.run(scale="smoke", seed=0)
    assert result.rows, f"{name} produced no rows"
    assert module.shape_ok(result), (
        f"{name} failed its shape criteria:\n{result.render()}"
    )


def test_runner_batch():
    out = run_experiments(["fig02", "fig03"], scale="smoke", seed=0)
    assert len(out) == 2
    for name, result, ok, elapsed in out:
        assert ok
        assert elapsed >= 0
        assert result.experiment == name


def test_runner_cli(tmp_path, capsys):
    from repro.experiments.runner import main

    report = tmp_path / "report.md"
    code = main(["--scale", "smoke", "--only", "fig03", "--out", str(report)])
    assert code == 0
    assert report.exists()
    assert "fig03" in report.read_text()


def test_runner_rejects_unknown():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["--only", "fig99"])
