"""Tests for HarmoniaLayout — the two-region structure (§3.1)."""

import numpy as np
import pytest

from repro.btree.bulk import bulk_load
from repro.constants import KEY_MAX
from repro.core.layout import HarmoniaLayout
from repro.errors import EmptyTreeError, InvariantViolation


class TestConstruction:
    def test_from_regular_roundtrips_keys(self, small_keys):
        tree = bulk_load(small_keys, fanout=8, fill=0.8)
        layout = HarmoniaLayout.from_regular(tree)
        layout.check_invariants()
        assert np.array_equal(layout.all_keys(), small_keys)
        assert layout.n_keys == small_keys.size
        assert layout.height == tree.height

    def test_from_sorted_equals_from_regular(self, small_keys):
        a = HarmoniaLayout.from_sorted(small_keys, fanout=8, fill=0.8)
        b = HarmoniaLayout.from_regular(bulk_load(small_keys, fanout=8, fill=0.8))
        assert np.array_equal(a.key_region, b.key_region)
        assert np.array_equal(a.prefix_sum, b.prefix_sum)

    def test_empty_rejected(self):
        with pytest.raises(EmptyTreeError):
            HarmoniaLayout.from_sorted([], fanout=8)

    def test_single_key(self):
        layout = HarmoniaLayout.from_sorted([42], fanout=8)
        layout.check_invariants()
        assert layout.height == 1
        assert layout.n_nodes == 1
        assert layout.leaf_start == 0

    def test_values_follow_leaves(self):
        keys = np.arange(0, 100, 2)
        layout = HarmoniaLayout.from_sorted(keys, values=keys * 7, fanout=4)
        flat = layout.iter_leaf_items()
        assert np.array_equal(flat[:, 0] * 7, flat[:, 1])


class TestPrefixSumSemantics:
    @pytest.fixture(scope="class")
    def layout(self):
        return HarmoniaLayout.from_sorted(np.arange(2_000), fanout=8, fill=0.8)

    def test_root_first_child_is_one(self, layout):
        assert layout.prefix_sum[0] == 1

    def test_equation_1(self, layout):
        # child_idx = PrefixSum[node] + i  (0-based i)
        for node in range(layout.leaf_start):
            n = layout.children_count(node)
            for i in (0, n - 1):
                ci = layout.child_index(node, i)
                assert ci == layout.prefix_sum[node] + i
                assert 0 < ci < layout.n_nodes

    def test_child_index_bounds_checked(self, layout):
        n = layout.children_count(0)
        with pytest.raises(IndexError):
            layout.child_index(0, n)
        with pytest.raises(IndexError):
            layout.child_index(0, -1)

    def test_children_counts_match_key_counts(self, layout):
        for node in range(layout.leaf_start):
            assert layout.children_count(node) == layout.key_count(node) + 1

    def test_leaves_have_no_children(self, layout):
        for node in range(layout.leaf_start, layout.n_nodes):
            assert layout.children_count(node) == 0
            assert layout.is_leaf(node)

    def test_levels_partition_nodes(self, layout):
        for node in range(layout.n_nodes):
            lvl = layout.level_of(node)
            assert layout.level_starts[lvl] <= node < layout.level_starts[lvl + 1]


class TestFootprints:
    def test_child_region_is_small(self):
        # §3.1: "for a 64-fanout 4-level B+tree, the size of its prefix-sum
        # array at most is only about 16KB".  4 full levels at fanout 64
        # hold 64^0+..+64^3 nodes ≈ 266k... the paper means the *child*
        # region of a 4-level tree with ~2k internal nodes; check the
        # general property instead: child region ≈ key region / (8·slots).
        layout = HarmoniaLayout.from_sorted(np.arange(100_000), fanout=64)
        ratio = layout.child_region_bytes() / layout.key_region_bytes()
        assert ratio < 1 / (layout.slots / 2)

    def test_bytes_accessors(self, small_layout):
        assert small_layout.key_region_bytes() == small_layout.key_region.nbytes
        assert small_layout.child_region_bytes() == small_layout.prefix_sum.nbytes
        assert small_layout.values_bytes() == small_layout.leaf_values.nbytes


class TestKeySpace:
    def test_max_key(self, small_keys, small_layout):
        assert small_layout.max_key() == int(small_keys[-1])

    def test_key_space_bits(self, small_layout):
        bits = small_layout.key_space_bits()
        assert (1 << bits) > small_layout.max_key() >= (1 << (bits - 1)) - 1


class TestInvariantChecker:
    def test_detects_unsorted_row(self, small_keys):
        layout = HarmoniaLayout.from_sorted(small_keys, fanout=8)
        layout.key_region = layout.key_region.copy()
        layout.key_region[0, 0], layout.key_region[0, 1] = (
            layout.key_region[0, 1],
            layout.key_region[0, 0],
        )
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_detects_bad_prefix(self, small_keys):
        layout = HarmoniaLayout.from_sorted(small_keys, fanout=8)
        layout.prefix_sum = layout.prefix_sum.copy()
        layout.prefix_sum[1] += 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_detects_wrong_n_keys(self, small_keys):
        layout = HarmoniaLayout.from_sorted(small_keys, fanout=8)
        layout.n_keys += 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()


class TestGappedAccessors:
    """Per-leaf fill counts, routing bounds and occupancy — the layout
    surface the gapped update executor builds on."""

    def _gapped(self, n=500, fanout=8, fill=0.7):
        keys = np.arange(0, n * 2, 2, dtype=np.int64)
        return HarmoniaLayout.from_sorted(keys, values=keys,
                                          fanout=fanout, fill=fill), keys

    def test_leaf_key_counts_match_rows(self):
        layout, _ = self._gapped()
        counts = layout.leaf_key_counts()
        ref = np.sum(layout.key_region[layout.leaf_start:] != KEY_MAX, axis=1)
        assert np.array_equal(counts, ref)
        assert counts.sum() == layout.n_keys

    def test_leaf_key_counts_copy_semantics(self):
        layout, _ = self._gapped()
        a = layout.leaf_key_counts()
        a[0] = -99  # callers may scribble on the default copy
        assert layout.leaf_key_counts()[0] != -99
        b = layout.leaf_key_counts(copy=False)
        assert b is layout.leaf_key_counts(copy=False)  # cached view

    def test_occupancy(self):
        layout, _ = self._gapped(fill=0.7)
        occ = layout.occupancy()
        assert 0.6 <= occ <= 0.85
        full, _ = self._gapped(fill=1.0)
        assert full.occupancy() > occ

    def test_leaf_bounds_route_like_traversal(self):
        from repro.core.search import locate_leaves_batch

        layout, keys = self._gapped(fanout=16, fill=0.6)
        bounds = layout.leaf_bounds()
        assert bounds.size == layout.n_leaves
        assert bounds[0] == np.iinfo(np.int64).min  # leaf 0 catches all
        assert np.all(np.diff(bounds[1:]) >= 0)  # (diff over the sentinel
        # would overflow int64, so sortedness is checked past it)
        targets = np.concatenate([keys, keys + 1, [0, 10**9]])
        via_bounds = np.searchsorted(bounds, targets, side="right") - 1
        assert np.array_equal(via_bounds,
                              locate_leaves_batch(layout, targets))

    def test_min_max_key_skip_emptied_leaves(self):
        from repro.core import HarmoniaTree, UpdateConfig
        from repro.core.update import Operation

        keys = np.arange(0, 200, 2, dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, fanout=8, fill=0.7)
        # Empty the first and last leaves in place (lax watermarks keep
        # the gaps instead of compacting them away).
        lax = UpdateConfig(mode="gapped", gap_watermark=1.0,
                           occupancy_low=0.0)
        ops = [Operation("delete", k) for k in range(0, 12, 2)]
        ops += [Operation("delete", k) for k in range(188, 200, 2)]
        tree.apply_batch(ops, lax)
        layout = tree.layout
        counts = layout.leaf_key_counts()
        assert counts[0] == 0 or counts[-1] == 0  # gaps really exist
        assert layout.min_key() == 12
        assert layout.max_key() == 186

    def test_invariants_reject_stale_leaf_counts(self):
        layout, _ = self._gapped()
        layout.leaf_counts = layout.leaf_key_counts()
        layout.check_invariants()
        layout.leaf_counts[0] += 1
        with pytest.raises(InvariantViolation):
            layout.check_invariants()

    def test_copy_preserves_leaf_counts(self):
        layout, _ = self._gapped()
        layout.leaf_counts = layout.leaf_key_counts()
        dup = layout.copy()
        assert np.array_equal(dup.leaf_counts, layout.leaf_counts)
        assert dup.leaf_counts is not layout.leaf_counts
