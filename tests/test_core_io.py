"""Tests for layout/tree persistence."""

import numpy as np
import pytest

from repro.core.io import FORMAT_VERSION, load_layout, load_tree, save_layout, save_tree
from repro.core.layout import HarmoniaLayout
from repro.core.tree import HarmoniaTree
from repro.errors import ConfigError, InvariantViolation


@pytest.fixture
def layout(small_keys):
    return HarmoniaLayout.from_sorted(small_keys, values=small_keys * 2,
                                      fanout=8, fill=0.8)


class TestRoundtrip:
    def test_layout_roundtrip(self, layout, tmp_path):
        path = tmp_path / "tree.npz"
        save_layout(layout, path)
        loaded = load_layout(path)
        assert loaded.fanout == layout.fanout
        assert loaded.height == layout.height
        assert loaded.n_keys == layout.n_keys
        assert np.array_equal(loaded.key_region, layout.key_region)
        assert np.array_equal(loaded.prefix_sum, layout.prefix_sum)
        assert np.array_equal(loaded.leaf_values, layout.leaf_values)

    def test_loaded_layout_searchable(self, layout, small_keys, tmp_path):
        from repro.core.search import search_batch

        path = tmp_path / "tree.npz"
        save_layout(layout, path)
        loaded = load_layout(path)
        out = search_batch(loaded, small_keys[:100])
        assert np.array_equal(out, small_keys[:100] * 2)

    def test_tree_roundtrip(self, small_keys, tmp_path):
        tree = HarmoniaTree.from_sorted(small_keys, fanout=8, fill=0.8)
        path = tmp_path / "t.npz"
        save_tree(tree, path)
        loaded = load_tree(path, fill=0.8)
        assert len(loaded) == len(tree)
        assert loaded.search(int(small_keys[5])) == int(small_keys[5])
        # Loaded trees accept updates (fill policy threaded through).
        assert loaded.insert(int(small_keys[-1]) + 10, 1)
        loaded.check_invariants()


class TestValidationAndErrors:
    def test_empty_tree_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_tree(HarmoniaTree.empty(), tmp_path / "x.npz")

    def test_version_guard(self, layout, tmp_path):
        path = tmp_path / "tree.npz"
        save_layout(layout, path)
        data = dict(np.load(path))
        data["format_version"] = np.int64(FORMAT_VERSION + 1)
        np.savez(path, **data)
        with pytest.raises(ConfigError, match="format version"):
            load_layout(path)

    def test_missing_fields_detected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.arange(3))
        with pytest.raises(ConfigError, match="missing"):
            load_layout(path)

    def test_corruption_caught_by_validation(self, layout, tmp_path):
        path = tmp_path / "tree.npz"
        save_layout(layout, path)
        data = dict(np.load(path))
        kr = data["key_region"].copy()
        kr[0, :2] = kr[0, :2][::-1]  # unsort the root row
        data["key_region"] = kr
        np.savez(path, **data)
        with pytest.raises(InvariantViolation):
            load_layout(path)
        # ...unless validation is explicitly skipped.
        loaded = load_layout(path, validate=False)
        assert loaded.n_keys == layout.n_keys
