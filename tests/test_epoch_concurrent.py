"""Concurrent epochs: snapshot + delta reads ≡ synchronous flushes.

The contract the concurrent mode ships under (docs/epochs.md): for any
sequence of update batches, every read path — point (``search`` /
``search_batch`` / ``search_many`` / ``search_stream``), range
(``range_search_batch``), full iteration (``dump_items``), ``len`` —
through a concurrent :class:`EpochManager` is byte-identical to the same
reads through a synchronously-flushed one, with identical per-op
accounting, *at every point* of the interleaving: before any drain,
after partial drains, and with the background drain racing the writers.
Hypothesis pins the contract; directed tests cover snapshot immutability
under gapped compaction (a drain must never mutate a layout a reader
still pins) and the sharded service running the same protocol.
"""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import UpdateConfig
from repro.core.epoch import EpochManager
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.errors import ConfigError


def make_pair(n_keys, fanout, fill, mode, **kw):
    """Identical trees under a sync and a concurrent manager."""
    keys = np.arange(0, n_keys * 2, 2, dtype=np.int64)

    def build():
        if n_keys == 0:
            return HarmoniaTree.empty(fanout=fanout, fill=fill)
        return HarmoniaTree.from_sorted(keys, keys * 3, fanout=fanout,
                                        fill=fill)

    cfg = UpdateConfig(mode=mode)
    sync = EpochManager(build(), update_config=cfg)
    conc = EpochManager(build(), update_config=cfg, concurrent=True,
                        drain_threshold=kw.pop("drain_threshold", 10 ** 9),
                        **kw)
    return sync, conc


def assert_same_reads(sync, conc, probes, lo, hi):
    assert np.array_equal(sync.search_batch(probes),
                          conc.search_batch(probes))
    assert np.array_equal(sync.search_many(probes),
                          conc.search_many(probes))
    assert np.array_equal(sync.search_stream(probes),
                          conc.search_stream(probes))
    (ka, va), (kb, vb) = sync.range_search(lo, hi), conc.range_search(lo, hi)
    assert np.array_equal(ka, kb) and np.array_equal(va, vb)
    ka, va = sync.dump_items()
    kb, vb = conc.dump_items()
    assert np.array_equal(ka, kb) and np.array_equal(va, vb)
    assert len(sync) == len(conc)


op_strategy = st.tuples(
    st.sampled_from(["insert", "update", "delete"]),
    st.integers(0, 400),
)


class TestEquivalenceProperty:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        n_keys=st.integers(0, 150),
        fanout=st.sampled_from([4, 8, 16]),
        mode=st.sampled_from(["vectorized", "gapped"]),
        max_runs=st.sampled_from([1, 2, 8]),
        batches=st.lists(
            st.tuples(st.lists(op_strategy, max_size=40), st.booleans()),
            max_size=6,
        ),
    )
    def test_interleaved_batches_and_drains(self, n_keys, fanout, mode,
                                            max_runs, batches):
        """Random batches with drains injected at random boundaries; every
        read path must agree with the synchronous reference throughout
        (tombstones over the base, inserts over tombstones, collapsed
        runs — the whole lifecycle)."""
        sync, conc = make_pair(n_keys, fanout, 0.8, mode,
                               max_delta_runs=max_runs)
        probes = np.arange(0, 420, 3, dtype=np.int64)
        for raw_ops, drain_after in batches:
            ops = [Operation(kind, key, key * 10 + 1)
                   for kind, key in raw_ops]
            sync.submit_many(ops)
            rs = sync.flush()
            conc.submit_many(ops)
            rc = conc.flush()
            if rs is None or rc is None:
                assert rs is None and rc is None
            else:
                for field in ("inserted", "updated", "deleted", "failed"):
                    assert getattr(rs, field) == getattr(rc, field), field
            if drain_after:
                conc.drain(wait=True)
                assert conc.delta_size == 0
            assert_same_reads(sync, conc, probes, 10, 390)
        conc.sync()
        assert_same_reads(sync, conc, probes, 10, 390)
        assert conc.snapshot_age == 0

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2 ** 31 - 1),
        mode=st.sampled_from(["vectorized", "gapped", "scalar"]),
    )
    def test_background_drain_races_writers(self, seed, mode):
        """Tiny drain threshold: the background thread keeps folding runs
        while flushes land; visible state never diverges."""
        rng = np.random.default_rng(seed)
        sync, conc = make_pair(100, 8, 0.8, mode, drain_threshold=16,
                               max_delta_runs=2)
        for r in range(6):
            raw = rng.integers(0, 400, size=30)
            kinds = rng.choice(["insert", "update", "delete"], size=30)
            ops = [Operation(str(k), int(key), int(key) + r)
                   for k, key in zip(kinds, raw)]
            sync.submit_many(ops)
            sync.flush()
            conc.submit_many(ops)
            conc.flush()
            probes = rng.integers(0, 450, size=200).astype(np.int64)
            assert np.array_equal(sync.search_batch(probes),
                                  conc.search_batch(probes))
        conc.sync()
        probes = np.arange(0, 450, dtype=np.int64)
        assert_same_reads(sync, conc, probes, 0, 449)


class TestConcurrentBasics:
    def test_flush_publishes_immediately_drain_later(self):
        _, conc = make_pair(50, 8, 1.0, "vectorized")
        base_version = conc.snapshot_version
        conc.submit(Operation("insert", 1, 11))
        conc.flush()
        # Visible at once, but the base snapshot has not been rebuilt.
        assert conc.search(1) == 11
        assert conc.snapshot_version == base_version
        assert conc.delta_size == 1 and conc.snapshot_age == 1
        conc.drain(wait=True)
        assert conc.snapshot_version == base_version + 1
        assert conc.delta_size == 0 and conc.snapshot_age == 0
        assert conc.search(1) == 11

    def test_bootstrap_from_empty(self):
        conc = EpochManager(HarmoniaTree.empty(fanout=8), concurrent=True)
        conc.submit_many([Operation("insert", k, k) for k in range(50)])
        conc.flush()
        assert len(conc) == 50 and conc.search(25) == 25
        conc.drain(wait=True)
        assert len(conc) == 50 and conc.search(25) == 25
        conc._tree.check_invariants()

    def test_pinned_view_survives_flush_and_drain(self):
        _, conc = make_pair(100, 8, 1.0, "vectorized")
        snap = conc._snapshot()
        conc.submit(Operation("delete", 20))
        conc.flush()
        assert conc.search(20) is None
        assert snap.search(20) == 60  # pinned: value = key * 3
        conc.drain(wait=True)
        assert conc.search(20) is None
        assert snap.search(20) == 60

    def test_pinned_snapshot_rejects_writes(self):
        _, conc = make_pair(50, 8, 1.0, "vectorized")
        conc.submit(Operation("insert", 1, 1))
        conc.flush()
        snap = conc._snapshot()
        assert snap.delta is not None
        with pytest.raises(ConfigError):
            snap.apply_batch([Operation("insert", 3, 3)])

    def test_run_collapse_under_cap(self):
        _, conc = make_pair(50, 8, 1.0, "vectorized", max_delta_runs=2)
        for i in range(8):
            conc.submit(Operation("insert", 1001 + 2 * i, i))
            conc.flush()
        assert conc.delta_runs <= 3  # cap + the in-flight append
        assert conc._delta.collapses >= 1
        assert len(conc) == 58

    def test_drain_error_surfaces_on_flush(self):
        _, conc = make_pair(50, 8, 1.0, "vectorized")
        conc._drain_error = RuntimeError("boom")
        conc.submit(Operation("insert", 1, 1))
        with pytest.raises(RuntimeError):
            conc.flush()
        # One-shot: the error is consumed, the manager keeps working.
        conc.flush()
        assert conc.search(1) == 1

    def test_sync_mode_unaffected(self):
        em, _ = make_pair(100, 8, 1.0, "vectorized")
        em.submit(Operation("insert", 1, 1))
        em.flush()
        assert em.delta_size == 0 and em.delta_runs == 0
        assert em.snapshot_version == em.epoch
        em.drain(wait=True)  # no-op
        em.sync()


class TestGappedCompactionIsolation:
    """Satellite: occupancy / compaction_pending vs the snapshot swap.

    Gapped-mode compaction must never touch a layout a reader still
    holds: the drain rebuilds into a shadow and publishes by swap, so a
    pinned snapshot's arrays are bit-frozen even when the drain's batch
    triggers a full compaction epoch.
    """

    @staticmethod
    def gapped_manager():
        keys = np.arange(0, 400, 2, dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, keys * 3, fanout=8, fill=0.6)
        cfg = UpdateConfig(mode="gapped", occupancy_low=0.5,
                           gap_watermark=0.2)
        return EpochManager(tree, update_config=cfg, concurrent=True,
                            drain_threshold=10 ** 9), keys

    def test_pinned_layout_frozen_across_compacting_drain(self):
        conc, keys = self.gapped_manager()
        snap = conc._snapshot()
        frozen_keys = snap._layout.key_region.copy()
        frozen_vals = snap._layout.leaf_values.copy()
        # Delete enough to sink occupancy below the watermark, then some
        # churn so the drain's gapped batch runs a compaction epoch.
        conc.submit_many([Operation("delete", int(k)) for k in keys[::2]])
        conc.flush()
        conc.submit_many(
            [Operation("insert", int(k) + 1, 7) for k in keys[:40]]
        )
        conc.flush()
        occ_before = conc.occupancy()
        conc.drain(wait=True)
        # The base swap changed what occupancy()/compaction_pending()
        # observe...
        assert conc.occupancy() != occ_before or conc.compaction_pending() == 0.0
        assert 0.0 <= conc.compaction_pending() <= 1.0
        # ...but the pinned snapshot's arrays never moved.
        assert np.array_equal(snap._layout.key_region, frozen_keys)
        assert np.array_equal(snap._layout.leaf_values, frozen_vals)
        # And the pinned view still answers from its epoch.
        assert snap.search(int(keys[0])) == int(keys[0]) * 3

    def test_occupancy_reads_published_base(self):
        conc, keys = self.gapped_manager()
        occ0 = conc.occupancy()
        conc.submit_many([Operation("delete", int(k)) for k in keys[:100]])
        conc.flush()
        # Deletes live in the delta: the base layout — and therefore the
        # occupancy observable — is untouched until the drain.
        assert conc.occupancy() == occ0
        base_before = conc._tree._layout
        conc.drain(wait=True)
        # The swap changed which layout the observables read (the drain's
        # gapped batch may have compacted back to the same fill, so the
        # *value* is not required to move — the *object* is).
        assert conc._tree._layout is not base_before
        assert conc.occupancy() == conc._tree._layout.occupancy()
        assert 0.0 <= conc.compaction_pending() <= 1.0
        assert len(conc) == 100

    def test_concurrent_readers_during_background_drains(self):
        conc, keys = self.gapped_manager()
        stop = threading.Event()
        errors = []

        def reader():
            probes = keys[:128]
            want = probes * 3
            while not stop.is_set():
                out = conc.search_batch(probes)
                live = out != np.iinfo(np.int64).min
                if not np.array_equal(out[live], want[live]):
                    errors.append(1)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            victims = keys[128:]
            for start in range(0, victims.size, 20):
                conc.submit_many([
                    Operation("delete", int(k))
                    for k in victims[start:start + 20]
                ])
                conc.flush()
                conc.drain(wait=False)
            conc.sync()
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=10)
        assert not errors
        assert len(conc) == 128
        conc._tree.check_invariants()


class TestShardedConcurrent:
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 2 ** 31 - 1))
    def test_sharded_tree_matches_reference(self, seed):
        """ShardedTree(concurrent=True): worker flushes publish delta
        runs, checkpoint dumps merge them — results identical to one
        local tree."""
        from repro.shard.router import ShardedTree

        rng = np.random.default_rng(seed)
        keys = np.sort(
            rng.choice(20000, size=800, replace=False)
        ).astype(np.int64)
        ref = HarmoniaTree.from_sorted(keys, keys * 2, fanout=16)
        with ShardedTree.from_sorted(keys, keys * 2, n_shards=2, fanout=16,
                                     concurrent=True) as st_tree:
            for r in range(3):
                raw = rng.choice(25000, size=120, replace=False)
                kinds = rng.choice(["insert", "update", "delete"], size=120)
                ops = [Operation(str(k), int(key), int(key) + r)
                       for k, key in zip(kinds, raw)]
                a = ref.apply_batch(ops)
                b = st_tree.apply_batch(ops)
                assert (a.inserted, a.updated, a.deleted, a.failed) == \
                    (b.inserted, b.updated, b.deleted, b.failed)
                q = rng.choice(30000, size=400).astype(np.int64)
                assert np.array_equal(ref.search_many(q),
                                      st_tree.search_many(q))
                ka, va = ref.range_search(10, 15000)
                kb, vb = st_tree.range_search(10, 15000)
                assert np.array_equal(ka, kb) and np.array_equal(va, vb)
            assert len(st_tree) == len(ref)
            st_tree.checkpoint()  # merged dump over the wire
            q = rng.choice(30000, size=400).astype(np.int64)
            assert np.array_equal(ref.search_many(q), st_tree.search_many(q))
