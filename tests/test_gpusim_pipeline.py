"""Tests for the host↔device pipeline model."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.device import TITAN_V
from repro.gpusim.pipeline import (
    MODES,
    compare_modes,
    pipeline_time,
    transfer_time_s,
)


class TestTransferTime:
    def test_bandwidth_term(self):
        base = transfer_time_s(0)
        one_gb = transfer_time_s(10**9)
        assert one_gb - base == pytest.approx(1.0 / TITAN_V.pcie_bandwidth_gbs)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            transfer_time_s(-1)


class TestPipelineTime:
    def test_mode_ordering(self):
        pts = compare_modes(32, 1 << 16, kernel_s=50e-6)
        assert pts["serial"].total_s >= pts["double_buffer"].total_s
        assert pts["double_buffer"].total_s >= pts["pipeline"].total_s

    def test_serial_is_sum(self):
        p = pipeline_time("serial", 4, 1 << 10, kernel_s=1e-3)
        assert p.total_s == pytest.approx(4 * (p.h2d_s + p.kernel_s + p.d2h_s))

    def test_pipeline_steady_state_is_slowest_stage(self):
        p = pipeline_time("pipeline", 1_000, 1 << 10, kernel_s=5e-3)
        # kernel dominates; total ≈ n * kernel for large n.
        assert p.total_s == pytest.approx(1_000 * 5e-3, rel=0.01)
        assert p.bottleneck == "kernel"

    def test_transfer_bound_detection(self):
        p = pipeline_time("pipeline", 100, 1 << 20, kernel_s=1e-6)
        assert p.bottleneck in ("h2d", "d2h")

    def test_single_batch_all_modes_equal(self):
        pts = compare_modes(1, 1 << 10, kernel_s=1e-4)
        totals = {m: pts[m].total_s for m in MODES}
        assert totals["serial"] == pytest.approx(totals["pipeline"])

    def test_throughput(self):
        p = pipeline_time("serial", 10, 1 << 10, kernel_s=1e-3)
        assert p.throughput(1 << 10) == pytest.approx(
            10 * (1 << 10) / p.total_s
        )

    @pytest.mark.parametrize("bad", [("warp", 1, 1, 0.0), ("serial", 0, 1, 0.0),
                                     ("serial", 1, 0, 0.0), ("serial", 1, 1, -1.0)])
    def test_validation(self, bad):
        mode, n, q, k = bad
        with pytest.raises(ConfigError):
            pipeline_time(mode, n, q, kernel_s=k)
