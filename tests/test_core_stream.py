"""Tests for the §4.1.3 streaming executor (core/stream.py)."""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import NOT_FOUND, VALUE_DTYPE
from repro.core.config import SearchConfig
from repro.core.stream import (
    STREAM_MODES,
    BatchTrace,
    StreamExecutor,
    StreamStats,
    _intersection_s,
    _merge_intervals,
)
from repro.core.tree import HarmoniaTree
from repro.errors import ConfigError
from repro.workloads.generators import make_key_set, uniform_queries

common_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def stream_tree():
    keys = make_key_set(20_000, key_space_bits=34, rng=21)
    return HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)


@pytest.fixture(scope="module")
def stream_queries(stream_tree):
    keys = np.fromiter(stream_tree.keys(), dtype=np.int64)
    return uniform_queries(keys, 9_000, rng=22)


class TestEquivalence:
    """Stream executor ≡ search_batch ≡ search_many — batching, lookahead
    depth, worker count and PSA on/off never change results."""

    @common_settings
    @given(
        batch_size=st.integers(min_value=1, max_value=9_500),
        depth=st.integers(min_value=2, max_value=5),
        sort_workers=st.integers(min_value=1, max_value=3),
        mode=st.sampled_from(STREAM_MODES),
        use_psa=st.booleans(),
    )
    def test_stream_matches_oracles(
        self, stream_tree, stream_queries, batch_size, depth, sort_workers,
        mode, use_psa,
    ):
        cfg = SearchConfig(
            use_psa=use_psa,
            stream_batch=batch_size,
            stream_depth=depth,
            stream_sort_workers=sort_workers,
            stream_mode=mode,
        )
        got = stream_tree.search_stream(stream_queries, cfg)
        assert np.array_equal(got, stream_tree.search_batch(stream_queries, cfg))
        assert np.array_equal(got, stream_tree.search_many(stream_queries, cfg))

    def test_run_out_buffer(self, stream_tree, stream_queries):
        ex = StreamExecutor(stream_tree.layout, batch_size=1024)
        out = np.empty(stream_queries.size, dtype=VALUE_DTYPE)
        got = ex.run(stream_queries, out=out)
        assert got is out
        assert np.array_equal(out, stream_tree.search_batch(stream_queries))

    def test_misses_map_to_not_found(self, stream_tree):
        # Keys far outside the stored range.
        q = np.array([(1 << 62) + i for i in range(100)], dtype=np.int64)
        ex = StreamExecutor(stream_tree.layout, batch_size=32)
        assert np.all(ex.run(q) == NOT_FOUND)


class TestThreadSafety:
    def test_concurrent_search_stream(self, stream_tree, stream_queries):
        """Four threads stream concurrently; per-call executors mean no
        shared scratch, so every thread gets exact results."""
        ref = stream_tree.search_batch(stream_queries)
        cfg = SearchConfig(stream_batch=512, stream_depth=3)
        errors = []

        def worker():
            try:
                for _ in range(3):
                    got = stream_tree.search_stream(stream_queries, cfg)
                    assert np.array_equal(got, ref)
            except Exception as exc:  # pragma: no cover — failure reporting
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestStats:
    def test_trace_and_stats_invariants(self, stream_tree, stream_queries):
        ex = StreamExecutor(stream_tree.layout, batch_size=1000, mode="overlap")
        ex.run(stream_queries)
        st_ = ex.last_stats
        assert isinstance(st_, StreamStats)
        assert st_.n_queries == stream_queries.size
        assert st_.n_batches == -(-stream_queries.size // 1000)
        assert len(st_.traces) == st_.n_batches
        assert sum(t.n for t in st_.traces) == stream_queries.size
        for t in st_.traces:
            assert isinstance(t, BatchTrace)
            assert t.sort_start <= t.sort_end <= t.traverse_start
            assert t.traverse_start <= t.traverse_end <= t.scatter_start
            assert t.scatter_start <= t.scatter_end <= st_.wall_s + 1e-9
        # The overlapped window can't exceed either stage's total time.
        assert st_.overlapped_s <= st_.sort_s + 1e-9
        assert st_.overlapped_s <= st_.traverse_s + st_.scatter_s + 1e-9
        assert 0.0 <= st_.occupancy <= 1.0 + 1e-9

    def test_model_double_buffer_never_worse_than_serial(
        self, stream_tree, stream_queries
    ):
        ex = StreamExecutor(stream_tree.layout, batch_size=2048)
        ex.run(stream_queries)
        st_ = ex.last_stats
        assert st_.model_total_s("double_buffer") <= st_.model_total_s("serial") + 1e-12
        with pytest.raises(ConfigError):
            st_.model_total_s("pipeline")

    def test_summary_round_trips_to_json(self, stream_tree, stream_queries):
        import json

        ex = StreamExecutor(stream_tree.layout, batch_size=4096)
        ex.run(stream_queries)
        digest = ex.last_stats.summary()
        assert json.loads(json.dumps(digest)) == digest
        assert digest["n_queries"] == stream_queries.size
        assert digest["cpu_count"] >= 1

    def test_tree_last_stream_stats(self, stream_tree, stream_queries):
        tree = stream_tree
        assert tree.search_stream(stream_queries).size == stream_queries.size
        st_ = tree.last_stream_stats
        assert st_ is not None and st_.n_queries == stream_queries.size

    def test_empty_queries(self, stream_tree):
        ex = StreamExecutor(stream_tree.layout)
        out = ex.run(np.array([], dtype=np.int64))
        assert out.size == 0
        assert ex.last_stats.n_batches == 0
        assert ex.last_stats.model_total_s("serial") == 0.0

    def test_interval_helpers(self):
        merged = _merge_intervals([(0.0, 1.0), (0.5, 2.0), (3.0, 4.0), (5.0, 5.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]
        assert _intersection_s(merged, [(1.5, 3.5)]) == pytest.approx(1.0)
        assert _intersection_s([], merged) == 0.0


class TestValidation:
    def test_executor_rejects_bad_params(self, stream_tree):
        layout = stream_tree.layout
        with pytest.raises(ConfigError):
            StreamExecutor(layout, batch_size=0)
        with pytest.raises(ConfigError):
            StreamExecutor(layout, mode="triple_buffer")
        with pytest.raises(ConfigError):
            StreamExecutor(layout, mode="overlap", depth=1)
        with pytest.raises(ConfigError):
            StreamExecutor(layout, mode="serial", depth=0)
        with pytest.raises(ConfigError):
            StreamExecutor(layout, sort_workers=0)
        with pytest.raises(ConfigError):
            StreamExecutor(layout, bits=-1)
        with pytest.raises(ConfigError):
            StreamExecutor("not a layout")
        # serial mode with a single slot is legal.
        StreamExecutor(layout, mode="serial", depth=1)

    def test_run_rejects_bad_out(self, stream_tree, stream_queries):
        ex = StreamExecutor(stream_tree.layout)
        with pytest.raises(ConfigError):
            ex.run(stream_queries, out=np.empty(3, dtype=VALUE_DTYPE))
        with pytest.raises(ConfigError):
            ex.run(
                stream_queries,
                out=np.empty(stream_queries.size, dtype=np.float64),
            )

    def test_search_config_stream_fields(self):
        with pytest.raises(ConfigError):
            SearchConfig(stream_mode="bogus")
        with pytest.raises(ConfigError):
            SearchConfig(stream_mode="overlap", stream_depth=1)
        with pytest.raises(ConfigError):
            SearchConfig(stream_batch=0)
        with pytest.raises(ConfigError):
            SearchConfig(stream_sort_workers=0)
        SearchConfig(stream_mode="serial", stream_depth=1)  # legal

    def test_empty_tree_streams_not_found(self, stream_queries):
        tree = HarmoniaTree.empty()
        out = tree.search_stream(stream_queries)
        assert np.all(out == NOT_FOUND)

    def test_close_is_idempotent(self, stream_tree, stream_queries):
        ex = StreamExecutor(stream_tree.layout, batch_size=4096)
        ex.run(stream_queries)
        ex.close()
        ex.close()
        # A closed executor lazily re-creates its pool on the next run.
        assert np.array_equal(
            ex.run(stream_queries), stream_tree.search_batch(stream_queries)
        )
