"""Integration tests: instrumented hot paths record correct metrics, and
recording never changes search results (the zero-interference property)."""

import threading

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.core.config import SearchConfig
from repro.core.tree import HarmoniaTree
from repro.obs.registry import MetricsRegistry, TraceConfig
from repro.obs.schema import validate_snapshot
from repro.workloads.generators import make_key_set, uniform_queries

common_settings = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[
        HealthCheck.too_slow,
        HealthCheck.function_scoped_fixture,
    ],
)


@pytest.fixture(scope="module")
def obs_tree():
    keys = make_key_set(20_000, key_space_bits=34, rng=77)
    return HarmoniaTree.from_sorted(keys, fanout=32, fill=0.7)


@pytest.fixture(scope="module")
def obs_queries(obs_tree):
    keys = np.fromiter(obs_tree.keys(), dtype=np.int64)
    return uniform_queries(keys, 6_000, rng=78)


class TestRecordingNeverChangesResults:
    @given(
        n=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=2**20),
        path=st.sampled_from(["batch", "many", "stream"]),
    )
    @common_settings
    def test_on_off_equivalence(self, obs_tree, n, seed, path):
        rng = np.random.default_rng(seed)
        q = rng.integers(0, 1 << 34, size=n, dtype=np.int64)
        cfg = SearchConfig(stream_batch=128)
        fn = {
            "batch": obs_tree.search_batch,
            "many": obs_tree.search_many,
            "stream": obs_tree.search_stream,
        }[path]
        off = fn(q, cfg)
        with obs.recording():
            on = fn(q, cfg)
        assert np.array_equal(off, on)
        assert obs.active is obs.NULL_RECORDER

    def test_simulator_equivalence(self, obs_tree, obs_queries):
        from repro.gpusim import simulate_harmonia_search

        q = obs_queries[:2048]
        prep = obs_tree.prepare_queries(q, SearchConfig.full())
        m_off = simulate_harmonia_search(
            obs_tree.layout, prep.queries, prep.group_size
        )
        with obs.recording():
            m_on = simulate_harmonia_search(
                obs_tree.layout, prep.queries, prep.group_size
            )
        assert m_off.gld_transactions == m_on.gld_transactions
        assert m_off.summary() == m_on.summary()


class TestCountersMatchStats:
    def test_engine_counters_match_engine_stats(self, obs_tree, obs_queries):
        with obs.recording() as rec:
            obs_tree.search_many(obs_queries)
        stats = obs_tree.last_engine_stats
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        c = snap["counters"]
        assert c["engine.batches"] == 1
        assert c["engine.queries"] == stats.n_queries
        assert c["engine.node_reads"] == stats.total_node_reads
        for lvl in range(stats.height):
            assert c[f"engine.unique_nodes.l{lvl}"] == int(
                stats.unique_nodes_per_level[lvl]
            )

    def test_stream_metrics_match_stream_stats(self, obs_tree, obs_queries):
        cfg = SearchConfig(stream_batch=1024)
        with obs.recording() as rec:
            obs_tree.search_stream(obs_queries, cfg)
        st_ = obs_tree.last_stream_stats
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        assert snap["counters"]["stream.batches"] == st_.n_batches
        assert snap["counters"]["stream.queries"] == st_.n_queries
        assert snap["gauges"]["stream.wall_s"] == pytest.approx(st_.wall_s)
        assert snap["gauges"]["stream.throughput_qps"] == pytest.approx(
            st_.throughput()
        )
        hist = snap["histograms"]["stream.traverse_s"]
        assert hist["count"] == st_.n_batches
        # one stream.run + per-batch sort/traverse/scatter spans
        names = snap["spans"]["names"]
        assert names["stream.run"] == 1
        assert names["stream.traverse"] == st_.n_batches

    def test_gpusim_counters_match_kernel_metrics(self, obs_tree, obs_queries):
        from repro.gpusim import simulate_harmonia_search

        q = obs_queries[:2048]
        prep = obs_tree.prepare_queries(q, SearchConfig.full())
        with obs.recording() as rec:
            metrics = simulate_harmonia_search(
                obs_tree.layout, prep.queries, prep.group_size
            )
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        c = snap["counters"]
        assert c["gpusim.gld_transactions"] == metrics.gld_transactions
        assert c["gpusim.gld_requests"] == metrics.gld_requests
        assert snap["gauges"]["gpusim.transactions_per_warp"] == pytest.approx(
            metrics.avg_transactions_per_warp()
        )
        assert snap["gauges"]["gpusim.warp_coherence"] == pytest.approx(
            metrics.warp_coherence
        )

    def test_pipeline_gauges(self):
        from repro.gpusim.pipeline import pipeline_time

        with obs.recording() as rec:
            point = pipeline_time("double_buffer", 8, 4096, 1e-3)
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        g = snap["gauges"]
        assert g["gpusim.pipeline.double_buffer.total_s"] == pytest.approx(
            point.total_s
        )
        assert g["gpusim.pipeline.double_buffer.kernel_s"] == pytest.approx(
            point.kernel_s
        )


class TestConcurrentRecording:
    def test_concurrent_search_stream_into_one_registry(
        self, obs_tree, obs_queries
    ):
        """Many threads stream under one ambient recording: totals must be
        exact (registry mutations are locked) and results unchanged."""
        cfg = SearchConfig(stream_batch=512)
        expected = obs_tree.search_many(obs_queries)
        n_threads = 4
        results = [None] * n_threads
        errors = []

        def work(i):
            try:
                results[i] = obs_tree.search_stream(obs_queries, cfg)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        with obs.recording() as rec:
            threads = [
                threading.Thread(target=work, args=(i,))
                for i in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert not errors
        for r in results:
            assert np.array_equal(r, expected)
        snap = rec.snapshot()
        assert validate_snapshot(snap) == []
        per_run = -(-obs_queries.size // cfg.stream_batch)
        assert snap["counters"]["stream.batches"] == n_threads * per_run
        assert snap["counters"]["stream.queries"] == (
            n_threads * obs_queries.size
        )


class TestTraceConfigRouting:
    def test_private_registry_routes_and_isolates(self, obs_tree, obs_queries):
        reg = MetricsRegistry()
        cfg = SearchConfig(trace=TraceConfig(registry=reg))
        with obs.recording() as ambient:
            obs_tree.search_many(obs_queries, cfg)
        # everything went to the private registry, nothing to the ambient
        assert reg.counter_value("engine.batches") == 1
        assert ambient.counter_value("engine.batches") == 0
        assert validate_snapshot(reg.snapshot()) == []

    def test_disabled_suppresses_ambient(self, obs_tree, obs_queries):
        cfg = SearchConfig(trace=TraceConfig(enabled=False))
        with obs.recording() as ambient:
            obs_tree.search_many(obs_queries, cfg)
        assert ambient.counter_value("engine.batches") == 0
        assert ambient.snapshot()["spans"]["count"] == 0

    def test_stream_with_private_registry(self, obs_tree, obs_queries):
        reg = MetricsRegistry()
        cfg = SearchConfig(
            stream_batch=1024, trace=TraceConfig(registry=reg)
        )
        out = obs_tree.search_stream(obs_queries, cfg)
        assert np.array_equal(out, obs_tree.search_many(obs_queries))
        assert reg.counter_value("stream.batches") > 0
        assert obs.active is obs.NULL_RECORDER


class TestDisabledPathIsCheap:
    def test_no_registry_touched_when_disabled(self, obs_tree, obs_queries):
        """The module-level singleton is the only thing the disabled path
        sees — after an un-recorded call, no registry exists to inspect."""
        assert obs.active is obs.NULL_RECORDER
        obs_tree.search_many(obs_queries)
        assert obs.active is obs.NULL_RECORDER
        assert obs.active.snapshot() is None
