"""Tests for BFS traversal utilities."""

import numpy as np

from repro.btree.bulk import bulk_load
from repro.btree.iterators import (
    bfs_index_map,
    bfs_nodes,
    leaves_in_order,
    level_of_nodes,
    traversal_path,
)


def make_tree(n=500, fanout=5):
    return bulk_load(np.arange(n) * 2, fanout=fanout, fill=0.8)


class TestBFS:
    def test_root_first(self):
        t = make_tree()
        nodes = list(bfs_nodes(t))
        assert nodes[0] is t.root

    def test_count_matches(self):
        t = make_tree()
        assert len(list(bfs_nodes(t))) == t.node_count()

    def test_levels_are_contiguous(self):
        t = make_tree()
        levels = [lvl for lvl, _ in level_of_nodes(t)]
        assert levels == sorted(levels)
        assert levels[0] == 0
        assert max(levels) == t.height - 1

    def test_index_map_bijective(self):
        t = make_tree()
        m = bfs_index_map(t)
        assert sorted(m.values()) == list(range(t.node_count()))

    def test_leaves_last_and_ordered(self):
        t = make_tree()
        nodes = list(bfs_nodes(t))
        leaves = leaves_in_order(t)
        assert nodes[-len(leaves):] == leaves
        firsts = [lf.keys[0] for lf in leaves]
        assert firsts == sorted(firsts)


class TestTraversalPath:
    def test_path_length_is_height(self):
        t = make_tree()
        path = traversal_path(t, 100)
        assert len(path) == t.height
        assert path[0] is t.root
        assert path[-1].is_leaf

    def test_path_reaches_correct_leaf(self):
        t = make_tree()
        for k in (0, 200, 998):
            leaf = traversal_path(t, k)[-1]
            assert k in leaf.keys

    def test_absent_key_reaches_covering_leaf(self):
        t = make_tree()
        leaf = traversal_path(t, 101)[-1]  # odd => absent
        assert leaf.is_leaf
        assert 101 not in leaf.keys
