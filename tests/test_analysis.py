"""Tests for the analysis experiments (gaps, node usage, NTG check)."""

import numpy as np
import pytest

from repro.analysis.gaps import (
    build_gap_tree,
    memory_transaction_gap,
    query_divergence_gap,
)
from repro.analysis.model_check import validate_ntg_model
from repro.analysis.node_usage import (
    build_random_insertion_tree,
    node_quarter_distribution,
    quarter_sweep,
)


class TestGapTree:
    def test_requested_shape(self):
        layout = build_gap_tree(fanout=8, height=4, rng=1)
        assert layout.fanout == 8
        assert layout.height == 4
        layout.check_invariants()

    def test_other_heights(self):
        layout = build_gap_tree(fanout=4, height=3, rng=1)
        assert layout.height == 3


class TestMemoryGap:
    def test_figure2_shape(self):
        gap = memory_transaction_gap(n_queries=20_000, rng=2)
        assert gap.worst == pytest.approx(3.25)
        assert gap.best == 1.0
        assert 0.9 * gap.worst <= gap.measured <= gap.worst
        assert gap.per_level[0] == pytest.approx(1.0)  # root coalesced

    def test_rows_format(self):
        gap = memory_transaction_gap(n_queries=5_000, rng=2)
        rows = gap.rows()
        assert [r["case"] for r in rows] == ["worst", "queries", "best"]


class TestQueryDivergence:
    def test_figure3_shape(self):
        div = query_divergence_gap(n_queries=100, rng=3)
        assert div.levels.tolist() == [1, 2, 3, 4]
        assert np.all(div.min_comparisons <= div.avg_comparisons)
        assert np.all(div.avg_comparisons <= div.max_comparisons)
        # fanout 8: averages near 4, real spread.
        assert 2.0 <= div.avg_comparisons.mean() <= 6.0
        assert (div.max_comparisons - div.min_comparisons).max() >= 2

    def test_reuses_supplied_layout(self):
        layout = build_gap_tree(rng=4)
        div = query_divergence_gap(n_queries=50, layout=layout, rng=4)
        assert div.levels.size == layout.height


class TestNodeUsage:
    def test_random_insertion_occupancy(self):
        layout = build_random_insertion_tree(3_000, fanout=16, rng=5)
        layout.check_invariants()
        from repro.constants import KEY_MAX

        leaf_counts = np.sum(
            layout.key_region[layout.leaf_start :] != KEY_MAX, axis=1
        )
        mean_fill = leaf_counts.mean() / layout.slots
        assert 0.55 <= mean_fill <= 0.85  # ~ln2 with slack

    def test_quarters_sum_to_one(self):
        layout = build_random_insertion_tree(3_000, fanout=16, rng=5)
        dist = node_quarter_distribution(layout, n_queries=2_000, rng=5)
        assert dist.quarters.sum() == pytest.approx(1.0)
        assert dist.front_half == pytest.approx(dist.quarters[:2].sum())

    def test_front_loaded(self):
        layout = build_random_insertion_tree(4_000, fanout=32, rng=6)
        dist = node_quarter_distribution(layout, n_queries=4_000, rng=6)
        assert dist.front_half > 0.6
        assert dist.quarters[0] > dist.quarters[3]

    def test_sweep_covers_fanouts(self):
        dists = quarter_sweep(fanouts=(8, 16), keys_per_tree=1_500,
                              n_queries=1_000, rng=7)
        assert [d.fanout for d in dists] == [8, 16]


class TestNTGValidation:
    def test_validation_runs_and_reports(self):
        v = validate_ntg_model(fanout=32, n_keys=1 << 13, n_queries=1 << 11,
                               rng=8)
        assert v.fanout == 32
        assert v.model_gs in v.throughput_by_gs
        assert v.best_gs in v.throughput_by_gs
        assert v.row()["model_within_10pct"] in (True, False)

    def test_model_competitive(self):
        v = validate_ntg_model(fanout=64, n_keys=1 << 14, n_queries=1 << 12,
                               rng=9)
        best = v.throughput_by_gs[v.best_gs]
        mine = v.throughput_by_gs[v.model_gs]
        assert mine >= 0.75 * best
