"""Deep edge cases across the stack: extreme fanouts, negative keys,
degenerate trees, boundary batch shapes."""

import numpy as np
import pytest

from repro import HarmoniaTree, NOT_FOUND, SearchConfig
from repro.core.layout import HarmoniaLayout
from repro.core.search import search_batch, traverse_batch
from repro.core.update import Operation
from repro.gpusim import simulate_harmonia_search


class TestNegativeKeys:
    """Keys are signed int64 end to end — including through PSA's radix
    sort (order-preserving sign-flip) and Equation 2's bit selection."""

    @pytest.fixture(scope="class")
    def tree(self):
        keys = np.arange(-10_000, 10_000, 4, dtype=np.int64)
        return HarmoniaTree.from_sorted(keys, keys * 3, fanout=16, fill=0.7)

    def test_scalar_search(self, tree):
        assert tree.search(-10_000) == -30_000
        assert tree.search(-4) == -12
        assert tree.search(-3) is None

    def test_batch_with_full_pipeline(self, tree, rng):
        q = rng.integers(-10_000, 10_000, size=2_000)
        full = tree.search_batch(q, SearchConfig.full())
        plain = tree.search_batch(q, SearchConfig.baseline_tree())
        assert np.array_equal(full, plain)
        hits = (q % 4 == 0) & (q >= -10_000)
        assert np.array_equal(full[hits], q[hits] * 3)

    def test_key_space_bits_is_full_width(self, tree):
        assert tree.layout.key_space_bits() == 64
        assert tree.layout.min_key() == -10_000

    def test_range_across_zero(self, tree):
        k, v = tree.range_search(-10, 10)
        assert k.tolist() == [-8, -4, 0, 4, 8]

    def test_updates_with_negative_keys(self, tree):
        t = HarmoniaTree.from_sorted(
            np.arange(-100, 100, 2, dtype=np.int64), fanout=8, fill=0.7
        )
        res = t.apply_batch([
            Operation("insert", -99, 1),
            Operation("update", -100, 2),
            Operation("delete", -98),
        ])
        assert res.n_effective == 3
        t.check_invariants()
        assert t.search(-99) == 1
        assert t.search(-100) == 2
        assert t.search(-98) is None

    def test_simulation_with_negative_keys(self, tree, rng):
        q = rng.choice(tree.layout.all_keys(), 512)
        prep = tree.prepare_queries(q, SearchConfig.full())
        m = simulate_harmonia_search(tree.layout, prep.queries, prep.group_size)
        assert m.gld_transactions > 0


class TestExtremeFanouts:
    def test_minimum_fanout_tree(self, rng):
        keys = np.sort(rng.choice(1 << 20, 2_000, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=3, fill=1.0)
        layout.check_invariants()
        assert layout.slots == 2
        out = search_batch(layout, keys[:200])
        assert np.array_equal(out, keys[:200])

    def test_huge_fanout_single_level(self):
        # 200 keys fit one 255-slot leaf: the root *is* the leaf.
        keys = np.arange(200, dtype=np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=256, fill=1.0)
        assert layout.height == 1
        layout.check_invariants()
        assert search_batch(layout, keys).tolist() == keys.tolist()
        # One more key level: force two levels.
        keys2 = np.arange(600, dtype=np.int64)
        layout2 = HarmoniaLayout.from_sorted(keys2, fanout=256, fill=1.0)
        assert layout2.height == 2
        layout2.check_invariants()
        assert search_batch(layout2, keys2[:50]).tolist() == keys2[:50].tolist()

    def test_fanout_larger_than_data(self):
        keys = np.arange(5, dtype=np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=512)
        assert layout.height == 1
        assert layout.n_nodes == 1

    def test_non_power_of_two_fanout(self, rng):
        keys = np.sort(rng.choice(1 << 20, 3_000, replace=False)).astype(np.int64)
        layout = HarmoniaLayout.from_sorted(keys, fanout=7, fill=0.8)
        layout.check_invariants()
        tr = traverse_batch(layout, keys[:100])
        assert np.all(tr.found)


class TestDegenerateBatches:
    @pytest.fixture(scope="class")
    def tree(self):
        return HarmoniaTree.from_sorted(
            np.arange(0, 1_000, 2, dtype=np.int64), fanout=8, fill=0.7
        )

    def test_single_query_batch(self, tree):
        out = tree.search_batch(np.array([4], dtype=np.int64),
                                SearchConfig.full())
        assert out.tolist() == [4]

    def test_batch_of_identical_queries(self, tree):
        q = np.full(1_000, 500, dtype=np.int64)
        out = tree.search_batch(q, SearchConfig.full())
        assert np.all(out == 500)

    def test_batch_all_misses(self, tree):
        q = np.arange(1, 1_000, 2, dtype=np.int64)  # all odd => absent
        out = tree.search_batch(q, SearchConfig.full())
        assert np.all(out == NOT_FOUND)

    def test_batch_smaller_than_warp(self, tree):
        q = np.array([0, 2, 4], dtype=np.int64)
        prep = tree.prepare_queries(q, SearchConfig.full())
        m = simulate_harmonia_search(tree.layout, prep.queries, prep.group_size)
        assert m.n_queries == 3
        assert m.n_warps >= 1

    def test_boundary_key_values(self):
        info = np.iinfo(np.int64)
        keys = np.array([info.min, -1, 0, 1, info.max - 1], dtype=np.int64)
        tree = HarmoniaTree.from_sorted(keys, fanout=4)
        for k in keys:
            assert tree.search(int(k)) == int(k)
        assert tree.search(info.max - 2) is None

    def test_single_op_batches_every_kind(self):
        tree = HarmoniaTree.from_sorted(np.array([10], dtype=np.int64), fanout=4)
        assert tree.insert(5, 55)
        assert tree.update(5, 56)
        assert tree.delete(10)
        assert tree.search(5) == 56
        assert len(tree) == 1
        tree.check_invariants()


class TestUpdateEdgeCases:
    def test_batch_with_conflicting_duplicate_inserts(self):
        tree = HarmoniaTree.from_sorted(
            np.arange(0, 100, 2, dtype=np.int64), fanout=8, fill=0.6
        )
        ops = [Operation("insert", 1, i) for i in range(5)]
        res = tree.apply_batch(ops)
        assert res.inserted == 1
        assert res.failed == 4
        assert tree.search(1) in range(5)  # exactly one landed
        tree.check_invariants()

    def test_insert_then_delete_same_key_in_batch(self):
        tree = HarmoniaTree.from_sorted(
            np.arange(0, 100, 2, dtype=np.int64), fanout=8, fill=0.6
        )
        # Sequential single-thread batch: order is submission order.
        from repro.core import UpdateConfig

        res = tree.apply_batch(
            [Operation("insert", 1, 1), Operation("delete", 1)],
            UpdateConfig(n_threads=1),
        )
        assert res.inserted == 1 and res.deleted == 1
        assert tree.search(1) is None
        assert len(tree) == 50

    def test_grow_by_an_order_of_magnitude(self):
        tree = HarmoniaTree.from_sorted(
            np.arange(0, 100, 10, dtype=np.int64), fanout=8, fill=1.0
        )
        h0 = tree.height
        ops = [Operation("insert", k, k) for k in range(1_000, 3_000)]
        res = tree.apply_batch(ops)
        assert res.inserted == 2_000
        tree.check_invariants()
        assert tree.height > h0
        assert len(tree) == 2_010
