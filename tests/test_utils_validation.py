"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.constants import KEY_MAX
from repro.errors import ConfigError, InvalidKeyError
from repro.utils.validation import (
    ensure_fanout,
    ensure_key_array,
    ensure_positive,
    ensure_power_of_two,
    ensure_scalar_key,
    ensure_sorted_unique,
)


class TestEnsurePositive:
    def test_accepts_positive(self):
        assert ensure_positive("x", 3) == 3

    def test_coerces_numpy_int(self):
        assert ensure_positive("x", np.int64(5)) == 5

    @pytest.mark.parametrize("bad", [0, -1, "three", None, 2.5])
    def test_rejects(self, bad):
        if bad == 2.5:
            # floats are truncated by int(); 2.5 -> 2 is accepted by design
            assert ensure_positive("x", bad) == 2
        else:
            with pytest.raises(ConfigError):
                ensure_positive("x", bad)


class TestEnsurePowerOfTwo:
    @pytest.mark.parametrize("good", [1, 2, 4, 32, 1024])
    def test_accepts(self, good):
        assert ensure_power_of_two("x", good) == good

    @pytest.mark.parametrize("bad", [0, 3, 6, 24, -4])
    def test_rejects(self, bad):
        with pytest.raises(ConfigError):
            ensure_power_of_two("x", bad)


class TestEnsureFanout:
    def test_minimum(self):
        assert ensure_fanout(3) == 3

    @pytest.mark.parametrize("bad", [0, 1, 2, -5])
    def test_rejects_small(self, bad):
        with pytest.raises(ConfigError):
            ensure_fanout(bad)


class TestEnsureScalarKey:
    def test_roundtrip(self):
        assert ensure_scalar_key(41) == 41

    def test_rejects_sentinel(self):
        with pytest.raises(InvalidKeyError):
            ensure_scalar_key(KEY_MAX)

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidKeyError):
            ensure_scalar_key(1 << 70)

    def test_rejects_non_integer(self):
        with pytest.raises(InvalidKeyError):
            ensure_scalar_key("abc")

    def test_negative_allowed(self):
        assert ensure_scalar_key(-7) == -7


class TestEnsureKeyArray:
    def test_view_when_already_right(self):
        arr = np.arange(10, dtype=np.int64)
        out = ensure_key_array(arr)
        assert out.base is arr or out is arr

    def test_coerces_lists(self):
        out = ensure_key_array([1, 2, 3])
        assert out.dtype == np.int64

    def test_rejects_2d(self):
        with pytest.raises(InvalidKeyError):
            ensure_key_array(np.zeros((2, 2), dtype=np.int64))

    def test_rejects_sentinel_values(self):
        with pytest.raises(InvalidKeyError):
            ensure_key_array(np.array([1, KEY_MAX], dtype=np.int64))

    def test_empty_ok(self):
        assert ensure_key_array(np.array([], dtype=np.int64)).size == 0


class TestEnsureSortedUnique:
    def test_accepts_increasing(self):
        out = ensure_sorted_unique(np.array([1, 5, 9], dtype=np.int64))
        assert out.size == 3

    def test_rejects_duplicates(self):
        with pytest.raises(InvalidKeyError):
            ensure_sorted_unique(np.array([1, 5, 5], dtype=np.int64))

    def test_rejects_descending(self):
        with pytest.raises(InvalidKeyError):
            ensure_sorted_unique(np.array([5, 1], dtype=np.int64))

    def test_single_element(self):
        assert ensure_sorted_unique(np.array([3], dtype=np.int64)).size == 1
