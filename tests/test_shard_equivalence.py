"""ShardedTree ≡ HarmoniaTree: the sharded service's results contract.

The sharded tier must be invisible to callers: for any shard count
(including 1) and any mixed search/insert/delete/range workload, the
front-end returns byte-identical results to a single HarmoniaTree
holding the same data.  Hypothesis pins the contract over random key
sets, shard counts and op batches; a directed crash test pins that
restart-and-rebuild preserves it mid-workload.

Why the contract holds (and what we compare): per-key op outcomes
depend only on same-key history, which routing by key preserves, so the
inserted/updated/deleted/failed accounting sums across shards to the
unsharded batch's values.  Structural counters (split_leaves,
moved_clean …) are per-shard layout quantities and are *not* part of
the contract.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.shard import ShardedTree

FANOUT = 16


def make_pair(keys, n_shards):
    ref = HarmoniaTree.from_sorted(keys, fanout=FANOUT)
    sharded = ShardedTree.from_sorted(keys, n_shards=n_shards, fanout=FANOUT)
    return ref, sharded


def assert_batch_results_equal(a, b):
    assert (a.inserted, a.updated, a.deleted, a.failed) == \
        (b.inserted, b.updated, b.deleted, b.failed)


def assert_full_contents_equal(ref, sharded, lo=-1, hi=1 << 48):
    rk, rv = ref.range_search(lo, hi)
    sk, sv = sharded.range_search(lo, hi)
    assert np.array_equal(rk, sk)
    assert np.array_equal(rv, sv)


@st.composite
def workload(draw):
    n_keys = draw(st.integers(min_value=0, max_value=400))
    stride = draw(st.integers(min_value=1, max_value=3))
    keys = np.arange(0, n_keys * stride, stride, dtype=np.int64)
    n_shards = draw(st.integers(min_value=1, max_value=3))
    space = max(int(n_keys * stride), 8)
    ops = draw(st.lists(
        st.tuples(
            st.sampled_from(["insert", "update", "delete"]),
            st.integers(min_value=0, max_value=space),
            st.integers(min_value=0, max_value=1 << 20),
        ),
        max_size=120,
    ))
    queries = draw(st.lists(
        st.integers(min_value=-2, max_value=space + 2), max_size=60
    ))
    ranges = draw(st.lists(
        st.tuples(
            st.integers(min_value=-2, max_value=space + 2),
            st.integers(min_value=-2, max_value=space + 2),
        ),
        max_size=10,
    ))
    return keys, n_shards, ops, queries, ranges


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(workload())
def test_sharded_equals_unsharded(wl):
    keys, n_shards, ops, queries, ranges = wl
    ref, sharded = make_pair(keys, n_shards)
    try:
        q = np.asarray(queries, dtype=np.int64)
        assert np.array_equal(sharded.search_many(q), ref.search_many(q))

        batch = [Operation(kind, key, value) for kind, key, value in ops]
        assert_batch_results_equal(
            sharded.apply_batch(batch), ref.apply_batch(batch)
        )
        assert np.array_equal(sharded.search_many(q), ref.search_many(q))

        los = [lo for lo, _ in ranges]
        his = [hi for _, hi in ranges]
        got = sharded.range_search_batch(los, his)
        want = ref.range_search_batch(los, his)
        assert len(got) == len(want)
        for (gk, gv), (wk, wv) in zip(got, want):
            assert np.array_equal(gk, wk)
            assert np.array_equal(gv, wv)

        assert_full_contents_equal(ref, sharded)
        assert len(sharded) == len(ref)
    finally:
        sharded.close()


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2 ** 31 - 1),
    n_shards=st.integers(min_value=2, max_value=3),
)
def test_sequential_batches_equal(seed, n_shards):
    """Multiple dependent batches: each one runs against the state the
    previous ones left, exercising the workers' epoch turnover."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.choice(2000, size=300, replace=False)).astype(np.int64)
    ref, sharded = make_pair(keys, n_shards)
    try:
        for _ in range(3):
            kinds = rng.choice(["insert", "update", "delete"], size=60)
            targets = rng.integers(0, 2200, size=60)
            vals = rng.integers(0, 1 << 20, size=60)
            batch = [
                Operation(str(k), int(t), int(v))
                for k, t, v in zip(kinds, targets, vals)
            ]
            assert_batch_results_equal(
                sharded.apply_batch(batch), ref.apply_batch(batch)
            )
            q = rng.integers(0, 2200, size=80)
            assert np.array_equal(
                sharded.search_many(q), ref.search_many(q)
            )
        assert_full_contents_equal(ref, sharded)
    finally:
        sharded.close()


@pytest.mark.parametrize("crash_shard", [0, 1])
def test_worker_crash_preserves_results(crash_shard):
    """Restart-and-rebuild mid-workload: kill a worker after applied
    batches, then verify every result is still identical to the
    reference (base snapshot + op-log replay reconstructs the state)."""
    keys = np.arange(0, 3000, 2)
    ref, sharded = make_pair(keys, 2)
    try:
        rng = np.random.default_rng(7)
        for _ in range(2):
            kinds = rng.choice(["insert", "update", "delete"], size=80)
            targets = rng.integers(0, 3300, size=80)
            vals = rng.integers(0, 1 << 20, size=80)
            batch = [
                Operation(str(k), int(t), int(v))
                for k, t, v in zip(kinds, targets, vals)
            ]
            assert_batch_results_equal(
                sharded.apply_batch(batch), ref.apply_batch(batch)
            )

        shard = sharded._shards[crash_shard]
        shard.channel.send("crash")
        shard.proc.join(timeout=10)
        assert not shard.proc.is_alive()

        q = rng.integers(0, 3300, size=200)
        assert np.array_equal(sharded.search_many(q), ref.search_many(q))
        assert sharded._shards[crash_shard].restarts == 1
        assert_full_contents_equal(ref, sharded)

        # And the revived worker keeps serving updates correctly.
        batch = [Operation("insert", 3301, 1), Operation("delete", 0)]
        assert_batch_results_equal(
            sharded.apply_batch(batch), ref.apply_batch(batch)
        )
        assert_full_contents_equal(ref, sharded)
    finally:
        sharded.close()


def test_crash_during_rebalance_state():
    """Crash after a rebalance: the rebuild base is the rebalanced slice,
    so recovery must still match."""
    keys = np.arange(0, 2000, 2)
    ref, sharded = make_pair(keys, 2)
    try:
        ops = [Operation("insert", int(k), 2) for k in range(2001, 4001, 2)]
        ref.apply_batch(ops)
        sharded.apply_batch(ops)
        sharded.rebalance(force=True)
        sharded._shards[0].channel.send("crash")
        sharded._shards[0].proc.join(timeout=10)
        assert_full_contents_equal(ref, sharded)
    finally:
        sharded.close()
