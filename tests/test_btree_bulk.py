"""Tests for bulk loading (repro.btree.bulk)."""

import numpy as np
import pytest

from repro.btree.bulk import _chunk_sizes, bulk_load
from repro.errors import ConfigError, InvalidKeyError


class TestChunkSizes:
    def test_empty(self):
        assert _chunk_sizes(0, 4, 2, 7) == []

    def test_single_small_chunk(self):
        # n below 2*minimum: one (possibly underfull) chunk — root case.
        assert _chunk_sizes(3, 4, 2, 7) == [3]
        assert _chunk_sizes(1, 4, 2, 7) == [1]

    def test_exact_multiple(self):
        assert _chunk_sizes(12, 4, 2, 7) == [4, 4, 4]

    def test_tail_rebalanced(self):
        sizes = _chunk_sizes(9, 4, 3, 7)
        assert sum(sizes) == 9
        assert all(3 <= s <= 7 for s in sizes)

    @pytest.mark.parametrize("n", range(1, 200))
    def test_all_sizes_legal(self, n):
        minimum, maximum, target = 3, 7, 5
        sizes = _chunk_sizes(n, target, minimum, maximum)
        assert sum(sizes) == n
        if n >= 2 * minimum:
            assert all(minimum <= s <= maximum for s in sizes)
        else:
            assert len(sizes) == 1

    @pytest.mark.parametrize("minimum,maximum", [(2, 3), (32, 63), (32, 64), (4, 7)])
    def test_btree_occupancy_bounds(self, minimum, maximum):
        for n in list(range(1, 50)) + [999, 1000, 1001]:
            sizes = _chunk_sizes(n, maximum, minimum, maximum)
            assert sum(sizes) == n
            if n >= 2 * minimum:
                assert all(minimum <= s <= maximum for s in sizes)


class TestBulkLoad:
    def test_empty(self):
        t = bulk_load([])
        assert len(t) == 0
        t.check_invariants()

    def test_single(self):
        t = bulk_load([7], fanout=4)
        assert t.search(7) == 7
        t.check_invariants()

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 63, 64, 100, 4097])
    @pytest.mark.parametrize("fill", [1.0, 0.7, 0.5])
    def test_sizes_and_fills(self, n, fill):
        keys = np.arange(n) * 5
        t = bulk_load(keys, fanout=8, fill=fill)
        t.check_invariants()
        assert len(t) == n
        assert list(t.keys()) == keys.tolist()

    def test_values_default_to_keys(self):
        t = bulk_load([1, 2, 3], fanout=4)
        assert t.search(2) == 2

    def test_explicit_values(self):
        t = bulk_load([1, 2, 3], values=[10, 20, 30], fanout=4)
        assert t.search(2) == 20

    def test_values_shape_mismatch(self):
        with pytest.raises(ConfigError):
            bulk_load([1, 2], values=[1], fanout=4)

    def test_unsorted_rejected(self):
        with pytest.raises(InvalidKeyError):
            bulk_load([3, 1, 2], fanout=4)

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidKeyError):
            bulk_load([1, 1, 2], fanout=4)

    def test_bad_fill_rejected(self):
        with pytest.raises(ConfigError):
            bulk_load([1, 2, 3], fill=0.0)
        with pytest.raises(ConfigError):
            bulk_load([1, 2, 3], fill=1.5)

    def test_fill_controls_leaf_occupancy(self):
        keys = np.arange(10_000)
        full = bulk_load(keys, fanout=16, fill=1.0)
        half = bulk_load(keys, fanout=16, fill=0.5)
        # Lower fill => more leaves.
        n_leaves_full = len(full.level_nodes()[-1])
        n_leaves_half = len(half.level_nodes()[-1])
        assert n_leaves_half > n_leaves_full * 1.5

    def test_leaf_chain_complete(self):
        t = bulk_load(np.arange(1_000), fanout=8, fill=0.8)
        leaf = t._leftmost_leaf()
        seen = []
        while leaf is not None:
            seen.extend(leaf.keys)
            leaf = leaf.next_leaf
        assert seen == list(range(1_000))

    def test_bulk_tree_supports_mutation(self):
        t = bulk_load(np.arange(0, 1_000, 2), fanout=8)
        assert t.insert(1, 11)
        assert t.delete(0)
        t.check_invariants()
        assert t.search(1) == 11
        assert t.search(0) is None

    def test_matches_insertion_built_tree(self):
        keys = np.arange(0, 500, 3)
        bulk = bulk_load(keys, fanout=5)
        manual = __import__("repro.btree.regular", fromlist=["RegularBPlusTree"]).RegularBPlusTree(5)
        for k in keys:
            manual.insert(int(k), int(k))
        assert list(bulk.items()) == list(manual.items())
