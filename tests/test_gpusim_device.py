"""Tests for device specs."""

import pytest

from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec, TESLA_K80, TITAN_V


class TestPresets:
    def test_titan_v_datasheet(self):
        assert TITAN_V.warp_size == 32
        assert TITAN_V.n_sms == 80
        assert TITAN_V.cache_line_bytes == 128
        assert TITAN_V.const_mem_bytes == 64 * 1024

    def test_k80_weaker(self):
        assert TESLA_K80.n_sms < TITAN_V.n_sms
        assert TESLA_K80.dram_bandwidth_gbs < TITAN_V.dram_bandwidth_gbs

    def test_keys_per_cacheline(self):
        # K = 16 in the paper's Equation 2 example (128B line / 8B key).
        assert TITAN_V.keys_per_cacheline == 16

    def test_bytes_per_cycle(self):
        assert TITAN_V.dram_bytes_per_cycle() == pytest.approx(
            TITAN_V.dram_bandwidth_gbs / TITAN_V.clock_ghz
        )
        assert TITAN_V.l2_bytes_per_cycle() > TITAN_V.dram_bytes_per_cycle()


class TestValidation:
    def test_bad_warp(self):
        with pytest.raises(ConfigError):
            DeviceSpec(name="x", warp_size=33)

    def test_bad_line(self):
        with pytest.raises(ConfigError):
            DeviceSpec(name="x", cache_line_bytes=100)

    def test_bad_bandwidth(self):
        with pytest.raises(ConfigError):
            DeviceSpec(name="x", dram_bandwidth_gbs=0)

    def test_frozen(self):
        with pytest.raises(Exception):
            TITAN_V.n_sms = 1
