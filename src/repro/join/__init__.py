"""``repro.join`` — dual-tree merge-joins and bounded-memory tiling.

Two read surfaces the PR 1–9 stack made possible (ROADMAP "new
scenarios"): :func:`merge_join` walks one Harmonia tree's leaf region as
a sorted probe stream through another tree via the frontier-compacted
engine's hinted dual walk (JZ-tree style subtree pruning), and
:class:`TileScheduler` drives any batch level-by-level in fixed-size
tiles so peak traversal memory is O(tile) (the FPGA level-wise batch-
search discipline).  See docs/join.md.

Exports resolve lazily (PEP 562): ``core/stream.py`` imports
``repro.join.tiles`` for the tile scheduler, while ``mergejoin`` imports
``core/tree.py`` — eager re-exports here would close that cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "TileConfig": "repro.join.tiles",
    "TileScheduler": "repro.join.tiles",
    "DEFAULT_TILE_SIZE": "repro.join.tiles",
    "merge_join": "repro.join.mergejoin",
    "JoinResult": "repro.join.mergejoin",
    "sort_merge_reference": "repro.join.mergejoin",
    "JOIN_MODES": "repro.join.mergejoin",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro.join' has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
