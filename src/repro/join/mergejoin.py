"""Dual-tree merge-join over Harmonia layouts.

A B+tree's leaf region *is* a sorted stream (§3.1's consecutive leaf
block, gap-aware since the gapped layout), so joining two Harmonia trees
never needs to materialize either side into a hash table: ``tree_a``'s
visible items become an ascending probe batch, and ``tree_b`` resolves
it through the frontier-compacted engine's **hinted dual walk**
(:meth:`~repro.core.engine.BatchQueryEngine.execute_hinted`) — each
level's ``searchsorted`` starts from the previous frontier and whole
``tree_b`` subtrees that no probe lands in are pruned before they are
visited, the JZ-tree dual-walk recursion flattened into level order.
Probe streams of any size run in O(tile) traversal memory through the
:class:`~repro.join.tiles.TileScheduler`.

Composition rules:

* :class:`~repro.core.epoch.EpochManager` on either side pins one
  consistent (base, delta) version for the whole join
  (:meth:`~repro.core.epoch.EpochManager.pin`); the pinned delta
  overlays probe values exactly as it overlays point reads.
* :class:`~repro.shard.ShardedTree` on the probe side concatenates its
  shard dumps (contiguous key ranges — sorted union is concatenation);
  on the build side the ascending probe stream is sliced into the
  shards' key ranges via the partitioner, each slice resolves on its
  owning shard, and the shard-local join outputs — themselves disjoint
  sorted runs — are stitched with
  :func:`~repro.core.merge.concat_sorted_runs`.

Match classification is by value sentinel: a probe key is "matched"
when its resolved value differs from :data:`~repro.constants.NOT_FOUND`
— the same convention every batched read in this repo uses, with the
same caveat (a stored value *equal* to the sentinel is
indistinguishable from a miss).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.constants import NOT_FOUND, VALUE_DTYPE
from repro.core.config import SearchConfig
from repro.core.epoch import EpochManager
from repro.core.merge import concat_sorted_runs
from repro.core.tree import HarmoniaTree
from repro.errors import ConfigError
from repro.join.tiles import TileConfig

_clock = time.perf_counter

JOIN_MODES = ("inner", "semi", "anti")


@dataclass(frozen=True)
class JoinResult:
    """Output of one :func:`merge_join` call.

    ``keys`` are the qualifying probe keys in ascending order with
    ``values_a`` aligned; ``values_b`` is present for ``mode="inner"``
    only.  ``n_probes`` counts the full probe stream (``tree_a``'s
    visible items), ``n_matches`` the probes that found a partner —
    so ``anti`` results have ``keys.size == n_probes - n_matches``.
    """

    mode: str
    keys: np.ndarray
    values_a: np.ndarray
    values_b: Optional[np.ndarray]
    n_probes: int
    n_matches: int

    @property
    def selectivity(self) -> float:
        """Matched fraction of the probe stream (0.0 for an empty one)."""
        if self.n_probes == 0:
            return 0.0
        return self.n_matches / self.n_probes


def sort_merge_reference(
    side_a: Tuple[np.ndarray, np.ndarray],
    side_b: Tuple[np.ndarray, np.ndarray],
    mode: str = "inner",
) -> JoinResult:
    """Plain numpy sort-merge join of two sorted-unique item arrays —
    the oracle the hypothesis suite pins :func:`merge_join` against."""
    if mode not in JOIN_MODES:
        raise ConfigError(f"mode must be one of {JOIN_MODES}, got {mode!r}")
    ka, va = (np.asarray(x) for x in side_a)
    kb, vb = (np.asarray(x) for x in side_b)
    pos = np.searchsorted(kb, ka)
    pos_c = np.minimum(pos, max(kb.size - 1, 0))
    if kb.size:
        matched = kb[pos_c] == ka
    else:
        matched = np.zeros(ka.size, dtype=bool)
    n_matches = int(np.count_nonzero(matched))
    if mode == "anti":
        keep = ~matched
        return JoinResult("anti", ka[keep], va[keep], None,
                          int(ka.size), n_matches)
    if mode == "semi":
        return JoinResult("semi", ka[matched], va[matched], None,
                          int(ka.size), n_matches)
    return JoinResult(
        "inner", ka[matched], va[matched],
        vb[pos_c[matched]] if kb.size else np.empty(0, dtype=VALUE_DTYPE),
        int(ka.size), n_matches,
    )


# ------------------------------------------------------------- probe side


def _probe_items(tree) -> Tuple[np.ndarray, np.ndarray]:
    """``tree``'s visible sorted items as the (keys, values) probe stream."""
    if isinstance(tree, EpochManager):
        return tree.dump_items()
    if isinstance(tree, HarmoniaTree):
        return tree._merged_items()
    if hasattr(tree, "partitioner"):  # ShardedTree (duck-typed: no dep
        # on the multiprocess tier from the core import graph)
        runs = [tree._dump(s) for s in range(tree.n_shards)]
        return concat_sorted_runs(runs)  # contiguous ranges: disjoint
    raise ConfigError(
        f"merge_join cannot read probe items from {type(tree).__name__}"
    )


# ------------------------------------------------------------- build side


def _classify(
    ka: np.ndarray,
    va: np.ndarray,
    vb: np.ndarray,
    mode: str,
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray], int]:
    matched = vb != NOT_FOUND
    n_matches = int(np.count_nonzero(matched))
    if mode == "anti":
        keep = ~matched
        return ka[keep], va[keep], None, n_matches
    return (
        ka[matched], va[matched],
        vb[matched] if mode == "inner" else None,
        n_matches,
    )


def merge_join(
    tree_a,
    tree_b,
    mode: str = "inner",
    tile: Optional[TileConfig] = None,
    hinted: bool = True,
    config: Optional[SearchConfig] = None,
) -> JoinResult:
    """Join two trees on their keys by streaming ``tree_a``'s leaf
    region through ``tree_b``'s hinted dual walk.

    ``mode`` selects the relational flavor: ``"inner"`` returns matched
    keys with both sides' values, ``"semi"`` matched keys with
    ``tree_a``'s values only, ``"anti"`` the unmatched probe keys.
    Either side may be a :class:`~repro.core.tree.HarmoniaTree`, an
    :class:`~repro.core.epoch.EpochManager` (pinned once for the whole
    join) or a :class:`~repro.shard.ShardedTree`.  ``tile`` bounds peak
    traversal scratch (docs/join.md's tiling discipline);
    ``hinted=False`` falls back to the plain frontier-compacted engine
    (the bench baseline).  Results are byte-identical to
    :func:`sort_merge_reference` on both sides' visible items.
    """
    if mode not in JOIN_MODES:
        raise ConfigError(f"mode must be one of {JOIN_MODES}, got {mode!r}")
    rec = obs.active
    t_start = _clock() if rec.enabled else 0.0
    ka, va = _probe_items(tree_a)
    keys, vals_a, vals_b, n_matches = _dispatch_build(
        tree_b, ka, va, mode, tile, hinted, config
    )
    result = JoinResult(
        mode, keys, vals_a, vals_b, int(ka.size), n_matches
    )
    if rec.enabled:
        rec.counter("join.joins")
        rec.counter("join.probes", result.n_probes)
        rec.counter("join.matches", result.n_matches)
        rec.gauge("join.selectivity", result.selectivity)
        rec.span_at(
            "join.run", t_start, _clock(), cat="join", mode=mode,
            n_probes=result.n_probes, n_out=int(keys.size),
            hinted=hinted, tiled=tile is not None,
        )
    return result


def _dispatch_build(
    tree_b,
    ka: np.ndarray,
    va: np.ndarray,
    mode: str,
    tile: Optional[TileConfig],
    hinted: bool,
    config: Optional[SearchConfig],
):
    if isinstance(tree_b, EpochManager):
        return _dispatch_build(
            tree_b.pin(), ka, va, mode, tile, hinted, config
        )
    if isinstance(tree_b, HarmoniaTree):
        vb = tree_b.search_sorted_many(
            ka, config=config, tile=tile, hinted=hinted
        )
        return _classify(ka, va, vb, mode)
    if hasattr(tree_b, "partitioner"):
        return _join_sharded(tree_b, ka, va, mode)
    raise ConfigError(
        f"merge_join cannot probe into {type(tree_b).__name__}"
    )


def _join_sharded(tree_b, ka: np.ndarray, va: np.ndarray, mode: str):
    """Probe a sharded build side: slice the ascending stream by the
    partitioner's key ranges, resolve each slice on its owning shard,
    stitch the disjoint shard-local outputs back together."""
    if ka.size == 0:
        empty_v = np.empty(0, dtype=VALUE_DTYPE)
        return (np.empty(0, dtype=np.int64), empty_v,
                empty_v if mode == "inner" else None, 0)
    ids = tree_b.partitioner.shard_of(ka)
    bounds = np.searchsorted(
        ids, np.arange(tree_b.n_shards + 1), side="left"
    )
    key_runs = []
    va_runs = []
    vb_runs = []
    n_matches = 0
    for s in range(tree_b.n_shards):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        if hi == lo:
            continue
        vb = tree_b.search_many(ka[lo:hi])
        jk, jv, jvb, m = _classify(ka[lo:hi], va[lo:hi], vb, mode)
        n_matches += m
        key_runs.append((jk, jv))
        if mode == "inner":
            vb_runs.append((jk, jvb))
    keys, vals_a = concat_sorted_runs(key_runs)
    vals_b = None
    if mode == "inner":
        vals_b = concat_sorted_runs(vb_runs)[1]
    return keys, vals_a, vals_b, n_matches


__all__ = [
    "JOIN_MODES",
    "JoinResult",
    "merge_join",
    "sort_merge_reference",
]
