"""Bounded-memory tile scheduler — the FPGA level-wise discipline on host.

The level-wise FPGA batch-search paper (PAPERS.md) processes a huge
query batch through a B+tree one level at a time in fixed-size tiles so
the on-chip footprint is O(tile), not O(batch).  The host analog: the
frontier-compacted engine's scratch pools are shape-sticky
(:class:`~repro.core.engine.EngineScratch`), so driving a 2^22-query
batch through the engine in 2^16-query tiles keeps every traversal
buffer — node/tmp/slot frontiers, broadcast row windows, leaf-finish
masks — at tile size.  Only the (caller-owned) query and output arrays
are batch-sized; the resident working set is the tile ring plus the
engine scratch, and :class:`TileScheduler` *measures* that peak
(``stream.tile_peak_bytes``) instead of estimating it.

``max_resident_tiles`` bounds the staging ring the way the FPGA design
bounds its in-flight level buffers: tile ``i+1``'s issue slot can be
filled while tile ``i`` drains, but never more than the configured
number of tiles hold scratch at once.  The scheduler is shared
infrastructure: :func:`repro.join.merge_join` drives its probe stream
through it and :class:`repro.core.stream.StreamExecutor` delegates its
per-batch traversal to it when ``SearchConfig.stream_tile`` is set.

Imports are deliberately shallow (engine/constants/errors/obs only) so
``core/stream.py`` can import this module without a cycle through
``core/tree.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.obs as obs
from repro.constants import VALUE_DTYPE
from repro.core.engine import BatchQueryEngine
from repro.errors import ConfigError
from repro.utils.validation import ensure_key_array

_clock = time.perf_counter

#: Default tile: 2^16 queries ≈ 0.5 MB of int64 staging per ring slot —
#: large enough that per-tile engine dispatch amortizes, small enough
#: that a 2^22-query batch runs in 64 tiles of O(tile) scratch.
DEFAULT_TILE_SIZE = 1 << 16


@dataclass(frozen=True)
class TileConfig:
    """Shape of the bounded-memory schedule.

    ``tile_size`` is the per-tile query count (the O(tile) unit);
    ``max_resident_tiles`` caps how many tiles may hold staging buffers
    at once (the FPGA in-flight bound — 2 gives fill/drain overlap room
    without growing the footprint past two slots).
    """

    tile_size: int = DEFAULT_TILE_SIZE
    max_resident_tiles: int = 2

    def __post_init__(self) -> None:
        if self.tile_size < 1:
            raise ConfigError(
                f"tile_size must be >= 1, got {self.tile_size}"
            )
        if self.max_resident_tiles < 1:
            raise ConfigError(
                f"max_resident_tiles must be >= 1, "
                f"got {self.max_resident_tiles}"
            )


class TileScheduler:
    """Drive batches through one engine tile-by-tile with recycled scratch.

    The ring holds ``min(max_resident_tiles, n_tiles)`` pairs of
    (issue, values) staging buffers of ``tile_size``; each tile copies
    its query slice into a ring slot, runs the engine with the slot's
    value buffer as ``out=``, and scatters back — so the engine's
    shape-sticky scratch stays tile-sized across the whole batch.
    ``last_peak_bytes`` reports the measured peak resident footprint
    (ring + engine scratch) of the last :meth:`run`.
    """

    def __init__(
        self,
        engine: BatchQueryEngine,
        tile: Optional[TileConfig] = None,
    ) -> None:
        if not isinstance(engine, BatchQueryEngine):
            raise ConfigError("TileScheduler needs a BatchQueryEngine")
        self.engine = engine
        self.tile = tile or TileConfig()
        self._ring_q: list = []
        self._ring_v: list = []
        self.last_peak_bytes = 0
        self.last_tiles = 0

    def _ring(self, n_slots: int) -> None:
        ts = self.tile.tile_size
        while len(self._ring_q) < n_slots:
            self._ring_q.append(np.empty(ts, dtype=np.int64))
            self._ring_v.append(np.empty(ts, dtype=VALUE_DTYPE))

    @property
    def ring_nbytes(self) -> int:
        return sum(int(b.nbytes) for b in self._ring_q) + \
            sum(int(b.nbytes) for b in self._ring_v)

    def run(
        self,
        queries,
        out: Optional[np.ndarray] = None,
        overlay=None,
        hinted: bool = False,
    ) -> np.ndarray:
        """Resolve ``queries`` tile-by-tile; identical values to one
        whole-batch :meth:`~repro.core.engine.BatchQueryEngine.execute`
        (or ``execute_hinted`` when ``hinted=True`` — the batch must
        then be ascending, which every tile slice of an ascending batch
        is).  ``overlay`` is applied per tile: it is elementwise by key,
        so tiling commutes with it.
        """
        rec = obs.active
        t_start = _clock() if rec.enabled else 0.0
        q = ensure_key_array(np.asarray(queries), "queries")
        nq = q.size
        if out is None:
            values = np.empty(nq, dtype=VALUE_DTYPE)
        else:
            if out.shape != (nq,) or out.dtype != np.dtype(VALUE_DTYPE):
                raise ConfigError(
                    f"out must be shape ({nq},) dtype "
                    f"{np.dtype(VALUE_DTYPE)}, got shape {out.shape} "
                    f"dtype {out.dtype}"
                )
            values = out
        ts = self.tile.tile_size
        n_tiles = -(-nq // ts) if nq else 0
        self._ring(min(self.tile.max_resident_tiles, max(n_tiles, 1)))
        peak = self.ring_nbytes + self.engine.scratch_nbytes
        for i in range(n_tiles):
            s, e = i * ts, min((i + 1) * ts, nq)
            slot = i % len(self._ring_q)
            tq = self._ring_q[slot][: e - s]
            tv = self._ring_v[slot][: e - s]
            np.copyto(tq, q[s:e])
            if hinted:
                self.engine.execute_hinted(tq, out=tv, overlay=overlay)
            else:
                self.engine.execute(
                    tq, issue_sorted=None, out=tv, overlay=overlay
                )
            values[s:e] = tv
            peak = max(
                peak, self.ring_nbytes + self.engine.scratch_nbytes
            )
        self.last_peak_bytes = int(peak)
        self.last_tiles = n_tiles
        if rec.enabled:
            rec.counter("stream.tiles", n_tiles)
            rec.gauge("stream.tile_peak_bytes", float(peak))
            rec.span_at(
                "stream.tile_run", t_start, _clock(), cat="stream",
                nq=nq, tiles=n_tiles, tile_size=ts, hinted=hinted,
            )
        return values


__all__ = ["TileConfig", "TileScheduler", "DEFAULT_TILE_SIZE"]
