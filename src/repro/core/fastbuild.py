"""Fully-vectorized Harmonia construction.

:meth:`HarmoniaLayout.from_regular` walks Python node objects — fine for
reduced scales, hopeless for the paper's 2^23–2^26-key trees (tens of
millions of per-node Python operations).  :func:`build_layout_fast` builds
the same arrays straight from the sorted key array with O(height) NumPy
passes and no per-node Python, making ``--scale paper`` runnable.

Equivalence with the object path (same ``_chunk_sizes`` chunking, same
BFS order, byte-identical arrays) is pinned by tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_FANOUT,
    INDEX_DTYPE,
    KEY_DTYPE,
    KEY_MAX,
    NOT_FOUND,
    VALUE_DTYPE,
)
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError, EmptyTreeError
from repro.utils.validation import ensure_fanout, ensure_sorted_unique


def _chunk_sizes_fast(
    n: int, target: int, minimum: int, maximum: int
) -> np.ndarray:
    """Closed form of :func:`repro.btree.bulk._chunk_sizes`.

    The greedy loop takes ``target`` exactly while ``remaining >= target
    + minimum``, then splits the tail in one or two chunks — so the
    whole schedule is ``k`` full chunks plus an O(1) tail, no Python
    loop over the (possibly tens of thousands of) chunks.  Byte
    equality with the loop is pinned by tests.
    """
    if n <= 0:
        return np.empty(0, dtype=INDEX_DTYPE)
    if n < 2 * minimum:
        return np.asarray([n], dtype=INDEX_DTYPE)
    k = max(0, (n - minimum) // target)
    tail = n - k * target
    sizes = np.full(k + 2, target, dtype=INDEX_DTYPE)
    if tail <= maximum:
        sizes[k] = tail
        return sizes[: k + 1]
    sizes[k] = tail - minimum
    sizes[k + 1] = minimum
    return sizes


def _fill_rows(
    flat: np.ndarray,
    sizes: np.ndarray,
    slots: int,
    pad,
    dtype,
    skip_first: int = 0,
) -> np.ndarray:
    """Pack ``flat`` into padded rows of the given ``sizes``.

    ``skip_first=1`` drops each chunk's first element (internal nodes store
    the minima of children 1..k-1; child 0's minimum is the separator held
    by an ancestor).

    All chunks except the rebalanced tail share one size, so the bulk of
    the packing is a single reshaped copy; only the tail rows go through
    the general gather.
    """
    n_rows = sizes.size
    out = np.full((n_rows, slots), pad, dtype=dtype)
    if n_rows == 0:
        return out
    u = int(sizes[0])
    nz = np.flatnonzero(sizes != u)
    k = int(nz[0]) if nz.size else n_rows
    if k:
        out[:k, : u - skip_first] = flat[: k * u].reshape(k, u)[
            :, skip_first:
        ]
    if k < n_rows:
        take = sizes[k:] - skip_first
        offsets = np.cumsum(sizes) - sizes + skip_first
        col = np.arange(slots)
        mask = col[None, :] < take[:, None]
        src = offsets[k:, None] + col[None, :]
        out[k:][mask] = flat[src[mask]]
    return out


def build_layout_fast(
    keys: Sequence[int],
    values: Optional[Sequence[int]] = None,
    fanout: int = DEFAULT_FANOUT,
    fill: float = 1.0,
) -> HarmoniaLayout:
    """Build a :class:`HarmoniaLayout` from strictly increasing keys with
    vectorized passes only (no pointer tree, no per-node Python)."""
    fanout = ensure_fanout(fanout)
    karr = ensure_sorted_unique(np.asarray(keys))
    if karr.size == 0:
        raise EmptyTreeError("cannot lay out an empty tree")
    if values is None:
        varr = karr.astype(VALUE_DTYPE, copy=True)
    else:
        varr = np.ascontiguousarray(values, dtype=VALUE_DTYPE)
        if varr.shape != karr.shape:
            raise ConfigError("values must align with keys")
    if not 0.0 < fill <= 1.0:
        raise ConfigError(f"fill must be in (0, 1], got {fill}")

    slots = fanout - 1
    min_leaf = (slots + 1) // 2
    min_children = (fanout + 1) // 2
    leaf_target = max(min_leaf, min(slots, round(fill * slots)))
    internal_target = max(min_children, min(fanout, round(fill * fanout)))

    leaf_sizes = _chunk_sizes_fast(karr.size, leaf_target, min_leaf, slots)
    leaf_keys = _fill_rows(karr, leaf_sizes, slots, KEY_MAX, KEY_DTYPE)
    leaf_values = _fill_rows(varr, leaf_sizes, slots, NOT_FOUND, VALUE_DTYPE)

    # Internal levels bottom-up from per-child subtree minima.
    levels_keys: List[np.ndarray] = [leaf_keys]
    levels_counts: List[np.ndarray] = [
        np.zeros(leaf_sizes.size, dtype=INDEX_DTYPE)
    ]
    mins = leaf_keys[:, 0].copy()
    while levels_keys[-1].shape[0] > 1:
        child_count = levels_keys[-1].shape[0]
        sizes = _chunk_sizes_fast(
            child_count, internal_target, min_children, fanout
        )
        levels_keys.append(
            _fill_rows(mins, sizes, slots, KEY_MAX, KEY_DTYPE, skip_first=1)
        )
        levels_counts.append(sizes)
        offsets = np.cumsum(sizes) - sizes
        mins = mins[offsets]

    levels_keys.reverse()
    levels_counts.reverse()
    height = len(levels_keys)
    key_region = np.concatenate(levels_keys, axis=0)
    counts = np.concatenate(levels_counts)
    n_nodes = key_region.shape[0]
    prefix = np.empty(n_nodes + 1, dtype=INDEX_DTYPE)
    prefix[0] = 1
    np.cumsum(counts, out=prefix[1:])
    prefix[1:] += 1
    level_starts = np.zeros(height + 1, dtype=INDEX_DTYPE)
    np.cumsum([lk.shape[0] for lk in levels_keys], out=level_starts[1:])

    return HarmoniaLayout(
        fanout=fanout,
        height=height,
        key_region=key_region,
        prefix_sum=prefix,
        leaf_values=leaf_values,
        level_starts=level_starts,
        n_keys=int(karr.size),
    )


__all__ = ["build_layout_fast"]
