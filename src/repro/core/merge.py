"""Merging Harmonia layouts.

Batch-oriented systems routinely consolidate indexes — nightly partition
merges, compaction after heavy deletes, unioning a delta index into the
base.  Because Harmonia layouts expose their contents as sorted arrays,
merging is a vectorized sorted-union plus one fast rebuild, never a
key-at-a-time insertion loop.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import VALUE_DTYPE
from repro.core.fastbuild import build_layout_fast
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError


def merged_items(
    a: HarmoniaLayout, b: HarmoniaLayout, prefer: str = "b"
) -> tuple:
    """Sorted union of two layouts' pairs; ``prefer`` names the side whose
    value wins on key collisions ("a" or "b" — "b" suits base ∪ delta)."""
    if prefer not in ("a", "b"):
        raise ConfigError(f"prefer must be 'a' or 'b', got {prefer!r}")
    ka = a.all_keys()
    kb = b.all_keys()
    va = a.iter_leaf_items()[:, 1] if ka.size else np.empty(0, dtype=np.int64)
    vb = b.iter_leaf_items()[:, 1] if kb.size else np.empty(0, dtype=np.int64)

    # Loser side first so the stable "last occurrence wins" pass below
    # keeps the preferred side's value.
    if prefer == "b":
        keys = np.concatenate([ka, kb])
        values = np.concatenate([va, vb])
    else:
        keys = np.concatenate([kb, ka])
        values = np.concatenate([vb, va])

    order = np.argsort(keys, kind="stable")
    keys = keys[order]
    values = values[order]
    # Among equal keys keep the last (the preferred side, by construction).
    if keys.size:
        keep = np.empty(keys.size, dtype=bool)
        keep[:-1] = keys[1:] != keys[:-1]
        keep[-1] = True
        keys = keys[keep]
        values = values[keep]
    return keys, values


def merge_layouts(
    a: HarmoniaLayout,
    b: HarmoniaLayout,
    prefer: str = "b",
    fanout: Optional[int] = None,
    fill: float = 1.0,
) -> HarmoniaLayout:
    """Merge two layouts into a fresh one.

    ``fanout`` defaults to ``a``'s; the result is freshly packed at
    ``fill`` (merges are natural re-compaction points).
    """
    keys, values = merged_items(a, b, prefer)
    return build_layout_fast(
        keys, values, fanout=fanout or a.fanout, fill=fill
    )


def concat_sorted_runs(
    runs: Sequence[Tuple[np.ndarray, np.ndarray]],
    policy: str = "disjoint",
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge ordered sorted ``(keys, values)`` runs into one sorted run.

    ``policy="disjoint"`` (default) joins end to end and *requires* run
    ``i``'s keys to all precede run ``i + 1``'s — the degenerate and, for
    contiguous key-range shards, exact merge: sorted union *is*
    concatenation.  This is how the sharded service tier stitches global
    range scans and rebalance dumps back together (each shard owns a
    contiguous key range, and shard order is key order), so the check is
    asserted, not assumed.

    ``policy="last_wins"`` allows runs to overlap and to repeat keys:
    each run must itself be sorted with unique keys, and on a key held by
    several runs the *latest* run's value wins.  This is the delta-index
    merge rule — newer upsert/tombstone runs overlay older ones — and is
    what :class:`repro.core.delta.DeltaIndex` collapses its runs with.
    """
    if policy not in ("disjoint", "last_wins"):
        raise ConfigError(
            f"policy must be 'disjoint'|'last_wins', got {policy!r}"
        )
    parts = [(np.asarray(k), np.asarray(v)) for k, v in runs]
    for k, v in parts:
        if k.shape != v.shape:
            raise ConfigError("each run needs aligned keys and values")
    parts = [(k, v) for k, v in parts if k.size]
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=VALUE_DTYPE),
        )
    if policy == "last_wins":
        for k, _ in parts:
            if k.size > 1 and not np.all(k[1:] > k[:-1]):
                raise ConfigError(
                    "last_wins runs must each be sorted with unique keys"
                )
        disjoint = all(
            ka[-1] < kb[0] for (ka, _), (kb, _) in zip(parts, parts[1:])
        )
        if not disjoint:
            if len(parts) >= 3:
                # Three or more overlapping runs (delta run collapse,
                # shard-local join outputs): the galloping heap merge
                # beats the O(n log n) argsort when the runs mostly
                # interleave in blocks, and is byte-identical to it.
                from repro.core.heap import kway_merge_runs

                return kway_merge_runs(parts)
            keys = np.concatenate([k for k, _ in parts])
            values = np.concatenate([v for _, v in parts])
            # Stable sort keeps run order among equal keys, so "last
            # occurrence" is exactly "latest run".
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            values = values[order]
            keep = np.empty(keys.size, dtype=bool)
            keep[:-1] = keys[1:] != keys[:-1]
            keep[-1] = True
            return keys[keep], values[keep]
    else:
        for (ka, _), (kb, _) in zip(parts, parts[1:]):
            if ka[-1] >= kb[0]:
                raise ConfigError(
                    "runs must be disjoint and ascending: "
                    f"{int(ka[-1])} >= {int(kb[0])}"
                )
    if len(parts) == 1:
        return parts[0]
    return (
        np.concatenate([k for k, _ in parts]),
        np.concatenate([v for _, v in parts]),
    )


def compact(layout: HarmoniaLayout, fill: float = 1.0) -> HarmoniaLayout:
    """Repack a layout at the target ``fill`` (e.g. after heavy deletes
    left leaves near minimum occupancy)."""
    items = layout.iter_leaf_items()
    return build_layout_fast(
        items[:, 0], items[:, 1], fanout=layout.fanout, fill=fill
    )


__all__ = ["merged_items", "merge_layouts", "concat_sorted_runs", "compact"]
