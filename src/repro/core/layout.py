"""The Harmonia two-region tree layout (paper §3.1, Figure 4b).

A B+tree is flattened into:

* **key region** — ``key_region[node, slot]``: every node's keys in
  breadth-first order, one fixed-size item of ``fanout - 1`` key slots per
  node, unused slots padded with :data:`~repro.constants.KEY_MAX`;
* **child region** — ``prefix_sum[node]``: the key-region index of the
  node's *first* child.  Child ``i`` (0-based) of ``node`` lives at
  ``prefix_sum[node] + i`` — the paper's Equation 1 with its 1-based ``i`` —
  and the child count is ``prefix_sum[node + 1] - prefix_sum[node]``.

Because all leaves of a B+tree sit at the same depth, BFS places them in one
contiguous block at the end of the key region; ``leaf_start`` marks its
beginning and ``leaf_values`` aligns with it.  Following the real CUDA
Harmonia (``harmonia.cuh``), the key storage is exposed as two regions split
at an explicit boundary: :attr:`internal_keys` (the separator rows of levels
``0 .. height-2``) and :attr:`leaf_keys` (the leaf rows), with
:attr:`key_count_prefix_sum` the flat key-slot index at which the leaf
region begins — the device handle carries exactly this split so the leaf
array can get its own pointer, layout and caching treatment.  Both are
zero-copy views of one backing array, faithful to the CUDA original where
``leaf_keys`` is a pointer *into* the keys allocation.

The prefix-sum array is tiny (8 bytes/node ≈ key region / (fanout-1)),
which is what lets the real system keep it in constant memory + read-only
cache; :meth:`child_region_bytes` exposes the footprint and
:meth:`caching_depth` reports how many *upper levels* of it fit in the
usable constant-memory budget — the levels below pay read-only-cache /
global-memory cost (the simulator consumes this).

**Gapped leaves.**  Leaf rows may carry pre-allocated slack: a leaf with
``c`` real keys stores them sorted in slots ``[0, c)`` and pads the tail
with ``KEY_MAX`` sentinels, so every per-row ``searchsorted``/``bisect``
works unmodified and the flattened leaf block stays globally sorted once
pads are masked.  The optional :attr:`leaf_counts` array caches the
per-leaf fill counts (computed lazily otherwise); the gapped batch-update
pipeline (:class:`~repro.core.update_plan.GappedBatchUpdater`) absorbs
inserts/deletes into the slack in place and keeps the *internal* region —
and therefore :meth:`leaf_bounds`, the per-leaf routing intervals —
untouched between rare compaction epochs.  A leaf's content is always a
subset of its routing interval, so gaps (even fully emptied leaves) never
perturb traversal, range scans or the packed-leaf block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.btree.iterators import bfs_nodes
from repro.btree.node import InternalNode, LeafNode
from repro.btree.regular import RegularBPlusTree
from repro.constants import (
    CONST_MEMORY_BUDGET_BYTES,
    DEFAULT_FANOUT,
    INDEX_DTYPE,
    KEY_DTYPE,
    KEY_MAX,
    NOT_FOUND,
    VALUE_DTYPE,
)
from repro.errors import EmptyTreeError, InvariantViolation
from repro.utils.prefix import validate_prefix_array
from repro.utils.validation import ensure_fanout


@dataclass
class HarmoniaLayout:
    """Immutable array snapshot of a B+tree in Harmonia form.

    Construct via :meth:`from_regular` or :meth:`from_sorted`; direct
    construction is for tests and internal use.
    """

    fanout: int
    height: int  #: levels including the leaf level (>= 1)
    key_region: np.ndarray  #: (n_nodes, fanout-1) int64, KEY_MAX padded
    prefix_sum: np.ndarray  #: (n_nodes+1,) int64
    leaf_values: np.ndarray  #: (n_leaves, fanout-1) int64, NOT_FOUND padded
    level_starts: np.ndarray  #: (height+1,) first BFS index of each level
    n_keys: int  #: number of stored key/value pairs
    #: Optional per-leaf fill counts (gapped layouts); ``None`` means every
    #: leaf is packed and counts are derived lazily from the sentinels.
    leaf_counts: Optional[np.ndarray] = None

    # Derived fields (filled in __post_init__).
    n_nodes: int = field(init=False)
    n_leaves: int = field(init=False)
    leaf_start: int = field(init=False)

    def __post_init__(self) -> None:
        self.fanout = ensure_fanout(self.fanout)
        self.n_nodes = int(self.key_region.shape[0])
        self.leaf_start = int(self.level_starts[self.height - 1])
        self.n_leaves = self.n_nodes - self.leaf_start
        # Lazy scalar-search caches (Python-list views of hot rows).  The
        # snapshot discipline makes these safe: batch updates touch only
        # leaf rows of the outgoing snapshot and replace the layout object
        # for the next phase, so cached *internal* rows never go stale.
        self._row_lists: dict = {}
        self._prefix_list: Optional[List[int]] = None
        self._leaf_bounds: Optional[np.ndarray] = None

    # ------------------------------------------------------------- builders

    @classmethod
    def from_regular(cls, tree: RegularBPlusTree) -> "HarmoniaLayout":
        """Flatten a pointer-based B+tree into Harmonia form.

        This is the paper's construction and also the post-batch "movement"
        target (§3.2.2).  O(n_nodes · fanout).
        """
        if len(tree) == 0:
            raise EmptyTreeError("cannot lay out an empty tree")
        fanout = tree.fanout
        slots = fanout - 1
        nodes = list(bfs_nodes(tree))
        n_nodes = len(nodes)

        key_region = np.full((n_nodes, slots), KEY_MAX, dtype=KEY_DTYPE)
        children_counts = np.zeros(n_nodes, dtype=INDEX_DTYPE)
        level_sizes: List[int] = [len(level) for level in tree.level_nodes()]
        level_starts = np.zeros(len(level_sizes) + 1, dtype=INDEX_DTYPE)
        np.cumsum(level_sizes, out=level_starts[1:])

        leaf_start = int(level_starts[tree.height - 1])
        leaf_values = np.full(
            (n_nodes - leaf_start, slots), NOT_FOUND, dtype=VALUE_DTYPE
        )
        for i, node in enumerate(nodes):
            nk = len(node.keys)
            key_region[i, :nk] = node.keys
            if node.is_leaf:
                assert isinstance(node, LeafNode)
                leaf_values[i - leaf_start, :nk] = node.values
            else:
                assert isinstance(node, InternalNode)
                children_counts[i] = len(node.children)

        prefix_sum = np.empty(n_nodes + 1, dtype=INDEX_DTYPE)
        prefix_sum[0] = 1
        np.cumsum(children_counts, out=prefix_sum[1:])
        prefix_sum[1:] += 1

        return cls(
            fanout=fanout,
            height=tree.height,
            key_region=key_region,
            prefix_sum=prefix_sum,
            leaf_values=leaf_values,
            level_starts=level_starts,
            n_keys=len(tree),
        )

    @classmethod
    def from_sorted(
        cls,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
    ) -> "HarmoniaLayout":
        """Bulk-build directly from strictly increasing keys.

        Uses the vectorized constructor (:mod:`repro.core.fastbuild`) —
        byte-identical to flattening a bulk-loaded pointer tree (tests pin
        the equivalence) but O(height) NumPy passes instead of per-node
        Python, which is what makes paper-scale trees practical.
        """
        from repro.core.fastbuild import build_layout_fast

        return build_layout_fast(keys, values, fanout=fanout, fill=fill)

    # ------------------------------------------------------------- accessors

    @property
    def slots(self) -> int:
        """Key slots per node (= fanout - 1)."""
        return self.fanout - 1

    @property
    def internal_keys(self) -> np.ndarray:
        """Separator rows of the internal levels — a zero-copy view of the
        key region above the leaf split (``(leaf_start, slots)``)."""
        return self.key_region[: self.leaf_start]

    @property
    def leaf_keys(self) -> np.ndarray:
        """The leaf rows as their own region (``(n_leaves, slots)``) — the
        ``harmonia.cuh`` ``leaf_keys`` pointer, here a zero-copy view of
        the key region starting at :attr:`key_count_prefix_sum`."""
        return self.key_region[self.leaf_start :]

    @property
    def key_count_prefix_sum(self) -> int:
        """Flat key-slot index where the leaf region begins: the number of
        key slots held by all internal nodes (the split point the real
        implementation stores on its device handle)."""
        return self.leaf_start * self.slots

    def caching_depth(self, budget_bytes: Optional[int] = None) -> int:
        """Number of complete upper levels whose prefix-sum entries fit in
        ``budget_bytes`` of constant memory (default: the named
        :data:`~repro.constants.CONST_MEMORY_BUDGET_BYTES`).

        Child lookups at levels ``< caching_depth`` read prefix-sum entries
        of nodes in those levels — all below ``level_starts[caching_depth]``
        — so they are served from constant memory; lookups at deeper levels
        spill to the read-only cache and pay global-memory transactions.
        The boundary is level-aligned (a level is pinned whole or not at
        all), matching the per-level traversal specialization.
        """
        if budget_bytes is None:
            budget_bytes = CONST_MEMORY_BUDGET_BYTES
        entries = max(int(budget_bytes), 0) // 8
        depth = 0
        while (depth < self.height
               and int(self.level_starts[depth + 1]) <= entries):
            depth += 1
        return depth

    def node_keys(self, node: int) -> np.ndarray:
        """View of one node's key row (padded)."""
        return self.key_region[node]

    def key_count(self, node: int) -> int:
        """Number of real (non-sentinel) keys in ``node``."""
        row = self.key_region[node]
        return int(np.searchsorted(row, KEY_MAX, side="left"))

    def leaf_key_counts(self, copy: bool = True) -> np.ndarray:
        """Per-leaf key counts — the occupancy vector the batch-update
        planner classifies in-place vs structural operations against.

        Derived from the sentinel pads in one vectorized pass and cached
        on :attr:`leaf_counts`; gapped builders pass the counts in
        directly.  Returns a fresh array by default so callers may
        scribble on it; ``copy=False`` hands out the cached array for
        read-only use.
        """
        if self.leaf_counts is None:
            self.leaf_counts = np.sum(self.leaf_keys != KEY_MAX, axis=1)
        return self.leaf_counts.copy() if copy else self.leaf_counts

    def occupancy(self) -> float:
        """Fraction of leaf key slots holding real keys — the quantity the
        gapped update pipeline's watermark policy tracks."""
        total = self.n_leaves * self.slots
        return self.n_keys / total if total else 0.0

    def leaf_bounds(self) -> np.ndarray:
        """Lower routing bound of every leaf (cached, ``(n_leaves,)``).

        ``bounds[i]`` is the smallest key that routes to leaf ``i``
        (``bounds[0]`` is the int64 minimum: the leftmost leaf catches
        everything below the first separator), derived top-down from the
        internal separators: a node's first child inherits the node's own
        bound, child ``j > 0`` starts at separator ``j - 1``.  Because
        separators route equal keys right (side='right'), the leaf for key
        ``k`` is ``searchsorted(bounds, k, side='right') - 1`` — one
        binary search instead of a level-synchronous traversal, which is
        what makes the gapped planner's routing O(log n_leaves) per key.
        Valid for gapped layouts by construction: in-place absorption
        never touches the internal region, so every leaf's content stays
        inside its routing interval.
        """
        if self._leaf_bounds is None:
            bounds = np.full(1, np.iinfo(np.int64).min, dtype=KEY_DTYPE)
            for lvl in range(self.height - 1):
                a = int(self.level_starts[lvl])
                b = int(self.level_starts[lvl + 1])
                child_counts = np.diff(self.prefix_sum)[a:b]
                n_children = int(child_counts.sum())
                parent = np.repeat(np.arange(b - a), child_counts)
                # Slot of each child within its parent (children of one
                # level are contiguous on the next — §3.1's BFS order).
                firsts = self.prefix_sum[a:b] - int(self.prefix_sum[a])
                within = np.arange(n_children, dtype=np.int64) - firsts[parent]
                nxt = np.where(
                    within == 0,
                    bounds[parent],
                    self.key_region[a:b][parent, np.maximum(within - 1, 0)],
                )
                bounds = nxt.astype(KEY_DTYPE, copy=False)
            self._leaf_bounds = bounds
        return self._leaf_bounds

    def children_count(self, node: int) -> int:
        return int(self.prefix_sum[node + 1] - self.prefix_sum[node])

    def child_index(self, node: int, i: int) -> int:
        """Equation 1: key-region index of the (0-based) ``i``-th child."""
        n = self.children_count(node)
        if not 0 <= i < n:
            raise IndexError(f"child {i} out of range for node {node} with {n} children")
        return int(self.prefix_sum[node]) + i

    def is_leaf(self, node: int) -> bool:
        return node >= self.leaf_start

    def internal_row_list(self, node: int) -> List[int]:
        """One *internal* node's key row as a cached Python list.

        The scalar-search fast path: ``bisect`` on a plain list beats a
        ``np.searchsorted`` dispatch on a tiny row by an order of
        magnitude, and internal rows are few (≈ ``n_nodes / fanout``) and
        revisited constantly (the root on every query), so the cache stays
        small and hot.  Leaf rows are deliberately not cached — there are
        ``fanout``× more of them and each is typically visited once.
        """
        lst = self._row_lists.get(node)
        if lst is None:
            if node >= self.leaf_start:
                raise IndexError(f"node {node} is a leaf; cache is internal-only")
            lst = self.key_region[node].tolist()
            self._row_lists[node] = lst
        return lst

    def prefix_sum_list(self) -> List[int]:
        """The child region as a cached Python list (scalar fast path)."""
        if self._prefix_list is None:
            self._prefix_list = self.prefix_sum.tolist()
        return self._prefix_list

    def level_of(self, node: int) -> int:
        """Tree level of a BFS index (root = 0)."""
        return int(np.searchsorted(self.level_starts, node, side="right")) - 1

    def leaf_value_row(self, node: int) -> np.ndarray:
        if not self.is_leaf(node):
            raise IndexError(f"node {node} is not a leaf")
        return self.leaf_values[node - self.leaf_start]

    # ---------------------------------------------------------- footprints

    def key_region_bytes(self) -> int:
        return int(self.key_region.nbytes)

    def child_region_bytes(self) -> int:
        """Footprint of the prefix-sum array — the quantity the paper bounds
        at ~16 KB for a 64-fanout 4-level tree to argue cache residency."""
        return int(self.prefix_sum.nbytes)

    def values_bytes(self) -> int:
        return int(self.leaf_values.nbytes)

    # ------------------------------------------------------------ iteration

    def iter_leaf_items(self) -> "np.ndarray":
        """All (key, value) pairs in key order as a structured traversal of
        the contiguous leaf block — the fast path range scans build on."""
        leaf_keys = self.leaf_keys.ravel()
        vals = self.leaf_values.ravel()
        mask = leaf_keys != KEY_MAX
        return np.stack([leaf_keys[mask], vals[mask]], axis=1)

    def all_keys(self) -> np.ndarray:
        """Stored keys in ascending order."""
        leaf_keys = self.leaf_keys.ravel()
        return leaf_keys[leaf_keys != KEY_MAX]

    def max_key(self) -> int:
        """Largest stored key.

        The rightmost *non-empty* leaf holds it — a gapped layout may have
        emptied its tail leaves in place, so scan back from the last BFS
        node (packed layouts stop at the first row).
        """
        if self.n_keys == 0:
            raise EmptyTreeError("layout holds no keys")
        counts = self.leaf_key_counts(copy=False)
        nonempty = np.flatnonzero(counts)
        leaf = int(nonempty[-1])
        return int(self.key_region[self.leaf_start + leaf, counts[leaf] - 1])

    def min_key(self) -> int:
        """Smallest stored key (first slot of the first non-empty leaf)."""
        if self.n_keys == 0:
            raise EmptyTreeError("layout holds no keys")
        counts = self.leaf_key_counts(copy=False)
        leaf = int(np.flatnonzero(counts)[0])
        return int(self.key_region[self.leaf_start + leaf, 0])

    def key_space_bits(self) -> int:
        """Bits needed to represent the stored key range — the effective
        ``B`` for Equation 2 when keys do not span the full 64-bit space
        (sorting bits above the data's range would order nothing).  A
        negative minimum means the range spans the sign bit: the full
        64-bit width applies."""
        if self.min_key() < 0:
            return 64
        return max(self.max_key().bit_length(), 1)

    def copy(self) -> "HarmoniaLayout":
        """Deep copy (fresh arrays) — the copy-on-write step snapshot
        isolation builds on (:mod:`repro.core.epoch`)."""
        return HarmoniaLayout(
            fanout=self.fanout,
            height=self.height,
            key_region=self.key_region.copy(),
            prefix_sum=self.prefix_sum.copy(),
            leaf_values=self.leaf_values.copy(),
            level_starts=self.level_starts.copy(),
            n_keys=self.n_keys,
            leaf_counts=(
                None if self.leaf_counts is None else self.leaf_counts.copy()
            ),
        )

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        """Validate the full §3.1 structure.  Raises
        :class:`~repro.errors.InvariantViolation` on the first failure."""
        n = self.n_nodes
        if self.key_region.shape != (n, self.slots):
            raise InvariantViolation("key region shape mismatch")
        validate_prefix_array(self.prefix_sum, n)
        if self.level_starts.shape != (self.height + 1,):
            raise InvariantViolation("level_starts shape mismatch")
        if self.level_starts[0] != 0 or self.level_starts[-1] != n:
            raise InvariantViolation("level_starts must span [0, n_nodes]")
        if self.leaf_values.shape != (self.n_leaves, self.slots):
            raise InvariantViolation("leaf_values shape mismatch")

        # Leaf-region split: the two views partition the key region at the
        # key_count_prefix_sum boundary without copying.
        if self.leaf_keys.shape != (self.n_leaves, self.slots):
            raise InvariantViolation("leaf_keys view shape mismatch")
        if self.internal_keys.shape != (self.leaf_start, self.slots):
            raise InvariantViolation("internal_keys view shape mismatch")
        if self.key_count_prefix_sum != self.leaf_start * self.slots:
            raise InvariantViolation("key_count_prefix_sum boundary mismatch")
        if self.n_leaves and not np.shares_memory(
            self.leaf_keys, self.key_region
        ):
            raise InvariantViolation("leaf_keys must view the key region")

        # Rows sorted with sentinel padding at the tail only.
        kr = self.key_region
        if not bool(np.all(kr[:, 1:] >= kr[:, :-1])):
            raise InvariantViolation("a key row is unsorted")

        counts = np.diff(self.prefix_sum)
        # Leaves have no children; internals have children on the next level.
        if self.n_leaves and bool(np.any(counts[self.leaf_start :] != 0)):
            raise InvariantViolation("a leaf claims children")
        for lvl in range(self.height - 1):
            a, b = int(self.level_starts[lvl]), int(self.level_starts[lvl + 1])
            nxt_a, nxt_b = int(self.level_starts[lvl + 1]), int(self.level_starts[lvl + 2])
            if int(self.prefix_sum[a]) != nxt_a:
                raise InvariantViolation(
                    f"level {lvl} first child must start level {lvl + 1}"
                )
            if int(self.prefix_sum[b]) != nxt_b:
                raise InvariantViolation(
                    f"level {lvl} children must exactly cover level {lvl + 1}"
                )
            # Internal node key count == child count - 1.
            rows = kr[a:b]
            key_counts = np.sum(rows != KEY_MAX, axis=1)
            if not bool(np.all(key_counts == counts[a:b] - 1)):
                raise InvariantViolation(
                    f"level {lvl}: key count != children - 1 somewhere"
                )

        # Leaf keys globally sorted & unique, and count matches n_keys.
        # (Gapped leaves hold: sorted rows put pads at the tail, so the
        # masked flatten stays globally increasing whatever the gaps.)
        flat = self.all_keys()
        if flat.size != self.n_keys:
            raise InvariantViolation(
                f"n_keys={self.n_keys} but leaves hold {flat.size}"
            )
        if flat.size > 1 and not bool(np.all(flat[1:] > flat[:-1])):
            raise InvariantViolation("leaf keys not globally increasing")

        # A cached fill-count vector must agree with the sentinels.
        if self.leaf_counts is not None:
            actual = np.sum(kr[self.leaf_start :] != KEY_MAX, axis=1)
            if self.leaf_counts.shape != (self.n_leaves,) or not bool(
                np.all(self.leaf_counts == actual)
            ):
                raise InvariantViolation("leaf_counts disagree with rows")

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"HarmoniaLayout(fanout={self.fanout}, height={self.height}, "
            f"nodes={self.n_nodes}, keys={self.n_keys}, "
            f"child_region={self.child_region_bytes()}B)"
        )


__all__ = ["HarmoniaLayout"]
