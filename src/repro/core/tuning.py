"""Configuration advice derived from the device model.

The paper fixes fanout 64 ("due to the scale of data stored in the tree,
the tree fanout is typically a large number such as 64 or 128", §4.2
footnote 2).  :func:`recommend_fanout` makes the underlying reasoning
executable: pick the fanout whose *modeled* full-pipeline throughput is
best for a given device and tree size, using the same simulator the
figures use — so the advice carries the model's provenance rather than a
folklore constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.config import SearchConfig
from repro.core.tree import HarmoniaTree
from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import ensure_positive
from repro.workloads.generators import make_key_set, uniform_queries


@dataclass(frozen=True)
class FanoutRecommendation:
    fanout: int
    modeled_gqs_by_fanout: Dict[int, float]
    sample_keys: int
    device: str

    def row(self) -> dict:
        return {
            "recommended_fanout": self.fanout,
            "device": self.device,
            **{f"gqs_f{f}": round(v, 3)
               for f, v in sorted(self.modeled_gqs_by_fanout.items())},
        }


def recommend_fanout(
    n_keys: int,
    device: DeviceSpec = TITAN_V,
    candidates: Sequence[int] = (16, 32, 64, 128),
    sample_keys: int = 1 << 14,
    sample_queries: int = 1 << 12,
    rng: RngLike = None,
) -> FanoutRecommendation:
    """Model-driven fanout choice for a planned tree of ``n_keys`` keys.

    Profiles a down-sampled tree (same density) per candidate fanout on a
    device miniaturized to the sample, then recommends the modeled-best.
    """
    ensure_positive("n_keys", n_keys)
    if not candidates:
        raise ConfigError("candidates must be non-empty")
    from repro.workloads.datasets import miniaturized_device

    gen = ensure_rng(rng)
    sample_keys = min(sample_keys, n_keys)
    mini = miniaturized_device(sample_keys, sample_queries, device)
    keys = make_key_set(sample_keys, rng=gen)
    queries = uniform_queries(keys, sample_queries, rng=gen)

    scores: Dict[int, float] = {}
    for fanout in candidates:
        tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=0.7)
        prep = tree.prepare_queries(queries, SearchConfig.full())
        metrics = simulate_harmonia_search(
            tree.layout, prep.queries, prep.group_size, device=mini
        )
        sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, mini)
        scores[fanout] = modeled_throughput(
            metrics, tree.layout, mini, sort_s=sort_s
        ) / 1e9
    best = max(scores, key=lambda f: scores[f])
    return FanoutRecommendation(
        fanout=best,
        modeled_gqs_by_fanout=scores,
        sample_keys=sample_keys,
        device=device.name,
    )


__all__ = ["FanoutRecommendation", "recommend_fanout"]
