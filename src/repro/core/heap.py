"""Variable-length payloads behind a fixed-width index.

Harmonia's value slots are 8-byte integers — on a GPU that is how it must
be.  Real deployments (the intro's web index, the OLAP fact table) store
*records*: the standard design keeps a byte heap on the host and stores
each record's heap offset as the tree value.  :class:`ValueHeap` is that
heap (append-only, length-prefixed), and :class:`RecordStore` glues it to
a :class:`~repro.core.tree.HarmoniaTree` so users get a bytes-valued map
with the tree doing all the finding.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_FANOUT, NOT_FOUND, VALUE_DTYPE
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.errors import ConfigError


def kway_merge_runs(
    runs: Sequence[Tuple[np.ndarray, np.ndarray]],
) -> Tuple[np.ndarray, np.ndarray]:
    """Heap-based k-way merge of sorted-unique ``(keys, values)`` runs;
    on a key held by several runs the **latest** run's value wins.

    The binary heap holds one head per run, keyed ``(key, run_idx)``.
    Each pop *gallops*: when the popped run's head is strictly below
    every other head, the whole prefix of that run below the next head
    is emitted as one block slice (``searchsorted`` against the heap
    minimum) — k-way merge cost scales with the number of run
    *interleavings*, not the number of keys, so merging many mostly
    range-disjoint shard-local join outputs degenerates to a handful of
    block copies.  Ties (one key in several runs) are resolved by
    popping the whole tie group and emitting only the highest run
    index's value.  Output is byte-identical to the stable
    concatenate/argsort/keep-last path in
    :func:`repro.core.merge.concat_sorted_runs`, which dispatches here
    for three or more overlapping runs.
    """
    parts = []
    for k, v in runs:
        k = np.asarray(k)
        v = np.asarray(v)
        if k.shape != v.shape:
            raise ConfigError("each run needs aligned keys and values")
        if k.size > 1 and not np.all(k[1:] > k[:-1]):
            raise ConfigError(
                "kway_merge_runs runs must each be sorted with unique keys"
            )
        if k.size:
            parts.append((k, v))
    if not parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=VALUE_DTYPE)
    if len(parts) == 1:
        return parts[0]
    cursors = [0] * len(parts)
    heap = [(int(k[0]), i) for i, (k, _) in enumerate(parts)]
    heapq.heapify(heap)
    out_k: List[np.ndarray] = []
    out_v: List[np.ndarray] = []
    while heap:
        key, i = heapq.heappop(heap)
        ties = [i]
        while heap and heap[0][0] == key:
            ties.append(heapq.heappop(heap)[1])
        if len(ties) > 1:
            w = max(ties)  # latest run wins the collision
            c = cursors[w]
            out_k.append(parts[w][0][c : c + 1])
            out_v.append(parts[w][1][c : c + 1])
            for j in ties:
                cursors[j] += 1
                if cursors[j] < parts[j][0].size:
                    heapq.heappush(
                        heap, (int(parts[j][0][cursors[j]]), j)
                    )
            continue
        kk, vv = parts[i]
        c = cursors[i]
        if heap:
            # Gallop: everything strictly below the next head cannot
            # collide with any other run (their remaining keys are all
            # >= that head) — emit it as one slice.
            upper = c + int(
                np.searchsorted(kk[c:], heap[0][0], side="left")
            )
        else:
            upper = kk.size
        out_k.append(kk[c:upper])
        out_v.append(vv[c:upper])
        cursors[i] = upper
        if upper < kk.size:
            heapq.heappush(heap, (int(kk[upper]), i))
    return np.concatenate(out_k), np.concatenate(out_v)


class ValueHeap:
    """Append-only byte heap with length-prefixed records.

    Offsets are stable forever (records are immutable; updates append a
    new record and repoint the tree — the tombstoned bytes are reclaimed
    by :meth:`vacuum`).
    """

    _LEN_BYTES = 4
    _MAX_RECORD = (1 << 31) - 1

    def __init__(self, capacity: int = 1 << 16) -> None:
        self._buf = bytearray(capacity)
        self._used = 0

    def __len__(self) -> int:
        return self._used

    def append(self, record: bytes) -> int:
        """Store ``record``; returns its offset."""
        if not isinstance(record, (bytes, bytearray, memoryview)):
            raise ConfigError("record must be bytes-like")
        record = bytes(record)
        if len(record) > self._MAX_RECORD:
            raise ConfigError("record too large")
        need = self._used + self._LEN_BYTES + len(record)
        if need > len(self._buf):
            self._buf.extend(bytes(max(need - len(self._buf), len(self._buf))))
        offset = self._used
        self._buf[offset : offset + self._LEN_BYTES] = len(record).to_bytes(
            self._LEN_BYTES, "little"
        )
        start = offset + self._LEN_BYTES
        self._buf[start : start + len(record)] = record
        self._used = need
        return offset

    def get(self, offset: int) -> bytes:
        """Record stored at ``offset``."""
        if not 0 <= offset < self._used:
            raise ConfigError(f"offset {offset} outside heap")
        length = int.from_bytes(
            self._buf[offset : offset + self._LEN_BYTES], "little"
        )
        start = offset + self._LEN_BYTES
        end = start + length
        if end > self._used:
            raise ConfigError(f"corrupt record at offset {offset}")
        return bytes(self._buf[start:end])

    def bytes_used(self) -> int:
        return self._used


class RecordStore:
    """A bytes-valued ordered map: HarmoniaTree keys → heap records."""

    def __init__(
        self,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 0.7,
    ) -> None:
        self.heap = ValueHeap()
        self.tree = HarmoniaTree.empty(fanout=fanout, fill=fill)

    @classmethod
    def from_items(
        cls,
        items: Sequence[Tuple[int, bytes]],
        fanout: int = DEFAULT_FANOUT,
        fill: float = 0.7,
    ) -> "RecordStore":
        store = cls(fanout=fanout, fill=fill)
        pairs = sorted(items)
        keys = np.asarray([k for k, _ in pairs], dtype=np.int64)
        offsets = np.asarray(
            [store.heap.append(rec) for _, rec in pairs], dtype=np.int64
        )
        store.tree = HarmoniaTree.from_sorted(keys, offsets, fanout=fanout,
                                              fill=fill)
        return store

    def __len__(self) -> int:
        return len(self.tree)

    def get(self, key: int) -> Optional[bytes]:
        offset = self.tree.search(key)
        if offset is None:
            return None
        return self.heap.get(int(offset))

    def get_batch(self, keys: Sequence[int]) -> List[Optional[bytes]]:
        offsets = self.tree.search_batch(np.asarray(keys, dtype=np.int64))
        return [
            None if off == NOT_FOUND else self.heap.get(int(off))
            for off in offsets
        ]

    def put(self, key: int, record: bytes) -> None:
        """Insert or overwrite (appends the record, repoints the key)."""
        offset = self.heap.append(record)
        if not self.tree.update(key, offset):
            self.tree.insert(key, offset)

    def put_batch(self, items: Iterable[Tuple[int, bytes]]) -> None:
        ops = []
        for key, record in items:
            offset = self.heap.append(record)
            # upsert semantics via two ops: update wins if present, the
            # insert is a no-op then; if absent the update fails and the
            # insert lands.  Both carry the same offset.
            ops.append(Operation("update", key, offset))
            ops.append(Operation("insert", key, offset))
        self.tree.apply_batch(ops)

    def delete(self, key: int) -> bool:
        return self.tree.delete(key)

    def range(self, lo: int, hi: int) -> List[Tuple[int, bytes]]:
        keys, offsets = self.tree.range_search(lo, hi)
        return [(int(k), self.heap.get(int(o))) for k, o in zip(keys, offsets)]

    def vacuum(self) -> int:
        """Rewrite the heap keeping only live records; returns reclaimed
        bytes.  Offsets change; the tree is rebuilt to match."""
        if len(self.tree) == 0:
            reclaimed = self.heap.bytes_used()
            self.heap = ValueHeap()
            return reclaimed
        items = self.tree.layout.iter_leaf_items()
        old = self.heap
        self.heap = ValueHeap()
        new_offsets = np.asarray(
            [self.heap.append(old.get(int(off))) for off in items[:, 1]],
            dtype=np.int64,
        )
        self.tree = HarmoniaTree.from_sorted(
            items[:, 0], new_offsets, fanout=self.tree.fanout,
            fill=self.tree._fill,
        )
        return old.bytes_used() - self.heap.bytes_used()


__all__ = ["ValueHeap", "RecordStore", "kway_merge_runs"]
