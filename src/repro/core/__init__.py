"""Harmonia — the paper's contribution.

* :mod:`repro.core.layout` — the two-region structure (§3.1): BFS key region
  + prefix-sum child region.
* :mod:`repro.core.search` — scalar and vectorized traversal (§3.2.1).
* :mod:`repro.core.engine` — frontier-compacted batch query engine (the
  host-side exploitation of §4.1's PSA locality).
* :mod:`repro.core.psa` — partially-sorted aggregation (§4.1).
* :mod:`repro.core.stream` — double-buffered streaming executor overlapping
  the PSA sort of the next batch with the traversal of the current (§4.1.3).
* :mod:`repro.core.ntg` — narrowed thread-group traversal model (§4.2).
* :mod:`repro.core.update` — per-op batch updates with two-grained locking
  and auxiliary nodes (§3.2.2, Algorithm 1) — the scalar reference path.
* :mod:`repro.core.update_plan` — the vectorized plan/apply/movement
  batch-update pipeline (the default executor, equivalent to the scalar
  path).
* :mod:`repro.core.tree` — :class:`HarmoniaTree`, the user-facing index that
  glues the above together.
"""

from repro.core.config import SearchConfig, UpdateConfig
from repro.core.engine import BatchQueryEngine, EngineScratch, EngineStats
from repro.core.epoch import EpochManager
from repro.core.heap import RecordStore, ValueHeap
from repro.core.io import load_layout, load_tree, save_layout, save_tree
from repro.core.layout import HarmoniaLayout
from repro.core.merge import compact, merge_layouts
from repro.core.stats import layout_stats
from repro.core.stream import BatchTrace, StreamExecutor, StreamStats
from repro.core.tree import HarmoniaTree
from repro.core.tuning import recommend_fanout
from repro.core.update_plan import (
    GappedBatchUpdater,
    UpdatePlan,
    VectorizedBatchUpdater,
    plan_batch,
)

__all__ = [
    "HarmoniaLayout",
    "HarmoniaTree",
    "UpdatePlan",
    "VectorizedBatchUpdater",
    "GappedBatchUpdater",
    "plan_batch",
    "BatchQueryEngine",
    "EngineScratch",
    "EngineStats",
    "StreamExecutor",
    "StreamStats",
    "BatchTrace",
    "SearchConfig",
    "UpdateConfig",
    "EpochManager",
    "RecordStore",
    "ValueHeap",
    "save_layout",
    "load_layout",
    "save_tree",
    "load_tree",
    "layout_stats",
    "merge_layouts",
    "compact",
    "recommend_fanout",
]
