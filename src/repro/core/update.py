"""Batch updates for Harmonia (paper §3.2.2 + Algorithm 1).

The paper's scenario is phase-based: queries run on the GPU; updates are
batched and applied on the CPU, after which the GPU-side structure is
synchronized.  Within a batch:

* **update** (overwrite a value) and inserts/deletes that keep the target
  leaf legal mutate the key region / value region *in place* under a
  per-leaf fine-grained lock;
* operations that would **split or merge** a node instead stage their effect
  on an *auxiliary node* under the coarse-grained lock — the leaf is marked
  ``split`` and later operations on it are redirected to the auxiliary node;
* after the batch, a single **movement** pass folds the auxiliary nodes back
  into the consecutive key region: untouched leaf rows are block-copied
  (vectorized gather — "the locations of all these data movements can be
  known in advance, some of them can be processed in parallel"), dirty runs
  are re-chunked into legal leaves, and the (small) internal levels plus the
  prefix-sum child region are rebuilt bottom-up.

Algorithm 1 is implemented verbatim in :class:`TwoGrainedLocks`: a coarse
lock guards the whole tree and a global counter of in-flight fine-grained
operations; structural operations spin until the counter drains.
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.btree.bulk import _chunk_sizes
from repro.constants import (
    INDEX_DTYPE,
    KEY_DTYPE,
    KEY_MAX,
    NOT_FOUND,
    VALUE_DTYPE,
)
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError
from repro.utils.timer import Timer
from repro.utils.validation import ensure_scalar_key


# --------------------------------------------------------------------------
# Operations
# --------------------------------------------------------------------------

INSERT = "insert"
UPDATE = "update"
DELETE = "delete"
_KINDS = (INSERT, UPDATE, DELETE)


@dataclass(frozen=True)
class Operation:
    """One element of an update batch."""

    kind: str
    key: int
    value: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown operation kind {self.kind!r}")
        ensure_scalar_key(self.key)


@dataclass
class BatchResult:
    """Outcome accounting for one applied batch."""

    inserted: int = 0
    updated: int = 0
    deleted: int = 0
    #: Operations that were no-ops (duplicate insert, missing update/delete).
    failed: int = 0
    #: Leaves that went through an auxiliary node (split staging).
    split_leaves: int = 0
    #: Leaves left under-full (merge staged for the movement pass).
    underflow_leaves: int = 0
    #: Leaves whose rows were reused verbatim by the movement pass.
    moved_clean: int = 0
    #: Leaves rebuilt by re-chunking dirty runs.
    rebuilt_dirty: int = 0
    timer: Timer = field(default_factory=Timer)

    @property
    def n_effective(self) -> int:
        return self.inserted + self.updated + self.deleted


# --------------------------------------------------------------------------
# Algorithm 1 — two-grained locking
# --------------------------------------------------------------------------


class TwoGrainedLocks:
    """The paper's Algorithm 1, line for line.

    ``fine_op`` is the "updates without split or merge" path (lines 3-13):
    bump the global counter under the coarse lock, do the work under the
    target leaf's fine lock, then decrement.  ``coarse_op`` is the
    "with split or merge" path (lines 16-24): take the coarse lock, and if
    fine-grained operations are still in flight, release and retry (the
    ``goto RETRY``), otherwise run the structural operation while holding
    the coarse lock.
    """

    def __init__(self) -> None:
        self.coarse = threading.Lock()
        self.global_count = 0
        self._fine_locks: Dict[int, threading.Lock] = {}
        self._fine_locks_guard = threading.Lock()

    def fine_lock_for(self, leaf_idx: int) -> threading.Lock:
        """Lazily materialized per-leaf lock (a real tree would embed it in
        the node; the array layout keeps them in a side table)."""
        with self._fine_locks_guard:
            lock = self._fine_locks.get(leaf_idx)
            if lock is None:
                lock = threading.Lock()
                self._fine_locks[leaf_idx] = lock
            return lock

    def fine_op(self, leaf_idx: int, fn: Callable[[], None]) -> None:
        with self.coarse:  # LOCK(coarse_lock)
            self.global_count += 1  # global_count++
        try:
            lock = self.fine_lock_for(leaf_idx)
            with lock:  # LOCK(node.fine_lock)
                fn()  # operation_without_split_or_merge()
        finally:
            with self.coarse:
                self.global_count -= 1  # global_count--

    def coarse_op(self, fn: Callable[[], None]) -> None:
        while True:  # RETRY:
            with self.coarse:  # LOCK(coarse_lock)
                if self.global_count == 0:
                    fn()  # operation_with_split_or_merge()
                    return  # RELEASE on scope exit
            # RELEASE first to avoid deadlock, then retry.
            time.sleep(0)  # yield the GIL so fine ops can drain


# --------------------------------------------------------------------------
# Auxiliary nodes
# --------------------------------------------------------------------------


@dataclass
class AuxiliaryNode:
    """Staging area for a split leaf (paper §3.2.2).

    Holds the leaf's *entire* logical content (original entries plus the
    batch's modifications) as sorted parallel lists; the movement pass
    re-chunks it into however many legal leaves it needs.
    """

    keys: List[int]
    values: List[int]

    @classmethod
    def from_row(cls, key_row: np.ndarray, val_row: np.ndarray) -> "AuxiliaryNode":
        mask = key_row != KEY_MAX
        return cls(keys=key_row[mask].tolist(), values=val_row[mask].tolist())

    def _lookup(self, key: int) -> Tuple[int, bool]:
        """The one shared bisect: ``(slot, present)`` for ``key``."""
        i = bisect_left(self.keys, key)
        return i, i < len(self.keys) and self.keys[i] == key

    def insert(self, key: int, value: int) -> bool:
        i, present = self._lookup(key)
        if present:
            return False
        self.keys.insert(i, key)
        self.values.insert(i, value)
        return True

    def update(self, key: int, value: int) -> bool:
        i, present = self._lookup(key)
        if present:
            self.values[i] = value
            return True
        return False

    def delete(self, key: int) -> bool:
        i, present = self._lookup(key)
        if present:
            del self.keys[i]
            del self.values[i]
            return True
        return False

    def find(self, key: int) -> Optional[int]:
        i, present = self._lookup(key)
        return self.values[i] if present else None


# --------------------------------------------------------------------------
# The batch updater
# --------------------------------------------------------------------------


class BatchUpdater:
    """Applies one batch of operations to a :class:`HarmoniaLayout` and
    produces the post-movement layout.

    One instance per batch; :class:`~repro.core.tree.HarmoniaTree` drives it.
    """

    def __init__(self, layout: HarmoniaLayout, fill: float = 1.0) -> None:
        self.layout = layout
        self.fill = fill
        self.locks = TwoGrainedLocks()
        self.aux: Dict[int, AuxiliaryNode] = {}
        self.underflow: Set[int] = set()
        self.result = BatchResult()
        self._result_guard = threading.Lock()
        self._slots = layout.slots
        self._min_leaf = (layout.fanout - 1 + 1) // 2

    # -------------------------------------------------------------- routing

    def _leaf_of(self, key: int) -> int:
        """Root-to-leaf traversal on the immutable internal levels.

        Internal separators never change during a batch (splits are staged
        on auxiliary nodes), so traversal needs no locks; only the leaf
        access does.
        """
        layout = self.layout
        node = 0
        for _ in range(layout.height - 1):
            row = layout.key_region[node]
            i = int(np.searchsorted(row, key, side="right"))
            node = int(layout.prefix_sum[node]) + i
        return node

    # ----------------------------------------------------------- leaf edits

    def _leaf_key_count(self, leaf: int) -> int:
        row = self.layout.key_region[leaf]
        return int(np.searchsorted(row, KEY_MAX, side="left"))

    def _inplace_update(self, leaf: int, key: int, value: int) -> bool:
        row = self.layout.key_region[leaf]
        pos = int(np.searchsorted(row, key, side="left"))
        if pos < row.size and row[pos] == key:
            self.layout.leaf_values[leaf - self.layout.leaf_start, pos] = value
            return True
        return False

    def _inplace_insert(self, leaf: int, key: int, value: int) -> bool:
        """Insert into a leaf known (under lock) to have a free slot."""
        row = self.layout.key_region[leaf]
        vrow = self.layout.leaf_values[leaf - self.layout.leaf_start]
        pos = int(np.searchsorted(row, key, side="left"))
        if pos < row.size and row[pos] == key:
            return False
        # .copy(): source and destination slices overlap.
        row[pos + 1 :] = row[pos:-1].copy()
        vrow[pos + 1 :] = vrow[pos:-1].copy()
        row[pos] = key
        vrow[pos] = value
        return True

    def _inplace_delete(self, leaf: int, key: int) -> bool:
        row = self.layout.key_region[leaf]
        vrow = self.layout.leaf_values[leaf - self.layout.leaf_start]
        pos = int(np.searchsorted(row, key, side="left"))
        if pos >= row.size or row[pos] != key:
            return False
        row[pos:-1] = row[pos + 1 :].copy()
        vrow[pos:-1] = vrow[pos + 1 :].copy()
        row[-1] = KEY_MAX
        vrow[-1] = NOT_FOUND
        return True

    # ------------------------------------------------------------ op driver

    def _bump(self, field_name: str, by: int = 1) -> None:
        with self._result_guard:
            setattr(self.result, field_name, getattr(self.result, field_name) + by)

    def apply_op(self, op: Operation) -> None:
        """Apply one operation under Algorithm 1.

        The structural decision (does this op split/merge?) can only be made
        once the leaf state is known, which itself requires a lock; the
        protocol therefore optimistically takes the fine path and *upgrades*
        to the coarse path when it discovers the op is structural — the
        same two-phase approach a real implementation needs, expressed with
        the paper's two primitives.
        """
        leaf = self._leaf_of(op.key)

        outcome: Dict[str, Optional[str]] = {"counter": None, "retry_coarse": False}

        def fine_body() -> None:
            if leaf in self.aux:
                # Leaf already split this batch: its state is owned by the
                # auxiliary node, which only the coarse path may touch.
                outcome["retry_coarse"] = True
                return
            if op.kind == UPDATE:
                outcome["counter"] = "updated" if self._inplace_update(
                    leaf, op.key, op.value
                ) else "failed"
            elif op.kind == INSERT:
                if self._leaf_key_count(leaf) >= self._slots:
                    outcome["retry_coarse"] = True  # would split
                    return
                outcome["counter"] = "inserted" if self._inplace_insert(
                    leaf, op.key, op.value
                ) else "failed"
            else:  # DELETE
                if self._leaf_key_count(leaf) <= self._min_leaf:
                    outcome["retry_coarse"] = True  # would merge
                    return
                outcome["counter"] = "deleted" if self._inplace_delete(
                    leaf, op.key
                ) else "failed"

        self.locks.fine_op(leaf, fine_body)
        if outcome["retry_coarse"]:
            self.locks.coarse_op(lambda: self._structural_op(leaf, op, outcome))
        if outcome["counter"]:
            self._bump(outcome["counter"])

    def _structural_op(self, leaf: int, op: Operation, outcome: Dict) -> None:
        """Split/merge path, runs with the coarse lock held and no fine ops
        in flight."""
        aux = self.aux.get(leaf)
        if aux is None:
            aux = AuxiliaryNode.from_row(
                self.layout.key_region[leaf],
                self.layout.leaf_values[leaf - self.layout.leaf_start],
            )
            self.aux[leaf] = aux
            self._bump("split_leaves")
        if op.kind == INSERT:
            outcome["counter"] = "inserted" if aux.insert(op.key, op.value) else "failed"
        elif op.kind == UPDATE:
            outcome["counter"] = "updated" if aux.update(op.key, op.value) else "failed"
        else:
            ok = aux.delete(op.key)
            outcome["counter"] = "deleted" if ok else "failed"
            if ok and len(aux.keys) < self._min_leaf:
                self.underflow.add(leaf)

    # -------------------------------------------------------------- batches

    #: Batches at or below this size run serially even with ``n_threads > 1``
    #: — ThreadPoolExecutor setup costs more than applying the ops, and the
    #: single-op conveniences (``tree.insert`` etc.) always land here.
    POOL_MIN_OPS = 64

    def apply_batch(self, ops: Sequence[Operation], n_threads: int = 4) -> None:
        """Apply all operations with a pool of ``n_threads`` workers."""
        if n_threads <= 1 or len(ops) <= self.POOL_MIN_OPS:
            for op in ops:
                self.apply_op(op)
            return
        with ThreadPoolExecutor(max_workers=n_threads) as pool:
            list(pool.map(self.apply_op, ops, chunksize=64))

    # ------------------------------------------------------------- movement

    def leaf_content(self, leaf: int) -> Tuple[List[int], List[int]]:
        """Logical content of a leaf, honoring its auxiliary node."""
        aux = self.aux.get(leaf)
        if aux is not None:
            return list(aux.keys), list(aux.values)
        row = self.layout.key_region[leaf]
        vrow = self.layout.leaf_values[leaf - self.layout.leaf_start]
        mask = row != KEY_MAX
        return row[mask].tolist(), vrow[mask].tolist()

    def dirty_leaves(self) -> Set[int]:
        """Leaves whose content cannot be kept as-is: split-staged ones and
        those the batch drove below minimum occupancy in place."""
        dirty = set(self.aux)
        dirty.update(self.underflow)
        leaf_start = self.layout.leaf_start
        key_counts = self.layout.leaf_key_counts()
        if self.layout.n_leaves > 1:
            under = np.nonzero(key_counts < self._min_leaf)[0] + leaf_start
            dirty.update(int(u) for u in under)
        # An aux'd leaf that still fits and meets occupancy is clean again
        # only if unsplit — keep it dirty regardless: the aux owns its state.
        return dirty

    def movement(self) -> Optional[HarmoniaLayout]:
        """The post-batch movement (§3.2.2): fold auxiliary nodes back into
        consecutive regions.  Returns the new layout, or ``None`` when every
        key was deleted.
        """
        layout = self.layout
        leaf_start = layout.leaf_start
        n_leaves = layout.n_leaves
        dirty = self.dirty_leaves()

        # Plan the new leaf level as a sequence of directives:
        #   ("keep", old_leaf_local_idx)  — row reused verbatim
        #   ("new", keys, values)         — rebuilt leaf
        plan: List[Tuple] = []
        i = 0
        while i < n_leaves:
            leaf = leaf_start + i
            if leaf not in dirty:
                plan.append(("keep", i))
                i += 1
                continue
            # Maximal dirty run [i, j).
            j = i
            run_keys: List[int] = []
            run_vals: List[int] = []
            while j < n_leaves and (leaf_start + j) in dirty:
                ks, vs = self.leaf_content(leaf_start + j)
                run_keys.extend(ks)
                run_vals.extend(vs)
                j += 1
            # Absorb clean neighbours while the run is too small to chunk
            # legally (mirrors borrow-from-sibling at movement time).
            while 0 < len(run_keys) < self._min_leaf and (
                j < n_leaves or plan
            ):
                if j < n_leaves:
                    ks, vs = self.leaf_content(leaf_start + j)
                    run_keys.extend(ks)
                    run_vals.extend(vs)
                    j += 1
                else:
                    prev = plan.pop()
                    if prev[0] == "keep":
                        ks, vs = self.leaf_content(leaf_start + prev[1])
                    else:
                        ks, vs = prev[1], prev[2]
                    run_keys = ks + run_keys
                    run_vals = vs + run_vals
            target = max(self._min_leaf, min(self._slots, round(self.fill * self._slots)))
            for size in _chunk_sizes(len(run_keys), target, self._min_leaf, self._slots):
                plan.append(("new", run_keys[:size], run_vals[:size]))
                run_keys = run_keys[size:]
                run_vals = run_vals[size:]
            i = j

        self.result.moved_clean = sum(1 for p in plan if p[0] == "keep")
        self.result.rebuilt_dirty = sum(1 for p in plan if p[0] == "new")
        self.result.underflow_leaves = len(self.underflow)

        if not plan:
            return None
        return _build_layout_from_leaf_plan(layout, plan, self.fill)


def _build_layout_from_leaf_plan(
    old: HarmoniaLayout, plan: List[Tuple], fill: float
) -> HarmoniaLayout:
    """Materialize a new :class:`HarmoniaLayout` from a leaf plan.

    Clean rows are gathered with one vectorized fancy-index copy; internal
    levels (a ~1/fanout fraction of all nodes) are rebuilt bottom-up from
    the leaf minima by :func:`_assemble_layout`.
    """
    slots = old.slots
    new_n_leaves = len(plan)

    leaf_keys = np.full((new_n_leaves, slots), KEY_MAX, dtype=KEY_DTYPE)
    leaf_vals = np.full((new_n_leaves, slots), NOT_FOUND, dtype=VALUE_DTYPE)

    keep_dst = [di for di, p in enumerate(plan) if p[0] == "keep"]
    keep_src = [p[1] for p in plan if p[0] == "keep"]
    if keep_dst:
        src = np.asarray(keep_src, dtype=np.int64)
        dst = np.asarray(keep_dst, dtype=np.int64)
        leaf_keys[dst] = old.key_region[old.leaf_start + src]
        leaf_vals[dst] = old.leaf_values[src]
    for di, p in enumerate(plan):
        if p[0] == "new":
            ks, vs = p[1], p[2]
            leaf_keys[di, : len(ks)] = ks
            leaf_vals[di, : len(vs)] = vs

    n_keys = int(np.sum(leaf_keys != KEY_MAX))
    return _assemble_layout(old.fanout, leaf_keys, leaf_vals, n_keys, fill)


def _assemble_layout(
    fanout: int,
    leaf_keys: np.ndarray,
    leaf_vals: np.ndarray,
    n_keys: int,
    fill: float,
) -> HarmoniaLayout:
    """Build a full layout over finished leaf-level arrays.

    Internal levels are derived bottom-up from subtree minima, one
    vectorized scatter per level: child ``c`` of parent ``p`` contributes
    its minimum as separator ``within(c) - 1`` (the first child supplies
    the parent's own minimum instead).  Shared by the scalar and the
    vectorized movement passes, so their outputs are byte-identical by
    construction.
    """
    slots = fanout - 1
    min_children = (fanout + 1) // 2
    new_n_leaves = leaf_keys.shape[0]

    levels_keys: List[np.ndarray] = [leaf_keys]
    levels_counts: List[np.ndarray] = [
        np.zeros(new_n_leaves, dtype=INDEX_DTYPE)
    ]
    mins = leaf_keys[:, 0].copy()
    target = max(min_children, min(fanout, round(fill * fanout)))
    while levels_keys[-1].shape[0] > 1:
        child_count = levels_keys[-1].shape[0]
        sizes = np.asarray(
            _chunk_sizes(child_count, target, min_children, fanout),
            dtype=INDEX_DTYPE,
        )
        n_parents = sizes.size
        starts = np.zeros(n_parents + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        pk = np.full((n_parents, slots), KEY_MAX, dtype=KEY_DTYPE)
        parent_of = np.repeat(np.arange(n_parents, dtype=np.int64), sizes)
        within = np.arange(child_count, dtype=np.int64) - starts[parent_of]
        m = within > 0
        pk[parent_of[m], within[m] - 1] = mins[m]
        levels_keys.append(pk)
        levels_counts.append(sizes)
        mins = mins[starts[:-1]]

    levels_keys.reverse()
    levels_counts.reverse()
    height = len(levels_keys)
    key_region = np.concatenate(levels_keys, axis=0)
    counts = np.concatenate(levels_counts)
    n_nodes = key_region.shape[0]
    prefix = np.empty(n_nodes + 1, dtype=INDEX_DTYPE)
    prefix[0] = 1
    np.cumsum(counts, out=prefix[1:])
    prefix[1:] += 1
    level_starts = np.zeros(height + 1, dtype=INDEX_DTYPE)
    np.cumsum([lk.shape[0] for lk in levels_keys], out=level_starts[1:])

    return HarmoniaLayout(
        fanout=fanout,
        height=height,
        key_region=key_region,
        prefix_sum=prefix,
        leaf_values=leaf_vals,
        level_starts=level_starts,
        n_keys=n_keys,
    )


__all__ = [
    "INSERT",
    "UPDATE",
    "DELETE",
    "Operation",
    "BatchResult",
    "TwoGrainedLocks",
    "AuxiliaryNode",
    "BatchUpdater",
]
