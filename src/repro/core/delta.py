"""Mergeable delta index: the write-side absorber of the snapshot-epoch
read path (docs/epochs.md).

A flush in concurrent mode does *not* rebuild the tree.  It resolves the
batch against the currently *visible* state (base snapshot + published
delta), appends the per-key outcomes as one immutable sorted
:class:`DeltaRun` of upserts and tombstones, and returns — the run is
visible to readers the moment it is published, and the expensive
rebuild is deferred to a background drain that folds accumulated runs
into snapshot N+1 while reads continue against N.

Readers pin a :class:`DeltaView` — an immutable tuple of runs — together
with the base layout and overlay it on every read path with one
``np.searchsorted`` pass per run (oldest → newest, so later runs win):

* point lookups: hit positions overwrite the base values; tombstone
  hits become :data:`~repro.constants.NOT_FOUND` (last-wins semantics);
* range scans: the delta's slice of ``[lo, hi]`` is merged over the base
  window with the same stable last-occurrence-wins pass
  :func:`repro.core.merge.merged_items` uses, then tombstones masked;
* full iteration / dumps: one last-wins merge of the base items with
  the collapsed delta.

Cost model: with ``k`` runs of total size ``d`` the overlay adds
``O(k · n · log d)`` to an ``n``-query batch — bounded because
:class:`DeltaIndex` collapses runs (one ``policy="last_wins"``
:func:`~repro.core.merge.concat_sorted_runs`) whenever more than
``max_runs`` pile up, so ``k`` never exceeds a small constant and the
overlay is skipped entirely when the delta is empty.

Equivalence contract (hypothesis-pinned in
``tests/test_epoch_concurrent.py``): reads through snapshot + delta are
byte-identical to reads against a tree that applied every batch
synchronously — including the per-op success/failure accounting, which
:func:`resolve_batch` reproduces exactly (an op's outcome depends only
on its key's visible history, so resolution needs existence bits, not
the tree).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.constants import NOT_FOUND, VALUE_DTYPE
from repro.core.merge import concat_sorted_runs
from repro.core.update import BatchResult, Operation
from repro.core.update_plan import K_DELETE, K_INSERT, K_UPDATE, _KIND_CODE
from repro.errors import ConfigError

#: Default cap on published runs before a collapse folds them into one.
DEFAULT_MAX_RUNS = 8


@dataclass(frozen=True)
class DeltaRun:
    """One immutable published run: sorted unique keys with final values
    and tombstone flags, plus the visible-key-count change it caused."""

    keys: np.ndarray  # (n,) int64, strictly increasing
    values: np.ndarray  # (n,) VALUE_DTYPE
    tombstones: np.ndarray  # (n,) bool
    net: int  # visible keys gained (+) / lost (-) when published

    @property
    def n(self) -> int:
        return int(self.keys.size)


def _last_wins_entries(
    runs: Sequence[DeltaRun],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse runs (oldest → newest) into one sorted entry set.

    Runs the keys through ``concat_sorted_runs(policy="last_wins")``
    with *global indices* as payload, then gathers values and tombstones
    through the surviving indices — one merge covers both arrays.
    """
    if not runs:
        empty_k = np.empty(0, dtype=np.int64)
        return empty_k, np.empty(0, dtype=VALUE_DTYPE), np.empty(0, dtype=bool)
    if len(runs) == 1:
        r = runs[0]
        return r.keys, r.values, r.tombstones
    offsets = np.cumsum([0] + [r.n for r in runs])
    indexed = [
        (r.keys, np.arange(offsets[i], offsets[i + 1], dtype=np.int64))
        for i, r in enumerate(runs)
    ]
    keys, idx = concat_sorted_runs(indexed, policy="last_wins")
    all_values = np.concatenate([r.values for r in runs])
    all_tombs = np.concatenate([r.tombstones for r in runs])
    return keys, all_values[idx], all_tombs[idx]


class DeltaView:
    """Immutable reader-side view: a pinned tuple of runs.

    Built once per snapshot pin (cheap: tuple + net int); every overlay
    helper is a pure function of the pinned runs, so a view stays
    consistent however the live :class:`DeltaIndex` moves on.
    """

    __slots__ = ("runs", "net", "_collapsed", "_filter")

    def __init__(self, runs: Tuple[DeltaRun, ...], net: int) -> None:
        self.runs = runs
        self.net = int(net)
        self._collapsed: Optional[Tuple[np.ndarray, ...]] = None
        self._filter: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        """Total entries across runs (the ``delta.size`` gauge)."""
        return sum(r.n for r in self.runs)

    def __bool__(self) -> bool:
        return bool(self.runs)

    # ------------------------------------------------------------- lookups

    def overlay_values(self, keys: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Overlay the delta onto base lookup results, in place.

        ``out[i]`` holds the base value for ``keys[i]`` (``NOT_FOUND``
        when absent); after the overlay it holds the *visible* value —
        the newest entry per key wins, and a tombstone hit masks to
        ``NOT_FOUND``.  One ``searchsorted`` against the collapsed
        entries (cached per view, so the last-wins collapse is paid once
        however many query batches pin this snapshot); a span + counter
        is recorded when obs is on.
        """
        rec = obs.active
        if rec.enabled:
            t0 = time.perf_counter()
        dk, dv, dt = self.entries()
        if dk.size:
            cand = self._candidates(keys)
            if cand.size:
                qc = keys[cand]
                pos = np.searchsorted(dk, qc, side="left")
                np.minimum(pos, dk.size - 1, out=pos)
                hit = dk[pos] == qc
                if hit.any():
                    hp = pos[hit]
                    out[cand[hit]] = np.where(
                        dt[hp], NOT_FOUND, dv[hp]
                    )
        if rec.enabled:
            t1 = time.perf_counter()
            rec.counter("delta.overlay_keys", int(keys.size))
            rec.span_at("delta.overlay", t0, t1, cat="delta",
                        n=int(keys.size), runs=len(self.runs))
        return out

    def overlay_exists(self, keys: np.ndarray, exists: np.ndarray) -> np.ndarray:
        """Overlay visible-existence bits (same single probe of the
        collapsed entries as :meth:`overlay_values`, used by batch
        resolution)."""
        dk, _, dt = self.entries()
        if dk.size:
            cand = self._candidates(keys)
            if cand.size:
                qc = keys[cand]
                pos = np.searchsorted(dk, qc, side="left")
                np.minimum(pos, dk.size - 1, out=pos)
                hit = dk[pos] == qc
                if hit.any():
                    exists[cand[hit]] = ~dt[pos[hit]]
        return exists

    def lookup(self, key: int) -> Optional[Tuple[bool, int]]:
        """Scalar probe: ``(tombstoned, value)`` of the *newest* entry for
        ``key``, or ``None`` when no run holds it."""
        for run in reversed(self.runs):
            pos = int(np.searchsorted(run.keys, key, side="left"))
            if pos < run.n and int(run.keys[pos]) == key:
                return bool(run.tombstones[pos]), int(run.values[pos])
        return None

    # -------------------------------------------------------------- merges

    def _candidates(self, keys: np.ndarray) -> np.ndarray:
        """Indices of ``keys`` that *may* be in the delta.

        One-hash Bloom filter over the low bits of the collapsed keys
        (built lazily, cached per view).  Most queries miss the delta —
        typically a few percent of the base — so pre-filtering shrinks
        the ``searchsorted`` probe set by ~an order of magnitude, which
        is what keeps the read-side overlay overhead in the single-digit
        percents.  False positives are resolved by the probe; false
        negatives are impossible (same low-bits hash on both sides).
        """
        filt = self._filter
        if filt is None:
            dk = self.entries()[0]
            # ≥ 8 slots per entry → ~12% false-positive rate, capped at
            # 1 MiB of bool slots for pathological deltas.
            bits = max(10, min(20, int(8 * dk.size - 1).bit_length()))
            filt = np.zeros(1 << bits, dtype=bool)
            filt[dk & (filt.size - 1)] = True
            self._filter = filt
        return np.flatnonzero(filt[keys & (filt.size - 1)])

    def entries(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Collapsed ``(keys, values, tombstones)`` — cached per view."""
        if self._collapsed is None:
            self._collapsed = _last_wins_entries(self.runs)
        return self._collapsed

    def merge_items(
        self, base_keys: np.ndarray, base_values: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Visible sorted contents: base items overlaid with the delta
        (last wins), tombstones dropped.

        Both sides are sorted and per-side unique, so this is a true
        two-way merge: one ``searchsorted`` of the (small) delta into the
        base plus two scatters — O(n + d log n), no argsort of the full
        contents.  That keeps the bulk drain rebuild linear in the base,
        which is what the drain's cost model assumes.
        """
        dk, dv, dt = self.entries()
        if dk.size == 0:
            return base_keys, base_values
        live = ~dt
        if base_keys.size == 0:
            return dk[live], dv[live]
        idx = np.searchsorted(base_keys, dk, side="left")
        clip = np.minimum(idx, base_keys.size - 1)
        dup = base_keys[clip] == dk
        # Base entries the delta overrides (rewrites *and* tombstones)
        # drop out; surviving base and live delta keys are disjoint.
        keep_base = np.ones(base_keys.size, dtype=bool)
        keep_base[clip[dup]] = False
        sbk, sbv = base_keys[keep_base], base_values[keep_base]
        sdk, sdv = dk[live], dv[live]
        # merged position of delta entry i = (#base below it) + i.
        pd = np.searchsorted(sbk, sdk, side="left") + np.arange(sdk.size)
        total = sbk.size + sdk.size
        out_k = np.empty(total, dtype=base_keys.dtype)
        out_v = np.empty(total, dtype=base_values.dtype)
        at_base = np.ones(total, dtype=bool)
        at_base[pd] = False
        out_k[at_base] = sbk
        out_v[at_base] = sbv
        out_k[pd] = sdk
        out_v[pd] = sdv
        return out_k, out_v

    def merge_range(
        self,
        lo: int,
        hi: int,
        base_keys: np.ndarray,
        base_values: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge the delta's ``[lo, hi]`` slice over one base range window."""
        dk, dv, dt = self.entries()
        a = int(np.searchsorted(dk, lo, side="left"))
        b = int(np.searchsorted(dk, hi, side="right"))
        if a == b:
            return base_keys, base_values
        view = DeltaView.__new__(DeltaView)
        view.runs = ()
        view.net = 0
        view._collapsed = (dk[a:b], dv[a:b], dt[a:b])
        view._filter = None
        return view.merge_items(base_keys, base_values)


class DeltaIndex:
    """The writer-side mutable collection of published runs.

    NOT thread-safe on its own — :class:`~repro.core.epoch.EpochManager`
    serializes mutation under its write lock and publishes run-list
    changes under its publish lock.  Runs themselves are immutable, so a
    :meth:`view` handed to a reader never changes underneath it.
    """

    def __init__(self, max_runs: int = DEFAULT_MAX_RUNS) -> None:
        if max_runs < 1:
            raise ConfigError(f"max_runs must be >= 1, got {max_runs}")
        self.max_runs = int(max_runs)
        self._runs: List[DeltaRun] = []
        self._net = 0
        self._view: Optional[DeltaView] = None
        self.collapses = 0

    # ------------------------------------------------------------- queries

    @property
    def runs(self) -> Tuple[DeltaRun, ...]:
        return tuple(self._runs)

    @property
    def n_runs(self) -> int:
        return len(self._runs)

    @property
    def size(self) -> int:
        return sum(r.n for r in self._runs)

    @property
    def net(self) -> int:
        return self._net

    def view(self) -> Optional[DeltaView]:
        """The current immutable view (``None`` when empty); cached until
        the run list changes."""
        if not self._runs:
            return None
        if self._view is None:
            self._view = DeltaView(tuple(self._runs), self._net)
        return self._view

    # ------------------------------------------------------------ mutation

    def append_run(self, run: DeltaRun, collapse_floor: int = 0) -> None:
        """Publish one resolved run; collapses the tail past
        ``collapse_floor`` (runs a drain has already pinned must keep
        their identity, so only the undrained suffix is foldable) when
        the run count would exceed ``max_runs``."""
        if run.n:
            self._runs.append(run)
            self._net += run.net
            self._view = None
        suffix = len(self._runs) - collapse_floor
        if suffix > self.max_runs:
            tail = self._runs[collapse_floor:]
            keys, values, tombs = _last_wins_entries(tail)
            folded = DeltaRun(
                keys=keys, values=values, tombstones=tombs,
                net=sum(r.net for r in tail),
            )
            self._runs[collapse_floor:] = [folded]
            self._view = None
            self.collapses += 1
            rec = obs.active
            if rec.enabled:
                rec.counter("delta.collapses")

    def drop_prefix(self, count: int, drained_net: int) -> None:
        """Remove the first ``count`` runs after a drain folded them into
        the new base snapshot; ``drained_net`` is the key-count change the
        base absorbed (kept consistent so ``len`` never jumps)."""
        del self._runs[:count]
        self._net -= int(drained_net)
        self._view = None


# --------------------------------------------------------------------------
# Batch resolution
# --------------------------------------------------------------------------

_CODE_OF_KIND = _KIND_CODE


def resolve_batch(
    ops: Sequence[Operation],
    exists_fn: Callable[[np.ndarray], np.ndarray],
) -> Tuple[DeltaRun, BatchResult]:
    """Resolve one update batch against the visible state into a delta run.

    ``exists_fn(unique_keys)`` must return the visible-existence bits
    (base snapshot overlaid with the already-published delta).  The
    per-op semantics are the scalar reference's, replayed per key in
    arrival order: insert fails when the key is visible, update/delete
    fail when it is not — so the returned :class:`BatchResult` counts
    match a synchronous flush exactly.  Keys touched by a single op are
    resolved fully vectorized; multi-op keys (rare in real batches) fall
    back to a per-key Python replay.

    Structural counters (``split_leaves`` …) stay zero: structural work
    is deferred to the drain and accounted there.
    """
    result = BatchResult()
    n = len(ops)
    empty = DeltaRun(
        keys=np.empty(0, dtype=np.int64),
        values=np.empty(0, dtype=VALUE_DTYPE),
        tombstones=np.empty(0, dtype=bool),
        net=0,
    )
    if n == 0:
        return empty, result

    with result.timer.phase("plan"):
        code = _CODE_OF_KIND
        kinds = np.fromiter(
            (code[op.kind] for op in ops), dtype=np.int8, count=n
        )
        keys = np.fromiter((op.key for op in ops), dtype=np.int64, count=n)
        values = np.fromiter(
            (op.value for op in ops), dtype=VALUE_DTYPE, count=n
        )
        order = np.argsort(keys, kind="stable")
        sk = keys[order]
        skinds = kinds[order]
        svals = values[order]
        starts = np.flatnonzero(
            np.concatenate(([True], sk[1:] != sk[:-1]))
        )
        ukeys = sk[starts]
        counts = np.diff(np.concatenate((starts, [n])))
        exists0 = np.asarray(exists_fn(ukeys), dtype=bool)

    with result.timer.phase("apply"):
        final_exists = exists0.copy()
        # Zero-filled, not empty: tombstone entries never read their value
        # but the arrays land in published runs — keep them deterministic.
        final_vals = np.zeros(ukeys.size, dtype=VALUE_DTYPE)
        changed = np.zeros(ukeys.size, dtype=bool)

        single = counts == 1
        if single.any():
            si = starts[single]
            sk1 = skinds[si]
            sv1 = svals[si]
            se0 = exists0[single]
            ins = sk1 == K_INSERT
            upd = sk1 == K_UPDATE
            dele = sk1 == K_DELETE
            eff_ins = ins & ~se0
            eff_upd = upd & se0
            eff_del = dele & se0
            result.inserted += int(np.count_nonzero(eff_ins))
            result.updated += int(np.count_nonzero(eff_upd))
            result.deleted += int(np.count_nonzero(eff_del))
            result.failed += int(
                np.count_nonzero(ins & se0)
                + np.count_nonzero(upd & ~se0)
                + np.count_nonzero(dele & ~se0)
            )
            s_changed = eff_ins | eff_upd | eff_del
            s_final = np.where(eff_ins, True, np.where(eff_del, False, se0))
            changed[single] = s_changed
            final_exists[single] = s_final
            idx_single = np.flatnonzero(single)
            wrote = eff_ins | eff_upd
            final_vals[idx_single[wrote]] = sv1[wrote]

        multi_groups = np.flatnonzero(~single)
        bounds = np.concatenate((starts, [n]))
        for g in multi_groups.tolist():
            s, e = int(bounds[g]), int(bounds[g + 1])
            exists = bool(exists0[g])
            val = 0
            group_changed = False
            for i in range(s, e):
                k = int(skinds[i])
                if k == K_INSERT:
                    if exists:
                        result.failed += 1
                    else:
                        exists = True
                        val = int(svals[i])
                        result.inserted += 1
                        group_changed = True
                elif k == K_UPDATE:
                    if exists:
                        val = int(svals[i])
                        result.updated += 1
                        group_changed = True
                    else:
                        result.failed += 1
                else:
                    if exists:
                        exists = False
                        result.deleted += 1
                        group_changed = True
                    else:
                        result.failed += 1
            changed[g] = group_changed
            final_exists[g] = exists
            final_vals[g] = val

        # A key that ends the batch absent *and* started it absent
        # (insert-then-delete within one batch) is a pure no-op on the
        # visible state — publishing a tombstone for it would be harmless
        # but wasteful, so mask it out.
        changed &= final_exists | exists0
        if not changed.any():
            return empty, result
        out_keys = ukeys[changed]
        out_vals = final_vals[changed]
        out_tombs = ~final_exists[changed]
        net = int(
            np.count_nonzero(final_exists[changed] & ~exists0[changed])
            - np.count_nonzero(~final_exists[changed] & exists0[changed])
        )
        run = DeltaRun(
            keys=out_keys, values=out_vals, tombstones=out_tombs, net=net
        )
    return run, result


__all__ = [
    "DEFAULT_MAX_RUNS",
    "DeltaRun",
    "DeltaView",
    "DeltaIndex",
    "resolve_batch",
]
