"""Persistence: save/load Harmonia layouts and trees.

The array layout makes persistence trivial and fast — exactly the property
a real deployment uses to ship the GPU image around (HB+Tree similarly
reorganizes into a continuous buffer before upload).  The format is a
single ``.npz`` with a format-version guard so future layout changes stay
loadable or fail loudly.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.core.tree import HarmoniaTree
from repro.errors import ConfigError

#: Bump when the on-disk schema changes.
FORMAT_VERSION = 1

_REQUIRED = (
    "format_version",
    "fanout",
    "height",
    "n_keys",
    "key_region",
    "prefix_sum",
    "leaf_values",
    "level_starts",
)

import os

PathLike = Union[str, "os.PathLike[str]"]


def save_layout(layout: HarmoniaLayout, path: PathLike) -> None:
    """Serialize a layout to ``path`` (``.npz``, uncompressed — the arrays
    are incompressible key material and load speed matters)."""
    np.savez(
        path,
        format_version=np.int64(FORMAT_VERSION),
        fanout=np.int64(layout.fanout),
        height=np.int64(layout.height),
        n_keys=np.int64(layout.n_keys),
        key_region=layout.key_region,
        prefix_sum=layout.prefix_sum,
        leaf_values=layout.leaf_values,
        level_starts=layout.level_starts,
    )


def load_layout(path: PathLike, validate: bool = True) -> HarmoniaLayout:
    """Load a layout saved by :func:`save_layout`.

    ``validate`` (default on) runs the full §3.1 invariant check after
    loading — corrupt or truncated files fail here rather than during a
    later traversal.
    """
    with np.load(path) as data:
        missing = [k for k in _REQUIRED if k not in data]
        if missing:
            raise ConfigError(f"{path}: not a Harmonia layout (missing {missing})")
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ConfigError(
                f"{path}: format version {version} unsupported "
                f"(this build reads {FORMAT_VERSION})"
            )
        layout = HarmoniaLayout(
            fanout=int(data["fanout"]),
            height=int(data["height"]),
            key_region=data["key_region"],
            prefix_sum=data["prefix_sum"],
            leaf_values=data["leaf_values"],
            level_starts=data["level_starts"],
            n_keys=int(data["n_keys"]),
        )
    if validate:
        layout.check_invariants()
    return layout


def save_tree(tree: HarmoniaTree, path: PathLike) -> None:
    """Persist a :class:`HarmoniaTree` (its current layout snapshot)."""
    if len(tree) == 0:
        raise ConfigError("refusing to save an empty tree")
    save_layout(tree.layout, path)


def load_tree(
    path: PathLike, fill: float = 1.0, validate: bool = True
) -> HarmoniaTree:
    """Load a tree persisted with :func:`save_tree`.

    ``fill`` sets the occupancy target future movement passes re-chunk to
    (it is a rebuild policy, not part of the stored structure).
    """
    return HarmoniaTree(load_layout(path, validate=validate), fill=fill)


__all__ = ["FORMAT_VERSION", "save_layout", "load_layout", "save_tree", "load_tree"]
