"""Query execution over a :class:`~repro.core.layout.HarmoniaLayout`.

Three layers, slowest to fastest:

* :func:`search_scalar` — one query, pure-Python, used as the oracle in
  tests and for interactive use;
* :func:`traverse_batch` — vectorized level-synchronous traversal that also
  records the *trace* (node index and child slot per level) that both the
  GPU simulator (:mod:`repro.gpusim`) and the gap analyses need;
* :func:`search_batch` / :func:`range_search` — the user-facing batch
  entry points built on it.

The traversal is exactly the paper's §3.2.1: at each level, find the child
whose range contains the target (``searchsorted`` side='right' — separators
route equal keys right), then jump via Equation 1.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import KEY_MAX, NOT_FOUND, VALUE_DTYPE
from repro.core.layout import HarmoniaLayout
from repro.utils.validation import ensure_key_array, ensure_scalar_key


@dataclass(frozen=True)
class TraversalTrace:
    """Per-query, per-level traversal record.

    ``node_idx[l, q]`` — BFS index of the node query ``q`` visits at level
    ``l`` (level 0 is the root; level ``height-1`` the leaf).
    ``child_slot[l, q]`` — 0-based slot of the child taken at level ``l``
    (for the leaf level: the slot of the matched key, or the insertion slot
    when absent).
    ``comparisons[l, q]`` — keys a *sequential* scan would inspect at that
    level (``child_slot + 1`` capped at the node's key count) — the quantity
    Figure 3 plots and NTG's step model builds on.
    """

    node_idx: np.ndarray  # (height, n_queries) int64
    child_slot: np.ndarray  # (height, n_queries) int64
    comparisons: np.ndarray  # (height, n_queries) int64
    found: np.ndarray  # (n_queries,) bool
    values: np.ndarray  # (n_queries,) int64, NOT_FOUND where absent

    @property
    def height(self) -> int:
        return self.node_idx.shape[0]

    @property
    def n_queries(self) -> int:
        return self.node_idx.shape[1]


def _rowwise_right(rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-row count of entries ``<= target`` (== searchsorted side='right').

    Exact because padding is ``KEY_MAX`` and targets are legal keys, hence
    strictly below every pad.
    """
    return np.sum(rows <= targets[:, None], axis=1).astype(np.int64)


def _rowwise_left(rows: np.ndarray, targets: np.ndarray) -> np.ndarray:
    """Per-row count of entries ``< target`` (== searchsorted side='left')."""
    return np.sum(rows < targets[:, None], axis=1).astype(np.int64)


def search_scalar(layout: HarmoniaLayout, key: int) -> Optional[int]:
    """Single-query lookup; returns the value or ``None``.

    Uses ``bisect`` over cached Python-list row views instead of
    ``np.searchsorted`` — on a ``fanout - 1``-slot row the NumPy call is
    pure dispatch overhead (~µs) while six list probes cost ~100 ns.
    Identical semantics: ``KEY_MAX`` pads sort above every legal key, so
    ``bisect_right`` over the padded row equals side='right' search.
    """
    key = ensure_scalar_key(key)
    node = 0
    if layout.height > 1:
        prefix = layout.prefix_sum_list()
        for _ in range(layout.height - 1):
            row = layout.internal_row_list(node)
            node = prefix[node] + bisect_right(row, key)  # Equation 1
    # Leaf rows are not cached (there are fanout x more of them); bisect
    # directly on the NumPy row still avoids the searchsorted dispatch.
    # Leaves live in the split-off leaf_keys region past the
    # key_count_prefix_sum boundary.
    li = node - layout.leaf_start
    row = layout.leaf_keys[li]
    pos = bisect_left(row, key)
    if pos < row.size and row[pos] == key:
        return int(layout.leaf_values[li, pos])
    return None


def traverse_batch(
    layout: HarmoniaLayout, queries: Sequence[int]
) -> TraversalTrace:
    """Vectorized root-to-leaf traversal of every query, with trace capture.

    Memory: O(height · n_queries) for the trace arrays.  When only values
    are needed, :func:`search_batch` avoids keeping the full trace.
    """
    q = ensure_key_array(np.asarray(queries), "queries")
    nq = q.size
    h = layout.height
    node_idx = np.empty((h, nq), dtype=np.int64)
    child_slot = np.empty((h, nq), dtype=np.int64)
    comparisons = np.empty((h, nq), dtype=np.int64)

    node = np.zeros(nq, dtype=np.int64)
    for lvl in range(h - 1):
        rows = layout.key_region[node]
        slot = _rowwise_right(rows, q)
        node_idx[lvl] = node
        child_slot[lvl] = slot
        nkeys = np.sum(rows != KEY_MAX, axis=1)
        comparisons[lvl] = np.minimum(slot + 1, nkeys)
        node = layout.prefix_sum[node] + slot  # Equation 1, vectorized

    li = node - layout.leaf_start
    rows = layout.leaf_keys[li]
    pos = _rowwise_left(rows, q)
    node_idx[h - 1] = node
    child_slot[h - 1] = pos
    nkeys = np.sum(rows != KEY_MAX, axis=1)
    comparisons[h - 1] = np.minimum(pos + 1, nkeys)

    pos_c = np.minimum(pos, layout.slots - 1)
    found = rows[np.arange(nq), pos_c] == q
    values = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
    values[found] = layout.leaf_values[li[found], pos_c[found]]
    return TraversalTrace(node_idx, child_slot, comparisons, found, values)


def search_batch(layout: HarmoniaLayout, queries: Sequence[int]) -> np.ndarray:
    """Batch point lookup.  Returns values aligned with ``queries``;
    absent keys yield :data:`~repro.constants.NOT_FOUND`."""
    q = ensure_key_array(np.asarray(queries), "queries")
    nq = q.size
    node = np.zeros(nq, dtype=np.int64)
    for _ in range(layout.height - 1):
        rows = layout.key_region[node]
        slot = _rowwise_right(rows, q)
        node = layout.prefix_sum[node] + slot
    li = node - layout.leaf_start
    rows = layout.leaf_keys[li]
    pos = _rowwise_left(rows, q)
    pos_c = np.minimum(pos, layout.slots - 1)
    found = rows[np.arange(nq), pos_c] == q
    values = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
    values[found] = layout.leaf_values[li[found], pos_c[found]]
    return values


def range_search(
    layout: HarmoniaLayout, lo: int, hi: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All pairs with ``lo <= key <= hi``, exploiting the contiguous leaf
    block (§3.2.1 — "since the key region is a consecutive array, range
    queries can achieve high performance").

    Thin wrapper over :func:`range_search_batch` so single- and
    multi-range scans share one vectorized code path (batched leaf
    location + contiguous block slicing).
    """
    lo = ensure_scalar_key(lo)
    hi = ensure_scalar_key(hi)
    return range_search_batch(
        layout,
        np.asarray([lo], dtype=np.int64),
        np.asarray([hi], dtype=np.int64),
    )[0]


def locate_leaves_batch(
    layout: HarmoniaLayout, targets: Sequence[int]
) -> np.ndarray:
    """Vectorized leaf location: the (0-based) leaf-block index each target
    key routes to — the traversal front half of a point lookup, shared by
    every query in one level-synchronous pass."""
    t = ensure_key_array(np.asarray(targets), "targets")
    node = np.zeros(t.size, dtype=np.int64)
    for _ in range(layout.height - 1):
        rows = layout.key_region[node]
        node = layout.prefix_sum[node] + _rowwise_right(rows, t)
    return node - layout.leaf_start


def locate_leaves_bounds(
    layout: HarmoniaLayout, targets: Sequence[int]
) -> np.ndarray:
    """Leaf location via the cached per-leaf routing bounds: one binary
    search per key instead of a level-synchronous traversal.

    Identical to :func:`locate_leaves_batch` for any layout (property-
    pinned): :meth:`~repro.core.layout.HarmoniaLayout.leaf_bounds` folds
    the internal separators into the leaves' lower routing bounds, and
    both routes resolve equal keys rightward.  O(n · log n_leaves) with a
    tiny constant — the routing fast path of the gapped update planner,
    where the bounds stay valid across in-place absorption because the
    internal region is untouched between compaction epochs.
    """
    t = ensure_key_array(np.asarray(targets), "targets")
    bounds = layout.leaf_bounds()
    return np.searchsorted(bounds, t, side="right") - 1


def contains_batch(
    layout: HarmoniaLayout, keys: Sequence[int]
) -> np.ndarray:
    """Vectorized membership test: ``out[i]`` is whether ``keys[i]`` is
    stored in the layout.

    Distinct from ``search_batch(...) != NOT_FOUND`` because stored
    *values* are unconstrained int64 — a value equal to the ``NOT_FOUND``
    sentinel must still read as present.  The concurrent epoch path
    resolves batches against existence bits (an op's success depends only
    on whether its key is visible), so this is its base-layer probe; one
    routed row probe per key via the cached leaf bounds.
    """
    t = ensure_key_array(np.asarray(keys), "keys")
    if t.size == 0:
        return np.empty(0, dtype=bool)
    leaves = locate_leaves_bounds(layout, t)
    rows = layout.leaf_keys[leaves]
    pos = _rowwise_left(rows, t)
    pos_c = np.minimum(pos, layout.slots - 1)
    return rows[np.arange(t.size), pos_c] == t


def range_search_batch(
    layout: HarmoniaLayout, los: Sequence[int], his: Sequence[int]
) -> List[Tuple[np.ndarray, np.ndarray]]:
    """Batch of range queries (list of per-query (keys, values) pairs).

    All ``lo`` and ``hi`` leaves are located with *one* batched pass over
    the cached routing bounds (:func:`locate_leaves_bounds`); each window
    is then a contiguous block slice of the leaf region with ``KEY_MAX``
    pads masked out (the flattened block cannot be searchsorted directly:
    pads inside interior rows break global ordering).  The pad mask also
    honors gapped leaves: slack slots and fully emptied leaves inside the
    window drop out with the sentinels.  Only the per-query window
    extraction — variable-size output — remains a loop.  This is the
    single range-scan code path: the scalar :func:`range_search` and the
    sharded global scan both route through it.
    """
    lo_arr = ensure_key_array(np.asarray(los), "los")
    hi_arr = ensure_key_array(np.asarray(his), "his")
    if lo_arr.shape != hi_arr.shape:
        raise ValueError("los and his must align")
    n = lo_arr.size
    if n == 0:
        return []
    leaves = locate_leaves_bounds(layout, np.concatenate([lo_arr, hi_arr]))
    start_leaf, end_leaf = leaves[:n], leaves[n:]
    empty = (
        np.empty(0, dtype=layout.key_region.dtype),
        np.empty(0, dtype=VALUE_DTYPE),
    )
    out: List[Tuple[np.ndarray, np.ndarray]] = []
    for i in range(n):
        lo, hi = int(lo_arr[i]), int(hi_arr[i])
        if lo > hi:
            out.append(empty)
            continue
        a, b = int(start_leaf[i]), int(end_leaf[i]) + 1
        window_k = layout.leaf_keys[a:b].ravel()
        window_v = layout.leaf_values[a:b].ravel()
        mask = (window_k >= lo) & (window_k <= hi)
        out.append((window_k[mask], window_v[mask]))
    return out


__all__ = [
    "TraversalTrace",
    "search_scalar",
    "traverse_batch",
    "search_batch",
    "contains_batch",
    "range_search",
    "range_search_batch",
    "locate_leaves_batch",
    "locate_leaves_bounds",
]
