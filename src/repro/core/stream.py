"""Double-buffered streaming query executor — §4.1.3's sort/traverse overlap.

PSA (§4.1) buys coalesced traversals by spending CPU time sorting the top
``N`` bits of each query batch, and the paper is explicit about where that
cost goes: "the sorting of the next batch of queries can be overlapped with
the current query batch processing" (§4.1.3) — the sort runs on the host
while the device traverses the previous batch, so in steady state only the
*longer* of the two stages is on the critical path.  The repo has modeled
that overlap analytically since the start (:mod:`repro.gpusim.pipeline`'s
``double_buffer`` mode); this module *executes* it on the host path.

:class:`StreamExecutor` splits incoming query traffic into fixed-size
batches and runs a two-stage pipeline over them:

* **sort stage** — background worker(s) run
  :func:`~repro.sort.radix.partial_radix_argsort` on batch ``i+1`` (and
  further, up to the lookahead bound) and gather the issue-order queries
  into that batch's slot buffer;
* **traverse stage** — the main thread runs the frontier-compacted
  :class:`~repro.core.engine.BatchQueryEngine` on batch ``i``'s issued
  queries and delivers results in arrival order with one direct scatter
  through the sort permutation (``out[order] = values`` — the inverse
  permutation is never built, there is no post-hoc reorder pass).

Backpressure is structural: there are exactly ``depth`` reusable slot
buffers (issued queries + values), batch ``j`` owns slot ``j % depth``, and
at most ``depth - 1`` sorts are in flight ahead of the batch being
traversed — so slot reuse is race-free by construction and memory stays
bounded no matter how long the stream is.

Every batch records a :class:`BatchTrace` with wall-clock intervals per
stage; :class:`StreamStats` reduces them to steady-state per-batch means,
the measured sort/traverse overlap (interval intersection), and the
:mod:`~repro.gpusim.pipeline`-shaped model totals (``sort`` playing H2D,
``traverse`` the kernel, ``scatter`` D2H) so measured overlap can be put
next to the analytic model the repo already had.

A note on cores: on a single-CPU host the sort worker and the traverse
thread time-share, so overlap cannot *remove* work — the wins here come
from the sort being off the critical path on multicore hosts, and from the
executor's mechanical savings (slot reuse, direct scatter) everywhere.
:class:`StreamStats` reports ``cpu_count`` so readers can interpret the
overlap numbers honestly.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.constants import NOT_FOUND, VALUE_DTYPE
from repro.core.engine import BatchQueryEngine
from repro.core.layout import HarmoniaLayout
from repro.core.psa import optimal_sort_bits
from repro.errors import ConfigError
from repro.sort.radix import partial_radix_argsort
from repro.utils.validation import ensure_key_array

#: Executor modes: ``serial`` runs sort → traverse → scatter back to back
#: per batch (the §4.1.2 cost stack); ``overlap`` pipelines the sort of
#: batch *i+1* under the traversal of batch *i* (§4.1.3).
STREAM_MODES = ("serial", "overlap")

#: Default queries per batch — matches the evaluation's mid-size windows.
DEFAULT_STREAM_BATCH = 1 << 14

_clock = time.perf_counter


@dataclass(frozen=True)
class BatchTrace:
    """Wall-clock record of one batch's trip through the pipeline.

    All times are seconds relative to the stream's start; ``sort`` covers
    the partial radix argsort plus the gather into issue order, ``traverse``
    the compacted-engine execution, ``scatter`` the ordered delivery into
    the caller's output slice.
    """

    index: int
    n: int
    sort_start: float
    sort_end: float
    traverse_start: float
    traverse_end: float
    scatter_start: float
    scatter_end: float
    sort_passes: int

    @property
    def sort_s(self) -> float:
        return self.sort_end - self.sort_start

    @property
    def traverse_s(self) -> float:
        return self.traverse_end - self.traverse_start

    @property
    def scatter_s(self) -> float:
        return self.scatter_end - self.scatter_start


def _merge_intervals(
    intervals: Sequence[Tuple[float, float]]
) -> List[Tuple[float, float]]:
    """Union of intervals as a sorted disjoint list."""
    ivs = sorted((s, e) for s, e in intervals if e > s)
    merged: List[Tuple[float, float]] = []
    for s, e in ivs:
        if merged and s <= merged[-1][1]:
            ps, pe = merged[-1]
            merged[-1] = (ps, max(pe, e))
        else:
            merged.append((s, e))
    return merged


def _intersection_s(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Total measure of the intersection of two disjoint interval lists."""
    i = j = 0
    total = 0.0
    while i < len(a) and j < len(b):
        s = max(a[i][0], b[j][0])
        e = min(a[i][1], b[j][1])
        if e > s:
            total += e - s
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return total


@dataclass(frozen=True)
class StreamStats:
    """Execution record of one :meth:`StreamExecutor.run` call.

    Steady-state figures exclude batch 0 (the pipeline fill: its sort can
    overlap nothing), mirroring how
    :func:`repro.gpusim.pipeline.pipeline_time` separates fill/drain from
    the steady term.
    """

    mode: str
    n_queries: int
    n_batches: int
    batch_size: int
    depth: int
    sort_workers: int
    bits_sorted: int
    wall_s: float
    cpu_count: int
    traces: Tuple[BatchTrace, ...]

    # ------------------------------------------------------------- totals

    @property
    def sort_s(self) -> float:
        return sum(t.sort_s for t in self.traces)

    @property
    def traverse_s(self) -> float:
        return sum(t.traverse_s for t in self.traces)

    @property
    def scatter_s(self) -> float:
        return sum(t.scatter_s for t in self.traces)

    def throughput(self) -> float:
        """Queries per second end to end."""
        if self.wall_s <= 0:
            return 0.0
        return self.n_queries / self.wall_s

    # ------------------------------------------------- steady-state figures

    @property
    def _steady(self) -> Tuple[BatchTrace, ...]:
        return self.traces[1:] if len(self.traces) > 1 else self.traces

    @property
    def steady_sort_s(self) -> float:
        """Mean per-batch sort time, pipeline fill excluded."""
        st = self._steady
        return sum(t.sort_s for t in st) / len(st) if st else 0.0

    @property
    def steady_traverse_s(self) -> float:
        st = self._steady
        return sum(t.traverse_s for t in st) / len(st) if st else 0.0

    @property
    def steady_scatter_s(self) -> float:
        st = self._steady
        return sum(t.scatter_s for t in st) / len(st) if st else 0.0

    @property
    def sort_hidden(self) -> bool:
        """§4.1.3's hiding condition: the steady-state sort fits under the
        steady-state traversal, so overlap can take it off the critical
        path entirely."""
        return self.steady_sort_s <= self.steady_traverse_s

    @property
    def overlapped_s(self) -> float:
        """Measured wall-clock time during which a sort and a
        traverse/scatter were in flight simultaneously (interval
        intersection over the recorded traces)."""
        sorts = _merge_intervals([(t.sort_start, t.sort_end) for t in self.traces])
        work = _merge_intervals(
            [(t.traverse_start, t.scatter_end) for t in self.traces]
        )
        return _intersection_s(sorts, work)

    @property
    def occupancy(self) -> float:
        """Fraction of the wall during which the traverse stage was busy —
        1.0 means the sort stage never stalled the pipeline."""
        if self.wall_s <= 0:
            return 0.0
        busy = _merge_intervals(
            [(t.traverse_start, t.scatter_end) for t in self.traces]
        )
        return sum(e - s for s, e in busy) / self.wall_s

    # ----------------------------------------------------------- model hooks

    def model_total_s(self, mode: str) -> float:
        """The :mod:`repro.gpusim.pipeline` cost formulas applied to the
        *measured* steady per-batch stage times, with the host mapping
        sort := H2D, traverse := kernel, scatter := D2H:

        * ``serial``:        ``n · (sort + traverse + scatter)``
        * ``double_buffer``: ``sort + max(traverse, sort + scatter)·(n−1)
          + traverse + scatter``

        Comparing ``wall_s`` against these says how close the executor
        runs to its own analytic model.
        """
        if mode not in ("serial", "double_buffer"):
            raise ConfigError(
                f"mode must be 'serial'|'double_buffer', got {mode!r}"
            )
        n = self.n_batches
        if n == 0:
            return 0.0
        srt, trv, sct = (
            self.steady_sort_s,
            self.steady_traverse_s,
            self.steady_scatter_s,
        )
        if mode == "serial":
            return n * (srt + trv + sct)
        steady = max(trv, srt + sct)
        return srt + steady * (n - 1) + trv + sct

    def record_to(self, rec) -> None:
        """Publish the run-level figures into an obs recorder (gauges:
        last run wins — per-batch detail goes in via :meth:`StreamExecutor`'s
        per-consume counters/histograms/spans as the stream runs)."""
        rec.gauge("stream.wall_s", self.wall_s)
        rec.gauge("stream.throughput_qps", self.throughput())
        rec.gauge("stream.occupancy", self.occupancy)
        rec.gauge("stream.overlap_s", self.overlapped_s)
        trv = self.steady_traverse_s
        if trv > 0:
            rec.gauge("stream.sort_hidden_ratio", self.steady_sort_s / trv)

    def summary(self) -> dict:
        """JSON-ready digest (what the bench and experiment emit)."""
        return {
            "mode": self.mode,
            "n_queries": self.n_queries,
            "n_batches": self.n_batches,
            "batch_size": self.batch_size,
            "depth": self.depth,
            "sort_workers": self.sort_workers,
            "bits_sorted": self.bits_sorted,
            "cpu_count": self.cpu_count,
            "wall_s": self.wall_s,
            "throughput_qps": self.throughput(),
            "steady_sort_s": self.steady_sort_s,
            "steady_traverse_s": self.steady_traverse_s,
            "steady_scatter_s": self.steady_scatter_s,
            "sort_hidden": self.sort_hidden,
            "overlapped_s": self.overlapped_s,
            "occupancy": self.occupancy,
            "model_serial_s": self.model_total_s("serial"),
            "model_double_buffer_s": self.model_total_s("double_buffer"),
        }


def _tile_config(tile_size: int, resident: int):
    """Build a TileConfig lazily — ``repro.join.tiles`` imports this
    module's sibling ``core.engine``, so the import stays call-time."""
    from repro.join.tiles import TileConfig

    return TileConfig(
        tile_size=int(tile_size), max_resident_tiles=int(resident)
    )


class StreamExecutor:
    """Two-stage (sort ∥ traverse) streaming executor over one layout
    snapshot.

    Results are bit-identical to
    :meth:`~repro.core.tree.HarmoniaTree.search_batch` on the same queries
    for every batch split, mode and worker count — batching never changes
    lookup results, and delivery scatters each batch's values straight into
    its slice of the output in arrival order.

    Not thread-safe: one ``run`` at a time per executor (slot buffers and
    the engine scratch are reused across batches).  Concurrent streams each
    take their own executor — :meth:`~repro.core.tree.HarmoniaTree.search_stream`
    does exactly that, sharing the immutable packed leaf block between them
    via :meth:`~repro.core.engine.BatchQueryEngine.share_packed_leaves`.
    """

    def __init__(
        self,
        layout: HarmoniaLayout,
        batch_size: int = DEFAULT_STREAM_BATCH,
        depth: int = 2,
        sort_workers: int = 1,
        mode: str = "overlap",
        bits: Optional[int] = None,
        use_psa: bool = True,
        engine_workers: int = 1,
        keys_per_cacheline: int = 16,
        tile=None,
    ) -> None:
        if not isinstance(layout, HarmoniaLayout):
            raise ConfigError("StreamExecutor needs a HarmoniaLayout")
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        if mode not in STREAM_MODES:
            raise ConfigError(
                f"mode must be one of {STREAM_MODES}, got {mode!r}"
            )
        min_depth = 2 if mode == "overlap" else 1
        if depth < min_depth:
            raise ConfigError(
                f"depth must be >= {min_depth} for mode {mode!r}, got {depth}"
            )
        if sort_workers < 1:
            raise ConfigError(f"sort_workers must be >= 1, got {sort_workers}")

        self.layout = layout
        self.batch_size = int(batch_size)
        self.depth = int(depth)
        self.sort_workers = int(sort_workers)
        self.mode = mode
        self.engine = BatchQueryEngine(layout, n_workers=engine_workers)

        # Equation 2 over the effective key space, exactly as
        # HarmoniaTree.prepare_queries resolves it.
        space_bits = layout.key_space_bits()
        if not use_psa:
            resolved = 0
        elif bits is not None:
            if bits < 0:
                raise ConfigError(f"bits must be >= 0, got {bits}")
            resolved = min(bits, space_bits)
        else:
            resolved = optimal_sort_bits(
                max(layout.n_keys, 1), keys_per_cacheline, key_bits=space_bits
            )
        self.bits = int(resolved)
        self.key_bits = int(space_bits)

        # Slot buffers: batch j owns slot j % depth for both its issued
        # queries and its raw values.  Allocated once, reused stream-long.
        self._issued = [
            np.empty(self.batch_size, dtype=np.int64) for _ in range(self.depth)
        ]
        self._values = [
            np.empty(self.batch_size, dtype=VALUE_DTYPE)
            for _ in range(self.depth)
        ]
        self._pool: Optional[ThreadPoolExecutor] = None
        self._overlay = None  # per-run delta overlay hook (see run())
        self.last_stats: Optional[StreamStats] = None

        # Optional bounded-memory tiling of the traverse stage: each
        # batch runs through the tile scheduler in fixed-size tiles, so
        # engine scratch peaks at O(tile) instead of O(batch) — the FPGA
        # level-wise discipline (docs/join.md).  Values are identical.
        self._tiler = None
        if tile is not None:
            from repro.join.tiles import TileConfig, TileScheduler

            if not isinstance(tile, TileConfig):
                tile = TileConfig(tile_size=int(tile))
            self._tiler = TileScheduler(self.engine, tile)

    def _sort_pool(self) -> ThreadPoolExecutor:
        """The sort-stage worker pool — created on first use and kept for
        the executor's lifetime, so repeated ``run`` calls don't pay the
        thread-spawn latency inside the measured stream."""
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.sort_workers, thread_name_prefix="psa-sort"
            )
        return self._pool

    def close(self) -> None:
        """Shut the sort pool down (idempotent; also runs at GC)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover — GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    @classmethod
    def from_config(
        cls,
        layout: HarmoniaLayout,
        config,
        share_from: Optional[BatchQueryEngine] = None,
    ) -> "StreamExecutor":
        """Build from a :class:`~repro.core.config.SearchConfig`'s
        ``stream_*`` knobs; ``share_from`` donates its packed leaf block
        (built on demand) so per-call executors stay O(1) to create."""
        ex = cls(
            layout,
            batch_size=config.stream_batch,
            depth=config.stream_depth,
            sort_workers=config.stream_sort_workers,
            mode=config.stream_mode,
            bits=config.psa_bits,
            use_psa=config.use_psa,
            engine_workers=config.engine_workers,
            keys_per_cacheline=config.keys_per_cacheline,
            tile=None if config.stream_tile is None else _tile_config(
                config.stream_tile, config.stream_resident_tiles
            ),
        )
        if share_from is not None and share_from.layout is layout:
            ex.engine.share_packed_leaves(share_from)
        return ex

    # --------------------------------------------------------------- running

    def run(
        self,
        queries,
        out: Optional[np.ndarray] = None,
        overlay=None,
    ) -> np.ndarray:
        """Stream ``queries`` through the pipeline; returns values aligned
        with the input order (absent keys map to ``NOT_FOUND``).

        ``out`` optionally supplies the full result buffer (shape
        ``(len(queries),)``, value dtype); it is written in full.
        ``overlay`` is an optional ``fn(keys, values)`` post-pass run on
        each batch's issued slice before delivery (the snapshot-epoch
        delta overlay — elementwise by key, so applying it in issue order
        before the scatter equals applying it after the restore); the
        stream never buffers the whole result, so the overlay streams too.
        """
        self._overlay = overlay
        q = ensure_key_array(np.asarray(queries), "queries")
        n = q.size
        if out is None:
            out = np.empty(n, dtype=VALUE_DTYPE)
        elif out.shape != (n,) or out.dtype != np.dtype(VALUE_DTYPE):
            raise ConfigError(
                f"out must be shape ({n},) dtype {np.dtype(VALUE_DTYPE)}, "
                f"got shape {out.shape} dtype {out.dtype}"
            )
        bounds = [
            (s, min(s + self.batch_size, n)) for s in range(0, n, self.batch_size)
        ]
        t0 = _clock()
        if not bounds:
            self.last_stats = self._stats(0, (), _clock() - t0)
            return out
        if self.mode == "serial":
            traces = self._run_serial(q, out, bounds, t0)
        else:
            traces = self._run_overlap(q, out, bounds, t0)
        t_end = _clock()
        self.last_stats = self._stats(n, tuple(traces), t_end - t0)
        rec = obs.active
        if rec.enabled:
            self.last_stats.record_to(rec)
            rec.span_at("stream.run", t0, t_end, cat="stream",
                        mode=self.mode, n=n, batches=len(traces))
        return out

    def _stats(
        self, n: int, traces: Tuple[BatchTrace, ...], wall: float
    ) -> StreamStats:
        return StreamStats(
            mode=self.mode,
            n_queries=n,
            n_batches=len(traces),
            batch_size=self.batch_size,
            depth=self.depth,
            sort_workers=self.sort_workers,
            bits_sorted=self.bits,
            wall_s=wall,
            cpu_count=os.cpu_count() or 1,
            traces=traces,
        )

    # ---------------------------------------------------------------- stages

    def _sort_batch(self, q: np.ndarray, bi: int, s: int, e: int):
        """Sort stage for batch ``bi``: partial argsort + gather into the
        slot's issued buffer.  Runs on a worker thread in overlap mode —
        it reads only ``q`` (shared, immutable here) and writes only slot
        ``bi % depth``, which no other in-flight batch can own."""
        t_s = _clock()
        bn = e - s
        issued = self._issued[bi % self.depth]
        if self.bits > 0 and bn > 1:
            res = partial_radix_argsort(
                q[s:e], bits=self.bits, key_bits=self.key_bits
            )
            order = res.order
            np.take(q[s:e], order, out=issued[:bn])
            passes = res.passes
        else:
            order = None
            issued[:bn] = q[s:e]
            passes = 0
        # The thread ident travels with the result so the consuming thread
        # can file this sort span on the worker's trace track.
        return bi, order, passes, t_s, _clock(), threading.get_ident()

    def _consume(
        self,
        sorted_batch,
        bounds,
        out: np.ndarray,
        traces: List[BatchTrace],
        t0: float,
    ) -> None:
        """Traverse + ordered delivery of one sorted batch (main thread)."""
        bi, order, passes, t_s, t_e, sort_tid = sorted_batch
        s, e = bounds[bi]
        bn = e - s
        issued = self._issued[bi % self.depth][:bn]
        values = self._values[bi % self.depth][:bn]
        tr_s = _clock()
        if self._tiler is not None:
            self._tiler.run(issued, out=values, overlay=self._overlay)
        else:
            self.engine.execute(issued, out=values, overlay=self._overlay)
        tr_e = _clock()
        view = out[s:e]
        if order is None:
            view[:] = values
        else:
            view[order] = values  # direct scatter: arrival order, one store
        sc_e = _clock()
        rec = obs.active
        if rec.enabled:
            rec.counter("stream.batches")
            rec.counter("stream.queries", bn)
            rec.counter("stream.sort_passes", passes)
            rec.histogram("stream.sort_s", t_e - t_s)
            rec.histogram("stream.traverse_s", tr_e - tr_s)
            rec.histogram("stream.scatter_s", sc_e - tr_e)
            # Spans come from the already-measured stage timestamps — no
            # extra timing work on the hot path, and the sort span lands on
            # its worker thread's track so the §4.1.3 overlap is visible.
            rec.span_at("stream.sort", t_s, t_e, cat="stream",
                        tid=sort_tid, batch=bi, passes=passes)
            rec.span_at("stream.traverse", tr_s, tr_e, cat="stream",
                        batch=bi, n=bn)
            rec.span_at("stream.scatter", tr_e, sc_e, cat="stream", batch=bi)
        traces.append(
            BatchTrace(
                index=bi,
                n=bn,
                sort_start=t_s - t0,
                sort_end=t_e - t0,
                traverse_start=tr_s - t0,
                traverse_end=tr_e - t0,
                scatter_start=tr_e - t0,
                scatter_end=sc_e - t0,
                sort_passes=passes,
            )
        )

    def _run_serial(self, q, out, bounds, t0) -> List[BatchTrace]:
        traces: List[BatchTrace] = []
        for bi, (s, e) in enumerate(bounds):
            self._consume(self._sort_batch(q, bi, s, e), bounds, out, traces, t0)
        return traces

    def _run_overlap(self, q, out, bounds, t0) -> List[BatchTrace]:
        """Double-buffered loop: at most ``depth - 1`` sorts run ahead of
        the batch being traversed, so batch ``j``'s slot (``j % depth``)
        is free by the time its sort is submitted."""
        traces: List[BatchTrace] = []
        nb = len(bounds)
        lookahead = self.depth - 1
        pool = self._sort_pool()
        pending = deque(
            pool.submit(self._sort_batch, q, j, *bounds[j])
            for j in range(min(lookahead, nb))
        )
        next_submit = len(pending)
        rec = obs.active
        for bi in range(nb):
            fut = pending.popleft()
            # Refill the lookahead window *before* blocking: the sort
            # of batch bi + depth - 1 runs under bi's traversal.
            if next_submit < nb:
                pending.append(
                    pool.submit(
                        self._sort_batch, q, next_submit, *bounds[next_submit]
                    )
                )
                next_submit += 1
            if rec.enabled:
                rec.histogram("stream.queue_depth", len(pending))
            self._consume(fut.result(), bounds, out, traces, t0)
        return traces


__all__ = [
    "STREAM_MODES",
    "DEFAULT_STREAM_BATCH",
    "BatchTrace",
    "StreamStats",
    "StreamExecutor",
]
