"""Vectorized batch-update pipeline (paper §3.2.2, batched host path).

:class:`~repro.core.update.BatchUpdater` applies one
:class:`~repro.core.update.Operation` at a time: a scalar root-to-leaf
traversal, one Algorithm 1 lock round-trip and a Python closure per op,
then a leaf-by-leaf movement rebuild.  This module replaces that loop with
a three-stage pipeline over the whole batch:

1. **plan** (:func:`plan_batch`) — route every op to its leaf with one
   vectorized :func:`~repro.core.search.locate_leaves_batch` traversal
   (internal separators are immutable during a batch, so the whole batch
   shares one snapshot walk), group ops per leaf with a *stable* argsort
   (stability preserves arrival order within a leaf — structural
   decisions depend on the leaf's occupancy at op time), and classify
   each group: update-only groups can never split or merge.
2. **apply** (:meth:`VectorizedBatchUpdater._apply`) — update-only groups
   are executed fully vectorized: one row gather + rowwise searchsorted
   resolves every (existence, slot) at once, and a last-wins scatter plan
   of the surviving value writes replaces per-op locking.  Groups with
   inserts/deletes replay per leaf on an
   :class:`~repro.core.update.AuxiliaryNode`, reproducing the scalar
   path's structural state machine exactly (in-place until the leaf would
   split/merge, then staged on the aux node).  Per-op locks are gone by
   construction: grouping serializes same-leaf ops, distinct leaves are
   independent, so Algorithm 1's coarse/fine discipline holds at group
   granularity; independent leaf groups shard across threads.
3. **movement** (:meth:`VectorizedBatchUpdater._movement`) — the
   post-batch leaf plan (keeps, splits, merges) is computed up front as
   keep-*ranges* plus rebuilt runs, clean rows move with block
   fancy-gather copies, rebuilt/modified rows land via one flat
   ``(row, col)`` scatter, and the internal levels + prefix-sum child
   array are rebuilt by the shared vectorized assembler
   (:func:`~repro.core.update._assemble_layout`).

The pipeline never mutates its input layout: staged value writes are
carried as a scatter plan and applied to the *new* arrays, which is what
lets :class:`~repro.core.epoch.EpochManager` skip its copy-on-write step —
readers keep serving from the old snapshot until the swap.

**Gapped mode** (:class:`GappedBatchUpdater`, ``UpdateConfig(mode=
"gapped")``) goes one step further: every batch still pays stage 3 above
(even a single absorbed insert rebuilds both regions), so on mixed
workloads the movement rebuild dominates.  The gapped executor instead
works on leaf rows with pre-allocated slack (sentinel-padded tails, per-
leaf fill counts — see the gapped-leaves note in
:mod:`repro.core.layout`): updates and gap-absorbable inserts/deletes
collapse to fully-vectorized in-place scatters against a private working
copy, deletes leave gaps behind instead of re-chunking, and the movement
rebuild runs only as a rare *compaction epoch* once overflowed leaves, the
underflow/full watermark, or global occupancy demand it.  Routing uses the
cached per-leaf bounds (:func:`~repro.core.search.locate_leaves_bounds`) —
valid across absorption because the internal region is immutable between
epochs — and oversized batches stream through the planner in fixed
``plan_window`` chunks.  The contract is *result* equivalence with the
scalar reference (identical accounting, query results and key/value
content; the physical layout differs by design), hypothesis-pinned in
``tests/test_core_gapped.py``.

Equivalence contract (hypothesis-pinned in
``tests/test_core_update_plan.py``): for any batch, the resulting layout
is byte-identical to the scalar path's (``UpdateConfig(mode="scalar")``,
``n_threads=1``) and the :class:`~repro.core.update.BatchResult`
accounting matches field for field.  This works because clean-leaf rows
are canonical after in-place edits (sorted keys then ``KEY_MAX`` pads,
aligned values then ``NOT_FOUND`` pads), so rebuilding a row from its
final logical content reproduces the scalar path's incremental edits.

Stages are instrumented with the ``update.*`` family of the
:mod:`repro.obs` catalogue (spans ``update.plan/apply/movement`` plus
batch counters) — see docs/observability.md.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

import repro.obs as obs
from repro.btree.bulk import _chunk_sizes
from repro.constants import KEY_DTYPE, KEY_MAX, NOT_FOUND, VALUE_DTYPE
from repro.core.layout import HarmoniaLayout
from repro.core.search import locate_leaves_batch
from repro.core.update import (
    DELETE,
    INSERT,
    UPDATE,
    AuxiliaryNode,
    BatchResult,
    Operation,
    _assemble_layout,
)

# Integer op-kind codes for the planner's numpy arrays.
K_INSERT, K_UPDATE, K_DELETE = 0, 1, 2
_KIND_CODE = {INSERT: K_INSERT, UPDATE: K_UPDATE, DELETE: K_DELETE}


def _plan_leaf_movement(
    n_leaves: int,
    dirty_set: Set[int],
    content,
    min_leaf: int,
    slots: int,
    target: int,
) -> List[list]:
    """The §3.2.2 movement plan as directives, over any leaf store.

    ``["K", src_start, src_stop]`` — a contiguous range of clean leaf
    rows reused verbatim; ``["N", keys, vals]`` — one rebuilt leaf.
    ``content(leaf)`` supplies a dirty leaf's final logical
    ``(keys, values)`` lists.  Semantically identical to the scalar pass
    (same dirty runs, same absorb-clean-neighbour loop, same
    re-chunking), but clean stretches advance via the sorted dirty array
    instead of a per-leaf scan, so plan cost scales with the number of
    dirty leaves.  Shared by the vectorized movement stage and the
    gapped compaction epoch.
    """
    dirty = np.fromiter(
        sorted(dirty_set), dtype=np.int64, count=len(dirty_set)
    )
    n_dirty = dirty.size

    directives: List[list] = []
    i = 0
    dp = 0
    while i < n_leaves:
        while dp < n_dirty and dirty[dp] < i:
            dp += 1
        if dp == n_dirty:
            directives.append(["K", i, n_leaves])
            break
        nxt = int(dirty[dp])
        if nxt > i:
            directives.append(["K", i, nxt])
            i = nxt
        # Maximal dirty run [i, j).
        j = i
        run_keys: List[int] = []
        run_vals: List[int] = []
        while j < n_leaves and j in dirty_set:
            ks, vs = content(j)
            run_keys.extend(ks)
            run_vals.extend(vs)
            j += 1
        # Absorb clean neighbours while the run is too small to chunk
        # legally (borrow-from-sibling at movement time).
        while 0 < len(run_keys) < min_leaf and (
            j < n_leaves or directives
        ):
            if j < n_leaves:
                ks, vs = content(j)
                run_keys.extend(ks)
                run_vals.extend(vs)
                j += 1
            else:
                prev = directives[-1]
                if prev[0] == "K":
                    ks, vs = content(prev[2] - 1)
                    prev[2] -= 1
                    if prev[1] == prev[2]:
                        directives.pop()
                else:
                    directives.pop()
                    ks, vs = prev[1], prev[2]
                run_keys = ks + run_keys
                run_vals = vs + run_vals
        for size in _chunk_sizes(len(run_keys), target, min_leaf, slots):
            directives.append(["N", run_keys[:size], run_vals[:size]])
            run_keys = run_keys[size:]
            run_vals = run_vals[size:]
        i = j
    return directives


# --------------------------------------------------------------------------
# Stage 1 — plan
# --------------------------------------------------------------------------


@dataclass
class UpdatePlan:
    """The batch, routed and grouped: everything the apply stage needs.

    ``order`` is a stable per-leaf grouping permutation of the arrival
    order; group ``g`` spans ``order[group_bounds[g]:group_bounds[g+1]]``
    and targets leaf-block row ``group_leaves[g]``.  Within a group the
    indices stay in arrival order — the invariant the replay path's
    structural decisions rely on.
    """

    n_ops: int
    kinds: np.ndarray  #: (n_ops,) int8 op codes, arrival order
    keys: np.ndarray  #: (n_ops,) int64, arrival order
    values: np.ndarray  #: (n_ops,) int64, arrival order
    leaves: np.ndarray  #: (n_ops,) leaf-block index per op, arrival order
    order: np.ndarray  #: stable argsort of ``leaves``
    group_bounds: np.ndarray  #: (n_groups + 1,) slice bounds into ``order``
    group_leaves: np.ndarray  #: (n_groups,) leaf-block index per group
    group_update_only: np.ndarray  #: (n_groups,) bool — vectorizable group
    n_fast: int  #: ops in update-only groups (fully vectorized path)

    @property
    def n_groups(self) -> int:
        return int(self.group_leaves.size)

    @property
    def n_replay(self) -> int:
        return self.n_ops - self.n_fast


def plan_batch(layout: HarmoniaLayout, ops: Sequence[Operation]) -> UpdatePlan:
    """Route, sort and classify one batch against a layout snapshot."""
    n = len(ops)
    code = _KIND_CODE
    kinds = np.fromiter(
        (code[op.kind] for op in ops), dtype=np.int8, count=n
    )
    keys = np.fromiter((op.key for op in ops), dtype=KEY_DTYPE, count=n)
    values = np.fromiter(
        (op.value for op in ops), dtype=VALUE_DTYPE, count=n
    )

    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return UpdatePlan(
            n_ops=0, kinds=kinds, keys=keys, values=values, leaves=empty,
            order=empty, group_bounds=np.zeros(1, dtype=np.int64),
            group_leaves=empty, group_update_only=np.empty(0, dtype=bool),
            n_fast=0,
        )

    leaves = locate_leaves_batch(layout, keys)
    order = np.argsort(leaves, kind="stable")
    sorted_leaves = leaves[order]
    starts = np.flatnonzero(
        np.concatenate(([True], sorted_leaves[1:] != sorted_leaves[:-1]))
    )
    group_bounds = np.concatenate((starts, [n])).astype(np.int64)
    group_leaves = sorted_leaves[starts]
    group_update_only = np.logical_and.reduceat(
        kinds[order] == K_UPDATE, starts
    )
    n_fast = int(
        np.sum(
            np.diff(group_bounds)[group_update_only]
        )
    )
    return UpdatePlan(
        n_ops=n, kinds=kinds, keys=keys, values=values, leaves=leaves,
        order=order, group_bounds=group_bounds, group_leaves=group_leaves,
        group_update_only=group_update_only, n_fast=n_fast,
    )


# --------------------------------------------------------------------------
# Stages 2 + 3 — apply, movement
# --------------------------------------------------------------------------

#: One replay shard's result: counter deltas + per-leaf staged state.
_ShardOut = Tuple[
    int, int, int, int, int,
    Dict[int, AuxiliaryNode], Dict[int, AuxiliaryNode], Set[int],
]


class VectorizedBatchUpdater:
    """Applies one batch through the plan/apply/movement pipeline.

    One instance per batch, like :class:`~repro.core.update.BatchUpdater`;
    :meth:`run` leaves the post-movement snapshot in :attr:`new_layout`
    (``None`` when every key was deleted) and never mutates the input
    layout.
    """

    #: Fewer replay groups than this run serially even with
    #: ``n_threads > 1`` — pool setup would dominate.
    REPLAY_PARALLEL_MIN = 64

    def __init__(
        self,
        layout: HarmoniaLayout,
        fill: float = 1.0,
        replay_parallel_min: Optional[int] = None,
    ) -> None:
        self.layout = layout
        self.fill = fill
        if replay_parallel_min is not None:
            self.REPLAY_PARALLEL_MIN = replay_parallel_min
        self.result = BatchResult()
        self.new_layout: Optional[HarmoniaLayout] = None
        self.plan: Optional[UpdatePlan] = None
        self._slots = layout.slots
        self._min_leaf = (layout.fanout - 1 + 1) // 2
        #: Single-op insert/delete groups resolved without replay.
        self.n_single = 0
        #: Leaves staged for split/merge (leaf-block index -> full content).
        self.aux: Dict[int, AuxiliaryNode] = {}
        #: Leaves edited in place but still clean (kept rows, new content).
        self.modified: Dict[int, AuxiliaryNode] = {}
        self.underflow: Set[int] = set()
        # Last-wins value-write scatter plan for update-only groups,
        # sorted by (leaf, slot); applied to the *new* arrays at movement.
        self._ov_leaf: Optional[np.ndarray] = None
        self._ov_pos: Optional[np.ndarray] = None
        self._ov_val: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ run

    def run(self, ops: Sequence[Operation], n_threads: int = 1) -> BatchResult:
        """Execute all three stages; returns the accounting record."""
        rec = obs.active
        timer = self.result.timer
        t0 = time.perf_counter()
        with timer.phase("plan"):
            plan = self.plan = plan_batch(self.layout, ops)
        t1 = time.perf_counter()
        with timer.phase("apply"):
            self._apply(plan, n_threads)
        t2 = time.perf_counter()
        with timer.phase("movement"):
            n_dirty = self._movement()
        t3 = time.perf_counter()

        if rec.enabled:
            res = self.result
            rec.counter("update.batches")
            rec.counter("update.ops", plan.n_ops)
            rec.counter("update.inplace_ops", plan.n_fast)
            rec.counter("update.single_ops", self.n_single)
            rec.counter("update.replay_ops", plan.n_replay - self.n_single)
            rec.counter("update.split_leaves", res.split_leaves)
            rec.counter("update.dirty_leaves", n_dirty)
            rec.counter("update.moved_leaves", res.moved_clean)
            rec.counter("update.rebuilt_leaves", res.rebuilt_dirty)
            if plan.n_groups:
                rec.histogram(
                    "update.ops_per_leaf", plan.n_ops / plan.n_groups
                )
            wall = t3 - t0
            if wall > 0.0 and plan.n_ops:
                rec.gauge("update.throughput_ops", plan.n_ops / wall)
            rec.span_at("update.plan", t0, t1, cat="update", ops=plan.n_ops)
            rec.span_at("update.apply", t1, t2, cat="update",
                        fast_ops=plan.n_fast, replay_ops=plan.n_replay)
            rec.span_at("update.movement", t2, t3, cat="update",
                        dirty_leaves=n_dirty)
        return self.result

    # ---------------------------------------------------------------- apply

    def _apply(self, plan: UpdatePlan, n_threads: int) -> None:
        if plan.n_ops == 0:
            return
        self._apply_fast(plan)

        replay_groups = np.flatnonzero(~plan.group_update_only)
        if replay_groups.size == 0:
            return
        replay_groups = self._apply_singles(plan, replay_groups)
        if replay_groups.size == 0:
            return
        if (
            n_threads > 1
            and replay_groups.size >= self.REPLAY_PARALLEL_MIN
        ):
            shards = np.array_split(replay_groups, n_threads)
            with ThreadPoolExecutor(max_workers=n_threads) as pool:
                outs = list(
                    pool.map(lambda s: self._replay_shard(plan, s), shards)
                )
        else:
            outs = [self._replay_shard(plan, replay_groups)]
        res = self.result
        for ins, upd, dele, fail, split, aux, modified, underflow in outs:
            res.inserted += ins
            res.updated += upd
            res.deleted += dele
            res.failed += fail
            res.split_leaves += split
            self.aux.update(aux)
            self.modified.update(modified)
            self.underflow.update(underflow)

    def _apply_fast(self, plan: UpdatePlan) -> None:
        """Update-only leaf groups, no per-leaf state machine needed.

        Updates never change key membership, and a leaf none of whose
        batch ops insert or delete can never split or merge — so every
        op's outcome is static: one rowwise searchsorted over a gathered
        row block decides existence, and conflicting writes to the same
        slot collapse to the arrival-order winner (the scalar semantics:
        later ops overwrite earlier ones).
        """
        fast_pos = np.repeat(
            plan.group_update_only, np.diff(plan.group_bounds)
        )
        fast_idx = plan.order[fast_pos]
        if fast_idx.size == 0:
            return
        slots = self._slots
        leaf_block = self.layout.key_region[self.layout.leaf_start :]
        fleaf = plan.leaves[fast_idx]
        fkeys = plan.keys[fast_idx]
        rows = leaf_block[fleaf]
        pos = np.sum(rows < fkeys[:, None], axis=1)
        clamped = np.minimum(pos, slots - 1)
        exists = (pos < slots) & (
            rows[np.arange(fleaf.size), clamped] == fkeys
        )
        n_hit = int(np.count_nonzero(exists))
        self.result.updated += n_hit
        self.result.failed += int(fast_idx.size - n_hit)
        hit = np.flatnonzero(exists)
        if hit.size == 0:
            return
        target = fleaf[hit] * slots + pos[hit]
        arrival = fast_idx[hit]
        by_target = np.lexsort((arrival, target))
        tsorted = target[by_target]
        last = np.concatenate((tsorted[1:] != tsorted[:-1], [True]))
        winners = by_target[last]
        self._ov_leaf = fleaf[hit][winners]
        self._ov_pos = pos[hit][winners]
        self._ov_val = plan.values[arrival[winners]]

    def _apply_singles(
        self, plan: UpdatePlan, groups: np.ndarray
    ) -> np.ndarray:
        """Single-op insert/delete groups whose leaf cannot change shape.

        A one-op group inserting into a non-full leaf (or deleting from an
        above-minimum leaf) can never stage an auxiliary node: the scalar
        state machine reduces to "find the slot, shift the row by one".
        Both steps vectorize across all such groups at once — one gathered
        row block, one rowwise searchsorted, one ``np.where`` shift — so
        these groups skip the per-op Python replay loop entirely.  The
        produced staged content is exactly what the replay would have
        staged (``modified[leaf]``, successes only), so the movement stage
        and the scalar-equivalence contract are untouched.  Returns the
        groups that still need the replay path.
        """
        bounds = plan.group_bounds
        single = groups[np.diff(bounds)[groups] == 1]
        if single.size == 0:
            return groups
        layout = self.layout
        slots = self._slots
        op_idx = plan.order[bounds[single]]
        kinds = plan.kinds[op_idx]
        lids = plan.group_leaves[single]
        rows = layout.key_region[layout.leaf_start :][lids]
        counts = (rows != KEY_MAX).sum(axis=1)
        is_ins = kinds == K_INSERT
        eligible = np.where(
            is_ins, counts < slots,
            (kinds == K_DELETE) & (counts > self._min_leaf),
        )
        e = np.flatnonzero(eligible)
        if e.size == 0:
            return groups
        rows = rows[e]
        vrows = layout.leaf_values[lids[e]]
        okeys = plan.keys[op_idx[e]]
        ovals = plan.values[op_idx[e]]
        ins_e = is_ins[e]
        pos = np.sum(rows < okeys[:, None], axis=1)
        clamped = np.minimum(pos, slots - 1)
        exists = rows[np.arange(e.size), clamped] == okeys
        ok = np.where(ins_e, ~exists, exists)
        n_ins = int(np.count_nonzero(ins_e & ok))
        n_del = int(np.count_nonzero(~ins_e & ok))
        res = self.result
        res.inserted += n_ins
        res.deleted += n_del
        res.failed += int(e.size - n_ins - n_del)
        self.n_single += int(e.size)

        win = np.flatnonzero(ok)
        if win.size:
            cols = np.arange(slots)
            wrows, wvrows = rows[win], vrows[win]
            wpos = pos[win][:, None]
            wins = ins_e[win]
            # Insert: row shifted right of the slot (a non-full leaf's
            # last column is a pad, so nothing real falls off the end).
            right_k = np.concatenate([wrows[:, :1], wrows[:, :-1]], axis=1)
            right_v = np.concatenate([wvrows[:, :1], wvrows[:, :-1]], axis=1)
            ins_k = np.where(
                cols < wpos, wrows,
                np.where(cols == wpos, okeys[win][:, None], right_k),
            )
            ins_v = np.where(
                cols < wpos, wvrows,
                np.where(cols == wpos, ovals[win][:, None], right_v),
            )
            # Delete: row shifted left of the slot, pad rolling in.
            pad_k = np.full((win.size, 1), KEY_MAX, dtype=wrows.dtype)
            pad_v = np.full((win.size, 1), NOT_FOUND, dtype=wvrows.dtype)
            del_k = np.where(
                cols < wpos, wrows,
                np.concatenate([wrows[:, 1:], pad_k], axis=1),
            )
            del_v = np.where(
                cols < wpos, wvrows,
                np.concatenate([wvrows[:, 1:], pad_v], axis=1),
            )
            new_k = np.where(wins[:, None], ins_k, del_k)
            new_v = np.where(wins[:, None], ins_v, del_v)
            new_counts = counts[e][win] + np.where(wins, 1, -1)
            wleaves = lids[e][win].tolist()
            for i, leaf in enumerate(wleaves):
                c = int(new_counts[i])
                self.modified[int(leaf)] = AuxiliaryNode(
                    keys=new_k[i, :c].tolist(),
                    values=new_v[i, :c].tolist(),
                )
        return groups[~np.isin(groups, single[e])]

    def _replay_shard(
        self, plan: UpdatePlan, groups: np.ndarray
    ) -> _ShardOut:
        """Replay the groups' ops in arrival order on staged leaf content.

        The scalar path's structural state machine, verbatim: an insert
        into a full leaf or a delete from a minimum leaf upgrades the leaf
        to an auxiliary node (even when the op itself then fails — the
        scalar path stages the aux before attempting); once staged, every
        later op works the aux.  Leaves are disjoint across shards, so
        shards compose without locks.
        """
        layout = self.layout
        slots = self._slots
        min_leaf = self._min_leaf
        # Numpy scalar indexing costs a boxing per element; the replay
        # loop is pure Python, so convert the plan columns once per shard
        # and gather the shard's leaf rows in one batched fancy-index.
        kinds = plan.kinds.tolist()
        keys = plan.keys.tolist()
        values = plan.values.tolist()
        order = plan.order.tolist()
        bounds = plan.group_bounds.tolist()
        group_leaves = plan.group_leaves
        lids = group_leaves[groups]
        rows = layout.key_region[layout.leaf_start :][lids]
        vrows = layout.leaf_values[lids]
        counts = (rows != KEY_MAX).sum(axis=1).tolist()

        ins = upd = dele = fail = split = 0
        aux: Dict[int, AuxiliaryNode] = {}
        modified: Dict[int, AuxiliaryNode] = {}
        underflow: Set[int] = set()

        for gi, g in enumerate(groups.tolist()):
            leaf = int(lids[gi])
            c = counts[gi]
            node = AuxiliaryNode(
                keys=rows[gi, :c].tolist(), values=vrows[gi, :c].tolist()
            )
            is_aux = False
            effective = 0
            for oi in order[bounds[g] : bounds[g + 1]]:
                kind = kinds[oi]
                key = keys[oi]
                if kind == K_UPDATE:
                    if node.update(key, values[oi]):
                        upd += 1
                        effective += 1
                    else:
                        fail += 1
                elif kind == K_INSERT:
                    if not is_aux and len(node.keys) >= slots:
                        is_aux = True  # would split: stage on the aux
                        split += 1
                    if node.insert(key, values[oi]):
                        ins += 1
                        effective += 1
                    else:
                        fail += 1
                else:  # K_DELETE
                    if not is_aux and len(node.keys) <= min_leaf:
                        is_aux = True  # would merge: stage on the aux
                        split += 1
                    if node.delete(key):
                        dele += 1
                        effective += 1
                        if is_aux and len(node.keys) < min_leaf:
                            underflow.add(leaf)
                    else:
                        fail += 1
            if is_aux:
                aux[leaf] = node
            elif effective:
                modified[leaf] = node
        return ins, upd, dele, fail, split, aux, modified, underflow

    # ------------------------------------------------------------- movement

    def _dirty_set(self) -> Set[int]:
        """Leaves whose rows cannot move verbatim — mirrors the scalar
        :meth:`~repro.core.update.BatchUpdater.dirty_leaves`, with post-
        batch occupancy derived from the staged replay state instead of
        mutated rows."""
        dirty: Set[int] = set(self.aux)
        dirty.update(self.underflow)
        if self.layout.n_leaves > 1:
            counts = self.layout.leaf_key_counts()
            if self.modified:
                for leaf, node in self.modified.items():
                    counts[leaf] = len(node.keys)
            dirty.update(
                int(u) for u in np.flatnonzero(counts < self._min_leaf)
            )
        return dirty

    def _leaf_content(self, leaf: int) -> Tuple[List[int], List[int]]:
        """Final logical content of a leaf: staged replay content if any,
        else the original row with pending fast-path value writes folded
        in."""
        node = self.aux.get(leaf)
        if node is None:
            node = self.modified.get(leaf)
        if node is not None:
            return list(node.keys), list(node.values)
        layout = self.layout
        row = layout.key_region[layout.leaf_start + leaf]
        mask = row != KEY_MAX
        ks = row[mask].tolist()
        vs = layout.leaf_values[leaf][mask].tolist()
        ov_leaf = self._ov_leaf
        if ov_leaf is not None:
            lo = int(np.searchsorted(ov_leaf, leaf, side="left"))
            hi = int(np.searchsorted(ov_leaf, leaf, side="right"))
            for t in range(lo, hi):
                vs[int(self._ov_pos[t])] = int(self._ov_val[t])
        return ks, vs

    def _movement(self) -> int:
        """Plan and materialize the post-batch layout; returns the dirty-
        leaf count (for instrumentation)."""
        directives = self._movement_plan()
        self.new_layout = self._materialize(directives)
        return self._n_dirty

    def _movement_plan(self) -> List[list]:
        """The §3.2.2 movement plan (see :func:`_plan_leaf_movement`),
        over this batch's staged replay state."""
        layout = self.layout
        dirty_set = self._dirty_set()
        self._n_dirty = len(dirty_set)
        min_leaf = self._min_leaf
        slots = self._slots
        target = max(min_leaf, min(slots, round(self.fill * slots)))
        directives = _plan_leaf_movement(
            layout.n_leaves, dirty_set, self._leaf_content,
            min_leaf, slots, target,
        )

        res = self.result
        res.moved_clean = sum(d[2] - d[1] for d in directives if d[0] == "K")
        res.rebuilt_dirty = sum(1 for d in directives if d[0] == "N")
        res.underflow_leaves = len(self.underflow)
        return directives

    def _materialize(
        self, directives: List[list]
    ) -> Optional[HarmoniaLayout]:
        """Build the new layout from the movement plan in block operations:
        keep-ranges gather as contiguous slices, rebuilt and modified rows
        land via one flat ``(row, col)`` scatter, pending fast-path value
        writes scatter through the old→new row map."""
        if not directives:
            return None  # every key was deleted
        old = self.layout
        slots = self._slots
        if (
            len(directives) == 1
            and directives[0][0] == "K"
            and directives[0][1] == 0
            and directives[0][2] == old.n_leaves
        ):
            # No leaf moved: every row keeps its slot, so the child
            # structure (prefix sum, level starts, chunking) is unchanged
            # and a full reassembly would reproduce the old internal
            # region except where a leaf's minimum changed.  Patch those
            # separators in place instead of rebuilding — the common case
            # for in-place-dominated batches.
            return self._materialize_kept()

        keep_ranges: List[Tuple[int, int, int]] = []  # (dst, src_lo, src_hi)
        write_rows: List[Tuple[int, List[int], List[int]]] = []
        dst = 0
        for d in directives:
            if d[0] == "K":
                keep_ranges.append((dst, d[1], d[2]))
                dst += d[2] - d[1]
            else:
                write_rows.append((dst, d[1], d[2]))
                dst += 1
        new_n_leaves = dst

        leaf_keys = np.full((new_n_leaves, slots), KEY_MAX, dtype=KEY_DTYPE)
        leaf_vals = np.full(
            (new_n_leaves, slots), NOT_FOUND, dtype=VALUE_DTYPE
        )
        old_to_new = np.full(old.n_leaves, -1, dtype=np.int64)
        old_keys = old.key_region[old.leaf_start :]
        for dlo, slo, shi in keep_ranges:
            n = shi - slo
            leaf_keys[dlo : dlo + n] = old_keys[slo:shi]
            leaf_vals[dlo : dlo + n] = old.leaf_values[slo:shi]
            old_to_new[slo:shi] = np.arange(dlo, dlo + n, dtype=np.int64)

        # Kept leaves the replay modified in place: overwrite their rows
        # with the final content, padded to full canonical rows (the
        # gather above copied the stale original).
        for leaf, node in self.modified.items():
            nd = int(old_to_new[leaf])
            if nd >= 0:
                pad = slots - len(node.keys)
                write_rows.append((
                    nd,
                    node.keys + [int(KEY_MAX)] * pad,
                    node.values + [int(NOT_FOUND)] * pad,
                ))

        if write_rows:
            sizes = np.asarray(
                [len(ks) for _, ks, _ in write_rows], dtype=np.int64
            )
            total = int(sizes.sum())
            if total:
                dsts = np.asarray(
                    [d for d, _, _ in write_rows], dtype=np.int64
                )
                row_idx = np.repeat(dsts, sizes)
                starts = np.zeros(sizes.size, dtype=np.int64)
                np.cumsum(sizes[:-1], out=starts[1:])
                col_idx = (
                    np.arange(total, dtype=np.int64) - np.repeat(starts, sizes)
                )
                flat_keys = np.concatenate(
                    [np.asarray(ks, dtype=KEY_DTYPE)
                     for _, ks, _ in write_rows]
                )
                flat_vals = np.concatenate(
                    [np.asarray(vs, dtype=VALUE_DTYPE)
                     for _, _, vs in write_rows]
                )
                leaf_keys[row_idx, col_idx] = flat_keys
                leaf_vals[row_idx, col_idx] = flat_vals

        # Pending fast-path value writes into kept rows (writes into
        # absorbed rows were already folded in via _leaf_content).
        if self._ov_leaf is not None:
            kept = old_to_new[self._ov_leaf]
            live = kept >= 0
            if np.any(live):
                leaf_vals[kept[live], self._ov_pos[live]] = self._ov_val[live]

        n_keys = int(np.count_nonzero(leaf_keys != KEY_MAX))
        return _assemble_layout(
            old.fanout, leaf_keys, leaf_vals, n_keys, self.fill
        )

    def _materialize_kept(self) -> HarmoniaLayout:
        """All leaves keep their slots: copy the old arrays, overwrite
        replay-modified rows, scatter pending fast-path value writes, and
        patch the internal separators whose leaf minimum changed.

        Equivalent to a full reassembly because the assembler derives the
        child structure from the leaf count alone (unchanged here) and
        every internal key from a subtree minimum — all of which are
        already in the old region except the patched ones.
        """
        old = self.layout
        slots = self._slots
        key_region = old.key_region.copy()
        leaf_values = old.leaf_values.copy()
        leaf_keys = key_region[old.leaf_start :]
        delta = 0
        changed: List[Tuple[int, int]] = []  # (leaf index, new minimum)
        for leaf, node in self.modified.items():
            row = leaf_keys[leaf]
            old_min = int(row[0])
            delta += len(node.keys) - int(np.count_nonzero(row != KEY_MAX))
            pad = slots - len(node.keys)
            leaf_keys[leaf] = node.keys + [int(KEY_MAX)] * pad
            leaf_values[leaf] = node.values + [int(NOT_FOUND)] * pad
            if node.keys[0] != old_min:
                changed.append((leaf, node.keys[0]))
        if self._ov_leaf is not None:
            leaf_values[self._ov_leaf, self._ov_pos] = self._ov_val
        if changed:
            self._patch_separators(key_region, changed)
        return HarmoniaLayout(
            fanout=old.fanout,
            height=old.height,
            key_region=key_region,
            prefix_sum=old.prefix_sum.copy(),
            leaf_values=leaf_values,
            level_starts=old.level_starts.copy(),
            n_keys=old.n_keys + delta,
        )

    def _patch_separators(
        self, key_region: np.ndarray, changed: List[Tuple[int, int]]
    ) -> None:
        """Propagate changed leaf minima up the internal levels.

        A node's minimum appears as separator ``within - 1`` of its
        parent when it is not the first child; a first child's minimum is
        the parent's own minimum and recurses upward.  Parents come from
        the layout's own prefix-sum child region (Equation 1), so the
        patch is exact for any layout, however it was built.
        """
        old = self.layout
        prefix = old.prefix_sum
        leaf_start = old.leaf_start
        pending = [(leaf_start + leaf, new_min) for leaf, new_min in changed]
        while pending:
            nxt: List[Tuple[int, int]] = []
            for c, new_min in pending:
                if c == 0:  # the root has no parent
                    continue
                p = int(np.searchsorted(prefix, c, side="right")) - 1
                within = c - int(prefix[p])
                if within > 0:
                    key_region[p, within - 1] = new_min
                else:
                    nxt.append((p, new_min))
            pending = nxt


# --------------------------------------------------------------------------
# Gapped executor — absorb in place, compact rarely
# --------------------------------------------------------------------------


class GappedBatchUpdater:
    """Applies batches against gapped leaf rows; movement is demoted to a
    rare compaction epoch.

    One instance per batch.  The input layout is never mutated: the leaf
    arrays are copied once up front (the internal region and prefix sum
    are *shared* — absorption never touches them), updates and gap-
    absorbable inserts/deletes land as vectorized in-place scatters on
    the working copy, and only three conditions trigger a compaction
    epoch (the §3.2.2 movement plan + re-chunking at the fill target):

    * **hard** — a leaf group could overflow its row (gross inserts would
      exceed the slack), so its final content is staged on an
      :class:`~repro.core.update.AuxiliaryNode`;
    * **watermark** — the fraction of leaves pending compaction
      (underflowed past the B+tree minimum, or packed full when the fill
      target leaves slack) crosses ``config.gap_watermark``;
    * **occupancy** — global leaf-slot occupancy falls below
      ``config.occupancy_low`` (delete-heavy drift).

    Between epochs leaves may legally sit under-full or even empty: a
    leaf's content is always a subset of its routing interval, so global
    leaf-key ordering, the packed-leaf block and range scans are
    unaffected (see the gapped-leaves note in :mod:`repro.core.layout`).
    Oversized batches stream through the planner in ``config.plan_window``
    chunks in arrival order, which keeps routing/scatter scratch bounded
    and lets an epoch in one window hand fresh slack to the next.

    Equivalence contract: identical *results* to the scalar reference —
    accounting (inserted/updated/deleted/failed), query answers, and
    logical key/value content — not byte-identical arrays (gaps change
    the physical layout by design).  ``n_threads`` is accepted for
    interface parity and ignored: the absorb path is one NumPy pass and
    overflow replay is rare by construction.
    """

    def __init__(
        self,
        layout: HarmoniaLayout,
        fill: float = 0.7,
        config=None,
    ) -> None:
        from repro.core.config import UpdateConfig

        self.layout = layout
        self.fill = fill
        cfg = config or UpdateConfig(mode="gapped")
        self.watermark = cfg.gap_watermark
        self.occupancy_low = cfg.occupancy_low
        self.window = cfg.plan_window
        self.result = BatchResult()
        self.new_layout: Optional[HarmoniaLayout] = None
        self._fanout = layout.fanout
        self._slots = layout.slots
        self._min_leaf = (layout.fanout - 1 + 1) // 2
        target = max(
            self._min_leaf, min(self._slots, round(fill * self._slots))
        )
        self._target = target
        # A leaf counts as compaction-pending when packed to the brim only
        # if the fill target actually reserves slack (fill=1.0 layouts are
        # legitimately full everywhere).
        self._full_mark = self._slots if target < self._slots else self._slots + 1
        #: Overflow leaves staged for this window's epoch.
        self._aux: Dict[int, AuxiliaryNode] = {}
        # Stats surfaced via update.* metrics.
        self.absorbed_ops = 0
        self.overflow_ops = 0
        self.movement_epochs = 0
        self.windows = 0
        self.dirty_total = 0

    # ------------------------------------------------------------------ run

    def run(self, ops: Sequence[Operation], n_threads: int = 1) -> BatchResult:
        rec = obs.active
        timer = self.result.timer
        t0 = time.perf_counter()
        n = len(ops)
        code = _KIND_CODE
        kinds = np.fromiter(
            (code[op.kind] for op in ops), dtype=np.int8, count=n
        )
        keys = np.fromiter((op.key for op in ops), dtype=KEY_DTYPE, count=n)
        values = np.fromiter(
            (op.value for op in ops), dtype=VALUE_DTYPE, count=n
        )

        if n == 0:
            # Nothing to absorb and nothing moved: the snapshot stands.
            self.new_layout = self.layout
            return self.result

        self._adopt(self.layout, copy=True)
        for lo in range(0, n, self.window):
            hi = min(lo + self.window, n)
            self.windows += 1
            if self._kr is None:
                self._window_bootstrap(
                    kinds[lo:hi], keys[lo:hi], values[lo:hi]
                )
                continue
            with timer.phase("plan"):
                plan = self._window_plan(keys[lo:hi], kinds[lo:hi])
            with timer.phase("apply"):
                self._absorb(plan, kinds[lo:hi], keys[lo:hi], values[lo:hi])
                self._overflow_replay(
                    plan, kinds[lo:hi], keys[lo:hi], values[lo:hi]
                )
            with timer.phase("movement"):
                if self._epoch_due():
                    self._compaction_epoch()

        if self._kr is None:
            self.new_layout = None
        else:
            self.new_layout = HarmoniaLayout(
                fanout=self._fanout,
                height=self._height,
                key_region=self._kr,
                prefix_sum=self._prefix,
                leaf_values=self._lv,
                level_starts=self._lstarts,
                n_keys=self._n_keys,
                leaf_counts=self._counts,
            )
        t1 = time.perf_counter()

        if rec.enabled:
            res = self.result
            rec.counter("update.batches")
            rec.counter("update.ops", n)
            rec.counter("update.inplace_ops", self.absorbed_ops)
            rec.counter("update.absorbed_ops", self.absorbed_ops)
            rec.counter("update.replay_ops", self.overflow_ops)
            rec.counter("update.windows", self.windows)
            rec.counter("update.movement_epochs", self.movement_epochs)
            rec.counter("update.split_leaves", res.split_leaves)
            rec.counter("update.dirty_leaves", self.dirty_total)
            rec.counter("update.moved_leaves", res.moved_clean)
            rec.counter("update.rebuilt_leaves", res.rebuilt_dirty)
            rec.gauge("update.gap_absorption", self.absorbed_ops / n)
            if self._kr is not None:
                counts = self._counts
                occ = self._n_keys / max(counts.size * self._slots, 1)
                rec.gauge("layout.occupancy", occ)
                rec.gauge(
                    "layout.compaction_pending",
                    int(np.count_nonzero(self._pending(counts)))
                    / max(counts.size, 1),
                )
            wall = t1 - t0
            if wall > 0.0:
                rec.gauge("update.throughput_ops", n / wall)
            # Phase durations accumulate across windows; surface them as
            # three contiguous spans so trace totals stay truthful.
            plan_s = timer.get("plan")
            apply_s = timer.get("apply")
            move_s = timer.get("movement")
            base = t1 - (plan_s + apply_s + move_s)
            rec.span_at("update.plan", base, base + plan_s, cat="update",
                        ops=n)
            rec.span_at("update.apply", base + plan_s,
                        base + plan_s + apply_s, cat="update",
                        fast_ops=self.absorbed_ops,
                        replay_ops=self.overflow_ops)
            rec.span_at("update.movement", base + plan_s + apply_s, t1,
                        cat="update", dirty_leaves=self.dirty_total,
                        epochs=self.movement_epochs)
        return self.result

    # ------------------------------------------------------- working state

    def _adopt(self, layout: HarmoniaLayout, copy: bool) -> None:
        """Load the working arrays from a layout (copying when the layout
        is the published input snapshot; epoch outputs are already ours)."""
        self._kr = layout.key_region.copy() if copy else layout.key_region
        self._lv = layout.leaf_values.copy() if copy else layout.leaf_values
        self._leaf = self._kr[layout.leaf_start :]
        self._counts = layout.leaf_key_counts()
        self._n_keys = int(layout.n_keys)
        self._bounds = layout.leaf_bounds()
        self._prefix = layout.prefix_sum
        self._lstarts = layout.level_starts
        self._height = layout.height

    # ----------------------------------------------------------------- plan

    def _window_plan(self, wkeys: np.ndarray, wkinds: np.ndarray):
        """Route one window via the cached bounds and group per leaf.

        Returns ``(order, group_bounds, group_leaves, absorbable)``:
        the stable grouping permutation plus the per-group verdict —
        a group absorbs in place iff the leaf's current fill plus the
        group's gross inserts fits the row (a conservative bound: the
        row can then never overflow mid-sequence, whatever succeeds).
        """
        leaf = np.searchsorted(self._bounds, wkeys, side="right") - 1
        order = np.argsort(leaf, kind="stable")
        sl = leaf[order]
        m = sl.size
        starts = np.flatnonzero(
            np.concatenate(([True], sl[1:] != sl[:-1]))
        )
        gb = np.concatenate((starts, [m])).astype(np.int64)
        glf = sl[starts]
        g_ins = np.add.reduceat(
            (wkinds[order] == K_INSERT).astype(np.int64), starts
        )
        absorbable = self._counts[glf] + g_ins <= self._slots
        return order, gb, glf, absorbable

    # --------------------------------------------------------------- absorb

    def _absorb(
        self,
        plan,
        wkinds: np.ndarray,
        wkeys: np.ndarray,
        wvals: np.ndarray,
    ) -> None:
        """Fold every absorbable group into the working rows, one NumPy
        pass.

        Ops are bucketed per (leaf, key) with arrival order preserved;
        single-op keys (the overwhelming majority) resolve fully
        vectorized from the key's initial presence, multi-op chains fold
        in a small Python loop over their ops.  The fold yields, per
        distinct key: its final presence, its final value (when written)
        and the per-kind success counts — *logical* semantics, identical
        to the scalar reference because an op's outcome depends only on
        its own key's membership at that point, never on row capacity
        (the absorbability bound guarantees capacity up front).  Value
        overwrites scatter flat; leaves whose membership changed have
        their rows rebuilt by one concatenate + lexsort + segment-column
        scatter, writing canonical gapped rows (sorted keys, sentinel
        tail).
        """
        order, gb, glf, absorbable = plan
        take = np.repeat(absorbable, np.diff(gb))
        idx = order[take]
        if idx.size == 0:
            return
        self.absorbed_ops += int(idx.size)
        slots = self._slots
        L = np.repeat(glf[absorbable],
                      np.diff(gb)[absorbable])  # leaf per absorbed op
        K = wkeys[idx]
        D = wkinds[idx]
        V = wvals[idx]

        # Stable (leaf, key) bucketing; arrival order survives within a
        # bucket because idx is already (leaf, arrival)-ordered.
        srt = np.lexsort((K, L))
        L, K, D, V = L[srt], K[srt], D[srt], V[srt]
        nb = np.concatenate(
            ([True], (L[1:] != L[:-1]) | (K[1:] != K[:-1]))
        )
        ustart = np.flatnonzero(nb)
        ulen = np.diff(np.concatenate((ustart, [L.size])))
        uleaf = L[ustart]
        ukey = K[ustart]
        u = ustart.size

        rows = self._leaf[uleaf]
        pos = np.sum(rows < ukey[:, None], axis=1)
        clamped = np.minimum(pos, slots - 1)
        present0 = rows[np.arange(u), clamped] == ukey

        final_present = present0.copy()
        wrote = np.zeros(u, dtype=bool)
        write_val = np.zeros(u, dtype=VALUE_DTYPE)

        res = self.result
        single = ulen == 1
        if np.any(single):
            sk = D[ustart[single]]
            sv = V[ustart[single]]
            p0 = present0[single]
            is_i = sk == K_INSERT
            is_u = sk == K_UPDATE
            is_d = sk == K_DELETE
            ok = np.where(is_i, ~p0, p0)
            res.inserted += int(np.count_nonzero(is_i & ok))
            res.updated += int(np.count_nonzero(is_u & ok))
            res.deleted += int(np.count_nonzero(is_d & ok))
            res.failed += int(np.count_nonzero(~ok))
            # Inserts end present either way (a failed insert means the
            # key was already there); deletes end absent either way.
            final_present[single] = np.where(
                is_i, True, np.where(is_d, False, p0)
            )
            wrote[single] = ok & ~is_d
            write_val[single] = np.where(ok & ~is_d, sv, 0)

        for t in np.flatnonzero(~single).tolist():
            a = int(ustart[t])
            b = a + int(ulen[t])
            p = bool(present0[t])
            w = False
            val = 0
            for j in range(a, b):
                kind = int(D[j])
                if kind == K_UPDATE:
                    if p:
                        res.updated += 1
                        val = int(V[j])
                        w = True
                    else:
                        res.failed += 1
                elif kind == K_INSERT:
                    if p:
                        res.failed += 1
                    else:
                        res.inserted += 1
                        p = True
                        val = int(V[j])
                        w = True
                else:  # K_DELETE
                    if p:
                        res.deleted += 1
                        p = False
                        w = False
                    else:
                        res.failed += 1
            final_present[t] = p
            wrote[t] = w
            write_val[t] = val

        # 1) Value overwrites on keys that stay put: one flat scatter.
        vw = present0 & final_present & wrote
        if np.any(vw):
            self._lv[uleaf[vw], pos[vw]] = write_val[vw]

        # 2) Membership changes: rebuild the touched rows wholesale.
        add = ~present0 & final_present
        rem = present0 & ~final_present
        if not (np.any(add) or np.any(rem)):
            return
        touched = np.union1d(uleaf[add], uleaf[rem])
        R = self._leaf[touched]
        Vv = self._lv[touched]
        drop = np.zeros(R.shape, dtype=bool)
        drop[np.searchsorted(touched, uleaf[rem]), pos[rem]] = True
        keep = (R != KEY_MAX) & ~drop
        kept_row, _ = np.nonzero(keep)
        flat_row = np.concatenate(
            (kept_row, np.searchsorted(touched, uleaf[add]))
        )
        flat_key = np.concatenate((R[keep], ukey[add]))
        flat_val = np.concatenate((Vv[keep], write_val[add]))
        o = np.lexsort((flat_key, flat_row))
        flat_row, flat_key, flat_val = flat_row[o], flat_key[o], flat_val[o]
        cnt = np.bincount(flat_row, minlength=touched.size).astype(np.int64)
        seg = np.zeros(touched.size, dtype=np.int64)
        np.cumsum(cnt[:-1], out=seg[1:])
        col = np.arange(flat_row.size, dtype=np.int64) - seg[flat_row]
        newR = np.full((touched.size, slots), KEY_MAX, dtype=KEY_DTYPE)
        newV = np.full((touched.size, slots), NOT_FOUND, dtype=VALUE_DTYPE)
        newR[flat_row, col] = flat_key
        newV[flat_row, col] = flat_val
        self._leaf[touched] = newR
        self._lv[touched] = newV
        self._counts[touched] = cnt
        self._n_keys += int(np.count_nonzero(add)) - int(
            np.count_nonzero(rem)
        )

    # ------------------------------------------------------------- overflow

    def _overflow_replay(
        self,
        plan,
        wkinds: np.ndarray,
        wkeys: np.ndarray,
        wvals: np.ndarray,
    ) -> None:
        """Groups whose gross inserts exceed the leaf's slack: stage the
        leaf's full content on an auxiliary node and replay in arrival
        order (logical semantics — aux capacity is unbounded, exactly as
        in the scalar path).  Staging forces a compaction epoch at the
        end of this window, which re-chunks the aux content."""
        order, gb, glf, absorbable = plan
        ovf = np.flatnonzero(~absorbable)
        if ovf.size == 0:
            return
        res = self.result
        kinds = wkinds.tolist()
        keys = wkeys.tolist()
        vals = wvals.tolist()
        order_l = order.tolist()
        gb_l = gb.tolist()
        for g in ovf.tolist():
            leaf = int(glf[g])
            node = self._aux.get(leaf)
            if node is None:
                c = int(self._counts[leaf])
                node = AuxiliaryNode(
                    keys=self._leaf[leaf, :c].tolist(),
                    values=self._lv[leaf, :c].tolist(),
                )
                self._aux[leaf] = node
                res.split_leaves += 1
            for oi in order_l[gb_l[g] : gb_l[g + 1]]:
                kind = kinds[oi]
                self.overflow_ops += 1
                if kind == K_UPDATE:
                    if node.update(keys[oi], vals[oi]):
                        res.updated += 1
                    else:
                        res.failed += 1
                elif kind == K_INSERT:
                    if node.insert(keys[oi], vals[oi]):
                        res.inserted += 1
                        self._n_keys += 1
                    else:
                        res.failed += 1
                else:
                    if node.delete(keys[oi]):
                        res.deleted += 1
                        self._n_keys -= 1
                    else:
                        res.failed += 1

    # ------------------------------------------------------------ epochs

    def _pending(self, counts: np.ndarray) -> np.ndarray:
        """Leaves enqueued in the compaction set: below the B+tree minimum
        or packed to the brim (single-leaf trees are exempt from the
        minimum, as everywhere else)."""
        pending = counts >= self._full_mark
        if counts.size > 1:
            pending = pending | (counts < self._min_leaf)
        return pending

    def _epoch_due(self) -> bool:
        if self._aux:
            return True  # hard trigger: staged overflow content
        if self._n_keys == 0:
            return True
        counts = self._counts
        n_leaves = counts.size
        frac = int(np.count_nonzero(self._pending(counts))) / n_leaves
        if frac > self.watermark:
            return True
        if n_leaves > 1:
            occ = self._n_keys / (n_leaves * self._slots)
            if occ < self.occupancy_low:
                return True
        return False

    def _compaction_epoch(self) -> None:
        """The demoted movement pass: plan dirty runs over the compaction
        set (plus staged overflow leaves), re-chunk them at the fill
        target, and rebuild the internal region with the shared
        assembler.  Adopts the new arrays as the working state — they are
        freshly allocated, so later windows absorb into them in place
        without another copy."""
        self.movement_epochs += 1
        counts = self._counts
        dirty_set: Set[int] = set(
            int(x) for x in np.flatnonzero(self._pending(counts))
        )
        dirty_set.update(self._aux)
        self.dirty_total += len(dirty_set)
        res = self.result
        if counts.size > 1:
            res.underflow_leaves += int(
                np.count_nonzero(counts < self._min_leaf)
            )

        leaf = self._leaf
        lv = self._lv
        aux = self._aux

        def content(j: int):
            node = aux.get(j)
            if node is not None:
                return list(node.keys), list(node.values)
            c = int(counts[j])
            return leaf[j, :c].tolist(), lv[j, :c].tolist()

        directives = _plan_leaf_movement(
            counts.size, dirty_set, content,
            self._min_leaf, self._slots, self._target,
        )
        res.moved_clean += sum(
            d[2] - d[1] for d in directives if d[0] == "K"
        )
        res.rebuilt_dirty += sum(1 for d in directives if d[0] == "N")
        self._aux = {}
        if not directives:
            self._kr = None  # every key deleted; later windows bootstrap
            return

        slots = self._slots
        keep_ranges: List[Tuple[int, int, int]] = []
        write_rows: List[Tuple[int, List[int], List[int]]] = []
        dst = 0
        for d in directives:
            if d[0] == "K":
                keep_ranges.append((dst, d[1], d[2]))
                dst += d[2] - d[1]
            else:
                write_rows.append((dst, d[1], d[2]))
                dst += 1
        leaf_keys = np.full((dst, slots), KEY_MAX, dtype=KEY_DTYPE)
        leaf_vals = np.full((dst, slots), NOT_FOUND, dtype=VALUE_DTYPE)
        for dlo, slo, shi in keep_ranges:
            w = shi - slo
            leaf_keys[dlo : dlo + w] = leaf[slo:shi]
            leaf_vals[dlo : dlo + w] = lv[slo:shi]
        for drow, ks, vs in write_rows:
            leaf_keys[drow, : len(ks)] = ks
            leaf_vals[drow, : len(vs)] = vs
        new = _assemble_layout(
            self._fanout, leaf_keys, leaf_vals, self._n_keys, self.fill
        )
        self._adopt(new, copy=False)

    # ------------------------------------------------------------ bootstrap

    def _window_bootstrap(
        self,
        wkinds: np.ndarray,
        wkeys: np.ndarray,
        wvals: np.ndarray,
    ) -> None:
        """A window arriving after the tree emptied mid-batch: fold it
        through a plain dict (the empty tree has no structure to absorb
        into) and bulk-build a fresh gapped layout from the survivors —
        the same semantics as :meth:`HarmoniaTree._bootstrap_batch`."""
        res = self.result
        pairs: Dict[int, int] = {}
        kinds = wkinds.tolist()
        keys = wkeys.tolist()
        vals = wvals.tolist()
        for i in range(len(keys)):
            k = keys[i]
            kind = kinds[i]
            if kind == K_INSERT:
                if k in pairs:
                    res.failed += 1
                else:
                    pairs[k] = vals[i]
                    res.inserted += 1
            elif kind == K_UPDATE:
                if k in pairs:
                    pairs[k] = vals[i]
                    res.updated += 1
                else:
                    res.failed += 1
            else:
                if pairs.pop(k, None) is not None:
                    res.deleted += 1
                else:
                    res.failed += 1
        if pairs:
            sk = np.fromiter(sorted(pairs), dtype=KEY_DTYPE, count=len(pairs))
            sv = np.asarray([pairs[int(k)] for k in sk], dtype=VALUE_DTYPE)
            new = HarmoniaLayout.from_sorted(
                sk, sv, fanout=self._fanout, fill=self.fill
            )
            self._adopt(new, copy=False)
            self._n_keys = len(pairs)


__all__ = [
    "K_INSERT",
    "K_UPDATE",
    "K_DELETE",
    "UpdatePlan",
    "plan_batch",
    "VectorizedBatchUpdater",
    "GappedBatchUpdater",
]
