"""Epoch manager: safe interleaving of query and update phases.

The paper's scenario is phase-based (§3.2): the GPU serves queries against
an immutable snapshot while the CPU accumulates updates; a batch boundary
swaps in the new structure.  :class:`EpochManager` packages that
discipline so applications do not have to hand-roll it:

* readers call :meth:`search_batch` / :meth:`range_search` at any time
  from any thread — each call pins the *current* snapshot for its whole
  duration (queries never observe a half-applied batch);
* writers call :meth:`submit` to enqueue operations; :meth:`flush` (or
  crossing ``batch_capacity``) applies them as one §3.2.2 batch and
  atomically publishes the new snapshot;
* :attr:`epoch` counts published snapshots — readers can detect staleness
  cheaply.

**Concurrent mode** (``concurrent=True``) removes the stop-the-world
flush (docs/epochs.md).  A flush no longer rebuilds the tree on the
writer's critical path: the batch is *resolved* against the visible
state and published as one immutable sorted run in a
:class:`~repro.core.delta.DeltaIndex` — readers overlay the delta on the
pinned base snapshot (snapshot-then-delta, last wins, tombstones mask),
byte-identical to a synchronous flush.  A background drain thread folds
accumulated runs into snapshot N+1 — small gapped deltas absorb in
place through the existing updaters, everything else bulk-rebuilds via
the §3.1 sorted construction — while reads continue against N; publication
of the new base and retirement of the drained runs is a single swap
under the publish lock, so a reader pin — ``(layout, runs)`` grabbed
atomically — is always a consistent visible state.

This is deliberately *not* a concurrent B+tree: it is the batch-update
contract of the paper, enforced — with the rebuild taken off the read
path.
"""

from __future__ import annotations

import threading
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.constants import KEY_MAX
from repro.core.config import SearchConfig, UpdateConfig
from repro.core.delta import (
    DEFAULT_MAX_RUNS,
    DeltaIndex,
    DeltaView,
    resolve_batch,
)
from repro.core.layout import HarmoniaLayout
from repro.core.search import contains_batch
from repro.core.tree import HarmoniaTree
from repro.core.update import BatchResult, Operation
from repro.errors import ConfigError
from repro.utils.validation import ensure_positive

#: Default delta size (entries) past which a flush schedules a background
#: drain.  ~2 mid-size batches: small enough that the query-time overlay
#: stays a rounding error, large enough to amortize one rebuild over
#: several flushes.
DEFAULT_DRAIN_THRESHOLD = 1 << 15


class EpochManager:
    """Snapshot-per-epoch wrapper around a :class:`HarmoniaTree`."""

    def __init__(
        self,
        tree: HarmoniaTree,
        batch_capacity: int = 1 << 16,
        update_config: Optional[UpdateConfig] = None,
        concurrent: bool = False,
        max_delta_runs: int = DEFAULT_MAX_RUNS,
        drain_threshold: Optional[int] = None,
    ) -> None:
        self._tree = tree
        self.batch_capacity = ensure_positive("batch_capacity", batch_capacity)
        self.update_config = update_config or UpdateConfig()
        self.concurrent = bool(concurrent)
        self.max_delta_runs = ensure_positive("max_delta_runs", max_delta_runs)
        self.drain_threshold = ensure_positive(
            "drain_threshold",
            DEFAULT_DRAIN_THRESHOLD if drain_threshold is None
            else drain_threshold,
        )
        self._pending: List[Operation] = []
        self._write_lock = threading.Lock()  # serializes writers + flush
        self._publish_lock = threading.Lock()  # guards snapshot swap
        self._epoch = 0
        # --- concurrent-mode state (inert when concurrent=False) ---
        self._delta = DeltaIndex(max_runs=self.max_delta_runs)
        #: Runs pinned by the in-flight drain (prefix of the run list);
        #: collapse must not fold them, drop_prefix retires exactly them.
        self._drain_mark = 0
        self._drain_serial = threading.Lock()  # one drain at a time
        self._drain_thread: Optional[threading.Thread] = None
        self._drain_error: Optional[BaseException] = None
        self._snapshot_version = 0
        self._epoch_at_swap = 0
        #: Completed drains (public counter, mirrors ``epoch.drains``).
        self.drains = 0

    # ---------------------------------------------------------------- reads

    @property
    def epoch(self) -> int:
        return self._epoch

    @property
    def snapshot_version(self) -> int:
        """Base-snapshot generation: bumps when a drain (or a synchronous
        flush) swaps the layout reference.  In synchronous mode it equals
        :attr:`epoch`."""
        return self._snapshot_version if self.concurrent else self._epoch

    @property
    def snapshot_age(self) -> int:
        """Published epochs the base snapshot is behind the visible state
        (0 when the delta is fully drained) — the ``epoch.snapshot_age``
        gauge."""
        return self._epoch - self._epoch_at_swap if self.concurrent else 0

    @property
    def delta_size(self) -> int:
        """Entries currently held by the delta index (0 in sync mode)."""
        with self._publish_lock:
            return self._delta.size

    @property
    def delta_runs(self) -> int:
        """Published runs currently in the delta index."""
        with self._publish_lock:
            return self._delta.n_runs

    def pending_operations(self) -> int:
        with self._write_lock:
            return len(self._pending)

    def occupancy(self) -> float:
        """Leaf-slot occupancy of the current *base* snapshot in ``[0, 1]``.

        The observable behind the gapped mode's watermark policy
        (``UpdateConfig(mode="gapped")``): in-place absorption lets
        occupancy drift between flushes — inserts consume per-leaf slack,
        deletes leave gaps — and the executor schedules a compaction
        epoch once it sinks below ``update_config.occupancy_low`` (or the
        per-leaf under/overflow fraction crosses
        ``update_config.gap_watermark``).  Exposed here so operators can
        watch the drift (also surfaced as the ``layout.occupancy`` obs
        gauge) without reaching into layout internals.  Returns 1.0 for
        an empty tree (nothing to compact).  In concurrent mode this
        reads the published base layout — delta entries occupy no leaf
        slots until a drain folds them in, and compaction only ever runs
        inside a drain's shadow rebuild, never on a snapshot a reader
        still holds.
        """
        with self._publish_lock:
            layout = self._tree._layout
        return layout.occupancy() if layout is not None else 1.0

    def compaction_pending(self) -> float:
        """Fraction of leaves the gapped executor would enqueue for
        compaction right now (under the B+tree minimum or packed full) —
        the other input to the watermark policy; see :meth:`occupancy`.
        Returns 0.0 for an empty tree."""
        with self._publish_lock:
            layout = self._tree._layout
        if layout is None or layout.n_leaves == 0:
            return 0.0
        counts = layout.leaf_key_counts(copy=False)
        min_leaf = (layout.fanout - 1 + 1) // 2
        pending = counts >= layout.slots
        if counts.size > 1:
            pending = pending | (counts < min_leaf)
        return int(np.count_nonzero(pending)) / counts.size

    def _snapshot(self) -> HarmoniaTree:
        # The tree's layout reference is swapped atomically under the
        # publish lock; pinning = grabbing the current layout object —
        # and, in concurrent mode, the current delta view in the same
        # critical section, so (base, delta) is one consistent state.
        with self._publish_lock:
            layout = self._tree._layout
            fill = self._tree._fill
            view = self._delta.view() if self.concurrent else None
        pinned = HarmoniaTree(layout, fill=fill,
                              search_config=self._tree.search_config)
        if view is not None:
            pinned.delta = view
        return pinned

    def pin(self) -> HarmoniaTree:
        """Pin the current (base, delta) state as one consistent read-only
        tree facade — the handle long read passes hold.

        Every ``search_*`` method pins implicitly per call; explicit
        pinning is for multi-call reads that must see *one* version
        throughout — :func:`repro.join.merge_join` pins both sides once
        and streams millions of probes against the pinned pair while
        writers keep publishing new epochs.  The returned tree shares
        the immutable snapshot arrays (O(1), no copy) and carries the
        pinned delta view in concurrent mode; it never sees later
        flushes or drains.
        """
        return self._snapshot()

    def search(self, key: int) -> Optional[int]:
        return self._snapshot().search(key)

    def search_batch(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> np.ndarray:
        return self._snapshot().search_batch(queries, config)

    def search_many(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> np.ndarray:
        """Engine-path batched lookup against the pinned snapshot."""
        return self._snapshot().search_many(queries, config)

    def search_stream(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> np.ndarray:
        """Streaming-executor lookup against the pinned snapshot (the
        delta overlay, when present, streams batch by batch too)."""
        return self._snapshot().search_stream(queries, config)

    def range_search(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._snapshot().range_search(lo, hi)

    def range_search_batch(
        self, los: Sequence[int], his: Sequence[int]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch of range scans, all against one pinned snapshot."""
        return self._snapshot().range_search_batch(los, his)

    def dump_items(self) -> Tuple[np.ndarray, np.ndarray]:
        """The visible sorted contents as ``(keys, values)`` arrays —
        base snapshot merged with any undrained delta (checkpoint /
        rebalance path; equals ``iter_leaf_items`` in sync mode)."""
        return self._snapshot()._merged_items()

    def __len__(self) -> int:
        return len(self._snapshot())

    # --------------------------------------------------------------- writes

    def submit(self, op: Operation) -> Optional[BatchResult]:
        """Enqueue one operation; auto-flushes when the batch fills.

        Returns the flush's :class:`BatchResult` when one happened, else
        ``None`` — callers that care about durability call :meth:`flush`.
        """
        if not isinstance(op, Operation):
            raise ConfigError(f"submit() takes an Operation, got {type(op).__name__}")
        with self._write_lock:
            self._pending.append(op)
            if len(self._pending) >= self.batch_capacity:
                return self._flush_locked()
        return None

    def submit_many(self, ops: Sequence[Operation]) -> List[BatchResult]:
        """Enqueue many operations; returns the results of any auto-flushes."""
        results: List[BatchResult] = []
        with self._write_lock:
            for op in ops:
                self._pending.append(op)
                if len(self._pending) >= self.batch_capacity:
                    results.append(self._flush_locked())
        return results

    def flush(self) -> Optional[BatchResult]:
        """Apply all pending operations as one batch and publish the new
        snapshot (sync mode) or the new delta run (concurrent mode).
        No-op (returns ``None``) when nothing is pending."""
        self._raise_drain_error()
        with self._write_lock:
            if not self._pending:
                return None
            return self._flush_locked()

    def _flush_locked(self) -> BatchResult:
        if self.concurrent:
            return self._flush_concurrent_locked()
        ops = self._pending
        self._pending = []
        # Snapshot isolation: readers keep querying their pinned (old)
        # snapshot while the batch runs; publication is a single reference
        # swap.  The scalar §3.2.2 path edits the key/value regions in
        # place and therefore needs a copy-on-write clone; the vectorized
        # and gapped pipelines never mutate their input layout (gapped
        # absorbs into a private working copy), so the copy is skipped.
        with self._publish_lock:
            current = self._tree._layout
            fill = self._tree._fill
        needs_copy = self.update_config.mode == "scalar"
        shadow = HarmoniaTree(
            current.copy() if (current is not None and needs_copy) else current,
            fill=fill,
            search_config=self._tree.search_config,
        )
        shadow._empty_fanout = self._tree._empty_fanout
        result = shadow.apply_batch(ops, self.update_config)
        with self._publish_lock:
            self._tree._layout = shadow._layout
            self._epoch += 1
        return result

    # ------------------------------------------------- concurrent flush path

    def _visible_exists_fn(self, layout, view):
        """Existence probe over one pinned (base, delta) state."""

        def exists_fn(ukeys: np.ndarray) -> np.ndarray:
            if layout is None:
                exists = np.zeros(ukeys.size, dtype=bool)
            else:
                exists = np.asarray(contains_batch(layout, ukeys), dtype=bool)
            if view is not None:
                view.overlay_exists(ukeys, exists)
            return exists

        return exists_fn

    def _flush_concurrent_locked(self) -> BatchResult:
        t0 = time.perf_counter()
        ops = self._pending
        self._pending = []
        with self._publish_lock:
            layout = self._tree._layout
            view = self._delta.view()
        # Resolution needs only existence bits of the visible state: an
        # op's outcome depends solely on its key's same-batch history plus
        # whether the key is visible now.  Counts therefore match the
        # synchronous flush exactly (structural counters accrue at drain).
        run, result = resolve_batch(
            ops, self._visible_exists_fn(layout, view)
        )
        w0 = time.perf_counter()
        with self._publish_lock:
            publish_wait = time.perf_counter() - w0
            self._delta.append_run(run, collapse_floor=self._drain_mark)
            self._epoch += 1
            if not self._delta.n_runs:
                # Nothing undrained (e.g. every op failed): the base
                # already IS the visible state, don't age the snapshot.
                self._epoch_at_swap = self._epoch
            size = self._delta.size
            n_runs = self._delta.n_runs
        rec = obs.active
        if rec.enabled:
            t1 = time.perf_counter()
            rec.counter("epoch.flushes")
            rec.gauge("delta.size", size)
            rec.gauge("delta.runs", n_runs)
            rec.gauge("epoch.snapshot_age", self.snapshot_age)
            rec.histogram("epoch.publish_wait_s", publish_wait)
            rec.span_at("epoch.publish", t0, t1, cat="epoch",
                        ops=len(ops), delta=size)
        if size >= self.drain_threshold:
            self._start_drain()
        return result

    # ---------------------------------------------------------------- drain

    def _start_drain(self) -> None:
        """Kick the background drain thread (no-op if one is running)."""
        t = self._drain_thread
        if t is not None and t.is_alive():
            return
        t = threading.Thread(
            target=self._drain_worker, daemon=True, name="epoch-drain"
        )
        self._drain_thread = t
        t.start()

    def _drain_worker(self) -> None:
        try:
            self._drain_once()
        except BaseException as exc:  # surfaced on next flush()/sync()
            self._drain_error = exc

    def _drain_once(self) -> bool:
        """Fold every currently-published run into a fresh base snapshot.

        Returns whether anything was drained.  Runs that arrive while the
        shadow rebuild is in flight stay in the delta (they sit after the
        drain mark) and remain visible through the overlay — the final
        publish step swaps the base and retires exactly the drained
        prefix in one critical section.
        """
        with self._drain_serial:
            with self._publish_lock:
                runs = self._delta.runs
                mark = len(runs)
                if mark == 0:
                    return False
                self._drain_mark = mark
                epoch_at_mark = self._epoch
                layout = self._tree._layout
                fill = self._tree._fill
            t0 = time.perf_counter()
            publish_wait = 0.0
            try:
                view = DeltaView(runs, 0)
                dk, dv, dt = view.entries()
                n_base = layout.n_keys if layout is not None else 0
                # Two fold strategies.  Gapped mode with a small delta
                # drains through the in-place absorber — per-leaf slack
                # makes that O(d), far below a rebuild.  Every other case
                # (vectorized/scalar modes, bootstrap, or a delta that
                # grew comparable to the base) bulk-rebuilds from the
                # merged sorted contents: the movement pass of the
                # updaters is O(n) regardless, so above a small delta
                # the §3.1 bulk construction is strictly cheaper than
                # replaying per-op.
                incremental = (
                    self.update_config.mode == "gapped"
                    and layout is not None
                    and dk.size * 4 < n_base
                )
                if incremental:
                    base_has = contains_batch(layout, dk)
                    # Net ops vs the base: every one succeeds by
                    # construction (existence was checked at resolution).
                    ops: List[Operation] = []
                    for k, v, tomb, has in zip(
                        dk.tolist(), dv.tolist(), dt.tolist(),
                        base_has.tolist(),
                    ):
                        if tomb:
                            if has:
                                ops.append(Operation("delete", k))
                        elif has:
                            ops.append(Operation("update", k, v))
                        else:
                            ops.append(Operation("insert", k, v))
                    # The gapped updater never mutates its input layout.
                    shadow = HarmoniaTree(
                        layout, fill=fill,
                        search_config=self._tree.search_config,
                    )
                    shadow._empty_fanout = self._tree._empty_fanout
                    if ops:
                        shadow.apply_batch(ops, self.update_config)
                    new_layout = shadow._layout
                else:
                    if layout is None:
                        base_k = np.empty(0, dtype=np.int64)
                        base_v = np.empty(0, dtype=base_k.dtype)
                    else:
                        # Contiguous copies straight off the leaf block
                        # (iter_leaf_items stacks into strided columns,
                        # which would slow every downstream pass).
                        lk = layout.key_region[layout.leaf_start:].ravel()
                        live = lk != KEY_MAX
                        base_k = lk[live]
                        base_v = layout.leaf_values.ravel()[live]
                    new_k, new_v = view.merge_items(base_k, base_v)
                    if new_k.size:
                        fanout = (layout.fanout if layout is not None
                                  else self._tree._empty_fanout)
                        new_layout = HarmoniaLayout.from_sorted(
                            new_k, new_v, fanout=fanout, fill=fill,
                        )
                    else:
                        new_layout = None
                w0 = time.perf_counter()
                with self._publish_lock:
                    publish_wait = time.perf_counter() - w0
                    old_n = layout.n_keys if layout is not None else 0
                    new_n = (
                        new_layout.n_keys if new_layout is not None else 0
                    )
                    self._tree._layout = new_layout
                    self._delta.drop_prefix(mark, new_n - old_n)
                    self._drain_mark = 0
                    self._snapshot_version += 1
                    # Runs published after the mark are still undrained:
                    # the base is current only up to the marked epoch.
                    self._epoch_at_swap = max(
                        self._epoch_at_swap, epoch_at_mark
                    )
                    self.drains += 1
            except BaseException:
                with self._publish_lock:
                    self._drain_mark = 0
                raise
        rec = obs.active
        if rec.enabled:
            t1 = time.perf_counter()
            rec.counter("epoch.drains")
            rec.counter("epoch.drained_ops", int(dk.size))
            rec.gauge("delta.size", self.delta_size)
            rec.gauge("delta.runs", self.delta_runs)
            rec.gauge("epoch.snapshot_age", self.snapshot_age)
            rec.histogram("epoch.publish_wait_s", publish_wait)
            rec.span_at("epoch.drain", t0, t1, cat="epoch",
                        entries=int(dk.size), runs=mark)
        return True

    def _raise_drain_error(self) -> None:
        exc = self._drain_error
        if exc is not None:
            self._drain_error = None
            raise exc

    @property
    def drain_running(self) -> bool:
        t = self._drain_thread
        return t is not None and t.is_alive()

    def drain(self, wait: bool = True) -> None:
        """Fold the published delta into a fresh base snapshot.

        ``wait=True`` (default) drains on the calling thread until the
        delta is empty; ``wait=False`` just schedules the background
        drain.  No-op in synchronous mode.
        """
        if not self.concurrent:
            return
        if not wait:
            self._start_drain()
            return
        t = self._drain_thread
        if t is not None and t.is_alive():
            t.join()
        self._raise_drain_error()
        while self._drain_once():
            pass

    def sync(self) -> None:
        """Flush pending operations and drain the delta completely — the
        point where concurrent mode's visible state and base snapshot
        coincide (benchmark epilogues, checkpoints, shutdown)."""
        self.flush()
        self.drain(wait=True)

    def close(self) -> None:
        """Finish background work (drains the delta in concurrent mode)."""
        self.sync()


__all__ = ["EpochManager", "DEFAULT_DRAIN_THRESHOLD"]
