"""Epoch manager: safe interleaving of query and update phases.

The paper's scenario is phase-based (§3.2): the GPU serves queries against
an immutable snapshot while the CPU accumulates updates; a batch boundary
swaps in the new structure.  :class:`EpochManager` packages that
discipline so applications do not have to hand-roll it:

* readers call :meth:`search_batch` / :meth:`range_search` at any time
  from any thread — each call pins the *current* snapshot for its whole
  duration (queries never observe a half-applied batch);
* writers call :meth:`submit` to enqueue operations; :meth:`flush` (or
  crossing ``batch_capacity``) applies them as one §3.2.2 batch and
  atomically publishes the new snapshot;
* :attr:`epoch` counts published snapshots — readers can detect staleness
  cheaply.

This is deliberately *not* a concurrent B+tree: it is the batch-update
contract of the paper, enforced.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SearchConfig, UpdateConfig
from repro.core.tree import HarmoniaTree
from repro.core.update import BatchResult, Operation
from repro.errors import ConfigError
from repro.utils.validation import ensure_positive


class EpochManager:
    """Snapshot-per-epoch wrapper around a :class:`HarmoniaTree`."""

    def __init__(
        self,
        tree: HarmoniaTree,
        batch_capacity: int = 1 << 16,
        update_config: Optional[UpdateConfig] = None,
    ) -> None:
        self._tree = tree
        self.batch_capacity = ensure_positive("batch_capacity", batch_capacity)
        self.update_config = update_config or UpdateConfig()
        self._pending: List[Operation] = []
        self._write_lock = threading.Lock()  # serializes writers + flush
        self._publish_lock = threading.Lock()  # guards snapshot swap
        self._epoch = 0

    # ---------------------------------------------------------------- reads

    @property
    def epoch(self) -> int:
        return self._epoch

    def pending_operations(self) -> int:
        with self._write_lock:
            return len(self._pending)

    def occupancy(self) -> float:
        """Leaf-slot occupancy of the current snapshot in ``[0, 1]``.

        The observable behind the gapped mode's watermark policy
        (``UpdateConfig(mode="gapped")``): in-place absorption lets
        occupancy drift between flushes — inserts consume per-leaf slack,
        deletes leave gaps — and the executor schedules a compaction
        epoch once it sinks below ``update_config.occupancy_low`` (or the
        per-leaf under/overflow fraction crosses
        ``update_config.gap_watermark``).  Exposed here so operators can
        watch the drift (also surfaced as the ``layout.occupancy`` obs
        gauge) without reaching into layout internals.  Returns 1.0 for
        an empty tree (nothing to compact).
        """
        with self._publish_lock:
            layout = self._tree._layout
        return layout.occupancy() if layout is not None else 1.0

    def compaction_pending(self) -> float:
        """Fraction of leaves the gapped executor would enqueue for
        compaction right now (under the B+tree minimum or packed full) —
        the other input to the watermark policy; see :meth:`occupancy`.
        Returns 0.0 for an empty tree."""
        with self._publish_lock:
            layout = self._tree._layout
        if layout is None or layout.n_leaves == 0:
            return 0.0
        counts = layout.leaf_key_counts(copy=False)
        min_leaf = (layout.fanout - 1 + 1) // 2
        pending = counts >= layout.slots
        if counts.size > 1:
            pending = pending | (counts < min_leaf)
        return int(np.count_nonzero(pending)) / counts.size

    def _snapshot(self) -> HarmoniaTree:
        # The tree's layout reference is swapped atomically under the
        # publish lock; pinning = grabbing the current layout object.
        with self._publish_lock:
            layout = self._tree._layout
            fill = self._tree._fill
        pinned = HarmoniaTree(layout, fill=fill,
                              search_config=self._tree.search_config)
        return pinned

    def search(self, key: int) -> Optional[int]:
        return self._snapshot().search(key)

    def search_batch(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> np.ndarray:
        return self._snapshot().search_batch(queries, config)

    def search_many(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> np.ndarray:
        """Engine-path batched lookup against the pinned snapshot."""
        return self._snapshot().search_many(queries, config)

    def range_search(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        return self._snapshot().range_search(lo, hi)

    def range_search_batch(
        self, los: Sequence[int], his: Sequence[int]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch of range scans, all against one pinned snapshot."""
        return self._snapshot().range_search_batch(los, his)

    def __len__(self) -> int:
        with self._publish_lock:
            return len(self._tree)

    # --------------------------------------------------------------- writes

    def submit(self, op: Operation) -> Optional[BatchResult]:
        """Enqueue one operation; auto-flushes when the batch fills.

        Returns the flush's :class:`BatchResult` when one happened, else
        ``None`` — callers that care about durability call :meth:`flush`.
        """
        if not isinstance(op, Operation):
            raise ConfigError(f"submit() takes an Operation, got {type(op).__name__}")
        with self._write_lock:
            self._pending.append(op)
            if len(self._pending) >= self.batch_capacity:
                return self._flush_locked()
        return None

    def submit_many(self, ops: Sequence[Operation]) -> List[BatchResult]:
        """Enqueue many operations; returns the results of any auto-flushes."""
        results: List[BatchResult] = []
        with self._write_lock:
            for op in ops:
                self._pending.append(op)
                if len(self._pending) >= self.batch_capacity:
                    results.append(self._flush_locked())
        return results

    def flush(self) -> Optional[BatchResult]:
        """Apply all pending operations as one batch and publish the new
        snapshot.  No-op (returns ``None``) when nothing is pending."""
        with self._write_lock:
            if not self._pending:
                return None
            return self._flush_locked()

    def _flush_locked(self) -> BatchResult:
        ops = self._pending
        self._pending = []
        # Snapshot isolation: readers keep querying their pinned (old)
        # snapshot while the batch runs; publication is a single reference
        # swap.  The scalar §3.2.2 path edits the key/value regions in
        # place and therefore needs a copy-on-write clone; the vectorized
        # and gapped pipelines never mutate their input layout (gapped
        # absorbs into a private working copy), so the copy is skipped.
        with self._publish_lock:
            current = self._tree._layout
            fill = self._tree._fill
        needs_copy = self.update_config.mode == "scalar"
        shadow = HarmoniaTree(
            current.copy() if (current is not None and needs_copy) else current,
            fill=fill,
            search_config=self._tree.search_config,
        )
        shadow._empty_fanout = self._tree._empty_fanout
        result = shadow.apply_batch(ops, self.update_config)
        with self._publish_lock:
            self._tree._layout = shadow._layout
            self._epoch += 1
        return result


__all__ = ["EpochManager"]
