"""Partially-Sorted Aggregation — PSA (paper §4.1).

Queries arriving in a time window are *partially* sorted before being issued
to the search kernel: a stable radix sort on only the most-significant ``N``
bits.  Adjacent queries then (very likely) share tree paths, so the loads a
warp issues fall into few cache lines — the coalescing win of a full sort at
a fraction of its cost (Figures 6 and 8).

Equation 2 picks ``N``: with ``B``-bit keys, tree size ``T`` and ``K`` keys
per cache line, keys within one cache line cover a key-range of about
``2^B / T * K``, i.e. its low ``log2(2^B / T * K)`` bits don't need sorting:

    N  =  B - log2(2^B / T * K)  =  log2(T / K)

(e.g. B=64, T=2^23, K=16 → N = 19, the paper's §4.1.2 example).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

import repro.obs as obs
from repro.constants import KEY_BITS
from repro.errors import ConfigError
from repro.sort.radix import (
    RadixSortResult,
    partial_radix_argsort,
    partial_sort_cost,
    full_sort_cost,
)
from repro.utils.validation import ensure_key_array, ensure_positive


def adaptive_sort_bits(
    keys_sample: np.ndarray,
    tree_size: int,
    keys_per_cacheline: int = 16,
    key_bits: int = KEY_BITS,
) -> int:
    """Density-aware refinement of Equation 2.

    The paper notes its analysis "is conservative because we suppose the
    key value is full in its space" (§4.1.2): when stored keys occupy only
    a fraction of the key range, a cache line's keys cover a *wider* slice
    of the space than ``2^B / T * K``, so fewer sorted bits suffice.  This
    estimates the effective per-line coverage from a sample's empirical
    span instead of assuming a full space:

        N = ceil(log2(span / (span/T * K)))  =  log2(T / K)

    anchored at the sample's actual span rather than ``2^B`` — i.e. the
    same N but counted from the top of the *occupied* range, which is
    what decides which bits are worth sorting.
    """
    sample = np.asarray(keys_sample)
    if sample.size < 2:
        return 0
    span = int(sample.max()) - int(sample.min())
    if span <= 0:
        return 0
    effective_bits = max(span.bit_length(), 1)
    n = optimal_sort_bits(tree_size, keys_per_cacheline, key_bits)
    return int(min(n, effective_bits))


def optimal_sort_bits(
    tree_size: int,
    keys_per_cacheline: int = 16,
    key_bits: int = KEY_BITS,
) -> int:
    """Equation 2: bits to sort so that unsorted residue stays within one
    cache line's key coverage.

    ``keys_per_cacheline`` defaults to 16 (128-byte line / 8-byte keys).
    The result is clamped to ``[0, key_bits]`` — tiny trees need no sorting
    at all, and trees larger than ``2^B`` cannot exist.
    """
    tree_size = ensure_positive("tree_size", tree_size)
    keys_per_cacheline = ensure_positive("keys_per_cacheline", keys_per_cacheline)
    n = math.log2(tree_size) - math.log2(keys_per_cacheline)
    return int(min(max(0.0, math.ceil(n)), key_bits))


def _non_decreasing(arr: np.ndarray) -> bool:
    """O(n) sortedness check of the issued batch (the PSA metadata)."""
    if arr.size <= 1:
        return True
    return bool(np.all(arr[1:] >= arr[:-1]))


@dataclass(frozen=True)
class PSABatch:
    """A query batch prepared for issue.

    ``queries`` is the (partially) sorted batch actually fed to the kernel;
    ``order`` maps issue position → original position.  Callers recover
    result alignment either with :meth:`scatter_restore` (one direct
    scatter through ``order``, the cheap path) or by gathering through the
    lazily-built :attr:`restore` inverse permutation.
    ``sort_passes`` is the radix pass count (cost-model unit); ``sort_cost``
    the modeled element-pass cost.
    """

    queries: np.ndarray
    order: np.ndarray
    bits_sorted: int
    sort_passes: int
    sort_cost: float
    #: Whether ``queries`` is globally non-decreasing in issue order — the
    #: sortedness metadata the frontier compactor
    #: (:class:`repro.core.engine.BatchQueryEngine`) consumes: a sorted
    #: batch guarantees the per-level frontier is run-length encoded, an
    #: unsorted one merely tends to be (top ``bits_sorted`` bits grouped).
    issue_sorted: bool = False

    @property
    def n(self) -> int:
        return int(self.queries.size)

    @property
    def restore(self) -> np.ndarray:
        """Inverse of ``order``: ``results_original = kernel_results[restore]``.

        Built lazily and cached — the hot paths restore with
        :meth:`scatter_restore` and never materialize it.
        """
        cached = self.__dict__.get("_restore")
        if cached is None:
            cached = np.empty_like(self.order)
            cached[self.order] = np.arange(self.order.size, dtype=self.order.dtype)
            object.__setattr__(self, "_restore", cached)
        return cached

    def scatter_restore(
        self, results: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Scatter issue-order ``results`` back to arrival order.

        ``out[order] = results`` is a single fancy-index store — it never
        builds the inverse permutation, unlike the gather
        ``results[restore]``, so it is the restore path the engine and the
        streaming executor use.  ``out`` (when given) must be a distinct
        buffer of the batch size; it is written in full and returned.
        """
        if results.shape != self.order.shape:
            raise ConfigError(
                f"results shape {results.shape} != batch shape {self.order.shape}"
            )
        if out is None:
            out = np.empty_like(results)
        elif out.shape != self.order.shape:
            raise ConfigError(
                f"out shape {out.shape} != batch shape {self.order.shape}"
            )
        out[self.order] = results
        return out


def prepare_batch(
    queries: Sequence[int],
    bits: Optional[int] = None,
    tree_size: Optional[int] = None,
    keys_per_cacheline: int = 16,
    key_bits: int = KEY_BITS,
) -> PSABatch:
    """Partially sort a query batch for issue.

    Exactly one of ``bits`` (explicit) or ``tree_size`` (Equation 2) selects
    the sorted-bit count.  ``bits=0`` degenerates to the original order at
    zero cost; ``bits=key_bits`` is a complete sort — both ends are useful
    as Figure 8's baselines.
    """
    q = ensure_key_array(np.asarray(queries), "queries")
    if bits is None:
        if tree_size is None:
            raise ConfigError("provide either bits or tree_size")
        bits = optimal_sort_bits(tree_size, keys_per_cacheline, key_bits)
    elif tree_size is not None:
        raise ConfigError("bits and tree_size are mutually exclusive")
    if not 0 <= bits <= key_bits:
        raise ConfigError(f"bits must be within [0, {key_bits}], got {bits}")

    rec = obs.active
    t_start = time.perf_counter() if rec.enabled else 0.0
    res: RadixSortResult = partial_radix_argsort(q, bits=bits, key_bits=key_bits)
    order = res.order
    issued = q[order]
    if rec.enabled:
        rec.counter("psa.batches")
        rec.histogram("psa.bits_sorted", res.bits_sorted)
        if order.size > 1:
            rec.histogram(
                "psa.perm_displacement",
                float(np.abs(order - np.arange(order.size)).mean()),
            )
        rec.span_at("psa.prepare", t_start, time.perf_counter(), cat="psa",
                    n=int(q.size), bits=int(res.bits_sorted))
    return PSABatch(
        queries=issued,
        order=order,
        bits_sorted=res.bits_sorted,
        sort_passes=res.passes,
        sort_cost=partial_sort_cost(q.size, bits, key_bits=key_bits),
        issue_sorted=_non_decreasing(issued),
    )


def identity_batch(queries: Sequence[int]) -> PSABatch:
    """The no-PSA baseline: issue order = arrival order, zero sort cost."""
    q = ensure_key_array(np.asarray(queries), "queries")
    idx = np.arange(q.size, dtype=np.int64)
    rec = obs.active
    if rec.enabled:
        rec.counter("psa.batches")
        rec.histogram("psa.bits_sorted", 0)
    return PSABatch(
        queries=q, order=idx, bits_sorted=0, sort_passes=0,
        sort_cost=0.0, issue_sorted=_non_decreasing(q),
    )


def fully_sorted_batch(queries: Sequence[int], key_bits: int = KEY_BITS) -> PSABatch:
    """The complete-sort comparison point of Figure 8."""
    return prepare_batch(queries, bits=key_bits, key_bits=key_bits)


def sort_cost_ratio(bits: int, key_bits: int = KEY_BITS) -> float:
    """Partial-sort cost as a fraction of the full sort (pass-count ratio).

    For the paper's example (19 of 64 bits, 8-bit digits) this is
    3/8 ≈ 0.375 — "about 35% of the completely sorted method" (§4.1.2).
    """
    full = full_sort_cost(1, key_bits)
    if full == 0:
        return 0.0
    return partial_sort_cost(1, bits, key_bits) / full


__all__ = [
    "optimal_sort_bits",
    "adaptive_sort_bits",
    "PSABatch",
    "prepare_batch",
    "identity_batch",
    "fully_sorted_batch",
    "sort_cost_ratio",
]
