"""Frontier-compacted batch query engine — the host-side PSA payoff.

PSA (§4.1) exists so that *adjacent queries share traversal paths*: after
the partial sort, queries landing in the same node sit next to each other
in the batch.  On the GPU that adjacency becomes coalesced memory
transactions (Figure 12's ``gld_transactions`` drop); on the host path it
means the level-synchronous frontier — the array of "which node is query
``i`` visiting at level ``l``" — is (nearly) run-length encoded.  The
naive :func:`repro.core.search.search_batch` ignores this and gathers one
``fanout - 1`` key row *per query* at every level, re-reading the same
node up to ``n_queries`` times and doing O(n_queries · fanout) broadcast
comparisons.

:class:`BatchQueryEngine` compacts the frontier instead:

* at each internal level the frontier is split into **runs** of equal node
  index (one boundary scan, O(n_queries)); for a PSA-sorted batch the run
  count equals the number of *distinct* nodes visited — the CPU analog of
  the per-warp transaction count the simulator reports;
* each run issues **one** ``np.searchsorted`` of that node's key row
  against its contiguous query slice — O(run_len · log fanout) instead of
  O(run_len · fanout), and the node row is read once, not ``run_len``
  times;
* levels where runs are too short to pay for per-run dispatch (an
  unsorted batch, or a tree level wider than the batch) automatically fall
  back to the naive broadcast compare, so correctness never depends on the
  input order;
* the leaf level exploits §3.2.1's contiguous leaf block directly: all
  real leaf keys form one globally sorted array (cached per layout
  snapshot), so every query resolves with a single batched binary search —
  no per-leaf work at all.

Scratch buffers (:class:`EngineScratch`) are shape-sticky: repeated
batches of the same size reuse every internal buffer, so the steady-state
hot loop allocates only the output array and the (tiny) per-level run
index.  For large batches the engine can shard the (contiguous,
locality-preserving) query range over a thread pool — NumPy's kernels
release the GIL, so chunks traverse in parallel.

The engine reports :class:`EngineStats` with ``unique_nodes_per_level``,
the counter that corresponds to the simulator's ``gld_transactions``
(fewer distinct nodes touched per level ⇒ fewer memory transactions on
the device, Figure 12).  By the disjoint-children property of Equation 1
the run count can only grow from one level to the next, so the counter is
monotonically non-decreasing down the tree.

Caching discipline: the engine binds to one :class:`HarmoniaLayout`
snapshot.  Batch updates replace the snapshot (phase semantics), so
holders re-bind by identity check — see
:meth:`repro.core.tree.HarmoniaTree.engine`.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.constants import KEY_MAX, NOT_FOUND, VALUE_DTYPE
from repro.core.layout import HarmoniaLayout
from repro.errors import ConfigError
from repro.utils.validation import ensure_key_array

_clock = time.perf_counter

#: Minimum mean run length for the grouped (per-run ``searchsorted``) path
#: to beat the broadcast compare at a level; below it the per-run NumPy
#: dispatch overhead dominates and the engine falls back.
DEFAULT_GROUP_THRESHOLD = 8

#: Batches smaller than this are not worth sharding across threads.
DEFAULT_MIN_PARALLEL = 1 << 15


@dataclass(frozen=True)
class EngineStats:
    """Execution record of one :meth:`BatchQueryEngine.execute` call.

    ``unique_nodes_per_level[l]`` counts the frontier *runs* at level
    ``l`` — for a PSA-grouped batch exactly the distinct nodes visited,
    the host-side analog of the simulator's ``gld_transactions`` (summed
    across shards in the threaded mode).  ``grouped_levels`` /
    ``broadcast_levels`` count level executions taken by each strategy.
    """

    n_queries: int
    height: int
    unique_nodes_per_level: np.ndarray  # (height,) int64
    grouped_levels: int
    broadcast_levels: int
    n_chunks: int
    issue_sorted: Optional[bool]  #: PSA metadata, None when unknown
    #: Broadcast level executions that swept only the NTG scan window
    #: (a multiple of that level's degree) instead of the full row.
    capped_levels: int = 0
    #: True when the batch ran through the monotone dual-walk path
    #: (:meth:`BatchQueryEngine.execute_hinted`): the frontier carries
    #: lower-bound hints instead of per-query node indices.
    hinted: bool = False

    @property
    def total_node_reads(self) -> int:
        """Distinct node-row reads the compacted traversal performed."""
        return int(self.unique_nodes_per_level.sum())

    @property
    def naive_node_reads(self) -> int:
        """Row reads the naive per-query traversal would have performed."""
        return int(self.n_queries) * int(self.height)

    @property
    def compaction_ratio(self) -> float:
        """How many times fewer node reads than the naive path (>= 1)."""
        reads = self.total_node_reads
        if reads == 0:
            return 1.0
        return self.naive_node_reads / reads

    def record_to(self, rec, start_s: Optional[float] = None,
                  end_s: Optional[float] = None) -> None:
        """Publish this execution record into an obs recorder.

        The stats object stays the per-call view; the registry is the
        shared export path (snapshots, reports, diffs).  Called once per
        batch, after all arrays are computed — nothing here touches the
        traversal loops.
        """
        rec.counter("engine.batches")
        rec.counter("engine.queries", self.n_queries)
        rec.counter("engine.levels.grouped", self.grouped_levels)
        rec.counter("engine.levels.broadcast", self.broadcast_levels)
        rec.counter("engine.levels.capped", self.capped_levels)
        if self.hinted:
            rec.counter("engine.hinted_batches")
        rec.counter("engine.node_reads", self.total_node_reads)
        rec.counter("engine.chunks", self.n_chunks)
        nq = self.n_queries
        for lvl in range(self.height):
            u = int(self.unique_nodes_per_level[lvl])
            rec.counter(f"engine.unique_nodes.l{lvl}", u)
            if u > 0 and nq > 0:
                rec.histogram("engine.run_length", nq / u)
        if start_s is not None and end_s is not None:
            rec.span_at(
                "engine.execute", start_s, end_s, cat="engine",
                nq=nq, chunks=self.n_chunks,
                issue_sorted=self.issue_sorted,
            )


class EngineScratch:
    """Shape-sticky named buffer pool.

    ``array(name, shape)`` returns the cached buffer when the shape and
    dtype match the previous request under that name, else allocates a
    replacement — so repeated batches of the same shape allocate nothing.
    Each worker thread owns its own scratch; buffers are never shared.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def array(
        self,
        name: str,
        shape: Union[int, Tuple[int, ...]],
        dtype=np.int64,
    ) -> np.ndarray:
        if isinstance(shape, int):
            shape = (shape,)
        shape = tuple(int(s) for s in shape)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != np.dtype(dtype):
            buf = np.empty(shape, dtype=dtype)
            self._buffers[name] = buf
        return buf

    @property
    def nbytes(self) -> int:
        return sum(int(b.nbytes) for b in self._buffers.values())

    def clear(self) -> None:
        self._buffers.clear()


class BatchQueryEngine:
    """Frontier-compacted point-lookup engine over one layout snapshot.

    Drop-in accelerated replacement for
    :func:`repro.core.search.search_batch` (bit-identical results on any
    query order); fastest when the batch went through PSA first.

    ``n_workers > 1`` shards large batches into contiguous chunks over a
    thread pool (chunking preserves the PSA adjacency inside each shard).
    ``group_threshold`` tunes the per-level grouped-vs-broadcast cutover.
    """

    def __init__(
        self,
        layout: HarmoniaLayout,
        n_workers: int = 1,
        min_parallel: int = DEFAULT_MIN_PARALLEL,
        group_threshold: int = DEFAULT_GROUP_THRESHOLD,
    ) -> None:
        if not isinstance(layout, HarmoniaLayout):
            raise ConfigError("BatchQueryEngine needs a HarmoniaLayout")
        if n_workers < 1:
            raise ConfigError(f"n_workers must be >= 1, got {n_workers}")
        if min_parallel < 1:
            raise ConfigError(f"min_parallel must be >= 1, got {min_parallel}")
        if group_threshold < 1:
            raise ConfigError(
                f"group_threshold must be >= 1, got {group_threshold}"
            )
        self.layout = layout
        self.n_workers = int(n_workers)
        self.min_parallel = int(min_parallel)
        self.group_threshold = int(group_threshold)
        self._scratch = [EngineScratch() for _ in range(self.n_workers)]
        self._packed_keys: Optional[np.ndarray] = None
        self._packed_values: Optional[np.ndarray] = None
        self.last_stats: Optional[EngineStats] = None

    @property
    def scratch_nbytes(self) -> int:
        """Bytes currently held by the shape-sticky scratch pools — the
        resident traversal footprint the tile scheduler budgets against
        (the packed leaf block is part of the layout snapshot, not the
        per-batch footprint)."""
        return sum(s.nbytes for s in self._scratch)

    # ------------------------------------------------------------ leaf block

    def _packed_leaves(self) -> Tuple[np.ndarray, np.ndarray]:
        """The contiguous leaf block with sentinel pads squeezed out.

        §3.2.1's point: leaves are one consecutive array, so the real leaf
        keys are globally sorted once the ``KEY_MAX`` pads between rows are
        removed.  Built once per layout snapshot, O(n_keys).
        """
        if self._packed_keys is None:
            layout = self.layout
            leaf_keys = layout.leaf_keys.ravel()
            mask = leaf_keys != KEY_MAX
            self._packed_keys = np.ascontiguousarray(leaf_keys[mask])
            self._packed_values = np.ascontiguousarray(
                layout.leaf_values.ravel()[mask]
            )
        return self._packed_keys, self._packed_values

    def share_packed_leaves(self, other: "BatchQueryEngine") -> None:
        """Adopt ``other``'s packed leaf block instead of rebuilding it.

        The packed arrays are immutable once built (phase semantics: batch
        updates swap the whole layout snapshot), so engines over the *same*
        snapshot can share them safely — the streaming path spins up one
        engine per call for thread safety and this keeps that O(1) instead
        of O(n_keys).
        """
        if other.layout is not self.layout:
            raise ConfigError(
                "share_packed_leaves requires the same layout snapshot"
            )
        other._packed_leaves()
        self._packed_keys = other._packed_keys
        self._packed_values = other._packed_values

    # ------------------------------------------------------------- execution

    def execute(
        self,
        queries,
        issue_sorted: Optional[bool] = None,
        out: Optional[np.ndarray] = None,
        chunk_quantum: int = 1,
        overlay=None,
        scan_widths=None,
    ) -> np.ndarray:
        """Batch point lookup; values aligned with ``queries`` as given
        (no PSA restore — use :meth:`execute_prepared` for that).

        ``issue_sorted`` is the PSA metadata hint recorded in the stats;
        correctness never depends on it (runs are detected per level).
        ``out`` lets callers supply the result buffer (the streaming
        executor's per-slot scratch); it must match the batch size and is
        overwritten in full.  ``chunk_quantum`` aligns thread-shard
        boundaries to a multiple of the NTG cohort (§4.2): queries the
        narrowed groups would serve in one warp stay in one chunk, so the
        split never severs a PSA run mid-cohort.  With per-level degrees
        the cohort is ``warp_size // min(ntg_degrees)`` — the quantum must
        cover the *widest* cohort any level forms, i.e. the narrowest
        degree.  Results are identical for any quantum.  ``scan_widths``
        (per level, from :func:`repro.core.ntg.level_scan_widths`) caps the
        broadcast fallback's row sweep at each internal level to that
        level's NTG window — a multiple of the level's degree — with an
        exact fix-up pass for queries that exhaust the window, so results
        never change while the common case compares a fraction of the row.
        ``overlay`` is an optional ``fn(keys, values) -> values`` post-pass
        applied to the finished batch in place — the snapshot-epoch read
        path passes :meth:`repro.core.delta.DeltaView.overlay_values` here,
        and since the overlay is elementwise by key it commutes with the
        PSA permutation.
        """
        rec = obs.active
        t_start = _clock() if rec.enabled else 0.0
        q = ensure_key_array(np.asarray(queries), "queries")
        nq = q.size
        h = self.layout.height
        if scan_widths is not None:
            scan_widths = tuple(int(w) for w in scan_widths)
            if len(scan_widths) != h:
                raise ConfigError(
                    f"scan_widths length {len(scan_widths)} != height {h}"
                )
            if any(w < 1 for w in scan_widths):
                raise ConfigError("scan_widths entries must be >= 1")
        if out is None:
            values = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
        else:
            if out.shape != (nq,) or out.dtype != np.dtype(VALUE_DTYPE):
                raise ConfigError(
                    f"out must be shape ({nq},) dtype {np.dtype(VALUE_DTYPE)}, "
                    f"got shape {out.shape} dtype {out.dtype}"
                )
            values = out
            values.fill(NOT_FOUND)
        if nq == 0:
            self.last_stats = EngineStats(
                0, h, np.zeros(h, dtype=np.int64), 0, 0, 0, issue_sorted
            )
            if rec.enabled:
                self.last_stats.record_to(rec, t_start, _clock())
            return values
        self._packed_leaves()  # build before any worker threads start

        if self.n_workers > 1 and nq >= max(self.min_parallel, self.n_workers):
            chunks = self._chunk_bounds(nq, chunk_quantum)
            with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
                futures = [
                    pool.submit(
                        self._run_chunk, q[s:e], self._scratch[i],
                        values[s:e], scan_widths,
                    )
                    for i, (s, e) in enumerate(chunks)
                ]
                parts = [f.result() for f in futures]
            uniq = np.sum([p[0] for p in parts], axis=0).astype(np.int64)
            grouped = sum(p[1] for p in parts)
            broadcast = sum(p[2] for p in parts)
            capped = sum(p[3] for p in parts)
            n_chunks = len(chunks)
        else:
            uniq, grouped, broadcast, capped = self._run_chunk(
                q, self._scratch[0], values, scan_widths
            )
            n_chunks = 1
        if overlay is not None:
            overlay(q, values)
        self.last_stats = EngineStats(
            nq, h, uniq, grouped, broadcast, n_chunks, issue_sorted, capped
        )
        if rec.enabled:
            self.last_stats.record_to(rec, t_start, _clock())
        return values

    def execute_hinted(
        self,
        queries,
        out: Optional[np.ndarray] = None,
        overlay=None,
    ) -> np.ndarray:
        """Dual-walk lookup for an **ascending** batch: each level's
        ``searchsorted`` starts from the previous frontier's lower bound.

        The monotone order inverts the per-level work: instead of
        splitting the query array into runs of equal node index (one
        ``searchsorted`` of the node's keys against each query slice),
        the frontier is carried as ``(nodes, starts)`` — one entry per
        *distinct* node — and each node's key row is searchsorted into
        its own query slice to find the child cut points.  That is
        O(frontier · fanout · log run) per level rather than
        O(n_queries), and children whose query slice is empty are pruned
        before they are ever visited — the JZ-tree dual-walk subtree
        skip: a whole subtree of ``tree_b`` is never descended when no
        probe from ``tree_a`` lands in its key range.  ``KEY_MAX`` row
        pads cut at ``e`` and so prune their children automatically.

        Values are byte-identical to :meth:`execute` on the same batch —
        the contract the join layer's hypothesis suite pins — because
        both paths resolve values with the same packed-leaf binary
        search; the level walk only determines the traversal *work*
        (and the stats the dual-walk kernel model consumes).

        Raises :class:`~repro.errors.ConfigError` when the batch is not
        ascending; callers that cannot guarantee order should use
        :meth:`execute`.  Single-threaded by design: the frontier walk
        touches O(internal nodes) rows, not O(n_queries).
        """
        rec = obs.active
        t_start = _clock() if rec.enabled else 0.0
        q = ensure_key_array(np.asarray(queries), "queries")
        nq = q.size
        h = self.layout.height
        if nq > 1 and np.any(q[1:] < q[:-1]):
            raise ConfigError(
                "execute_hinted requires an ascending (sorted) batch"
            )
        if out is None:
            values = np.full(nq, NOT_FOUND, dtype=VALUE_DTYPE)
        else:
            if out.shape != (nq,) or out.dtype != np.dtype(VALUE_DTYPE):
                raise ConfigError(
                    f"out must be shape ({nq},) dtype "
                    f"{np.dtype(VALUE_DTYPE)}, got shape {out.shape} "
                    f"dtype {out.dtype}"
                )
            values = out
            values.fill(NOT_FOUND)
        if nq == 0:
            self.last_stats = EngineStats(
                0, h, np.zeros(h, dtype=np.int64), 0, 0, 0, True,
                hinted=True,
            )
            if rec.enabled:
                self.last_stats.record_to(rec, t_start, _clock())
            return values
        self._packed_leaves()
        scratch = self._scratch[0]
        uniq = self._walk_hinted(q, scratch)

        # Leaf finish — identical to _run_chunk's packed-leaf resolve.
        pk, pv = self._packed_keys, self._packed_values
        pos = scratch.array("pos", nq)
        pos[:] = np.searchsorted(pk, q, side="left")
        np.minimum(pos, pk.size - 1, out=pos)
        found = scratch.array("found", nq, np.bool_)
        np.equal(pk[pos], q, out=found)
        values[found] = pv[pos[found]]
        if overlay is not None:
            overlay(q, values)
        self.last_stats = EngineStats(
            nq, h, uniq, max(h - 1, 0), 0, 1, True, hinted=True
        )
        if rec.enabled:
            self.last_stats.record_to(rec, t_start, _clock())
        return values

    def _walk_hinted(
        self, q: np.ndarray, scratch: EngineScratch
    ) -> np.ndarray:
        """Frontier walk of one ascending batch; returns the per-level
        distinct-node counts (the hinted analog of ``_run_chunk``'s run
        counts — here the frontier *is* the run list)."""
        layout = self.layout
        kr = layout.key_region
        ps = layout.prefix_sum
        h = layout.height
        nq = q.size
        uniq = np.zeros(h, dtype=np.int64)
        nodes = np.zeros(1, dtype=np.int64)
        starts = np.zeros(1, dtype=np.int64)
        for lvl in range(h - 1):
            uniq[lvl] = nodes.size
            ends = np.append(starts[1:], nq)
            next_nodes = []
            next_starts = []
            for j in range(nodes.size):
                s, e = int(starts[j]), int(ends[j])
                row = kr[nodes[j]]
                # Child c (slot semantics: #keys <= q) takes the probes
                # in [row[c-1], row[c]); its cut point in the slice is
                # the first probe >= row[c-1].
                cuts = s + np.searchsorted(q[s:e], row, side="left")
                bounds = np.empty(row.size + 2, dtype=np.int64)
                bounds[0] = s
                bounds[1:-1] = cuts
                bounds[-1] = e
                nonempty = np.flatnonzero(bounds[1:] > bounds[:-1])
                next_nodes.append(ps[nodes[j]] + nonempty)  # Equation 1
                next_starts.append(bounds[nonempty])
            nodes = np.concatenate(next_nodes)
            starts = np.concatenate(next_starts)
        uniq[h - 1] = nodes.size
        return uniq

    def execute_prepared(
        self, prepared, chunk_quantum: Optional[int] = None,
        overlay=None,
    ) -> np.ndarray:
        """Run a :class:`~repro.core.tree.PreparedBatch` and restore the
        results to arrival order (the full §4.1 contract).

        Restore is a direct scatter through the PSA permutation — the
        inverse permutation is never materialized.  When ``chunk_quantum``
        is not given, the batch's level-aware NTG cohort sets it
        (:attr:`~repro.core.tree.PreparedBatch.chunk_quantum`:
        ``warp_size // min(ntg_degrees)``) — the warp cohort of the
        *narrowest* level is the adjacency unit, so thread shards cut on
        cohort boundaries at every level, not just the aggregate width.
        The batch's per-level ``scan_widths`` flow into the broadcast
        fallback's capped row sweep.
        """
        if chunk_quantum is None:
            chunk_quantum = getattr(prepared, "chunk_quantum", None)
            if chunk_quantum is None:  # legacy prepared batches
                chunk_quantum = max(1, int(prepared.group_size))
        widths = getattr(prepared, "scan_widths", ()) or None
        issue = self.execute(
            prepared.psa.queries,
            issue_sorted=prepared.psa.issue_sorted,
            chunk_quantum=chunk_quantum,
            overlay=overlay,
            scan_widths=widths,
        )
        return prepared.psa.scatter_restore(issue)

    # -------------------------------------------------------------- internals

    def _chunk_bounds(self, nq: int, quantum: int = 1):
        step = -(-nq // self.n_workers)  # ceil
        if quantum > 1:
            step = -(-step // quantum) * quantum  # round up to the cohort
        return [(s, min(s + step, nq)) for s in range(0, nq, step)]

    def _run_chunk(
        self,
        q: np.ndarray,
        scratch: EngineScratch,
        out: np.ndarray,
        scan_widths=None,
    ) -> Tuple[np.ndarray, int, int, int]:
        """Traverse one contiguous query chunk, writing values into ``out``
        (a view of the shared result array).  Returns
        ``(runs_per_level, grouped_levels, broadcast_levels,
        capped_levels)``."""
        layout = self.layout
        kr = layout.key_region
        ps = layout.prefix_sum
        h = layout.height
        slots = layout.slots
        nq = q.size

        node = scratch.array("node", nq)
        tmp = scratch.array("tmp", nq)
        slot = scratch.array("slot", nq)
        node[:] = 0
        uniq = np.zeros(h, dtype=np.int64)
        grouped = broadcast = capped = 0

        for lvl in range(h - 1):
            starts = self._run_starts(node, scratch)
            uniq[lvl] = starts.size
            if starts.size * self.group_threshold <= nq:
                grouped += 1
                # One searchsorted per distinct node against its contiguous
                # query slice: the row is read once however many queries
                # share it.
                bounds = starts.tolist() + [nq]
                for j in range(starts.size):
                    s, e = bounds[j], bounds[j + 1]
                    slot[s:e] = np.searchsorted(
                        kr[node[s]], q[s:e], side="right"
                    )
            else:
                broadcast += 1
                # Runs too short to pay for per-run dispatch: per-query
                # broadcast compare.  With a per-level NTG scan width the
                # sweep covers only the level's window — the degree-aligned
                # column count the narrowed group would touch — and a
                # second exact pass fixes up the rare queries whose slot
                # saturates the window.  Rows are sorted with KEY_MAX pads,
                # so entries past the window can be <= q only when every
                # windowed entry is, which is exactly the saturation case.
                w = slots
                if scan_widths is not None:
                    w = min(int(scan_widths[lvl]), slots)
                if w < slots:
                    capped += 1
                rows = scratch.array(f"rows:{w}", (nq, w))
                mask = scratch.array(f"mask:{w}", (nq, w), np.bool_)
                np.take(kr[:, :w], node, axis=0, out=rows)
                np.less_equal(rows, q[:, None], out=mask)
                np.sum(mask, axis=1, out=slot)
                if w < slots:
                    sat = np.flatnonzero(slot == w)
                    if sat.size:
                        rest = kr[node[sat], w:]
                        slot[sat] += np.sum(
                            rest <= q[sat, None], axis=1
                        )
            np.take(ps, node, out=tmp)
            np.add(tmp, slot, out=node)  # Equation 1, vectorized

        uniq[h - 1] = self._run_starts(node, scratch).size

        # Leaf level: one batched binary search over the packed contiguous
        # leaf block (§3.2.1) resolves every query at once.
        pk, pv = self._packed_keys, self._packed_values
        pos = np.searchsorted(pk, q, side="left")
        np.minimum(pos, pk.size - 1, out=pos)
        found = scratch.array("found", nq, np.bool_)
        np.equal(pk[pos], q, out=found)
        out[found] = pv[pos[found]]  # misses keep the NOT_FOUND prefill
        return uniq, grouped, broadcast, capped

    @staticmethod
    def _run_starts(node: np.ndarray, scratch: EngineScratch) -> np.ndarray:
        """Start indices of the maximal equal-value runs of ``node``."""
        n = node.size
        if n <= 1:
            return np.zeros(n, dtype=np.int64)
        change = scratch.array("change", n - 1, np.bool_)
        np.not_equal(node[1:], node[:-1], out=change)
        inner = np.flatnonzero(change)
        starts = np.empty(inner.size + 1, dtype=np.int64)
        starts[0] = 0
        np.add(inner, 1, out=starts[1:])
        return starts


__all__ = [
    "BatchQueryEngine",
    "EngineScratch",
    "EngineStats",
    "DEFAULT_GROUP_THRESHOLD",
    "DEFAULT_MIN_PARALLEL",
]
