"""Narrowed Thread-Group traversal — NTG (paper §4.2).

Traditional GPU B+trees give every query ``fanout`` threads; most of those
comparisons are useless (Figure 9a, Figure 10).  NTG serves each query with
a smaller group of ``GS`` threads, packing ``warp_size / GS`` queries per
warp.  Narrowing trades useless comparisons for *query divergence*: one
level's time is set by the slowest group in the warp (Figure 9b).

The model (Equations 3-4):

    TP        ≈ warp_size / (GS · T),   T ∝ S  (max comparison steps)
    TP_a/TP_b ∝ (S_b / S_a) · G        (G = GS_b / GS_a = 2 per halving)

``S`` is estimated by *static profiling*: run ~1000 sample queries through
the index on the CPU, compute each query's per-level sequential comparison
count, group queries into warps exactly as the kernel would, and take the
warp-max step count.  Halve ``GS`` while the predicted ratio exceeds 1.

**Per-level degrees.**  The real CUDA Harmonia (``harmonia.cuh``) does not
stop at one global width: it tunes an ``ntg_degree[depth]`` array, one
group width per tree level, because each level has its own fanout /
occupancy / comparison profile (the root rarely needs 32 lanes; a gapped
leaf level rarely needs more than a handful).  The kernel can only *split*
groups as the frontier descends — once lanes have diverged to different
children they cannot re-merge — so the degree vector is non-increasing
with depth.  :func:`choose_level_degrees` picks the optimal such vector by
dynamic programming over the per-level profiled step costs (the same
Equation 3/4 cost model, minimized exactly under the monotone constraint
instead of greedily), and :func:`choose_group_size` attaches it to the
returned :class:`NTGSelection` next to the aggregate single-width choice.
:func:`level_scan_widths` derives from the same trace the per-level
comparison-window widths the host engine's broadcast fallback uses to
avoid sweeping whole rows (a narrowed degree means most queries resolve
within a few chunks).
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import KEY_MAX as _KEY_MAX
from repro.core.layout import HarmoniaLayout
from repro.core.search import traverse_batch
from repro.errors import ConfigError
from repro.utils.validation import ensure_positive, ensure_power_of_two

#: Sample size the paper uses for static profiling ("for example, 1000
#: queries", §4.2).
DEFAULT_PROFILE_SAMPLE = 1000


def fanout_group_size(fanout: int, warp_size: int = 32) -> int:
    """The traditional (un-narrowed) group size: ``fanout`` threads per
    query, capped at the warp (§4.2 footnote 2), rounded up to a power of
    two so groups tile a warp exactly."""
    gs = 1
    while gs < fanout:
        gs <<= 1
    return min(gs, warp_size)


def group_steps(comparisons: np.ndarray, gs: int) -> np.ndarray:
    """Comparison steps a ``gs``-thread group needs: the group sweeps the
    node's keys ``gs`` at a time with an early exit once the target child is
    identified, so ``ceil(comparisons / gs)`` steps (min 1)."""
    steps = -(-comparisons // gs)
    return np.maximum(steps, 1)


def warp_max_steps(
    comparisons: np.ndarray, gs: int, warp_size: int = 32
) -> np.ndarray:
    """Per-warp, per-level *max* step count (the serialization the SIMT
    model imposes — Equation 4's ``S``).

    ``comparisons`` is the trace matrix ``(height, n_queries)``; queries are
    packed into warps in issue order, ``warp_size // gs`` per warp.  Returns
    ``(height, n_warps)``.
    """
    warp_size = ensure_power_of_two("warp_size", warp_size)
    gs = ensure_power_of_two("gs", gs)
    if gs > warp_size:
        raise ConfigError(f"group size {gs} exceeds warp size {warp_size}")
    qpw = warp_size // gs
    h, nq = comparisons.shape
    n_warps = -(-nq // qpw)
    steps = group_steps(comparisons, gs)
    padded = np.full((h, n_warps * qpw), 1, dtype=steps.dtype)
    padded[:, :nq] = steps
    return padded.reshape(h, n_warps, qpw).max(axis=2)


@dataclass(frozen=True)
class NTGProfile:
    """Profiled behaviour of one candidate group size."""

    gs: int
    queries_per_warp: int
    #: Mean over warps of the summed per-level max steps — the model's S.
    avg_warp_steps: float
    #: Mean warp-max steps per level (diagnostics; the paper profiles only
    #: the last levels since PSA keeps upper levels coherent).
    per_level: np.ndarray

    def throughput_proxy(self, warp_size: int = 32) -> float:
        """Equation 3 up to a constant: queries per warp / S."""
        if self.avg_warp_steps <= 0:
            return float("inf")
        return self.queries_per_warp / self.avg_warp_steps


@dataclass(frozen=True)
class NTGSelection:
    """Result of the §4.2 narrowing procedure."""

    group_size: int
    profiles: List[NTGProfile] = field(default_factory=list)
    #: Equation-4 ratios observed at each halving step, aligned with
    #: ``profiles[1:]`` (ratio of profile i over profile i-1).
    ratios: List[float] = field(default_factory=list)
    #: Per-level group widths, ``harmonia.cuh``'s ``ntg_degree[depth]``:
    #: one entry per tree level, root first, non-increasing with depth
    #: (groups can split as the frontier descends but never re-merge).
    #: Empty for legacy selections built before per-level profiling.
    ntg_degrees: tuple = ()
    #: Per-level key-window widths for the host engine's broadcast
    #: fallback: the smallest multiple of that level's degree covering
    #: the 95th-percentile comparison count.  Aligned with
    #: ``ntg_degrees``; empty when per-level profiling was skipped.
    scan_widths: tuple = ()


def profile_group_size(
    comparisons: np.ndarray,
    gs: int,
    warp_size: int = 32,
    levels: Optional[int] = None,
) -> NTGProfile:
    """Profile one group size on a comparison-trace matrix.

    ``levels`` restricts the profile to the last ``levels`` tree levels
    (None = all): the paper's shortcut, valid because PSA keeps earlier
    levels path-coherent.
    """
    if levels is not None:
        levels = ensure_positive("levels", levels)
        comparisons = comparisons[-levels:]
    wmax = warp_max_steps(comparisons, gs, warp_size)
    per_level = wmax.mean(axis=1)
    return NTGProfile(
        gs=gs,
        queries_per_warp=warp_size // gs,
        avg_warp_steps=float(wmax.sum(axis=0).mean()),
        per_level=per_level,
    )


def choose_level_degrees(
    full_scan: np.ndarray,
    early_exit: np.ndarray,
    warp_size: int = 32,
    min_gs: int = 1,
    fanout_gs: Optional[int] = None,
) -> tuple:
    """Pick the optimal non-increasing per-level degree vector.

    Candidates at every level are the halving chain ``fanout_gs,
    fanout_gs/2, …, min_gs``.  A level's cost under degree ``g`` is the
    total warp-step-slot count ``warp_max_steps(c_l, g).sum()`` — the exact
    quantity Equation 3's ``S`` aggregates — using the full-scan comparison
    row at the fanout width (the traditional kernel sweeps whole nodes) and
    the early-exit row below it.  The kernel can only *split* groups as the
    frontier descends, so the vector must be non-increasing with depth;
    that constraint makes the problem a longest-chain DP rather than h
    independent argmins.  Ties break toward the wider degree (fewer splits,
    better locality).

    ``full_scan`` / ``early_exit`` are ``(height, n_queries)`` comparison
    matrices in issue order.  Returns a tuple of length ``height``.
    """
    warp_size = ensure_power_of_two("warp_size", warp_size)
    min_gs = ensure_power_of_two("min_gs", min_gs)
    if fanout_gs is None:
        fanout_gs = warp_size
    fanout_gs = ensure_power_of_two("fanout_gs", fanout_gs)
    if min_gs > fanout_gs:
        raise ConfigError(
            f"min_gs {min_gs} exceeds the fanout group size {fanout_gs}"
        )
    h = early_exit.shape[0]
    if h == 0:
        return ()
    candidates: List[int] = []
    g = fanout_gs
    while True:
        candidates.append(g)
        if g <= min_gs:
            break
        g //= 2
    ncand = len(candidates)
    cost = np.empty((h, ncand), dtype=np.float64)
    for lvl in range(h):
        for i, gs in enumerate(candidates):
            row = full_scan[lvl] if gs == fanout_gs else early_exit[lvl]
            cost[lvl, i] = float(
                warp_max_steps(row[None, :], gs, warp_size).sum()
            )
    # DP: candidates are ordered widest-first, and "non-increasing degree
    # with depth" means the candidate *index* is non-decreasing with depth.
    # best[i] = cheapest cost of levels 0..lvl with level lvl at candidate
    # i; the parent may sit at any index <= i, so a strict-improvement
    # prefix-min (ties keep the earlier = wider index) gives both the
    # transition and the wide tie-break.
    best = cost[0].copy()
    parent = np.zeros((h, ncand), dtype=np.int64)
    for lvl in range(1, h):
        running = np.inf
        arg = 0
        pref = np.empty(ncand, dtype=np.float64)
        for i in range(ncand):
            if best[i] < running:
                running = best[i]
                arg = i
            pref[i] = running
            parent[lvl, i] = arg
        best = cost[lvl] + pref
    i = int(np.argmin(best))  # first minimum → widest on ties
    degrees = [0] * h
    for lvl in range(h - 1, 0, -1):
        degrees[lvl] = candidates[i]
        i = int(parent[lvl, i])
    degrees[0] = candidates[i]
    return tuple(degrees)


def level_scan_widths(
    early_exit: np.ndarray,
    degrees: Sequence[int],
    slots: int,
    quantile: float = 0.95,
) -> tuple:
    """Per-level comparison-window widths for the broadcast fallback.

    For each level, the smallest multiple of that level's degree covering
    the ``quantile``-th percentile of the profiled early-exit comparison
    counts, capped at ``slots``.  The engine compares only the first
    ``width`` columns of each node row and runs an exact fix-up pass for
    the rare queries that exhaust the window, so results are unchanged
    while the common case touches a fraction of the row.
    """
    slots = ensure_positive("slots", slots)
    if not 0.0 < quantile <= 1.0:
        raise ConfigError(f"quantile must be in (0, 1], got {quantile}")
    h = early_exit.shape[0]
    if h != len(degrees):
        raise ConfigError(
            f"degrees length {len(degrees)} != trace height {h}"
        )
    widths: List[int] = []
    for lvl, gs in enumerate(degrees):
        row = np.asarray(early_exit[lvl])
        if row.size == 0:
            widths.append(slots)
            continue
        k = min(row.size - 1, int(quantile * row.size))
        q = int(np.partition(row, k)[k])
        w = -(-max(q, 1) // int(gs)) * int(gs)
        widths.append(min(max(w, 1), slots))
    return tuple(widths)


def choose_group_size(
    layout: HarmoniaLayout,
    sample_queries: Sequence[int],
    warp_size: int = 32,
    levels: Optional[int] = 2,
    min_gs: int = 1,
) -> NTGSelection:
    """The paper's narrowing loop: start at the fanout-based group size and
    halve while Equation 4 predicts a gain.

    ``sample_queries`` should be in *issue order* (i.e. already PSA-permuted
    when PSA is enabled) because warp composition depends on it.

    Besides the aggregate single width the selection carries the per-level
    ``ntg_degrees`` vector (:func:`choose_level_degrees`) and matching
    ``scan_widths`` (:func:`level_scan_widths`), both derived from the same
    traversal trace.
    """
    warp_size = ensure_power_of_two("warp_size", warp_size)
    min_gs = ensure_power_of_two("min_gs", min_gs)
    trace = traverse_batch(layout, sample_queries)
    # The un-narrowed baseline is the traditional fanout-wide kernel, which
    # compares *every* key in the node (no early exit — §4.2, Figure 9a);
    # narrowed groups sweep sequentially and stop at the target child.
    nkeys_per_node = np.sum(
        layout.key_region != _KEY_MAX, axis=1
    ).astype(np.int64)
    full_scan = np.maximum(nkeys_per_node[trace.node_idx], 1)
    early_exit = trace.comparisons

    gs = fanout_group_size(layout.fanout, warp_size)
    current = profile_group_size(full_scan, gs, warp_size, levels)
    profiles = [current]
    ratios: List[float] = []
    while current.gs > min_gs:
        candidate = profile_group_size(
            early_exit, current.gs // 2, warp_size, levels
        )
        # Equation 4 with G = GS_before / GS_after = 2.
        ratio = (current.avg_warp_steps / candidate.avg_warp_steps) * 2.0
        profiles.append(candidate)
        ratios.append(float(ratio))
        if ratio <= 1.0:
            break
        current = candidate
    ntg_degrees = choose_level_degrees(
        full_scan, early_exit, warp_size, min_gs, fanout_gs=gs
    )
    scan_widths = level_scan_widths(early_exit, ntg_degrees, layout.slots)
    return NTGSelection(
        group_size=current.gs,
        profiles=profiles,
        ratios=ratios,
        ntg_degrees=ntg_degrees,
        scan_widths=scan_widths,
    )


class SelectionCache:
    """Small LRU of §4.2 profiling results, keyed by layout identity.

    Profiling is per *snapshot* — the step model depends only on the
    layout's node geometry — so a selection is reusable until the snapshot
    object is replaced.  A single-slot cache (the previous design) thrashes
    whenever callers alternate between layouts, e.g.
    :class:`~repro.core.epoch.EpochManager` handing out fresh tree facades
    over a few live snapshots, or a sharded service round-robining shard
    trees.  This keeps the last ``capacity`` selections instead.

    Keys are ``(id(layout), warp_size, levels)``; the entry stores a
    ``weakref`` to the layout and :meth:`get` validates both identity and
    liveness, so a dead snapshot's recycled ``id()`` can never alias a
    stale selection and the cache never pins retired snapshots in memory.
    Thread-safe: epoch/shard readers profile concurrently.
    """

    def __init__(self, capacity: int = 8) -> None:
        ensure_positive("capacity", capacity)
        # Floor of two live layouts: the dual-tree join alternates
        # lookups between both sides in a tight loop, and a capacity-1
        # cache would re-profile on every alternation (LRU thrash).
        self.capacity = max(int(capacity), 2)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()

    def get(
        self,
        layout: HarmoniaLayout,
        warp_size: int,
        levels: Optional[int],
    ) -> Optional[NTGSelection]:
        key = (id(layout), warp_size, levels)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            ref, selection = entry
            if ref() is not layout:  # id() reuse after gc — stale entry
                del self._entries[key]
                return None
            self._entries.move_to_end(key)
            return selection

    def put(
        self,
        layout: HarmoniaLayout,
        warp_size: int,
        levels: Optional[int],
        selection: NTGSelection,
    ) -> None:
        key = (id(layout), warp_size, levels)
        with self._lock:
            self._entries[key] = (weakref.ref(layout), selection)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


#: Process-wide selection cache used by
#: :meth:`~repro.core.tree.HarmoniaTree.prepare_queries`.  Module-level
#: (not per tree) because distinct tree facades over the same snapshot —
#: the :class:`~repro.core.epoch.EpochManager` pattern — should share one
#: profile.
selection_cache = SelectionCache()


__all__ = [
    "DEFAULT_PROFILE_SAMPLE",
    "fanout_group_size",
    "group_steps",
    "warp_max_steps",
    "NTGProfile",
    "NTGSelection",
    "profile_group_size",
    "choose_level_degrees",
    "level_scan_widths",
    "choose_group_size",
    "SelectionCache",
    "selection_cache",
]
