"""Configuration dataclasses for search and update pipelines."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ConfigError
from repro.obs.registry import TraceConfig
from repro.utils.validation import ensure_positive, ensure_power_of_two


@dataclass(frozen=True)
class SearchConfig:
    """Knobs of the Harmonia query pipeline (§4).

    * ``use_psa`` / ``psa_bits``: partially-sorted aggregation.  ``psa_bits``
      of ``None`` means Equation 2 picks the bit count from the tree size;
      an explicit integer overrides it (0 = no reordering even with PSA on —
      useful for ablation sweeps).
    * ``ntg``: thread-group width.  ``"model"`` runs the §4.2 static
      profiling selection, ``"fanout"`` forces the traditional width, an
      ``int`` forces a specific power-of-two width.
    * ``warp_size`` / ``keys_per_cacheline`` describe the device assumptions
      baked into Equations 2-4 (they must agree with the
      :class:`~repro.gpusim.device.DeviceSpec` used for simulation; the
      simulator cross-checks).
    * ``profile_sample``: static-profiling sample size (paper: ~1000).
    * ``engine``: host-side batch executor behind
      :meth:`~repro.core.tree.HarmoniaTree.search_many` — ``"compacted"``
      runs the frontier-compaction engine
      (:class:`~repro.core.engine.BatchQueryEngine`), ``"naive"`` the
      per-query broadcast traversal (the test oracle).
    * ``engine_workers`` / ``engine_min_parallel``: sharded execution —
      batches of at least ``engine_min_parallel`` queries are split into
      ``engine_workers`` contiguous chunks over a thread pool.
    * ``stream_*``: the §4.1.3 streaming executor behind
      :meth:`~repro.core.tree.HarmoniaTree.search_stream`.  Traffic is cut
      into ``stream_batch``-query batches; ``stream_mode="overlap"``
      pipelines the PSA sort of batch *i+1* under the traversal of batch
      *i* on ``stream_sort_workers`` background thread(s), with
      ``stream_depth`` reusable buffer slots bounding the in-flight
      lookahead (``depth - 1`` sorts ahead).  ``"serial"`` runs the stages
      back to back per batch — the ablation baseline.
    * ``trace``: per-call observability scope
      (:class:`~repro.obs.registry.TraceConfig`).  ``None`` (the default)
      inherits the ambient recorder — the no-op singleton unless inside
      ``with obs.recording():``; ``TraceConfig(registry=...)`` routes this
      config's search calls into a private registry;
      ``TraceConfig(enabled=False)`` opts them out of any ambient
      recording.  See docs/observability.md.
    """

    use_psa: bool = True
    psa_bits: Optional[int] = None
    ntg: Union[str, int] = "model"
    warp_size: int = 32
    keys_per_cacheline: int = 16
    profile_sample: int = 1000
    #: Levels considered by NTG profiling (None = all; paper: the last few).
    ntg_profile_levels: Optional[int] = 2
    #: Use the per-level ``ntg_degrees`` vector (harmonia.cuh's
    #: ``ntg_degree[depth]``) for the engine's chunk cohort and capped
    #: scan windows.  ``False`` falls back to the single aggregate group
    #: size everywhere — the ablation baseline the hypothesis suite pins
    #: byte-identical results against.
    ntg_per_level: bool = True
    seed: int = 0x5EED
    engine: str = "compacted"
    engine_workers: int = 1
    engine_min_parallel: int = 1 << 15
    stream_batch: int = 1 << 14
    stream_depth: int = 2
    stream_sort_workers: int = 1
    stream_mode: str = "overlap"
    #: Bounded-memory tiling of each stream batch's traversal (the FPGA
    #: level-wise discipline, docs/join.md): ``None`` runs whole batches
    #: through the engine; an integer drives them through the
    #: :class:`~repro.join.tiles.TileScheduler` in tiles of this many
    #: queries, with ``stream_resident_tiles`` staging slots, so peak
    #: traversal scratch is O(tile) whatever the batch size.
    stream_tile: Optional[int] = None
    stream_resident_tiles: int = 2
    trace: Optional[TraceConfig] = None

    def __post_init__(self) -> None:
        if self.trace is not None and not isinstance(self.trace, TraceConfig):
            raise ConfigError(
                f"trace must be a TraceConfig or None, got "
                f"{type(self.trace).__name__}"
            )
        ensure_power_of_two("warp_size", self.warp_size)
        ensure_positive("keys_per_cacheline", self.keys_per_cacheline)
        ensure_positive("profile_sample", self.profile_sample)
        if self.psa_bits is not None and not 0 <= self.psa_bits <= 64:
            raise ConfigError(f"psa_bits must be in [0, 64], got {self.psa_bits}")
        if isinstance(self.ntg, str):
            if self.ntg not in ("model", "fanout"):
                raise ConfigError(f"ntg must be 'model', 'fanout' or an int power of two")
        else:
            ensure_power_of_two("ntg", self.ntg)
            if self.ntg > self.warp_size:
                raise ConfigError(
                    f"ntg={self.ntg} cannot exceed warp_size={self.warp_size}"
                )
        if self.ntg_profile_levels is not None:
            ensure_positive("ntg_profile_levels", self.ntg_profile_levels)
        if self.engine not in ("naive", "compacted"):
            raise ConfigError(
                f"engine must be 'naive'|'compacted', got {self.engine!r}"
            )
        ensure_positive("engine_workers", self.engine_workers)
        ensure_positive("engine_min_parallel", self.engine_min_parallel)
        ensure_positive("stream_batch", self.stream_batch)
        ensure_positive("stream_sort_workers", self.stream_sort_workers)
        if self.stream_mode not in ("serial", "overlap"):
            raise ConfigError(
                f"stream_mode must be 'serial'|'overlap', got {self.stream_mode!r}"
            )
        min_depth = 2 if self.stream_mode == "overlap" else 1
        if self.stream_depth < min_depth:
            raise ConfigError(
                f"stream_depth must be >= {min_depth} for "
                f"stream_mode={self.stream_mode!r}, got {self.stream_depth}"
            )
        if self.stream_tile is not None:
            ensure_positive("stream_tile", self.stream_tile)
        ensure_positive("stream_resident_tiles", self.stream_resident_tiles)

    # Convenience presets matching the paper's ablation (Figure 13).
    @classmethod
    def baseline_tree(cls) -> "SearchConfig":
        """Harmonia layout only: no PSA, traditional thread groups."""
        return cls(use_psa=False, ntg="fanout")

    @classmethod
    def tree_psa(cls) -> "SearchConfig":
        """Layout + PSA (Figure 13's third bar)."""
        return cls(use_psa=True, ntg="fanout")

    @classmethod
    def full(cls) -> "SearchConfig":
        """Layout + PSA + NTG — the complete Harmonia."""
        return cls(use_psa=True, ntg="model")

    def with_(self, **kwargs) -> "SearchConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class UpdateConfig:
    """Knobs of the CPU batch-update pipeline (§3.2.2).

    ``mode`` selects the batch executor: ``"vectorized"`` (the default)
    runs the plan/apply/movement pipeline of
    :mod:`repro.core.update_plan` — whole-batch leaf routing, grouped
    in-place application, array-built movement; ``"scalar"`` runs the
    per-operation reference path
    (:class:`~repro.core.update.BatchUpdater`, Algorithm 1 locking per
    op).  The two are equivalent: byte-identical layouts and identical
    accounting, hypothesis-pinned (docs/update.md).  ``"gapped"`` runs
    :class:`~repro.core.update_plan.GappedBatchUpdater`: updates and
    gap-absorbable inserts/deletes scatter into per-leaf slack in place
    and the movement rebuild is demoted to a rare compaction epoch —
    *result*-equivalent to the other two (identical query results and
    accounting; the physical layout differs by design, see
    docs/update.md).

    ``n_threads`` sizes the worker pool — per-op workers under
    Algorithm 1 locking in scalar mode, per-leaf-group replay shards in
    vectorized mode; ``rebuild_policy`` controls when the post-batch
    movement runs ("always" after every batch, or "threshold" once dirty
    leaves exceed ``rebuild_threshold`` of all leaves).

    Gapped-mode knobs (ignored by the other modes):

    * ``gap_watermark`` — a compaction epoch runs once the fraction of
      leaves pending compaction (underflowed past the B+tree minimum or
      filled to the brim) exceeds this;
    * ``occupancy_low`` — epoch trigger on global leaf-slot occupancy
      falling below this (delete-heavy drift);
    * ``plan_window`` — oversized batches stream through the planner in
      windows of this many operations, so routing/scatter scratch stays
      cache-resident instead of scaling with the batch.
    """

    n_threads: int = 4
    rebuild_policy: str = "always"
    rebuild_threshold: float = 0.1
    mode: str = "vectorized"
    gap_watermark: float = 0.10
    occupancy_low: float = 0.35
    plan_window: int = 1 << 16

    def __post_init__(self) -> None:
        ensure_positive("n_threads", self.n_threads)
        if self.rebuild_policy not in ("always", "threshold"):
            raise ConfigError(
                f"rebuild_policy must be 'always'|'threshold', got {self.rebuild_policy!r}"
            )
        if not 0.0 < self.rebuild_threshold <= 1.0:
            raise ConfigError("rebuild_threshold must be in (0, 1]")
        if self.mode not in ("vectorized", "scalar", "gapped"):
            raise ConfigError(
                f"mode must be 'vectorized'|'scalar'|'gapped', got {self.mode!r}"
            )
        if not 0.0 < self.gap_watermark <= 1.0:
            raise ConfigError("gap_watermark must be in (0, 1]")
        if not 0.0 <= self.occupancy_low < 1.0:
            raise ConfigError("occupancy_low must be in [0, 1)")
        ensure_positive("plan_window", self.plan_window)


__all__ = ["SearchConfig", "UpdateConfig"]
