""":class:`HarmoniaTree` — the user-facing Harmonia index.

Glues the pieces together the way the paper's system does:

* queries run over the immutable :class:`~repro.core.layout.HarmoniaLayout`
  snapshot through the PSA → search → restore pipeline (§4.1) with the NTG
  group size chosen by static profiling (§4.2) — the group size matters for
  the simulated-GPU execution (:func:`repro.gpusim.kernels.simulate_search`)
  and is recorded on every :class:`PreparedBatch` so benches and the
  simulator agree on the kernel configuration;
* updates are collected into batches, applied by
  :class:`~repro.core.update.BatchUpdater` under Algorithm 1 locking, and
  folded into a fresh layout by the movement pass.

The phase discipline is the paper's: a batch update replaces the layout
snapshot, queries always run against the latest snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

import repro.obs as obs
from repro.constants import DEFAULT_FANOUT, NOT_FOUND
from repro.core.config import SearchConfig, UpdateConfig
from repro.core.engine import BatchQueryEngine, EngineStats
from repro.core.layout import HarmoniaLayout
from repro.core.ntg import (
    NTGSelection,
    choose_group_size,
    fanout_group_size,
    selection_cache,
)
from repro.core.psa import PSABatch, identity_batch, prepare_batch
from repro.core.search import (
    range_search_batch as _range_search_batch,
    search_batch as _search_batch,
    search_scalar,
)
from repro.core.update import BatchResult, BatchUpdater, Operation
from repro.core.update_plan import GappedBatchUpdater, VectorizedBatchUpdater
from repro.errors import EmptyTreeError
from repro.utils.validation import ensure_key_array, ensure_scalar_key


def _profile_sample(
    queries: np.ndarray, target: int, warp_size: int
) -> np.ndarray:
    """Representative §4.2 profiling sample: contiguous warp-sized blocks
    spread evenly across the issue stream.

    A sorted-*prefix* sample (the obvious ``queries[:target]``) sees only
    the leftmost subtree of a PSA-sorted batch, so upper-level comparison
    profiles collapse toward slot 0 and both the degree DP and the scan
    widths mis-estimate badly.  Evenly spaced blocks cover the whole key
    range while keeping each block's local warp composition intact, and —
    because the blocks are taken in stream order and never overlap — a
    sorted input stays sorted.
    """
    n = queries.size
    if n <= target:
        return queries
    block = 4 * warp_size
    nblocks = max(1, target // block)
    if nblocks == 1:
        return queries[:target]
    starts = np.linspace(0, n - block, nblocks).astype(np.int64)
    idx = (
        starts[:, None] + np.arange(block, dtype=np.int64)[None, :]
    ).ravel()
    return queries[idx]


@dataclass(frozen=True)
class PreparedBatch:
    """A query batch after the §4 preprocessing, ready for the kernel.

    Carries everything the simulator / benches need to execute it exactly
    as configured: the issue-order queries, the PSA bookkeeping, the
    aggregate thread-group size and — when per-level NTG is on — the
    ``ntg_degrees[depth]`` vector plus the matching engine scan windows.
    """

    psa: PSABatch
    group_size: int
    ntg_selection: Optional[NTGSelection]
    #: Per-level group widths (root first, non-increasing); empty when
    #: per-level NTG is disabled.
    ntg_degrees: Tuple[int, ...] = ()
    #: Per-level broadcast scan windows aligned with ``ntg_degrees``;
    #: empty when unprofiled (explicit/fanout widths) or disabled.
    scan_widths: Tuple[int, ...] = ()
    warp_size: int = 32

    @property
    def queries(self) -> np.ndarray:
        return self.psa.queries

    @property
    def chunk_quantum(self) -> int:
        """Thread-shard alignment unit for the host engine.

        With per-level degrees a warp serves ``warp_size // gs_l`` queries
        at level ``l``; the chunk split must keep the *largest* cohort any
        level forms intact, i.e. the one at the narrowest degree.  Without
        degrees this falls back to the legacy aggregate group size (which
        over-chunks skewed trees — the level-aware path fixes that).
        """
        if self.ntg_degrees:
            return max(1, self.warp_size // min(self.ntg_degrees))
        return max(1, int(self.group_size))


class HarmoniaTree:
    """High-throughput batched B+tree index (Harmonia, PPoPP '19).

    >>> t = HarmoniaTree.from_sorted(range(0, 1000, 2))
    >>> int(t.search(4))
    4
    >>> t.search(5) is None
    True
    """

    def __init__(
        self,
        layout: Optional[HarmoniaLayout],
        fill: float = 1.0,
        search_config: Optional[SearchConfig] = None,
    ) -> None:
        self._layout = layout
        self._fill = fill
        self.search_config = search_config or SearchConfig()
        if layout is not None:
            # Remember the branching factor so a tree that is emptied and
            # re-populated keeps its configuration.
            self._empty_fanout = layout.fanout

    # ------------------------------------------------------------- builders

    @classmethod
    def from_sorted(
        cls,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
        search_config: Optional[SearchConfig] = None,
    ) -> "HarmoniaTree":
        """Bulk-build from strictly increasing keys (the evaluation path)."""
        karr = ensure_key_array(np.asarray(keys))
        if karr.size == 0:
            return cls(None, fill=fill, search_config=search_config)
        layout = HarmoniaLayout.from_sorted(karr, values, fanout=fanout, fill=fill)
        return cls(layout, fill=fill, search_config=search_config)

    @classmethod
    def empty(
        cls,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
        search_config: Optional[SearchConfig] = None,
    ) -> "HarmoniaTree":
        tree = cls(None, fill=fill, search_config=search_config)
        tree._empty_fanout = fanout
        return tree

    _empty_fanout: int = DEFAULT_FANOUT
    #: Cached frontier-compaction engine (rebound on snapshot replacement).
    _engine: Optional[BatchQueryEngine] = None
    #: Optional pinned :class:`~repro.core.delta.DeltaView` overlay.  Set
    #: by :meth:`~repro.core.epoch.EpochManager._snapshot` in concurrent
    #: mode: every read path consults snapshot-then-delta (last wins,
    #: tombstones mask to NOT_FOUND).  A tree carrying a delta is a
    #: read-only view — :meth:`apply_batch` refuses it.
    delta = None
    # NTG selections live in the module-level
    # :data:`repro.core.ntg.selection_cache` LRU (weakref-validated, keyed
    # by layout identity), so they are shared across tree facades over the
    # same snapshot and evicted naturally — no per-tree invalidation.

    # ------------------------------------------------------------ properties

    @property
    def layout(self) -> HarmoniaLayout:
        if self._layout is None:
            raise EmptyTreeError("tree is empty; no layout snapshot exists")
        return self._layout

    @property
    def fanout(self) -> int:
        return self._layout.fanout if self._layout is not None else self._empty_fanout

    @property
    def height(self) -> int:
        return self._layout.height if self._layout is not None else 0

    def __len__(self) -> int:
        base = self._layout.n_keys if self._layout is not None else 0
        return base + (self.delta.net if self.delta is not None else 0)

    def __contains__(self, key: int) -> bool:
        return self.search(key) is not None

    # --------------------------------------------------------------- queries

    def search(self, key: int) -> Optional[int]:
        """Single-key lookup (CPU scalar path)."""
        key = ensure_scalar_key(key)
        if self.delta is not None:
            hit = self.delta.lookup(key)
            if hit is not None:
                tombstoned, value = hit
                return None if tombstoned else value
        if self._layout is None:
            return None
        return search_scalar(self._layout, key)

    def prepare_queries(
        self, queries: Sequence[int], config: Optional[SearchConfig] = None
    ) -> PreparedBatch:
        """Run the §4 front half: PSA reordering + NTG group-size choice."""
        cfg = config or self.search_config
        layout = self.layout
        q = ensure_key_array(np.asarray(queries), "queries")

        if cfg.use_psa:
            # Equation 2's B is the *effective* key-space width: sorting
            # bits above the data's range would order nothing, so the sort
            # window is anchored at the top of the stored key range.
            space_bits = layout.key_space_bits()
            if cfg.psa_bits is not None:
                psa = prepare_batch(
                    q, bits=min(cfg.psa_bits, space_bits), key_bits=space_bits
                )
            else:
                psa = prepare_batch(
                    q,
                    tree_size=max(layout.n_keys, 1),
                    keys_per_cacheline=cfg.keys_per_cacheline,
                    key_bits=space_bits,
                )
        else:
            psa = identity_batch(q)

        selection: Optional[NTGSelection] = None
        profile_s: Optional[float] = None
        if isinstance(cfg.ntg, int):
            gs = cfg.ntg
        elif cfg.ntg == "fanout":
            gs = fanout_group_size(layout.fanout, cfg.warp_size)
        else:  # "model" — static profiling on a sample of the issue stream
            # §4.2 profiling is per snapshot, not per batch: the step model
            # depends on the layout's node geometry, so the first batch's
            # selection is reused (via the module LRU) until the snapshot
            # is replaced or evicted.
            cached = selection_cache.get(
                layout, cfg.warp_size, cfg.ntg_profile_levels
            )
            if cached is not None:
                selection = cached
                gs = selection.group_size
            else:
                sample = _profile_sample(
                    psa.queries, min(cfg.profile_sample, psa.n),
                    cfg.warp_size,
                )
                if sample.size == 0:
                    gs = fanout_group_size(layout.fanout, cfg.warp_size)
                else:
                    t0 = time.perf_counter()
                    selection = choose_group_size(
                        layout,
                        sample,
                        warp_size=cfg.warp_size,
                        levels=cfg.ntg_profile_levels,
                    )
                    profile_s = time.perf_counter() - t0
                    gs = selection.group_size
                    selection_cache.put(
                        layout, cfg.warp_size, cfg.ntg_profile_levels,
                        selection,
                    )

        degrees: Tuple[int, ...] = ()
        widths: Tuple[int, ...] = ()
        if cfg.ntg_per_level:
            if selection is not None and selection.ntg_degrees:
                degrees = tuple(selection.ntg_degrees)
                widths = tuple(selection.scan_widths)
            else:
                # Forced widths (explicit int / "fanout" / empty sample)
                # still get a level vector — uniform at the chosen width —
                # so the engine's cohort math has one code path.
                degrees = (int(gs),) * layout.height
        rec = obs.active
        if rec.enabled:
            for lvl, d in enumerate(degrees):
                rec.gauge(f"ntg.level_degree.l{lvl}", float(d))
            if profile_s is not None:
                rec.gauge("ntg.profile_s", profile_s)
        return PreparedBatch(
            psa=psa,
            group_size=gs,
            ntg_selection=selection,
            ntg_degrees=degrees,
            scan_widths=widths,
            warp_size=cfg.warp_size,
        )

    def search_batch(
        self,
        queries: Sequence[int],
        config: Optional[SearchConfig] = None,
    ) -> np.ndarray:
        """Batched lookup through the full pipeline, naive executor.

        Returns values aligned with the *input* order (PSA permutation is
        undone); absent keys map to :data:`~repro.constants.NOT_FOUND`.
        This path always runs the per-query broadcast traversal and is
        kept as the oracle; :meth:`search_many` is the fast engine path.
        """
        cfg = config or self.search_config
        q = ensure_key_array(np.asarray(queries), "queries")
        if self._layout is None:
            out = np.full(q.size, NOT_FOUND, dtype=np.int64)
            if self.delta is not None:
                self.delta.overlay_values(q, out)
            return out
        with obs.scoped(cfg.trace):
            prepared = self.prepare_queries(q, cfg)
            results = _search_batch(self._layout, prepared.queries)
            out = results[prepared.psa.restore]
            if self.delta is not None:
                self.delta.overlay_values(q, out)
            return out

    def engine(self, config: Optional[SearchConfig] = None) -> BatchQueryEngine:
        """The frontier-compaction engine bound to the current snapshot.

        Cached: rebuilt only when the layout snapshot is replaced (batch
        update) or the worker configuration changes, so scratch buffers
        and the packed leaf block persist across batches.
        """
        cfg = config or self.search_config
        layout = self.layout  # raises on an empty tree
        eng = self._engine
        if (
            eng is None
            or eng.layout is not layout
            or eng.n_workers != cfg.engine_workers
            or eng.min_parallel != cfg.engine_min_parallel
        ):
            eng = BatchQueryEngine(
                layout,
                n_workers=cfg.engine_workers,
                min_parallel=cfg.engine_min_parallel,
            )
            self._engine = eng
        return eng

    def search_many(
        self,
        queries: Sequence[int],
        config: Optional[SearchConfig] = None,
    ) -> np.ndarray:
        """Batched lookup through the configured engine (§4.1's pipeline:
        PSA reorder → frontier-compacted traversal → restore).

        Bit-identical to :meth:`search_batch`; ``config.engine`` selects
        the executor (``"compacted"`` by default, ``"naive"`` for the
        oracle path) and ``config.engine_workers`` enables sharded
        multi-threaded execution on large batches.
        """
        cfg = config or self.search_config
        q = ensure_key_array(np.asarray(queries), "queries")
        overlay = (
            self.delta.overlay_values if self.delta is not None else None
        )
        if self._layout is None:
            out = np.full(q.size, NOT_FOUND, dtype=np.int64)
            if overlay is not None:
                overlay(q, out)
            return out
        with obs.scoped(cfg.trace):
            prepared = self.prepare_queries(q, cfg)
            if cfg.engine == "compacted":
                return self.engine(cfg).execute_prepared(
                    prepared, overlay=overlay
                )
            results = _search_batch(self._layout, prepared.queries)
            out = prepared.psa.scatter_restore(results)
            if overlay is not None:
                overlay(q, out)
            return out

    @property
    def last_engine_stats(self) -> Optional[EngineStats]:
        """Stats of the most recent compacted-engine execution (or None)."""
        return self._engine.last_stats if self._engine is not None else None

    def search_sorted_many(
        self,
        queries: Sequence[int],
        config: Optional[SearchConfig] = None,
        tile=None,
        hinted: bool = True,
    ) -> np.ndarray:
        """Batched lookup for an **ascending** query batch — the dual-walk
        probe path :func:`repro.join.merge_join` drives.

        Sorted input makes PSA a no-op, so this skips ``prepare_queries``
        entirely and runs the engine directly: with ``hinted=True`` (the
        default) through :meth:`~repro.core.engine.BatchQueryEngine.
        execute_hinted`, whose frontier carries lower-bound hints and
        prunes subtrees no probe lands in; with ``hinted=False`` through
        the plain frontier-compacted ``execute``.  ``tile`` (a
        :class:`~repro.join.tiles.TileConfig`) bounds peak traversal
        scratch to O(tile) via the tile scheduler.  Values are
        bit-identical to :meth:`search_many` on the same batch (the
        delta overlay, when pinned, applies the same way); ascending
        order is validated by the hinted engine.
        """
        cfg = config or self.search_config
        q = ensure_key_array(np.asarray(queries), "queries")
        overlay = (
            self.delta.overlay_values if self.delta is not None else None
        )
        if self._layout is None:
            out = np.full(q.size, NOT_FOUND, dtype=np.int64)
            if overlay is not None:
                overlay(q, out)
            return out
        with obs.scoped(cfg.trace):
            eng = self.engine(cfg)
            if tile is not None:
                from repro.join.tiles import TileScheduler

                return TileScheduler(eng, tile).run(
                    q, overlay=overlay, hinted=hinted
                )
            if hinted:
                return eng.execute_hinted(q, overlay=overlay)
            return eng.execute(q, issue_sorted=True, overlay=overlay)

    def search_stream(
        self,
        queries: Sequence[int],
        config: Optional[SearchConfig] = None,
    ) -> np.ndarray:
        """Batched lookup through the §4.1.3 streaming executor: traffic is
        cut into ``config.stream_batch``-query batches and the PSA sort of
        each next batch overlaps the traversal of the current one
        (``config.stream_mode="overlap"``; ``"serial"`` is the unpipelined
        baseline).  Bit-identical to :meth:`search_batch` /
        :meth:`search_many` on the same queries.

        Thread-safe: each call builds its own
        :class:`~repro.core.stream.StreamExecutor` (slot buffers and engine
        scratch are per-call), sharing only the immutable packed leaf block
        with the tree's cached engine.  Per-call stats land in
        :attr:`last_stream_stats`.
        """
        from repro.core.stream import StreamExecutor

        cfg = config or self.search_config
        q = ensure_key_array(np.asarray(queries), "queries")
        overlay = (
            self.delta.overlay_values if self.delta is not None else None
        )
        if self._layout is None:
            out = np.full(q.size, NOT_FOUND, dtype=np.int64)
            if overlay is not None:
                overlay(q, out)
            return out
        executor = StreamExecutor.from_config(
            self._layout, cfg, share_from=self.engine(cfg)
        )
        with obs.scoped(cfg.trace):
            out = executor.run(q, overlay=overlay)
        self._last_stream_stats = executor.last_stats
        return out

    #: Stats of the most recent :meth:`search_stream` call (or None).
    _last_stream_stats = None

    @property
    def last_stream_stats(self):
        """Stats of the most recent :meth:`search_stream` call (or None)."""
        return self._last_stream_stats

    def range_search(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """All pairs with ``lo <= key <= hi`` (keys ascending)."""
        out = self.range_search_batch([lo], [hi])
        return out[0]

    def range_search_batch(
        self, los: Sequence[int], his: Sequence[int]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch of range scans: one vectorized leaf-location pass for all
        bounds, then per-query contiguous block slices (list of
        ``(keys, values)`` pairs aligned with the inputs).  With a pinned
        delta overlay each window is merged with the delta's slice of the
        same bounds (last wins, tombstones dropped)."""
        lo_arr = ensure_key_array(np.asarray(los), "los")
        hi_arr = ensure_key_array(np.asarray(his), "his")
        if lo_arr.shape != hi_arr.shape:
            raise ValueError("los and his must align")
        if self._layout is None:
            empty_k = np.empty(0, dtype=np.int64)
            empty_v = np.empty(0, dtype=np.int64)
            base = [(empty_k, empty_v)] * lo_arr.size
        else:
            base = _range_search_batch(self._layout, lo_arr, hi_arr)
        if self.delta is None:
            return base
        return [
            self.delta.merge_range(int(lo_arr[i]), int(hi_arr[i]), bk, bv)
            if lo_arr[i] <= hi_arr[i] else (bk, bv)
            for i, (bk, bv) in enumerate(base)
        ]

    def items(self, start: Optional[int] = None):
        """Lazy cursor over ``(key, value)`` pairs in key order.

        ``start`` positions the cursor at the first key ``>= start``.
        Iterates leaf row by leaf row over the contiguous leaf block, so a
        partial scan touches only the rows it crosses.  The snapshot is
        pinned at call time (later batches do not affect a live cursor).
        With a pinned delta overlay the merged visible contents are
        materialized up front (correctness over laziness on that path).
        """
        if self.delta is not None:
            keys, values = self._merged_items()
            if start is not None:
                first = int(np.searchsorted(keys, start, side="left"))
                keys, values = keys[first:], values[first:]
            for k, v in zip(keys.tolist(), values.tolist()):
                yield k, v
            return
        layout = self._layout
        if layout is None:
            return
        from repro.constants import KEY_MAX

        first_leaf = 0
        if start is not None:
            node = 0
            for _ in range(layout.height - 1):
                row = layout.key_region[node]
                i = int(np.searchsorted(row, start, side="right"))
                node = int(layout.prefix_sum[node]) + i
            first_leaf = node - layout.leaf_start
        for leaf in range(first_leaf, layout.n_leaves):
            row = layout.key_region[layout.leaf_start + leaf]
            vals = layout.leaf_values[leaf]
            for slot in range(layout.slots):
                key = int(row[slot])
                if key == KEY_MAX:
                    break
                if start is not None and key < start:
                    continue
                yield key, int(vals[slot])

    def keys(self, start: Optional[int] = None):
        """Lazy cursor over keys in order (see :meth:`items`)."""
        for key, _ in self.items(start):
            yield key

    def _merged_items(self) -> Tuple[np.ndarray, np.ndarray]:
        """Visible sorted ``(keys, values)`` arrays: base leaf items
        overlaid with the pinned delta (last wins, tombstones dropped)."""
        if self._layout is None:
            base_k = np.empty(0, dtype=np.int64)
            base_v = np.empty(0, dtype=np.int64)
        else:
            pairs = self._layout.iter_leaf_items()
            if pairs.size:
                base_k, base_v = pairs[:, 0], pairs[:, 1]
            else:
                base_k = np.empty(0, dtype=np.int64)
                base_v = np.empty(0, dtype=np.int64)
        if self.delta is None:
            return base_k, base_v
        return self.delta.merge_items(base_k, base_v)

    # --------------------------------------------------------------- updates

    def apply_batch(
        self,
        ops: Sequence[Operation],
        config: Optional[UpdateConfig] = None,
    ) -> BatchResult:
        """Apply one update batch (§3.2.2) and run the movement pass.

        Returns the accounting record; the tree's layout snapshot is
        replaced atomically at the end (phase semantics — queries issued
        after this call see the new structure).

        ``config.mode`` picks the executor: the vectorized
        plan/apply/movement pipeline (default; never mutates the outgoing
        snapshot), the gapped in-place absorber
        (:class:`~repro.core.update_plan.GappedBatchUpdater` — movement
        demoted to a rare compaction epoch; result-equivalent, physically
        gapped layout), or the per-op scalar reference path — equivalent
        results in every case (see
        :class:`~repro.core.config.UpdateConfig`).
        """
        cfg = config or UpdateConfig()
        if self.delta is not None:
            from repro.errors import ConfigError

            raise ConfigError(
                "this tree is a pinned snapshot+delta read view; apply "
                "updates through its EpochManager, not the view"
            )
        if self._layout is None:
            return self._bootstrap_batch(ops)

        if cfg.mode == "vectorized":
            updater = VectorizedBatchUpdater(self._layout, fill=self._fill)
            result = updater.run(ops, n_threads=cfg.n_threads)
            self._layout = updater.new_layout
            return result

        if cfg.mode == "gapped":
            gapped = GappedBatchUpdater(self._layout, fill=self._fill,
                                        config=cfg)
            result = gapped.run(ops, n_threads=cfg.n_threads)
            self._layout = gapped.new_layout
            return result

        scalar = BatchUpdater(self._layout, fill=self._fill)
        with scalar.result.timer.phase("apply"):
            scalar.apply_batch(ops, n_threads=cfg.n_threads)
        with scalar.result.timer.phase("movement"):
            self._layout = scalar.movement()
        return scalar.result

    def _bootstrap_batch(self, ops: Sequence[Operation]) -> BatchResult:
        """First batch on an empty tree: inserts bulk-build the layout."""
        result = BatchResult()
        with result.timer.phase("apply"):
            pairs = {}
            for op in ops:
                if op.kind == "insert":
                    if op.key in pairs:
                        result.failed += 1
                    else:
                        pairs[op.key] = op.value
                        result.inserted += 1
                elif op.kind == "update":
                    if op.key in pairs:
                        pairs[op.key] = op.value
                        result.updated += 1
                    else:
                        result.failed += 1
                else:
                    if pairs.pop(op.key, None) is not None:
                        result.deleted += 1
                    else:
                        result.failed += 1
        with result.timer.phase("movement"):
            if pairs:
                keys = np.fromiter(sorted(pairs), dtype=np.int64, count=len(pairs))
                vals = np.asarray([pairs[int(k)] for k in keys], dtype=np.int64)
                self._layout = HarmoniaLayout.from_sorted(
                    keys, vals, fanout=self._empty_fanout, fill=self._fill
                )
        return result

    # Single-operation conveniences (each is a batch of one, keeping the
    # phase semantics honest).

    def insert(self, key: int, value: int) -> bool:
        res = self.apply_batch([Operation("insert", key, value)])
        return res.inserted == 1

    def update(self, key: int, value: int) -> bool:
        res = self.apply_batch([Operation("update", key, value)])
        return res.updated == 1

    def delete(self, key: int) -> bool:
        res = self.apply_batch([Operation("delete", key)])
        return res.deleted == 1

    # ------------------------------------------------------------ validation

    def check_invariants(self) -> None:
        if self._layout is not None:
            self._layout.check_invariants()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        if self._layout is None:
            return f"HarmoniaTree(empty, fanout={self._empty_fanout})"
        return (
            f"HarmoniaTree(fanout={self.fanout}, keys={len(self)}, "
            f"height={self.height})"
        )


__all__ = ["HarmoniaTree", "PreparedBatch"]
