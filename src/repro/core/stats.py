"""Introspection: structural statistics of a Harmonia layout.

Everything the paper reasons about quantitatively — node occupancy
(Figure 10's premise), per-level footprints (what fits in constant
memory/L2), expected traversal cost — computed from the arrays without
touching per-node Python objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.constants import CONST_MEMORY_BUDGET_BYTES, KEY_MAX
from repro.core.layout import HarmoniaLayout
from repro.gpusim.coalesce import align_up


@dataclass(frozen=True)
class LevelStats:
    """Per-level structural summary."""

    level: int
    n_nodes: int
    key_bytes: int
    mean_occupancy: float  #: mean fraction of key slots in use
    min_keys: int
    max_keys: int
    #: Whether this level's child lookups are served from constant memory
    #: under the default budget (level < the layout's caching depth).
    const_resident: bool = True


@dataclass(frozen=True)
class LayoutStats:
    """Whole-structure summary."""

    fanout: int
    height: int
    n_keys: int
    n_nodes: int
    n_leaves: int
    key_region_bytes: int
    child_region_bytes: int
    values_bytes: int
    mean_leaf_occupancy: float
    mean_internal_occupancy: float
    levels: List[LevelStats]
    #: Levels served from constant memory under the default budget —
    #: :meth:`repro.core.layout.HarmoniaLayout.caching_depth`.
    caching_depth: int = 0

    def fits_constant_memory(
        self, const_bytes: int = CONST_MEMORY_BUDGET_BYTES
    ) -> bool:
        """Does the whole prefix-sum child region fit in the constant-memory
        *budget* (the usable slice of the physical 64 KB — one shared
        constant with the device presets)?  Footnote 1: usually it does
        not; the top levels do."""
        return self.child_region_bytes <= const_bytes

    def const_resident_levels(
        self, const_bytes: int = CONST_MEMORY_BUDGET_BYTES
    ) -> int:
        """How many top levels of the child region fit in the budget.

        Same cumulative-prefix rule as
        :meth:`repro.core.layout.HarmoniaLayout.caching_depth`, computed
        from the level summaries.
        """
        budget = const_bytes // 8
        total = 0
        for lvl in self.levels:
            if total + lvl.n_nodes > budget:
                return lvl.level
            total += lvl.n_nodes
        return self.height

    def to_dict(self) -> Dict:
        return {
            "fanout": self.fanout,
            "height": self.height,
            "n_keys": self.n_keys,
            "n_nodes": self.n_nodes,
            "n_leaves": self.n_leaves,
            "key_region_mb": round(self.key_region_bytes / 1e6, 3),
            "child_region_kb": round(self.child_region_bytes / 1e3, 3),
            "mean_leaf_occupancy": round(self.mean_leaf_occupancy, 4),
            "mean_internal_occupancy": round(self.mean_internal_occupancy, 4),
            "caching_depth": self.caching_depth,
            "const_resident_levels": [
                lvl.level for lvl in self.levels if lvl.const_resident
            ],
        }


def layout_stats(layout: HarmoniaLayout) -> LayoutStats:
    """Compute :class:`LayoutStats` in O(n_nodes) vectorized passes."""
    key_counts = np.sum(layout.key_region != KEY_MAX, axis=1)
    caching_depth = layout.caching_depth()
    levels: List[LevelStats] = []
    for lvl in range(layout.height):
        a = int(layout.level_starts[lvl])
        b = int(layout.level_starts[lvl + 1])
        counts = key_counts[a:b]
        levels.append(
            LevelStats(
                level=lvl,
                n_nodes=b - a,
                key_bytes=(b - a) * layout.slots * 8,
                mean_occupancy=float(counts.mean() / layout.slots),
                min_keys=int(counts.min()),
                max_keys=int(counts.max()),
                const_resident=lvl < caching_depth,
            )
        )
    leaf_counts = key_counts[layout.leaf_start :]
    internal_counts = key_counts[: layout.leaf_start]
    return LayoutStats(
        fanout=layout.fanout,
        height=layout.height,
        n_keys=layout.n_keys,
        n_nodes=layout.n_nodes,
        n_leaves=layout.n_leaves,
        key_region_bytes=layout.key_region_bytes(),
        child_region_bytes=layout.child_region_bytes(),
        values_bytes=layout.values_bytes(),
        mean_leaf_occupancy=float(leaf_counts.mean() / layout.slots),
        mean_internal_occupancy=(
            float(internal_counts.mean() / layout.slots)
            if internal_counts.size
            else 1.0
        ),
        levels=levels,
        caching_depth=caching_depth,
    )


def expected_sequential_comparisons(layout: HarmoniaLayout) -> float:
    """Closed-form model of the mean per-level sequential comparison count
    for uniform in-tree targets — a cross-check of the Figure 3
    measurement.

    At a node holding ``m`` keys the taken child slot is ≈uniform over
    ``{0..m}`` and a sequential scan inspects ``min(slot + 1, m)`` keys, so
    the per-node expectation is ``m/2 + m/(m+1)``.  Averaged per *level*
    (every query visits exactly one node per level, and upper levels hold
    far fewer keys than leaves, so a global node average would
    overestimate).
    """
    key_counts = np.sum(layout.key_region != KEY_MAX, axis=1).astype(np.float64)
    per_level = []
    for lvl in range(layout.height):
        a = int(layout.level_starts[lvl])
        b = int(layout.level_starts[lvl + 1])
        m = key_counts[a:b].mean()
        per_level.append(m / 2.0 + m / (m + 1.0))
    return float(np.mean(per_level))


def theoretical_memory_per_query(
    layout: HarmoniaLayout, cache_line_bytes: int = 128
) -> Dict[str, float]:
    """Back-of-envelope bytes a single uncached point query moves, for the
    Harmonia layout vs the pointer layout — the §3.1 motivation numbers."""
    slots_bytes = layout.slots * 8
    harmonia_row = align_up(slots_bytes, cache_line_bytes)
    pointer_row = align_up(slots_bytes + layout.fanout * 8, cache_line_bytes)
    return {
        "harmonia_bytes": float(layout.height * harmonia_row),
        "pointer_bytes": float(layout.height * pointer_row + (layout.height - 1) * 8),
        "levels": float(layout.height),
    }


__all__ = [
    "LevelStats",
    "LayoutStats",
    "layout_stats",
    "expected_sequential_comparisons",
    "theoretical_memory_per_query",
]
