"""Sharded multi-process service tier for the Harmonia tree.

Key-space partitioning (:class:`Partitioner`), per-shard worker
processes over a shared-memory numpy transport (:class:`ShardChannel`,
:func:`worker_main`), and the scatter/dispatch/gather front-end
(:class:`ShardedTree`).  See ``docs/sharding.md``.
"""

from repro.shard.partition import Partitioner
from repro.shard.router import ShardedTree
from repro.shard.transport import DEFAULT_CAPACITY_BYTES, ShardChannel
from repro.shard.worker import worker_main

__all__ = [
    "Partitioner",
    "ShardedTree",
    "ShardChannel",
    "DEFAULT_CAPACITY_BYTES",
    "worker_main",
]
