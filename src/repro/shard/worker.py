"""The shard worker process: one key-range, one epoch-managed tree.

Each worker owns the :class:`~repro.core.epoch.EpochManager`-wrapped
:class:`~repro.core.tree.HarmoniaTree` for one contiguous key range and
serves the router over a :class:`~repro.shard.transport.ShardChannel`:

* ``search``  — batch point lookups through the frontier-compacted
  engine (:meth:`EpochManager.search_many`);
* ``apply``   — one §3.2.2 update batch (submit + single flush, so the
  shard publishes exactly one new epoch per router batch);
* ``range``   — a batch of range scans over the shard's contiguous leaf
  region (:meth:`EpochManager.range_search_batch`);
* ``dump``    — the shard's full sorted contents (checkpoint/rebalance);
* ``ping``    — liveness + ``(epoch, n_keys)`` for health checks and
  skew tracking;
* ``crash``   — hard ``os._exit`` (failure-injection hook for the
  restart-and-rebuild tests);
* ``stop``    — clean shutdown.

Workers are replaceable by construction: everything a worker holds is a
deterministic function of its base slice plus the op batches the router
has routed to it, so the router can rebuild a crashed worker from its
snapshot log (see :class:`~repro.shard.router.ShardedTree`).

**Tracing.**  A ``search`` / ``apply`` / ``range`` command may carry a
:class:`~repro.obs.trace.TraceContext` wire dict as its last element.
The worker then installs its persistent per-process registry
(:func:`~repro.obs.trace.worker_registry`), times its own stages
(``worker.deserialize`` / ``worker.execute`` / ``worker.reply`` — the
engine and epoch spans of the execution record into the same registry
ambiently), and, after the normal reply, ships the registry back as one
extra ``("trace", payload)`` tuple for the router to merge.  Untraced
commands are wire-identical to the pre-tracing protocol, which is what
keeps op-log replay (plain ``"apply"`` sends) and the disabled path
untouched.

**Flight recorder.**  Every command — traced or not — notes an event in
the always-on :data:`~repro.obs.flight.FLIGHT` ring with its latency;
the deliberate ``crash`` hook and any unexpected worker exception dump
the ring to ``$HARMONIA_FLIGHT_DIR`` before the process dies.

The module-level :func:`worker_main` is the process target (top-level so
it is importable under the ``spawn`` start method too; under the default
``fork`` the channel's raw block is inherited directly).
"""

from __future__ import annotations

import os
import time
from typing import List, Optional

import numpy as np

from repro.constants import VALUE_DTYPE
from repro.core.config import SearchConfig, UpdateConfig
from repro.core.epoch import EpochManager
from repro.core.tree import HarmoniaTree
from repro.core.update import Operation
from repro.core.update_plan import K_DELETE, K_INSERT
from repro.obs.flight import FLIGHT, dump_on_crash
from repro.obs.trace import (
    TraceContext,
    export_worker_trace,
    worker_registry,
)
from repro.shard.transport import ShardChannel

_clock = time.perf_counter

#: Numeric op codes on the wire (shared with the router's encoder — the
#: planner's codes from :mod:`repro.core.update_plan`).
_CODE_KIND = {K_INSERT: "insert", K_DELETE: "delete"}


def _decode_ops(
    kinds: np.ndarray, keys: np.ndarray, values: np.ndarray
) -> List[Operation]:
    """Wire arrays → Operation list (arrival order is preserved by the
    router's stable scatter)."""
    kind_of = _CODE_KIND
    return [
        Operation(kind_of.get(k, "update"), int(key), int(val))
        for k, key, val in zip(kinds.tolist(), keys.tolist(), values.tolist())
    ]


class _WorkerState:
    """The worker loop's mutable state: the epoch manager + configs."""

    def __init__(
        self,
        fanout: int,
        fill: float,
        search_config: Optional[SearchConfig],
        update_config: Optional[UpdateConfig],
        concurrent: bool = False,
    ) -> None:
        self.fanout = fanout
        self.fill = fill
        self.search_config = search_config or SearchConfig()
        self.update_config = update_config or UpdateConfig()
        self.concurrent = concurrent
        self.manager = self._manager_for(None, None)

    def _manager_for(self, keys, values) -> EpochManager:
        if keys is None or keys.size == 0:
            tree = HarmoniaTree.empty(
                fanout=self.fanout, fill=self.fill,
                search_config=self.search_config,
            )
        else:
            tree = HarmoniaTree.from_sorted(
                keys, values, fanout=self.fanout, fill=self.fill,
                search_config=self.search_config,
            )
        # One epoch per router batch: the router flushes explicitly, so
        # the capacity only needs to stay above any single batch.  In
        # concurrent mode the flush publishes a delta run instead of
        # rebuilding; the manager's background drain folds runs into the
        # base between router batches.
        return EpochManager(
            tree, batch_capacity=1 << 62, update_config=self.update_config,
            concurrent=self.concurrent,
        )

    def load(self, keys: np.ndarray, values: np.ndarray) -> None:
        self.manager = self._manager_for(keys, values)


def _trace_ctx(msg) -> Optional[TraceContext]:
    """The command's trace context, if its last element is a wire dict
    (untraced commands — including op-log replay — carry none)."""
    if len(msg) > 1:
        return TraceContext.from_wire(msg[-1])
    return None


def _ship_trace(conn: ShardChannel, ctx: TraceContext,
                stages, op: str, n: int) -> None:
    """Record this request's worker-side stage spans and send the
    registry export as the trailing ``("trace", payload)`` tuple."""
    reg = worker_registry()
    t0, t1, t2, t3 = stages
    common = {"trace_id": ctx.trace_id, "shard": ctx.shard}
    reg.span_at("worker.deserialize", t0, t1, cat="worker", **common)
    reg.span_at("worker.execute", t1, t2, cat="worker", op=op, n=n,
                **common)
    reg.span_at("worker.reply", t2, t3, cat="worker", **common)
    conn.send("trace", export_worker_trace(f"shard-{ctx.shard}"))


def worker_main(
    channel: ShardChannel,
    fanout: int,
    fill: float,
    search_config: Optional[SearchConfig] = None,
    update_config: Optional[UpdateConfig] = None,
    concurrent: bool = False,
    index: int = -1,
) -> None:
    """Process entry point: serve requests until ``stop`` (or EOF).

    Unexpected exceptions dump the flight ring before propagating, so a
    worker that dies of a bug leaves its last few thousand operations on
    disk for the post-mortem.
    """
    try:
        _serve(channel, fanout, fill, search_config, update_config,
               concurrent, index)
    except BaseException:
        dump_on_crash("worker-exception")
        raise


def _serve(
    channel: ShardChannel,
    fanout: int,
    fill: float,
    search_config: Optional[SearchConfig],
    update_config: Optional[UpdateConfig],
    concurrent: bool,
    index: int,
) -> None:
    state = _WorkerState(fanout, fill, search_config, update_config, concurrent)
    conn = channel

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):  # router went away
            return
        if msg is None:  # pragma: no cover — no timeout is set here
            continue
        cmd = msg[0]

        if cmd == "ping":
            mgr = state.manager
            conn.send("pong", mgr.epoch, len(mgr))

        elif cmd == "load":
            keys = conn.recv_array()
            values = conn.recv_array()
            state.load(keys, values)
            FLIGHT.note("load", {"shard": index, "n": int(keys.size)})
            conn.send("loaded", len(state.manager))

        elif cmd == "search":
            ctx = _trace_ctx(msg)
            if ctx is not None:
                worker_registry()  # ambient before the engine runs
            t0 = _clock()
            queries = conn.recv_array()
            t1 = _clock()
            out = state.manager.search_many(queries)
            t2 = _clock()
            conn.send("found")
            conn.send_array(np.ascontiguousarray(out, dtype=VALUE_DTYPE))
            t3 = _clock()
            FLIGHT.note("search", {"shard": index, "n": int(queries.size)})
            FLIGHT.latency("worker.search", t2 - t1)
            if ctx is not None:
                _ship_trace(conn, ctx, (t0, t1, t2, t3), "search",
                            int(queries.size))

        elif cmd == "apply":
            ctx = _trace_ctx(msg)
            if ctx is not None:
                worker_registry()
            t0 = _clock()
            kinds = conn.recv_array()
            keys = conn.recv_array()
            values = conn.recv_array()
            t1 = _clock()
            ops = _decode_ops(kinds, keys, values)
            state.manager.submit_many(ops)
            res = state.manager.flush()
            t2 = _clock()
            if res is None:
                conn.send("applied", 0, 0, 0, 0, 0)
            else:
                conn.send(
                    "applied", res.inserted, res.updated, res.deleted,
                    res.failed, res.split_leaves,
                )
            t3 = _clock()
            FLIGHT.note("apply", {"shard": index, "n": int(kinds.size)})
            FLIGHT.latency("worker.apply", t2 - t1)
            if ctx is not None:
                _ship_trace(conn, ctx, (t0, t1, t2, t3), "apply",
                            int(kinds.size))

        elif cmd == "range":
            ctx = _trace_ctx(msg)
            if ctx is not None:
                worker_registry()
            t0 = _clock()
            los = conn.recv_array()
            his = conn.recv_array()
            t1 = _clock()
            pairs = state.manager.range_search_batch(los, his)
            counts = np.asarray([p[0].size for p in pairs], dtype=np.int64)
            t2 = _clock()
            conn.send("ranged")
            conn.send_array(counts)
            if pairs:
                conn.send_array(np.concatenate([p[0] for p in pairs]))
                conn.send_array(np.concatenate([p[1] for p in pairs]))
            else:
                conn.send_array(np.empty(0, dtype=np.int64))
                conn.send_array(np.empty(0, dtype=VALUE_DTYPE))
            t3 = _clock()
            FLIGHT.note("range", {"shard": index, "n": int(los.size)})
            FLIGHT.latency("worker.range", t2 - t1)
            if ctx is not None:
                _ship_trace(conn, ctx, (t0, t1, t2, t3), "range",
                            int(los.size))

        elif cmd == "dump":
            mgr = state.manager
            # Merged visible contents: base snapshot plus any undrained
            # delta (identical to iter_leaf_items in synchronous mode).
            keys, values = mgr.dump_items()
            FLIGHT.note("dump", {"shard": index, "n": int(keys.size)})
            conn.send("dumped", mgr.epoch)
            conn.send_array(np.ascontiguousarray(keys))
            conn.send_array(np.ascontiguousarray(values))

        elif cmd == "crash":  # failure-injection hook (tests)
            FLIGHT.note("crash", {"shard": index})
            dump_on_crash("crash-command")
            os._exit(17)

        elif cmd == "stop":
            conn.send("stopped")
            return

        else:  # pragma: no cover — protocol violation
            conn.send("error", f"unknown command {cmd!r}")


__all__ = ["worker_main"]
