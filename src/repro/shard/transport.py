"""Shared-memory numpy transport between the router and one worker.

Key and value arrays never cross the process boundary through pickle:
each worker channel owns one anonymous shared-memory block
(``multiprocessing.RawArray``, plain ``mmap`` pages — inherited on fork,
transferred by handle on spawn), and both sides view it as numpy arrays.
The control :class:`~multiprocessing.connection.Connection` (pipe)
carries only tiny tuples — command names, element counts, dtype codes,
accounting integers.

The protocol is strictly lock-step (one request in flight per worker —
the router serializes access with a per-worker lock), so a single block
serves both directions.  Arrays larger than the block stream through it
in capacity-sized windows with an ack handshake per window:

    sender:   ("arr", total, dtype_code) → [write window; ("w", n); wait "ok"]*
    receiver: read header → [copy window out of the block; send "ok"]*

Copy-out is required only for the *assembled* result (the receiver
concatenates windows); single-window payloads still pay one copy so the
block can be reused immediately — that copy is a vectorized
``ndarray.copy`` of the window, never element pickling.

**Trace piggyback.**  Distributed tracing (docs/observability.md) rides
the same control pipe without a protocol fork: a traced command tuple
carries a :class:`~repro.obs.trace.TraceContext` wire dict as its last
element (``("search", {"trace_id": ..., "shard": s})``), and the worker
appends one ``("trace", payload)`` tuple after its normal reply, where
``payload`` is its registry's
:meth:`~repro.obs.registry.MetricsRegistry.export_remote` dict.  The
lock-step discipline makes this safe: the router sent the context, so
it — and only it — knows to read the one extra tuple.  Untraced
commands (including restart op-log replay) stay wire-identical to the
pre-tracing protocol.
"""

from __future__ import annotations

import multiprocessing as mp
from multiprocessing.connection import Connection
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigError

#: Default shared block capacity in bytes (64 Ki int64 slots).
DEFAULT_CAPACITY_BYTES = (1 << 16) * 8

_DTYPES = (np.dtype(np.int64), np.dtype(np.int8), np.dtype(np.float64))
_DTYPE_CODE = {dt: i for i, dt in enumerate(_DTYPES)}


class ShardChannel:
    """One side of a router↔worker link: shared block + control pipe.

    Constructed in the router (:meth:`pair`); the worker side is rebuilt
    from the same raw block and the peer connection inside the worker
    process.  ``send_array`` / ``recv_array`` move numpy arrays through
    the block; ``send`` / ``recv`` pass small control tuples on the pipe.
    """

    def __init__(self, conn: Connection, raw, capacity_bytes: int) -> None:
        self.conn = conn
        self.raw = raw
        self.capacity_bytes = int(capacity_bytes)
        self._buf = np.frombuffer(raw, dtype=np.uint8)

    # ------------------------------------------------------------- factory

    @classmethod
    def pair(
        cls, capacity_bytes: int = DEFAULT_CAPACITY_BYTES
    ) -> Tuple["ShardChannel", "ShardChannel"]:
        """A connected (router_side, worker_side) channel pair sharing one
        block."""
        if capacity_bytes < 8:
            raise ConfigError(
                f"capacity_bytes must be >= 8, got {capacity_bytes}"
            )
        raw = mp.RawArray("b", int(capacity_bytes))
        a, b = mp.Pipe(duplex=True)
        return cls(a, raw, capacity_bytes), cls(b, raw, capacity_bytes)

    # ------------------------------------------------------------- control

    def send(self, *msg) -> None:
        self.conn.send(msg)

    def recv(self, timeout: Optional[float] = None):
        """Receive one control tuple; ``None`` on timeout (when given)."""
        if timeout is not None and not self.conn.poll(timeout):
            return None
        return self.conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    # -------------------------------------------------------------- arrays

    def _view(self, dtype: np.dtype, n: int) -> np.ndarray:
        return self._buf[: n * dtype.itemsize].view(dtype)

    def send_array(self, arr: np.ndarray) -> None:
        """Stream ``arr`` through the shared block in windows."""
        arr = np.ascontiguousarray(arr)
        dtype = arr.dtype
        code = _DTYPE_CODE.get(dtype)
        if code is None:
            raise ConfigError(f"unsupported transport dtype {dtype}")
        window = self.capacity_bytes // dtype.itemsize
        total = int(arr.size)
        self.send("arr", total, code)
        sent = 0
        while sent < total:
            n = min(window, total - sent)
            self._view(dtype, n)[:] = arr[sent : sent + n]
            self.send("w", n)
            ack = self.conn.recv()
            if ack != ("ok",):  # pragma: no cover — protocol violation
                raise ConfigError(f"bad transport ack {ack!r}")
            sent += n

    def recv_array(self) -> np.ndarray:
        """Receive one array announced by a peer :meth:`send_array`."""
        header = self.conn.recv()
        if not (isinstance(header, tuple) and header and header[0] == "arr"):
            raise ConfigError(f"bad transport header {header!r}")
        _, total, code = header
        dtype = _DTYPES[code]
        out = np.empty(total, dtype=dtype)
        got = 0
        while got < total:
            tag, n = self.conn.recv()
            if tag != "w":  # pragma: no cover — protocol violation
                raise ConfigError(f"bad transport window tag {tag!r}")
            out[got : got + n] = self._view(dtype, n)
            self.send("ok")
            got += n
        return out

    # ------------------------------------------------------------ lifecycle

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover — already torn down
            pass


__all__ = ["ShardChannel", "DEFAULT_CAPACITY_BYTES"]
