"""Key-space partitioning for the sharded service tier.

The :class:`Partitioner` splits the (signed 64-bit) key space into
``n_shards`` contiguous ranges by ``n_shards - 1`` sorted *boundary
keys*: shard ``s`` owns every key ``k`` with
``boundaries[s - 1] < k <= boundaries[s]`` (the first shard is open
below, the last open above).  Routing a batch is therefore one
``np.searchsorted`` pass: a key equal to a boundary routes to the shard
*ending* at that boundary, so a boundary chosen as "last key of shard
``s``" keeps every stored key on the shard its slice came from.

Boundaries are chosen by **key-count quantiles** over the stored keys
(:meth:`Partitioner.from_keys`), so shards start balanced regardless of
the key distribution.  Skewed growth is detected by
:meth:`Partitioner.skew` and corrected by recomputing the quantiles on
the current contents (:meth:`Partitioner.from_keys` again — the
router's rebalance operation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.constants import KEY_DTYPE
from repro.errors import ConfigError
from repro.utils.validation import ensure_key_array


@dataclass(frozen=True)
class Partitioner:
    """Contiguous range partition of the key space.

    ``boundaries`` holds ``n_shards - 1`` strictly increasing keys; an
    empty array means a single shard owning everything.
    """

    n_shards: int
    boundaries: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=KEY_DTYPE))

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {self.n_shards}")
        b = np.asarray(self.boundaries, dtype=KEY_DTYPE)
        if b.ndim != 1 or b.size != self.n_shards - 1:
            raise ConfigError(
                f"{self.n_shards} shards need {self.n_shards - 1} "
                f"boundaries, got {b.size}"
            )
        if b.size > 1 and not bool(np.all(b[1:] > b[:-1])):
            raise ConfigError("boundaries must be strictly increasing")
        object.__setattr__(self, "boundaries", b)

    # ------------------------------------------------------------- builders

    @classmethod
    def from_keys(cls, keys: Sequence[int], n_shards: int) -> "Partitioner":
        """Quantile boundaries balancing *key counts* across shards.

        ``keys`` must be sorted ascending (the layout's leaf order); the
        boundary before shard ``s`` is the last key of shard ``s - 1``,
        so every stored key routes to the shard its slice came from.
        Duplicate quantile keys (tiny key sets) are deduplicated; the
        partitioner then ends up with fewer effective cut points but
        stays valid.
        """
        k = ensure_key_array(np.asarray(keys), "keys")
        if n_shards < 1:
            raise ConfigError(f"n_shards must be >= 1, got {n_shards}")
        if n_shards == 1 or k.size == 0:
            return cls(n_shards=n_shards,
                       boundaries=_spread_boundaries(n_shards))
        cuts = (np.arange(1, n_shards, dtype=np.int64) * k.size) // n_shards
        cuts = np.maximum(cuts, 1)
        bounds = np.unique(k[cuts - 1])
        if bounds.size < n_shards - 1:
            # Not enough distinct keys to cut n_shards ways: pad with
            # synthetic boundaries above the data so trailing shards are
            # empty but the shard count the caller asked for is kept.
            top = int(bounds[-1]) if bounds.size else int(k[-1])
            pad = np.arange(1, n_shards - bounds.size, dtype=KEY_DTYPE) + top
            bounds = np.concatenate([bounds, pad])
        return cls(n_shards=n_shards, boundaries=bounds)

    # -------------------------------------------------------------- routing

    def shard_of(self, keys: Sequence[int]) -> np.ndarray:
        """Shard index of every key — one ``searchsorted`` pass."""
        k = np.asarray(keys, dtype=KEY_DTYPE)
        return np.searchsorted(self.boundaries, k, side="left").astype(np.int64)

    def scatter(
        self, keys: Sequence[int]
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Group a batch by shard: ``(shard_ids, order, bounds)``.

        ``order`` is a *stable* permutation grouping same-shard elements
        contiguously in arrival order (the invariant per-shard update
        replay relies on); shard ``s``'s slice of ``order`` is
        ``order[bounds[s]:bounds[s + 1]]``.
        """
        ids = self.shard_of(keys)
        order = np.argsort(ids, kind="stable")
        bounds = np.searchsorted(ids[order], np.arange(self.n_shards + 1))
        return ids, order, bounds.astype(np.int64)

    def shard_range(self, lo: int, hi: int) -> Tuple[int, int]:
        """Inclusive shard span ``[first, last]`` overlapping ``[lo, hi]``."""
        first, last = self.shard_of(np.asarray([lo, hi], dtype=KEY_DTYPE))
        return int(first), int(last)

    def clip(self, shard: int, lo: int, hi: int) -> Tuple[int, int]:
        """``[lo, hi]`` clipped to ``shard``'s owned range (may be empty
        only if the inputs were; shards are contiguous so any range that
        routes to the shard intersects it)."""
        if shard > 0:
            lo = max(lo, int(self.boundaries[shard - 1]) + 1)
        if shard < self.n_shards - 1:
            hi = min(hi, int(self.boundaries[shard]))
        return lo, hi

    # ------------------------------------------------------------ balancing

    @staticmethod
    def skew(counts: Sequence[int]) -> float:
        """Size skew of per-shard key counts: ``max / ideal`` where
        ``ideal = total / n_shards`` (1.0 = perfectly balanced; 0 keys
        anywhere = 1.0 by convention)."""
        c = np.asarray(counts, dtype=np.float64)
        total = float(c.sum())
        if total <= 0.0 or c.size == 0:
            return 1.0
        return float(c.max() / (total / c.size))


def _spread_boundaries(n_shards: int) -> np.ndarray:
    """Evenly spread synthetic boundaries for an empty key set (keeps
    ``n_shards`` workers routable before any data arrives)."""
    if n_shards == 1:
        return np.empty(0, dtype=KEY_DTYPE)
    span = np.iinfo(KEY_DTYPE)
    step = (int(span.max) - int(span.min)) // n_shards
    return (np.arange(1, n_shards, dtype=np.int64) * step + int(span.min)).astype(
        KEY_DTYPE
    )


__all__ = ["Partitioner"]
