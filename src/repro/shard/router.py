"""The sharded service front-end: scatter, dispatch, gather.

:class:`ShardedTree` serves the :class:`~repro.core.tree.HarmoniaTree`
API over a fleet of worker *processes*, one contiguous key range each
(:class:`~repro.shard.partition.Partitioner`), to get past the GIL cap
on CPU-bound batch replay and fan-out query service:

* **scatter** — one ``np.searchsorted`` pass routes every query / op to
  its shard; a stable argsort groups the batch per shard (arrival order
  is preserved inside each shard, the invariant update replay needs);
* **dispatch** — per-shard slices go to the workers concurrently (the
  router threads block on the workers' pipes, so worker CPU runs truly
  in parallel); arrays travel through shared memory, never pickle
  (:class:`~repro.shard.transport.ShardChannel`);
* **gather** — results scatter back into caller order through the
  routing permutation (searches), sum into one
  :class:`~repro.core.update.BatchResult` (updates), or concatenate in
  shard order (range scans — shard order *is* key order, so the global
  scan is :func:`repro.core.merge.concat_sorted_runs` over per-shard
  leaf-region slices).

Robustness is the router's job, not the workers': every worker is a
deterministic function of its **base snapshot** (the arrays it was
loaded with) plus the **op log** (the batches routed to it since), both
of which the router keeps.  A dead worker — detected by liveness checks
or a broken pipe mid-call — is restarted and rebuilt from snapshot +
log replay, then the failed call is retried; :meth:`checkpoint` folds
the log back into the base to bound replay cost, and :meth:`rebalance`
re-cuts the key space by fresh quantiles (merging shrunken shards,
splitting swollen ones) when the size skew exceeds a threshold.

Everything is observable through the ``shard.*`` metric family
(docs/observability.md): scatter/dispatch/gather spans, per-shard batch
sizes, restart and rebalance counters, the live skew gauge.

**Distributed tracing.**  When the router runs inside a recording
(``obs.active.enabled``), every routed request mints a
:class:`~repro.obs.trace.TraceContext` and ships it with each shard's
command; workers reply with their own span registries, which merge back
here under ``shard[i].`` namespaces — one registry, one Chrome trace
with per-process lanes (docs/observability.md).  Outside a recording
the wire protocol is exactly the pre-tracing one.  Independently, the
always-on :data:`~repro.obs.flight.FLIGHT` ring notes every request and
restart with its latency, recording-on or off.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

import numpy as np

import repro.obs as obs
from repro.obs.flight import FLIGHT
from repro.obs.trace import TraceContext, shard_prefix
from repro.constants import DEFAULT_FANOUT, NOT_FOUND, VALUE_DTYPE
from repro.core.config import SearchConfig, UpdateConfig
from repro.core.merge import concat_sorted_runs
from repro.core.update import BatchResult, Operation
from repro.core.update_plan import _KIND_CODE
from repro.errors import ConfigError
from repro.shard.partition import Partitioner
from repro.shard.transport import DEFAULT_CAPACITY_BYTES, ShardChannel
from repro.shard.worker import worker_main
from repro.utils.validation import ensure_key_array, ensure_scalar_key

T = TypeVar("T")

_clock = time.perf_counter


@dataclass
class _Shard:
    """Router-side record of one worker: link, lifecycle, rebuild state."""

    index: int
    proc: mp.Process
    channel: ShardChannel
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Base snapshot (sorted keys/values the worker was last loaded with).
    base_keys: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    base_values: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=VALUE_DTYPE)
    )
    #: Op batches routed since the base (wire triples: kinds/keys/values).
    oplog: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default_factory=list
    )
    restarts: int = 0


def _encode_ops(
    ops: Sequence[Operation],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Operation list → wire arrays (the planner's kind codes)."""
    n = len(ops)
    code = _KIND_CODE
    kinds = np.fromiter((code[op.kind] for op in ops), dtype=np.int8, count=n)
    keys = np.fromiter((op.key for op in ops), dtype=np.int64, count=n)
    values = np.fromiter(
        (op.value for op in ops), dtype=VALUE_DTYPE, count=n
    )
    return kinds, keys, values


class ShardedTree:
    """Key-space sharded, multi-process Harmonia service tier.

    >>> st = ShardedTree.from_sorted(range(0, 1000, 2), n_shards=2)
    >>> int(st.search(4))
    4
    >>> st.close()

    Results are identical to a single :class:`HarmoniaTree` holding the
    same data — hypothesis-pinned in ``tests/test_shard_equivalence.py``.
    Use as a context manager (or call :meth:`close`) so the worker
    processes shut down deterministically.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
        search_config: Optional[SearchConfig] = None,
        update_config: Optional[UpdateConfig] = None,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        concurrent: bool = False,
    ) -> None:
        self.partitioner = partitioner
        self.fanout = fanout
        self.fill = fill
        #: Workers run their epoch managers in concurrent (snapshot+delta)
        #: mode: an apply publishes a delta run instead of rebuilding on
        #: the request path; background drains fold the delta between
        #: batches.  Results are identical either way (docs/epochs.md).
        self.concurrent = bool(concurrent)
        # Workers run their own recording (or none): the trace knob is a
        # per-process registry reference that cannot cross the boundary.
        cfg = search_config or SearchConfig()
        self.search_config = cfg.with_(trace=None)
        self.update_config = update_config or UpdateConfig()
        self.capacity_bytes = int(capacity_bytes)
        self._closed = False
        self._shards: List[_Shard] = [
            self._spawn(i) for i in range(partitioner.n_shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=partitioner.n_shards,
            thread_name_prefix="shard-router",
        )

    # ------------------------------------------------------------- builders

    @classmethod
    def from_sorted(
        cls,
        keys: Sequence[int],
        values: Optional[Sequence[int]] = None,
        n_shards: int = 2,
        fanout: int = DEFAULT_FANOUT,
        fill: float = 1.0,
        search_config: Optional[SearchConfig] = None,
        update_config: Optional[UpdateConfig] = None,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        concurrent: bool = False,
    ) -> "ShardedTree":
        """Bulk-build: quantile-partition sorted ``keys`` and load one
        contiguous slice per worker."""
        karr = ensure_key_array(np.asarray(keys))
        if values is None:
            varr = karr.astype(VALUE_DTYPE)
        else:
            varr = np.asarray(values, dtype=VALUE_DTYPE)
            if varr.shape != karr.shape:
                raise ConfigError("keys and values must align")
        part = Partitioner.from_keys(karr, n_shards)
        tree = cls(
            part, fanout=fanout, fill=fill, search_config=search_config,
            update_config=update_config, capacity_bytes=capacity_bytes,
            concurrent=concurrent,
        )
        bounds = np.searchsorted(
            part.boundaries, karr, side="left"
        ) if karr.size else np.empty(0, dtype=np.int64)
        cuts = np.searchsorted(bounds, np.arange(part.n_shards + 1))
        for s in range(part.n_shards):
            lo, hi = int(cuts[s]), int(cuts[s + 1])
            tree._load_shard(s, karr[lo:hi], varr[lo:hi])
        return tree

    # ------------------------------------------------------------ lifecycle

    @property
    def n_shards(self) -> int:
        return self.partitioner.n_shards

    def _spawn(self, index: int) -> _Shard:
        router_side, worker_side = ShardChannel.pair(self.capacity_bytes)
        proc = mp.Process(
            target=worker_main,
            args=(worker_side, self.fanout, self.fill,
                  self.search_config, self.update_config, self.concurrent,
                  index),
            daemon=True,
            name=f"harmonia-shard-{index}",
        )
        proc.start()
        # The worker side of the pipe belongs to the child now.
        worker_side.conn.close()
        return _Shard(index=index, proc=proc, channel=router_side)

    def _load_shard(
        self, s: int, keys: np.ndarray, values: np.ndarray
    ) -> None:
        """Replace shard ``s``'s contents (and its rebuild base)."""
        shard = self._shards[s]
        with shard.lock:
            ch = shard.channel
            ch.send("load")
            ch.send_array(keys)
            ch.send_array(values)
            reply = ch.recv()
            if not reply or reply[0] != "loaded":  # pragma: no cover
                raise ConfigError(f"shard {s} load failed: {reply!r}")
            shard.base_keys = keys
            shard.base_values = values
            shard.oplog = []

    def _restart_locked(self, s: int) -> None:
        """Rebuild a dead worker from base snapshot + op-log replay.

        Caller holds the shard lock.  The new worker sees exactly the
        batches the old one acknowledged — an unacknowledged in-flight
        batch is *not* in the log, so the caller's retry applies it
        exactly once.
        """
        shard = self._shards[s]
        try:
            shard.channel.close()
        finally:
            if shard.proc.is_alive():  # pragma: no cover — hung worker
                shard.proc.terminate()
            shard.proc.join(timeout=5.0)
        fresh = self._spawn(s)
        shard.proc = fresh.proc
        shard.channel = fresh.channel
        shard.restarts += 1
        ch = shard.channel
        ch.send("load")
        ch.send_array(shard.base_keys)
        ch.send_array(shard.base_values)
        reply = ch.recv()
        if not reply or reply[0] != "loaded":  # pragma: no cover
            raise ConfigError(f"shard {s} rebuild load failed: {reply!r}")
        for kinds, keys, values in shard.oplog:
            ch.send("apply")
            ch.send_array(kinds)
            ch.send_array(keys)
            ch.send_array(values)
            reply = ch.recv()
            if not reply or reply[0] != "applied":  # pragma: no cover
                raise ConfigError(
                    f"shard {s} rebuild replay failed: {reply!r}"
                )
        FLIGHT.note("restart", {"shard": s, "oplog": len(shard.oplog)})
        rec = obs.active
        if rec.enabled:
            rec.counter("shard.restarts")

    def _recv_trace(self, s: int, ch: ShardChannel,
                    ctx: Optional[TraceContext]) -> None:
        """Absorb the worker's trailing trace tuple into the ambient
        registry under this shard's namespace (traced requests only)."""
        if ctx is None:
            return
        reply = ch.recv()
        if not reply or reply[0] != "trace":  # pragma: no cover
            raise EOFError(f"shard {s} trace got {reply!r}")
        payload = reply[1]
        rec = obs.active
        if rec.enabled and payload is not None:
            rec.merge_remote(payload, prefix=shard_prefix(s))

    def _call(self, s: int, fn: Callable[[ShardChannel], T]) -> T:
        """Run one request against shard ``s``, restarting and retrying
        once if the worker is dead or dies mid-call."""
        shard = self._shards[s]
        with shard.lock:
            if shard.proc.is_alive():
                try:
                    return fn(shard.channel)
                except (EOFError, OSError, BrokenPipeError):
                    pass  # fall through to rebuild + retry
            self._restart_locked(s)
            return fn(shard.channel)

    def close(self) -> None:
        """Stop all workers and release the channels (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            with shard.lock:
                try:
                    shard.channel.send("stop")
                    shard.channel.recv(timeout=2.0)
                except (EOFError, OSError, BrokenPipeError):
                    pass
                shard.channel.close()
                if shard.proc.is_alive():
                    shard.proc.join(timeout=2.0)
                if shard.proc.is_alive():  # pragma: no cover — hung worker
                    shard.proc.terminate()
                    shard.proc.join(timeout=2.0)
        self._pool.shutdown(wait=False)

    def __enter__(self) -> "ShardedTree":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close()
        except Exception:
            pass

    # --------------------------------------------------------------- health

    def ping(self, s: int, timeout: float = 5.0) -> Tuple[int, int]:
        """(epoch, n_keys) of shard ``s``; restarts it first if dead."""

        def do(ch: ShardChannel) -> Tuple[int, int]:
            ch.send("ping")
            reply = ch.recv(timeout=timeout)
            if not reply or reply[0] != "pong":
                raise EOFError(f"shard {s} ping got {reply!r}")
            return int(reply[1]), int(reply[2])

        return self._call(s, do)

    def health_check(self, timeout: float = 5.0) -> List[int]:
        """Ping every worker; dead ones are restarted and rebuilt.
        Returns the indices that needed a restart."""
        revived: List[int] = []
        for s, shard in enumerate(self._shards):
            before = shard.restarts
            self.ping(s, timeout=timeout)
            if self._shards[s].restarts > before:
                revived.append(s)
        return revived

    def shard_counts(self) -> np.ndarray:
        """Per-shard key counts (one ping round)."""
        return np.asarray(
            [self.ping(s)[1] for s in range(self.n_shards)], dtype=np.int64
        )

    def stats(self) -> List[dict]:
        """Per-shard service stats (epoch, keys, restarts, boundaries)."""
        out = []
        for s in range(self.n_shards):
            epoch, n_keys = self.ping(s)
            lo = (int(self.partitioner.boundaries[s - 1]) + 1 if s > 0
                  else None)
            hi = (int(self.partitioner.boundaries[s])
                  if s < self.n_shards - 1 else None)
            out.append({
                "shard": s, "epoch": epoch, "n_keys": n_keys,
                "restarts": self._shards[s].restarts,
                "range_lo": lo, "range_hi": hi,
            })
        return out

    def __len__(self) -> int:
        return int(self.shard_counts().sum())

    # -------------------------------------------------------------- queries

    def search(self, key: int) -> Optional[int]:
        """Single-key convenience over the batched path."""
        out = self.search_many(np.asarray([ensure_scalar_key(key)]))
        return None if out[0] == NOT_FOUND else int(out[0])

    def search_many(self, queries: Sequence[int]) -> np.ndarray:
        """Batched point lookup: scatter by boundary key, dispatch to all
        owning workers concurrently, gather into caller order.

        Identical results to ``HarmoniaTree.search_many`` on the same
        data (misses map to :data:`~repro.constants.NOT_FOUND`).
        """
        q = ensure_key_array(np.asarray(queries), "queries")
        rec = obs.active
        out = np.empty(q.size, dtype=VALUE_DTYPE)
        if q.size == 0:
            return out
        ctx = TraceContext.mint() if rec.enabled else None
        t0 = _clock()
        ids, order, bounds = self.partitioner.scatter(q)
        routed = q[order]
        t1 = _clock()

        def do_search(s: int, lo: int, hi: int) -> np.ndarray:
            chunk = routed[lo:hi]

            def call(ch: ShardChannel) -> np.ndarray:
                if ctx is not None:
                    ch.send("search", ctx.for_shard(s))
                else:
                    ch.send("search")
                ch.send_array(chunk)
                reply = ch.recv()
                if not reply or reply[0] != "found":
                    raise EOFError(f"shard {s} search got {reply!r}")
                res = ch.recv_array()
                self._recv_trace(s, ch, ctx)
                return res

            return self._call(s, call)

        parts = self._dispatch(bounds, do_search, rec)
        t2 = _clock()
        for s, lo, hi, res in parts:
            out[order[lo:hi]] = res
        t3 = _clock()
        FLIGHT.note("search", {"n": int(q.size), "shards": len(parts)})
        FLIGHT.latency("router.search", t3 - t0)
        if rec.enabled:
            rec.counter("shard.batches")
            rec.counter("shard.queries", q.size)
            rec.counter("trace.requests")
            rec.histogram("shard.request_s", t3 - t0)
            rec.span_at("shard.request", t0, t3, cat="shard",
                        trace_id=ctx.trace_id, nq=q.size)
            rec.span_at("shard.scatter", t0, t1, cat="shard", nq=q.size,
                        trace_id=ctx.trace_id)
            rec.span_at("shard.dispatch", t1, t2, cat="shard",
                        shards=len(parts), trace_id=ctx.trace_id)
            rec.span_at("shard.gather", t2, t3, cat="shard",
                        trace_id=ctx.trace_id)
            FLIGHT.publish(rec)
        return out

    def _dispatch(
        self,
        bounds: np.ndarray,
        fn: Callable[[int, int, int], T],
        rec,
    ) -> List[Tuple[int, int, int, T]]:
        """Fan one scattered batch out to every shard with a non-empty
        slice; returns ``(shard, lo, hi, result)`` per dispatched slice."""
        jobs: List[Tuple[int, int, int]] = []
        for s in range(self.n_shards):
            lo, hi = int(bounds[s]), int(bounds[s + 1])
            if hi > lo:
                jobs.append((s, lo, hi))
                if rec.enabled:
                    rec.histogram("shard.batch_size", hi - lo)
        if len(jobs) == 1:
            s, lo, hi = jobs[0]
            return [(s, lo, hi, fn(s, lo, hi))]
        futures = [
            (s, lo, hi, self._pool.submit(fn, s, lo, hi))
            for s, lo, hi in jobs
        ]
        return [(s, lo, hi, f.result()) for s, lo, hi, f in futures]

    # -------------------------------------------------------------- updates

    def apply_batch(self, ops: Sequence[Operation]) -> BatchResult:
        """Apply one update batch across the shards (§3.2.2 per shard).

        The batch is scattered by key with the same stable grouping the
        queries use, so each shard replays its ops in arrival order;
        per-key outcomes (and therefore the summed accounting below) are
        identical to the unsharded path because an op's success depends
        only on same-key history.  Structural counters
        (``split_leaves`` …) are per-shard quantities and are summed as
        such.  Acknowledged batches enter the shard's op log (the
        restart-and-rebuild source); a crash mid-batch is retried after
        rebuild, exactly once.
        """
        rec = obs.active
        result = BatchResult()
        n = len(ops)
        if n == 0:
            return result
        ctx = TraceContext.mint() if rec.enabled else None
        t0 = _clock()
        kinds, keys, values = _encode_ops(ops)
        ids, order, bounds = self.partitioner.scatter(keys)
        rk, rkeys, rvals = kinds[order], keys[order], values[order]
        t1 = _clock()

        def do_apply(s: int, lo: int, hi: int):
            sk = np.ascontiguousarray(rk[lo:hi])
            skeys = np.ascontiguousarray(rkeys[lo:hi])
            svals = np.ascontiguousarray(rvals[lo:hi])

            def call(ch: ShardChannel):
                if ctx is not None:
                    ch.send("apply", ctx.for_shard(s))
                else:
                    ch.send("apply")
                ch.send_array(sk)
                ch.send_array(skeys)
                ch.send_array(svals)
                reply = ch.recv()
                if not reply or reply[0] != "applied":
                    raise EOFError(f"shard {s} apply got {reply!r}")
                self._recv_trace(s, ch, ctx)
                return reply[1:]

            counts = self._call(s, call)
            return (sk, skeys, svals), counts

        parts = self._dispatch(bounds, do_apply, rec)
        t2 = _clock()
        for s, _lo, _hi, (wire, counts) in parts:
            self._shards[s].oplog.append(wire)
            ins, upd, dele, fail, split = counts
            result.inserted += ins
            result.updated += upd
            result.deleted += dele
            result.failed += fail
            result.split_leaves += split
        t3 = _clock()
        FLIGHT.note("apply", {"n": n, "shards": len(parts)})
        FLIGHT.latency("router.apply", t3 - t0)
        if rec.enabled:
            rec.counter("shard.batches")
            rec.counter("shard.ops", n)
            rec.counter("trace.requests")
            rec.histogram("shard.request_s", t3 - t0)
            rec.span_at("shard.request", t0, t3, cat="shard",
                        trace_id=ctx.trace_id, ops=n)
            rec.span_at("shard.scatter", t0, t1, cat="shard", ops=n,
                        trace_id=ctx.trace_id)
            rec.span_at("shard.dispatch", t1, t2, cat="shard",
                        shards=len(parts), trace_id=ctx.trace_id)
            rec.span_at("shard.gather", t2, t3, cat="shard",
                        trace_id=ctx.trace_id)
            FLIGHT.publish(rec)
        return result

    def insert(self, key: int, value: int) -> bool:
        return self.apply_batch([Operation("insert", key, value)]).inserted == 1

    def update(self, key: int, value: int) -> bool:
        return self.apply_batch([Operation("update", key, value)]).updated == 1

    def delete(self, key: int) -> bool:
        return self.apply_batch([Operation("delete", key)]).deleted == 1

    # ---------------------------------------------------------- range scans

    def range_search(self, lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global range scan ``[lo, hi]``: per-shard leaf-region slices,
        concatenated in shard order (= key order)."""
        out = self.range_search_batch([lo], [hi])
        return out[0]

    def range_search_batch(
        self, los: Sequence[int], his: Sequence[int]
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Batch of global range scans (list of per-query pairs).

        Each range is clipped to the shards it overlaps; every shard
        scans its clips in one request (its contiguous leaf region makes
        each clip a block slice), and per-query results are stitched
        back by concatenating the shard parts in shard order via
        :func:`~repro.core.merge.concat_sorted_runs`.
        """
        lo_arr = ensure_key_array(np.asarray(los), "los")
        hi_arr = ensure_key_array(np.asarray(his), "his")
        if lo_arr.shape != hi_arr.shape:
            raise ConfigError("los and his must align")
        n = lo_arr.size
        empty = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=VALUE_DTYPE),
        )
        if n == 0:
            return []
        rec = obs.active
        ctx = TraceContext.mint() if rec.enabled else None
        t0 = _clock()
        firsts = self.partitioner.shard_of(lo_arr)
        lasts = self.partitioner.shard_of(hi_arr)
        valid = lo_arr <= hi_arr
        # Per shard: the (query, clipped-bounds) list it must scan.
        jobs: List[Tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
        for s in range(self.n_shards):
            qidx = np.flatnonzero(valid & (firsts <= s) & (lasts >= s))
            if qidx.size == 0:
                continue
            clo = lo_arr[qidx].copy()
            chi = hi_arr[qidx].copy()
            if s > 0:
                np.maximum(clo, int(self.partitioner.boundaries[s - 1]) + 1,
                           out=clo)
            if s < self.n_shards - 1:
                np.minimum(chi, int(self.partitioner.boundaries[s]),
                           out=chi)
            jobs.append((s, qidx, clo, chi))
        t1 = _clock()

        def do_range(s, qidx, clo, chi):
            def call(ch: ShardChannel):
                if ctx is not None:
                    ch.send("range", ctx.for_shard(s))
                else:
                    ch.send("range")
                ch.send_array(clo)
                ch.send_array(chi)
                reply = ch.recv()
                if not reply or reply[0] != "ranged":
                    raise EOFError(f"shard {s} range got {reply!r}")
                counts = ch.recv_array()
                keys = ch.recv_array()
                vals = ch.recv_array()
                self._recv_trace(s, ch, ctx)
                return counts, keys, vals

            return self._call(s, call)

        if len(jobs) == 1:
            results = [do_range(*jobs[0])]
        else:
            futures = [self._pool.submit(do_range, *job) for job in jobs]
            results = [f.result() for f in futures]
        t2 = _clock()

        # Stitch: shards were visited in ascending order, so per query
        # the parts arrive as sorted disjoint runs.
        per_query: List[List[Tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(n)
        ]
        for (s, qidx, _clo, _chi), (counts, keys, vals) in zip(jobs, results):
            offsets = np.zeros(counts.size + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            for j, qi in enumerate(qidx.tolist()):
                a, b = int(offsets[j]), int(offsets[j + 1])
                per_query[qi].append((keys[a:b], vals[a:b]))
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for parts in per_query:
            if not parts:
                out.append(empty)
            elif len(parts) == 1:
                out.append(parts[0])
            else:
                out.append(concat_sorted_runs(parts))
        t3 = _clock()
        FLIGHT.note("range", {"n": n, "shards": len(jobs)})
        FLIGHT.latency("router.range", t3 - t0)
        if rec.enabled:
            rec.counter("shard.range_queries", int(np.count_nonzero(valid)))
            rec.counter("trace.requests")
            rec.histogram("shard.request_s", t3 - t0)
            rec.span_at("shard.request", t0, t3, cat="shard",
                        trace_id=ctx.trace_id, ranges=n)
            rec.span_at("shard.scatter", t0, t1, cat="shard", ranges=n,
                        trace_id=ctx.trace_id)
            rec.span_at("shard.dispatch", t1, t2, cat="shard",
                        shards=len(jobs), trace_id=ctx.trace_id)
            rec.span_at("shard.gather", t2, t3, cat="shard",
                        trace_id=ctx.trace_id)
            FLIGHT.publish(rec)
        return out

    # ---------------------------------------------------- rebalance / ckpt

    def _dump(self, s: int) -> Tuple[np.ndarray, np.ndarray]:
        """Shard ``s``'s full sorted contents."""

        def call(ch: ShardChannel):
            ch.send("dump")
            reply = ch.recv()
            if not reply or reply[0] != "dumped":
                raise EOFError(f"shard {s} dump got {reply!r}")
            return ch.recv_array(), ch.recv_array()

        return self._call(s, call)

    def checkpoint(self) -> None:
        """Fold every shard's op log into its base snapshot.

        Bounds restart-and-rebuild replay cost after long update runs;
        contents and boundaries are unchanged.
        """
        for s in range(self.n_shards):
            keys, values = self._dump(s)
            shard = self._shards[s]
            with shard.lock:
                shard.base_keys = keys
                shard.base_values = values
                shard.oplog = []

    def skew(self) -> float:
        """Current size skew (``max shard / ideal share``, 1.0 = even)."""
        return Partitioner.skew(self.shard_counts())

    def rebalance(
        self, threshold: float = 1.5, force: bool = False
    ) -> bool:
        """Re-cut the key space when shard sizes drift apart.

        When ``skew() > threshold`` (or ``force``), every shard is
        dumped, the global sorted contents are re-joined
        (:func:`~repro.core.merge.concat_sorted_runs` — shard order is
        key order) and fresh key-count quantiles become the new
        boundaries: swollen shards are split, shrunken neighbours merged
        in one pass.  Workers are reloaded with their new slices (which
        also checkpoints: op logs reset).  Returns whether a rebalance
        ran.
        """
        if threshold < 1.0:
            raise ConfigError(
                f"rebalance threshold must be >= 1.0, got {threshold}"
            )
        rec = obs.active
        current = self.skew()
        if rec.enabled:
            rec.gauge("shard.skew", current)
        if not force and current <= threshold:
            return False
        dumps = [self._dump(s) for s in range(self.n_shards)]
        keys, values = concat_sorted_runs(dumps)
        self.partitioner = Partitioner.from_keys(keys, self.n_shards)
        bounds = np.searchsorted(self.partitioner.boundaries, keys,
                                 side="left")
        cuts = np.searchsorted(bounds, np.arange(self.n_shards + 1))
        for s in range(self.n_shards):
            lo, hi = int(cuts[s]), int(cuts[s + 1])
            self._load_shard(s, keys[lo:hi], values[lo:hi])
        if rec.enabled:
            rec.counter("shard.rebalances")
            rec.gauge("shard.skew", self.skew())
        return True

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"ShardedTree(shards={self.n_shards}, fanout={self.fanout})"
        )


__all__ = ["ShardedTree"]
