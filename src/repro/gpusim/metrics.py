"""nvprof-equivalent counters produced by the kernel simulator.

Definitions mirror the metrics the paper profiles (§5.2, Figure 12,
footnote 4):

* ``gld_transactions`` — global-memory transactions: distinct cache lines
  touched per warp memory instruction, summed.
* ``gld_requests`` — warp memory instructions issued to global memory.
* *memory divergence* — transactions per request (1.0 = perfectly
  coalesced).
* *warp coherence* — fraction of warp execution steps in which every
  active thread group in the warp participates ("the proportion of the
  coherent step in the warp execution period; anti-correlated with warp
  divergence").
* *utilization* — useful lane comparisons over executed lane comparisons
  (Figure 9's useless-comparison argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class KernelMetrics:
    """Counters for one simulated search kernel invocation."""

    n_queries: int
    n_warps: int
    group_size: int
    height: int

    #: Per-level group widths the kernel ran with (root first); uniform
    #: ``group_size`` when the kernel was simulated without a degree
    #: vector.
    ntg_degrees: tuple = ()
    #: Tree levels whose child lookups were served from constant memory
    #: (level-aligned split against the device's ``const_budget_bytes``);
    #: ``None`` when the kernel didn't model cached children.
    caching_depth: Optional[int] = None

    #: Global transactions from key-region reads, per tree level.
    key_transactions: np.ndarray = field(default=None)  # (height,)
    #: Global transactions from child-reference reads, per level (zero for
    #: Harmonia when the prefix-sum array is cache-resident).
    child_transactions: np.ndarray = field(default=None)  # (height,)
    #: Global transactions from leaf value fetches.
    value_transactions: int = 0
    #: Global memory requests (warp loads), per level (keys + children).
    requests: np.ndarray = field(default=None)  # (height,)
    #: Value-fetch requests.
    value_requests: int = 0
    #: Constant-memory accesses (the top of the prefix-sum child region —
    #: footnote 1: constant memory is 64 KB, usually smaller than the
    #: whole child array).
    const_requests: int = 0
    #: Read-only-cache accesses (the part of the child region that spills
    #: past constant memory, served per-SM — §3.1 "the rest is fetched
    #: into the read-only cache").
    readonly_requests: int = 0
    #: Key-region warp loads served entirely from L1 (every line the step
    #: touched was already fetched by the same warp earlier in the level's
    #: sweep) — issue slots with zero global transactions.
    l1_requests: int = 0

    #: Warp execution steps per level: sum over warps of max group steps.
    warp_steps: np.ndarray = field(default=None)  # (height,)
    #: Coherent steps per level: sum over warps of min active-group steps.
    coherent_steps: np.ndarray = field(default=None)  # (height,)

    #: Lane-level comparisons that a sequential scan would also perform.
    useful_comparisons: int = 0
    #: Lane-level comparisons actually executed (steps × active lanes).
    executed_comparisons: int = 0

    #: Modeled DRAM (L2-miss) transactions per level — filled by the
    #: temporal-locality model (:mod:`repro.gpusim.locality`); ``None``
    #: when the kernel was simulated without locality annotation.
    dram_transactions: Optional[np.ndarray] = None  # (height,)
    #: Modeled DRAM transactions of the leaf value fetches.
    value_dram_transactions: int = 0

    def __post_init__(self) -> None:
        h = self.height
        for name in ("key_transactions", "child_transactions", "requests",
                     "warp_steps", "coherent_steps"):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(h, dtype=np.int64))

    # ------------------------------------------------------------- derived

    @property
    def gld_transactions(self) -> int:
        return int(
            self.key_transactions.sum()
            + self.child_transactions.sum()
            + self.value_transactions
        )

    @property
    def gld_requests(self) -> int:
        return int(self.requests.sum() + self.value_requests)

    @property
    def transactions_per_request(self) -> float:
        """The memory-divergence metric (1.0 = fully coalesced)."""
        req = self.gld_requests
        return self.gld_transactions / req if req else 0.0

    @property
    def warp_coherence(self) -> float:
        """Fraction of warp-serialized issue slots that are coherent.

        A warp's execution period consists of compute steps (divergent when
        some groups have finished — the max-vs-min gap) *and* memory replay
        slots: a request that splits into ``k`` transactions serializes the
        warp ``k - 1`` extra times, which is incoherent work by definition
        (only the lanes of the missed lines participate).  Counting both is
        what makes the metric anti-correlated with memory divergence as
        well as branch divergence (paper footnote 4).  L1-served key loads
        count like the other on-chip requests: one coherent slot, no
        replay.
        """
        onchip = self.const_requests + self.readonly_requests + self.l1_requests
        coherent = (
            float(self.coherent_steps.sum()) + self.gld_requests + onchip
        )
        total = (
            float(self.warp_steps.sum()) + self.gld_transactions + onchip
        )
        return coherent / total if total else 1.0

    @property
    def utilization(self) -> float:
        """Useful fraction of executed lane comparisons."""
        ex = self.executed_comparisons
        return self.useful_comparisons / ex if ex else 1.0

    @property
    def total_warp_steps(self) -> int:
        return int(self.warp_steps.sum())

    @property
    def total_dram_transactions(self) -> Optional[int]:
        """Modeled DRAM transactions, or ``None`` when not annotated."""
        if self.dram_transactions is None:
            return None
        return int(self.dram_transactions.sum()) + self.value_dram_transactions

    @property
    def total_l2_transactions(self) -> Optional[int]:
        """Modeled L2-hit transactions (issued − missed)."""
        dram = self.total_dram_transactions
        if dram is None:
            return None
        return max(self.gld_transactions - dram, 0)

    def transactions_per_warp_level(self) -> np.ndarray:
        """Average *key* transactions per warp at each level — the quantity
        Figure 2 averages across levels."""
        if self.n_warps == 0:
            return np.zeros(self.height)
        return self.key_transactions / self.n_warps

    def avg_transactions_per_warp(self) -> float:
        """Figure 2's headline number: mean over levels of per-warp key
        transactions."""
        return float(self.transactions_per_warp_level().mean())

    def per_query(self, value: float) -> float:
        return value / self.n_queries if self.n_queries else 0.0

    def record_to(self, rec) -> None:
        """Publish this kernel's counters into an obs recorder.

        Counters accumulate across kernels within one recording; the
        ratio metrics are gauges (last simulated kernel wins), matching
        how nvprof reports per-launch averages.
        """
        rec.counter("gpusim.kernels")
        rec.counter("gpusim.queries", self.n_queries)
        rec.counter("gpusim.warps", self.n_warps)
        rec.counter("gpusim.gld_transactions", self.gld_transactions)
        rec.counter("gpusim.gld_requests", self.gld_requests)
        rec.counter("gpusim.warp_steps", self.total_warp_steps)
        rec.counter("gpusim.const_requests", self.const_requests)
        rec.counter("gpusim.readonly_requests", self.readonly_requests)
        rec.counter("gpusim.l1_requests", self.l1_requests)
        for lvl in range(self.height):
            rec.counter(
                f"gpusim.key_transactions.l{lvl}",
                int(self.key_transactions[lvl]),
            )
        rec.gauge("gpusim.transactions_per_warp",
                  self.avg_transactions_per_warp())
        rec.gauge("gpusim.transactions_per_request",
                  self.transactions_per_request)
        rec.gauge("gpusim.warp_coherence", self.warp_coherence)
        rec.gauge("gpusim.utilization", self.utilization)

    def summary(self) -> dict:
        """Plain-dict snapshot for experiment tables."""
        return {
            "queries": self.n_queries,
            "warps": self.n_warps,
            "group_size": self.group_size,
            "ntg_degrees": list(self.ntg_degrees),
            "caching_depth": self.caching_depth,
            "gld_transactions": self.gld_transactions,
            "gld_requests": self.gld_requests,
            "transactions_per_request": round(self.transactions_per_request, 4),
            "warp_coherence": round(self.warp_coherence, 4),
            "utilization": round(self.utilization, 4),
            "warp_steps": self.total_warp_steps,
            "const_requests": self.const_requests,
            "readonly_requests": self.readonly_requests,
            "l1_requests": self.l1_requests,
        }


__all__ = ["KernelMetrics"]
