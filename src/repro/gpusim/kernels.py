"""SIMT execution of B+tree search kernels over the device model.

One simulator, two personalities:

* **harmonia** — key region read chunk-by-chunk by (possibly narrowed)
  thread groups; child indices computed from the prefix-sum array, which is
  served by constant memory / read-only cache when it fits
  (``cached_children``), costing zero global transactions (§3.1);
* **regular_pointer** — the traditional GPU layout (HB+tree's GPU part and
  the §2.2 gap-analysis baseline): each node also carries a child-pointer
  array in global memory, every level ends with an 8-byte pointer fetch,
  groups are fanout-wide, and *every* key in the node is compared
  (no early exit — §4.2: "in a fanout-based parallel comparison manner, all
  the keys in a node are compared").

Both run the *same* traversal traces (the structures are semantically
identical trees); what differs is the address stream and the step counts —
exactly the quantities the paper's figures measure.

Execution model per warp and tree level:

1. every active group issues one load per *chunk step* (``GS`` keys of its
   node row, 8 bytes per lane); the warp's loads in one step form one
   memory request, coalesced into as many transactions as distinct cache
   lines are touched — counting only lines *not already fetched* by the
   same warp earlier in the level's sweep (intra-level L1 reuse: a narrow
   group re-crossing a 128-byte line over several steps pays once);
2. a group stops after ``ceil(c / GS)`` steps, where ``c`` is its query's
   comparison need at this level (early exit) or the node's full key count
   (fanout-based); the warp serializes until its slowest group finishes
   (SIMT), which is the warp-divergence cost;
3. internal levels end with a child lookup: prefix-sum (cached or global)
   for Harmonia, pointer array (always global) for the regular layout;
4. the leaf level ends with a value fetch for matched queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

import repro.obs as obs
from repro.constants import KEY_MAX
from repro.core.layout import HarmoniaLayout
from repro.core.search import TraversalTrace, traverse_batch
from repro.errors import ConfigError
from repro.gpusim.coalesce import INACTIVE, align_up, transactions_per_warp
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.locality import LevelSpans, dram_transactions_per_level
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array, ensure_power_of_two


@dataclass(frozen=True)
class SimConfig:
    """How to execute a search kernel on the device model."""

    structure: str = "harmonia"  # "harmonia" | "regular_pointer"
    group_size: int = 32
    #: Per-level group widths (``harmonia.cuh``'s ``ntg_degree[depth]``,
    #: root first).  Empty = uniform ``group_size`` at every level (the
    #: legacy single-width kernel; a uniform vector equal to ``group_size``
    #: simulates identically).  With distinct widths a warp owns the
    #: ``warp_size // min(ntg_degrees)`` queries of the *narrowest* level
    #: and serves each level in sub-rounds of ``warp_size // degree``
    #: queries, so narrowing a level amortizes its memory requests over
    #: more queries per round.
    ntg_degrees: tuple = ()
    #: Early exit once the group locates the target child (NTG semantics).
    early_exit: bool = True
    #: Serve the prefix-sum child region from constant/read-only cache
    #: (Harmonia's design; the False setting is the Figure 12 ablation).
    cached_children: bool = True
    #: Pad each node row to a cache-line multiple (GPU images align nodes).
    align_rows: bool = True
    #: Simulate the leaf value fetch for matched queries.
    count_value_fetch: bool = True
    #: Run the temporal-locality model (DRAM vs L2 split per level).
    model_locality: bool = True
    device: DeviceSpec = TITAN_V

    def __post_init__(self) -> None:
        if self.structure not in ("harmonia", "regular_pointer"):
            raise ConfigError(f"unknown structure {self.structure!r}")
        ensure_power_of_two("group_size", self.group_size)
        if self.group_size > self.device.warp_size:
            raise ConfigError(
                f"group_size {self.group_size} exceeds warp size "
                f"{self.device.warp_size}"
            )
        degrees = tuple(int(d) for d in self.ntg_degrees)
        object.__setattr__(self, "ntg_degrees", degrees)
        for d in degrees:
            ensure_power_of_two("ntg_degrees entry", d)
            if d > self.device.warp_size:
                raise ConfigError(
                    f"ntg_degrees entry {d} exceeds warp size "
                    f"{self.device.warp_size}"
                )


@dataclass(frozen=True)
class AddressModel:
    """Byte layout of the device image the kernel reads."""

    row_stride: int  #: bytes between consecutive key rows
    node_stride: int  #: bytes between consecutive nodes (incl. pointers)
    child_ptr_offset: int  #: offset of the child-pointer array in a node
    keys_base: int = 0
    values_base: int = 1 << 40  #: values live in a distinct region
    child_region_base: int = 1 << 41  #: prefix-sum array (when global)

    def key_byte(self, node: np.ndarray) -> np.ndarray:
        return self.keys_base + node * self.node_stride

    def child_ptr_byte(self, node: np.ndarray, slot: np.ndarray) -> np.ndarray:
        return (
            self.keys_base
            + node * self.node_stride
            + self.child_ptr_offset
            + slot * 8
        )

    def prefix_byte(self, node: np.ndarray) -> np.ndarray:
        return self.child_region_base + node * 8

    def value_byte(self, leaf_local: np.ndarray, slot: np.ndarray,
                   slots_per_row: int) -> np.ndarray:
        return self.values_base + (leaf_local * slots_per_row + slot) * 8


def make_address_model(layout: HarmoniaLayout, cfg: SimConfig) -> AddressModel:
    slots = layout.slots
    key_bytes = slots * 8
    if cfg.structure == "harmonia":
        stride = align_up(key_bytes, cfg.device.cache_line_bytes) if cfg.align_rows else key_bytes
        return AddressModel(row_stride=stride, node_stride=stride, child_ptr_offset=key_bytes)
    # Regular pointer layout: keys then fanout child pointers per node.
    raw = key_bytes + layout.fanout * 8
    stride = align_up(raw, cfg.device.cache_line_bytes) if cfg.align_rows else raw
    return AddressModel(row_stride=stride, node_stride=stride, child_ptr_offset=key_bytes)


def _warp_matrix(arr: np.ndarray, n_warps: int, qpw: int, fill) -> np.ndarray:
    """Reshape a per-query vector into (n_warps, qpw), padding the tail."""
    out = np.full(n_warps * qpw, fill, dtype=arr.dtype)
    out[: arr.size] = arr
    return out.reshape(n_warps, qpw)


def simulate_search(
    layout: HarmoniaLayout,
    queries: np.ndarray,
    cfg: SimConfig,
    trace: Optional[TraversalTrace] = None,
) -> KernelMetrics:
    """Execute the search kernel on the device model and return counters.

    ``queries`` must already be in **issue order** (apply PSA first when
    simulating the optimized pipeline).  ``trace`` may be passed to reuse a
    previously computed traversal.
    """
    q = ensure_key_array(np.asarray(queries), "queries")
    device = cfg.device
    h = layout.height
    nq = q.size
    # Per-level degrees: a warp owns the query cohort of the *narrowest*
    # level and serves wider levels in sub-rounds.  Each sub-round is a
    # full warp (warp_size // degree groups x degree lanes), so reshaping
    # queries into (n_warps * rounds, qpw_level) sub-warps per level is an
    # exact execution model; a uniform vector reduces to the single-width
    # kernel bit for bit.
    if cfg.ntg_degrees:
        if len(cfg.ntg_degrees) != h:
            raise ConfigError(
                f"ntg_degrees length {len(cfg.ntg_degrees)} != tree "
                f"height {h}"
            )
        level_gs = [int(d) for d in cfg.ntg_degrees]
    else:
        level_gs = [cfg.group_size] * h
    min_gs = min(level_gs)
    qpw_max = device.warp_size // min_gs
    n_warps = -(-nq // qpw_max) if nq else 0
    metrics = KernelMetrics(
        n_queries=nq, n_warps=n_warps, group_size=cfg.group_size, height=h,
        ntg_degrees=tuple(level_gs),
    )
    if nq == 0:
        rec = obs.active
        if rec.enabled:
            metrics.record_to(rec)
        return metrics

    if trace is None:
        trace = traverse_batch(layout, q)
    addr = make_address_model(layout, cfg)
    slots = layout.slots
    line = device.cache_line_bytes
    nkeys_per_node = np.sum(layout.key_region != KEY_MAX, axis=1).astype(np.int64)
    # Constant-memory boundary, level-aligned: the child lookup at level l
    # reads prefix-sum entries of that level's nodes, so the whole level is
    # const-served iff it fits under the *budget* (not the physical 64 KB —
    # kernel params and driver slots eat the difference).  Everything past
    # the caching depth pays the read-only/global path.
    caching_depth = layout.caching_depth(device.const_budget_bytes)
    if cfg.structure == "harmonia" and cfg.cached_children:
        metrics.caching_depth = caching_depth

    ones = np.ones(nq, dtype=bool)
    line_i64 = np.int64(line)
    #: Per-level line ranges each query touches, for the locality model.
    key_spans: list = []
    extra_spans: list = []  # child pointers / uncached or spilled prefix reads

    for lvl in range(h):
        gs = level_gs[lvl]
        qpw = device.warp_size // gs
        n_sub = n_warps * (qpw_max // qpw)
        lane_in_group = np.arange(gs, dtype=np.int64)
        valid = _warp_matrix(ones, n_sub, qpw, False)
        node = trace.node_idx[lvl]
        if cfg.early_exit:
            needed = trace.comparisons[lvl]
        else:
            needed = nkeys_per_node[node]
        needed = np.maximum(needed, 1)
        steps_q = -(-needed // gs)

        steps_w = _warp_matrix(steps_q, n_sub, qpw, 0)
        steps_w = np.where(valid, steps_w, 0)
        steps_max = steps_w.max(axis=1)
        # Coherent steps: while even the fastest ACTIVE group is working.
        steps_for_min = np.where(valid, steps_w, np.iinfo(np.int64).max)
        steps_min = np.minimum(steps_for_min.min(axis=1), steps_max)
        metrics.warp_steps[lvl] = int(steps_max.sum())
        metrics.coherent_steps[lvl] = int(steps_min.sum())
        metrics.useful_comparisons += int(trace.comparisons[lvl].sum())
        metrics.executed_comparisons += int(steps_max.sum()) * device.warp_size

        # --- key-region chunk loads -----------------------------------
        base = addr.key_byte(node)
        base_w = _warp_matrix(base, n_sub, qpw, 0)
        max_level_steps = int(steps_max.max()) if steps_max.size else 0
        key_tx = 0
        n_requests = 0
        # Intra-level temporal reuse: a group's chunk sweep walks its node
        # row forward, so with narrow degrees several consecutive steps land
        # in the same cache line.  Only the first touch pays a transaction;
        # later steps hit in L1.  Each group's sweep is monotone in line
        # number (rows are contiguous), so a high-water mark per group is
        # an exact record of its already-paid lines.
        paid_line = np.full((n_sub, qpw), -1, dtype=np.int64)
        for s in range(max_level_steps):
            group_active = (steps_w > s) & valid
            if not group_active.any():
                break
            # Per-lane byte addresses: (n_sub, qpw, gs).
            key_idx = s * gs + lane_in_group  # (gs,)
            lane_ok = key_idx < slots
            bytes_ = base_w[:, :, None] + key_idx[None, None, :] * 8
            lane_active = group_active[:, :, None] & lane_ok[None, None, :]
            lineno = bytes_ // line
            fresh = lane_active & (lineno > paid_line[:, :, None])
            lines = np.where(fresh, lineno, INACTIVE)
            lines = lines.reshape(n_sub, qpw * gs)
            tx = transactions_per_warp(lines)
            key_tx += int(tx.sum())
            # A global request is issued only when the step misses L1
            # somewhere; fully re-covered steps are on-chip issue slots.
            n_requests += int((tx > 0).sum())
            metrics.l1_requests += int(
                (group_active.any(axis=1) & (tx == 0)).sum()
            )
            np.maximum(
                paid_line,
                np.where(lane_active, lineno, np.int64(-1)).max(axis=2),
                out=paid_line,
            )
        metrics.key_transactions[lvl] = key_tx
        metrics.requests[lvl] += n_requests

        # Line ranges scanned at this level (for the locality model): a
        # query's group sweeps bytes [base, base + scanned·8).
        scanned = np.minimum(steps_q * gs, slots)
        key_spans.append(
            LevelSpans(start=base // line_i64,
                       end=(base + scanned * 8 - 1) // line_i64)
        )

        # --- child lookup (internal levels) ---------------------------
        if lvl < h - 1:
            if cfg.structure == "harmonia":
                if cfg.cached_children and lvl < caching_depth:
                    # Level fits under the constant budget: served on-chip,
                    # zero global traffic (§3.1 + footnote 1).
                    metrics.const_requests += int(valid.any(axis=1).sum())
                    extra_spans.append(None)
                elif cfg.cached_children:
                    # Spilled past the constant budget: the read-only path
                    # still moves the lines through L2/DRAM, so the
                    # transactions are real — the old model charged nothing
                    # here, which was only honest for trees that fit.
                    pbytes = addr.prefix_byte(node)
                    pb_w = _warp_matrix(pbytes, n_sub, qpw, np.int64(-1))
                    lines = np.where(valid, pb_w // line, INACTIVE)
                    tx = transactions_per_warp(lines)
                    metrics.readonly_requests += int((tx > 0).sum())
                    metrics.child_transactions[lvl] = int(tx.sum())
                    metrics.requests[lvl] += int((tx > 0).sum())
                    pl = pbytes // line_i64
                    extra_spans.append(LevelSpans(start=pl, end=pl))
                else:
                    pbytes = addr.prefix_byte(node)
                    pb_w = _warp_matrix(pbytes, n_sub, qpw, np.int64(-1))
                    lines = np.where(valid, pb_w // line, INACTIVE)
                    tx = transactions_per_warp(lines)
                    metrics.child_transactions[lvl] = int(tx.sum())
                    metrics.requests[lvl] += int((tx > 0).sum())
                    pl = pbytes // line_i64
                    extra_spans.append(LevelSpans(start=pl, end=pl))
            else:
                # One 8-byte pointer fetch per group from the node body.
                slot = trace.child_slot[lvl]
                pbytes = addr.child_ptr_byte(node, slot)
                pb_w = _warp_matrix(pbytes, n_sub, qpw, np.int64(-1))
                lines = np.where(valid, pb_w // line, INACTIVE)
                tx = transactions_per_warp(lines)
                metrics.child_transactions[lvl] = int(tx.sum())
                metrics.requests[lvl] += int((tx > 0).sum())
                pl = pbytes // line_i64
                extra_spans.append(LevelSpans(start=pl, end=pl))
        else:
            extra_spans.append(None)

    # --- leaf value fetch ---------------------------------------------
    # Uses the leaf level's sub-warp shape (the loop's final lvl).
    value_spans: Optional[LevelSpans] = None
    if cfg.count_value_fetch:
        found = trace.found
        if found.any():
            gs = level_gs[h - 1]
            qpw = device.warp_size // gs
            n_sub = n_warps * (qpw_max // qpw)
            valid = _warp_matrix(ones, n_sub, qpw, False)
            leaf_local = trace.node_idx[h - 1] - layout.leaf_start
            vbytes = addr.value_byte(leaf_local, trace.child_slot[h - 1], slots)
            vb_w = _warp_matrix(vbytes, n_sub, qpw, np.int64(-1))
            found_w = _warp_matrix(found, n_sub, qpw, False) & valid
            lines = np.where(found_w, vb_w // line, INACTIVE)
            tx = transactions_per_warp(lines)
            metrics.value_transactions = int(tx.sum())
            metrics.value_requests = int((tx > 0).sum())
            vl = vbytes // line_i64
            value_spans = LevelSpans(start=vl, end=vl, mask=found)

    # --- temporal-locality annotation -----------------------------------
    if cfg.model_locality:
        all_spans = list(key_spans)
        extras = [s for s in extra_spans if s is not None]
        all_spans.extend(extras)
        if value_spans is not None:
            all_spans.append(value_spans)
        dram = dram_transactions_per_level(all_spans, nq, device)
        per_level = dram[:h].copy()
        # Child-pointer / uncached-prefix misses fold into their level.
        pos = h
        for lvl, s in enumerate(extra_spans):
            if s is not None:
                per_level[lvl] += dram[pos]
                pos += 1
        metrics.dram_transactions = np.minimum(
            per_level, metrics.key_transactions + metrics.child_transactions
        )
        if value_spans is not None:
            metrics.value_dram_transactions = int(
                min(dram[pos], metrics.value_transactions)
            )

    rec = obs.active
    if rec.enabled:
        metrics.record_to(rec)
    return metrics


def simulate_harmonia_search(
    layout: HarmoniaLayout,
    queries: np.ndarray,
    group_size: int,
    device: DeviceSpec = TITAN_V,
    early_exit: bool = True,
    cached_children: bool = True,
    trace: Optional[TraversalTrace] = None,
    ntg_degrees=(),
) -> KernelMetrics:
    """Harmonia kernel (issue-ordered ``queries``; run PSA upstream).

    ``ntg_degrees`` switches the kernel to per-level group widths (one per
    tree level, root first); empty runs ``group_size`` uniformly.
    """
    cfg = SimConfig(
        structure="harmonia",
        group_size=group_size,
        ntg_degrees=tuple(ntg_degrees),
        early_exit=early_exit,
        cached_children=cached_children,
        device=device,
    )
    return simulate_search(layout, queries, cfg, trace=trace)


def simulate_hbtree_search(
    layout: HarmoniaLayout,
    queries: np.ndarray,
    device: DeviceSpec = TITAN_V,
    group_size: Optional[int] = None,
    trace: Optional[TraversalTrace] = None,
) -> KernelMetrics:
    """The traditional pointer-layout GPU kernel (HB+tree's GPU part).

    Group size defaults to the fanout-based width (§4.2 footnote 2); all of
    a node's keys are compared (no early exit); child pointers are global
    loads; rows are pointer-bearing and therefore fatter.
    """
    from repro.core.ntg import fanout_group_size

    gs = group_size or fanout_group_size(layout.fanout, device.warp_size)
    cfg = SimConfig(
        structure="regular_pointer",
        group_size=gs,
        early_exit=False,
        cached_children=False,
        device=device,
    )
    return simulate_search(layout, queries, cfg, trace=trace)


__all__ = [
    "SimConfig",
    "AddressModel",
    "make_address_model",
    "simulate_search",
    "simulate_harmonia_search",
    "simulate_hbtree_search",
]
