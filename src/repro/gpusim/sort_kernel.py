"""SIMT execution model of the radix-sort kernels PSA runs (CUB [12]).

`repro.sort.radix` provides the *algorithm* (and a closed-form cost
model); this module prices a batch's actual sort on the device model, the
way :mod:`repro.gpusim.kernels` prices the search kernel.  Each LSD pass
is two data-dependent kernels:

* **histogram** — every thread reads one key (perfectly coalesced stream)
  and bumps a shared-memory bucket counter; global traffic is the key
  stream;
* **scatter** — every thread re-reads its key + payload and writes them to
  the bucket's output cursor.  Write coalescing is *data-dependent*: lanes
  of a warp writing to the same bucket land on consecutive addresses (few
  lines), lanes spread over many buckets scatter (many lines).  This is
  why sorting nearly-sorted data is cheaper — and it is measured here by
  actually binning each pass's digits, not assumed.

The per-pass digit layout matches :func:`repro.sort.radix.partial_radix_argsort`
(top-aligned whole digits), so simulated passes correspond one-to-one to
the passes the algorithm executes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigError
from repro.gpusim.coalesce import INACTIVE, transactions_per_warp
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.sort.radix import DEFAULT_DIGIT_BITS, radix_passes
from repro.utils.validation import ensure_key_array


@dataclass(frozen=True)
class SortPassMetrics:
    """Counters of one radix pass (histogram + scatter kernels)."""

    shift: int
    digit_bits: int
    read_transactions: int  #: coalesced key/payload streams (both kernels)
    write_transactions: int  #: data-dependent scatter writes
    scatter_divergence: float  #: write transactions per warp write request

    @property
    def total_transactions(self) -> int:
        return self.read_transactions + self.write_transactions


@dataclass(frozen=True)
class SortKernelMetrics:
    """Aggregate over all passes of one (partial) sort."""

    n: int
    passes: List[SortPassMetrics]

    @property
    def n_passes(self) -> int:
        return len(self.passes)

    @property
    def total_transactions(self) -> int:
        return sum(p.total_transactions for p in self.passes)

    def modeled_seconds(self, device: DeviceSpec = TITAN_V) -> float:
        """Bandwidth-bound time + per-kernel launch overhead (two kernel
        launches per pass)."""
        bytes_moved = self.total_transactions * device.cache_line_bytes
        stream = bytes_moved / (device.dram_bandwidth_gbs * 1e9)
        return stream + 2 * self.n_passes * device.launch_overhead_us * 1e-6


def _pass_shifts(bits: int, key_bits: int, digit_bits: int) -> List[int]:
    """Shift of each LSD pass, low digit first — mirrors
    ``partial_radix_argsort``'s top-aligned digit ladder."""
    n_passes = radix_passes(bits, digit_bits)
    start = key_bits - n_passes * digit_bits
    return [start + p * digit_bits for p in range(n_passes)]


def simulate_radix_sort(
    keys: np.ndarray,
    bits: int,
    key_bits: int = 64,
    digit_bits: int = DEFAULT_DIGIT_BITS,
    device: DeviceSpec = TITAN_V,
    payload_bytes: int = 8,
) -> SortKernelMetrics:
    """Execute a top-``bits`` partial radix sort of ``keys`` on the device
    model and return its per-pass memory counters.

    The permutation is carried through the passes so each scatter sees the
    key order the previous pass actually produced (exactly the stability
    the algorithm guarantees).
    """
    arr = ensure_key_array(np.asarray(keys), "keys")
    if not 0 <= bits <= key_bits:
        raise ConfigError(f"bits must be in [0, {key_bits}], got {bits}")
    n = arr.size
    if n == 0 or bits == 0:
        return SortKernelMetrics(n=n, passes=[])

    line = device.cache_line_bytes
    warp = device.warp_size
    record_bytes = 8 + payload_bytes
    mask = (1 << digit_bits) - 1

    # Coalesced stream transactions (histogram read + scatter read): the
    # arrays are contiguous, so this is a pure footprint term.
    keys_lines = -(-n * 8 // line)
    records_lines = -(-n * record_bytes // line)

    order = np.arange(n, dtype=np.int64)
    n_warps = -(-n // warp)
    lane_pad = n_warps * warp
    passes: List[SortPassMetrics] = []

    for shift in _pass_shifts(bits, key_bits, digit_bits):
        if shift < 0:
            span_mask = (1 << (digit_bits + shift)) - 1
            digits = arr[order] & span_mask
            shift_eff = 0
        else:
            digits = (arr[order] >> shift) & mask
            shift_eff = shift
        # Stable counting sort of this digit (the scatter's destinations).
        counts = np.bincount(digits, minlength=mask + 1)
        starts = np.zeros(mask + 2, dtype=np.int64)
        np.cumsum(counts, out=starts[1:])
        # Destination index of each element: bucket start + rank in bucket.
        dest = np.empty(n, dtype=np.int64)
        sorted_positions = np.argsort(digits, kind="stable")
        dest[sorted_positions] = np.arange(n, dtype=np.int64)

        # Scatter writes: lane i of a warp writes record `i` (read in
        # stream order) to `dest[i] * record_bytes` — count distinct lines
        # per warp.
        write_lines = np.full(lane_pad, INACTIVE, dtype=np.int64)
        write_lines[:n] = dest * record_bytes // line
        tx = transactions_per_warp(write_lines.reshape(n_warps, warp))
        write_tx = int(tx.sum())
        requests = int((tx > 0).sum())

        passes.append(
            SortPassMetrics(
                shift=shift_eff,
                digit_bits=digit_bits,
                read_transactions=keys_lines + records_lines,
                write_transactions=write_tx,
                scatter_divergence=write_tx / requests if requests else 0.0,
            )
        )
        order = order[sorted_positions]

    return SortKernelMetrics(n=n, passes=passes)


__all__ = ["SortPassMetrics", "SortKernelMetrics", "simulate_radix_sort"]
