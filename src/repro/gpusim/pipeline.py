"""Host↔device batch pipeline model (HB+Tree's collaboration modes, §6).

HB+Tree "discusses several heterogeneous collaboration modes to make CPU
and GPU cooperation more efficient such as CPU-GPU pipelining, double
buffering".  A query batch passes through three stages:

    H2D transfer (queries in) → search kernel → D2H transfer (results out)

* ``serial`` — one batch at a time, stages back to back (the naive mode);
* ``double_buffer`` — transfers of batch *i+1* overlap the kernel of
  batch *i* (two staging buffers, one copy engine);
* ``pipeline`` — full three-stage software pipeline (both copy engines
  busy): steady-state cost per batch is the *slowest* stage.

The model exposes where each design is bottlenecked — with Harmonia's
fast kernel the pipeline goes transfer-bound, which is why end-to-end
systems keep queries resident or batch aggressively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import repro.obs as obs
from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec, TITAN_V

MODES = ("serial", "double_buffer", "pipeline")


@dataclass(frozen=True)
class PipelinePoint:
    """Modeled steady-state cost of streaming ``n_batches`` batches."""

    mode: str
    n_batches: int
    h2d_s: float  #: per-batch host→device time
    kernel_s: float  #: per-batch kernel time
    d2h_s: float  #: per-batch device→host time
    total_s: float

    @property
    def bottleneck(self) -> str:
        stages = {"h2d": self.h2d_s, "kernel": self.kernel_s, "d2h": self.d2h_s}
        return max(stages, key=lambda k: stages[k])

    def throughput(self, queries_per_batch: int) -> float:
        if self.total_s <= 0:
            return 0.0
        return self.n_batches * queries_per_batch / self.total_s


def transfer_time_s(
    n_bytes: int, device: DeviceSpec = TITAN_V, fixed_us: float = 8.0
) -> float:
    """One DMA transfer: fixed setup latency + bandwidth term."""
    if n_bytes < 0:
        raise ConfigError("n_bytes must be >= 0")
    return fixed_us * 1e-6 + n_bytes / (device.pcie_bandwidth_gbs * 1e9)


def pipeline_time(
    mode: str,
    n_batches: int,
    queries_per_batch: int,
    kernel_s: float,
    device: DeviceSpec = TITAN_V,
    query_bytes: int = 8,
    result_bytes: int = 8,
) -> PipelinePoint:
    """Model streaming ``n_batches`` query batches under a collaboration
    mode.  ``kernel_s`` is the per-batch kernel time (take it from
    :func:`repro.gpusim.perfmodel.estimate_kernel_time`)."""
    if mode not in MODES:
        raise ConfigError(f"mode must be one of {MODES}, got {mode!r}")
    if n_batches <= 0 or queries_per_batch <= 0:
        raise ConfigError("n_batches and queries_per_batch must be positive")
    if kernel_s < 0:
        raise ConfigError("kernel_s must be >= 0")

    h2d = transfer_time_s(queries_per_batch * query_bytes, device)
    d2h = transfer_time_s(queries_per_batch * result_bytes, device)

    if mode == "serial":
        total = n_batches * (h2d + kernel_s + d2h)
    elif mode == "double_buffer":
        # One copy engine: the two transfers contend with each other but
        # overlap the kernel; per batch in steady state:
        # max(kernel, h2d + d2h), plus the first fill and last drain.
        steady = max(kernel_s, h2d + d2h)
        total = h2d + steady * (n_batches - 1) + kernel_s + d2h
    else:  # full pipeline, two copy engines
        steady = max(kernel_s, h2d, d2h)
        total = h2d + kernel_s + d2h + steady * (n_batches - 1)

    rec = obs.active
    if rec.enabled:
        rec.gauge(f"gpusim.pipeline.{mode}.h2d_s", h2d)
        rec.gauge(f"gpusim.pipeline.{mode}.kernel_s", kernel_s)
        rec.gauge(f"gpusim.pipeline.{mode}.d2h_s", d2h)
        rec.gauge(f"gpusim.pipeline.{mode}.total_s", total)
        if total > 0:
            rec.gauge(
                f"gpusim.pipeline.{mode}.occupancy",
                n_batches * kernel_s / total,
            )
    return PipelinePoint(
        mode=mode,
        n_batches=n_batches,
        h2d_s=h2d,
        kernel_s=kernel_s,
        d2h_s=d2h,
        total_s=total,
    )


def compare_modes(
    n_batches: int,
    queries_per_batch: int,
    kernel_s: float,
    device: DeviceSpec = TITAN_V,
) -> Dict[str, PipelinePoint]:
    """All three modes on the same workload."""
    return {
        mode: pipeline_time(mode, n_batches, queries_per_batch, kernel_s, device)
        for mode in MODES
    }


__all__ = ["MODES", "PipelinePoint", "transfer_time_s", "pipeline_time", "compare_modes"]
