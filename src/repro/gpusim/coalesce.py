"""Memory-coalescing arithmetic.

A warp's memory instruction ("request") is serviced by one transaction per
distinct cache line touched by its active lanes (CUDA programming guide;
paper §2.1).  These helpers count distinct lines row-wise over arrays of
per-lane line indices, fully vectorized: one ``np.sort`` per request batch.
"""

from __future__ import annotations

import numpy as np

#: Line index marking an inactive lane; sorts after every real line.
INACTIVE = np.int64(np.iinfo(np.int64).max)


def transactions_per_warp(line_ids: np.ndarray) -> np.ndarray:
    """Distinct active line indices per row.

    ``line_ids`` is ``(n_warps, lanes)`` with :data:`INACTIVE` for masked
    lanes.  Returns an ``(n_warps,)`` int64 vector; a fully inactive warp
    counts 0 transactions.
    """
    if line_ids.ndim != 2:
        raise ValueError(f"line_ids must be 2-D, got shape {line_ids.shape}")
    s = np.sort(line_ids, axis=1)
    active = s != INACTIVE
    # A line is "new" if it differs from its left neighbour; first active
    # lane always starts a line.
    new_line = np.empty_like(active)
    new_line[:, 0] = active[:, 0]
    new_line[:, 1:] = active[:, 1:] & (s[:, 1:] != s[:, :-1])
    return new_line.sum(axis=1).astype(np.int64)


def span_line_range(
    byte_start: np.ndarray, byte_len: int, line_bytes: int
) -> tuple[np.ndarray, np.ndarray]:
    """First and last line index covered by ``[byte_start, byte_start+len)``.

    Vectorized over ``byte_start``; callers expand small ranges (a chunk of
    a node row never spans more than a handful of lines) into per-lane line
    ids or count them directly as ``last - first + 1``.
    """
    first = byte_start // line_bytes
    last = (byte_start + byte_len - 1) // line_bytes
    return first, last


def align_up(value: int, alignment: int) -> int:
    """Smallest multiple of ``alignment`` ≥ ``value``."""
    return -(-value // alignment) * alignment


__all__ = ["INACTIVE", "transactions_per_warp", "span_line_range", "align_up"]
