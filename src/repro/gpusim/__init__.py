"""Simulated SIMT GPU substrate.

The paper's claims about Harmonia are *counting* claims about SIMT
execution: how many global-memory transactions a warp issues (coalescing),
how many of its execution steps are divergent, how many comparisons are
useless.  This package reproduces exactly those counters — the nvprof
metrics of Figure 12, the per-warp transactions of Figure 2, the comparison
steps behind NTG — plus a roofline-style performance model that converts
the counts into modeled throughput for Figures 8, 11 and 13.

It is **not** a cycle-accurate GPU: no instruction pipelines, no MSHRs.
Every modeled quantity is documented with the assumption it encodes, and
the shape-level acceptance criteria in DESIGN.md only rely on the counts.
"""

from repro.gpusim.device import DeviceSpec, TITAN_V, TESLA_K80
from repro.gpusim.dualwalk import DualWalkMetrics, simulate_dual_walk
from repro.gpusim.metrics import KernelMetrics
from repro.gpusim.kernels import (
    SimConfig,
    simulate_harmonia_search,
    simulate_hbtree_search,
)
from repro.gpusim.perfmodel import KernelTime, estimate_kernel_time, estimate_sort_time

__all__ = [
    "DeviceSpec",
    "TITAN_V",
    "TESLA_K80",
    "DualWalkMetrics",
    "simulate_dual_walk",
    "KernelMetrics",
    "SimConfig",
    "simulate_harmonia_search",
    "simulate_hbtree_search",
    "KernelTime",
    "estimate_kernel_time",
    "estimate_sort_time",
]
