"""SIMT execution model for range queries (§3.2.1).

The paper's range query finds the first key with a point traversal and
then scans the key region linearly: "since the key region is a consecutive
array, range queries can achieve high performance".  The interesting
comparison is against the traditional pointer layout, where leaves are
pointer-fat (stride includes the child array), so a scan touches ~2× the
lines *and* must dereference a next-leaf pointer per node — a dependent
global load that Harmonia's layout eliminates entirely.

``simulate_range_scan`` prices both: the point traversal of each range's
lower bound (reusing :func:`repro.gpusim.kernels.simulate_search`) plus
the streaming scan, returning one combined :class:`KernelMetrics` whose
final "level" row is the scan.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.core.search import _rowwise_right
from repro.errors import ConfigError
from repro.gpusim.kernels import SimConfig, make_address_model, simulate_search
from repro.gpusim.metrics import KernelMetrics
from repro.utils.validation import ensure_key_array


def _bound_leaves(layout: HarmoniaLayout, targets: np.ndarray) -> np.ndarray:
    """Leaf BFS index whose range covers each target (vectorized)."""
    node = np.zeros(targets.size, dtype=np.int64)
    for _ in range(layout.height - 1):
        rows = layout.key_region[node]
        slot = _rowwise_right(rows, targets)
        node = layout.prefix_sum[node] + slot
    return node


def simulate_range_scan(
    layout: HarmoniaLayout,
    los: Sequence[int],
    his: Sequence[int],
    cfg: SimConfig,
) -> Tuple[KernelMetrics, np.ndarray]:
    """Execute a batch of range queries on the device model.

    Returns ``(metrics, scanned_keys)`` where ``scanned_keys[q]`` is the
    number of key slots query ``q``'s scan sweeps (its result size upper
    bound).  The metrics aggregate the bound traversal and the scan.
    """
    lo = ensure_key_array(np.asarray(los), "los")
    hi = ensure_key_array(np.asarray(his), "his")
    if lo.shape != hi.shape:
        raise ConfigError("los and his must align")
    if lo.size and bool(np.any(lo > hi)):
        raise ConfigError("every lo must be <= hi")

    # Phase 1: point traversal for the lower bounds (priced by the point
    # kernel; the value fetch is part of the scan, not the traversal).
    from dataclasses import replace

    traversal_cfg = replace(cfg, count_value_fetch=False)
    metrics = simulate_search(layout, lo, traversal_cfg)
    if lo.size == 0:
        return metrics, np.zeros(0, dtype=np.int64)

    # Phase 2: the linear scan from lo's leaf through hi's leaf.
    device = cfg.device
    addr = make_address_model(layout, cfg)
    start_leaf = _bound_leaves(layout, lo)
    end_leaf = _bound_leaves(layout, hi)
    n_leaves_scanned = end_leaf - start_leaf + 1
    scanned_keys = n_leaves_scanned * layout.slots

    line = device.cache_line_bytes
    start_byte = addr.key_byte(start_leaf)
    # The scan sweeps whole rows; pointer-fat layouts stride over the
    # embedded child arrays, touching proportionally more lines.
    end_byte = addr.key_byte(end_leaf) + layout.slots * 8
    scan_lines = (end_byte - 1) // line - start_byte // line + 1

    gs = cfg.group_size
    qpw = device.warp_size // gs
    nq = lo.size
    n_warps = -(-nq // qpw)

    steps_q = -(-scanned_keys // gs)
    pad = np.zeros(n_warps * qpw, dtype=np.int64)
    pad[:nq] = steps_q
    steps_w = pad.reshape(n_warps, qpw)
    valid = np.zeros(n_warps * qpw, dtype=bool)
    valid[:nq] = True
    valid = valid.reshape(n_warps, qpw)
    steps_for_min = np.where(valid, steps_w, np.iinfo(np.int64).max)
    steps_max = steps_w.max(axis=1)
    steps_min = np.minimum(steps_for_min.min(axis=1), steps_max)

    scan_level = np.zeros(1, dtype=np.int64)
    metrics.key_transactions = np.concatenate(
        [metrics.key_transactions, scan_level]
    )
    metrics.child_transactions = np.concatenate(
        [metrics.child_transactions, scan_level]
    )
    metrics.requests = np.concatenate([metrics.requests, scan_level])
    metrics.warp_steps = np.concatenate([metrics.warp_steps, scan_level])
    metrics.coherent_steps = np.concatenate(
        [metrics.coherent_steps, scan_level]
    )
    sc = metrics.height  # index of the appended scan row
    metrics.height += 1

    # Streaming scan: every line touched is one transaction; the scan is
    # sequential so one request covers each cache line per group.
    metrics.key_transactions[sc] = int(scan_lines.sum())
    metrics.requests[sc] = int(scan_lines.sum())
    metrics.warp_steps[sc] = int(steps_max.sum())
    metrics.coherent_steps[sc] = int(steps_min.sum())
    metrics.useful_comparisons += int(scanned_keys.sum())
    metrics.executed_comparisons += int(steps_max.sum()) * device.warp_size

    if cfg.structure == "regular_pointer":
        # The pointer layout walks the leaf chain: one dependent 8-byte
        # next-leaf pointer load per leaf visited.
        ptr_loads = int(n_leaves_scanned.sum())
        metrics.child_transactions[sc] = ptr_loads
        metrics.requests[sc] += ptr_loads

    # Matching values stream alongside the scanned key range.
    if cfg.count_value_fetch:
        value_lines = -(-(scanned_keys * 8) // line)
        metrics.value_transactions += int(value_lines.sum())
        metrics.value_requests += int(value_lines.sum())

    # The scan is a cold stream over the leaf block: charge it to DRAM
    # (it touches each line once; there is nothing to reuse).
    if metrics.dram_transactions is not None:
        extra = np.zeros(1, dtype=np.int64)
        extra[0] = metrics.key_transactions[sc] + metrics.child_transactions[sc]
        metrics.dram_transactions = np.concatenate(
            [metrics.dram_transactions, extra]
        )
        if cfg.count_value_fetch:
            metrics.value_dram_transactions += int(value_lines.sum())

    return metrics, scanned_keys


__all__ = ["simulate_range_scan"]
