"""Roofline-style performance model: counters → modeled kernel time.

The simulator (:mod:`repro.gpusim.kernels`) produces exact *counts*; this
module converts them into time with three explicitly stated assumptions:

1. **Compute**: each warp execution step occupies an SM for
   ``cycles_per_step`` cycles; the device retires ``n_sms`` warp-steps per
   cycle-group in parallel, and warp scheduling overlaps everything else —
   so compute time = ``total_warp_steps × cycles_per_step / n_sms``.
2. **Memory**: each global transaction moves one cache line.  Transactions
   whose source level is *L2-resident* (cumulative key-region footprint
   from the root still below ``l2_bytes``) are charged to L2 bandwidth;
   the rest to DRAM bandwidth.  Constant/read-only traffic is charged a
   per-access cycle cost so the cached-children design is cheap but not
   free.
3. **Overlap**: GPUs hide latency by multithreading, so kernel time is the
   *max* of the compute and memory times (perfect overlap), plus a fixed
   launch overhead.

Sort passes (for PSA) are modeled as bandwidth-bound scatter/gather over
the batch (read + write of key and payload index per pass) plus a launch
overhead per pass — matching the "time proportional to sorted bits"
behaviour of GPU radix sorts that Figure 8 exercises.

These are modeling choices, not measurements; EXPERIMENTS.md reports all
paper-vs-model comparisons as *shape* checks (ratios and orderings).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.gpusim.coalesce import align_up
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.metrics import KernelMetrics


@dataclass(frozen=True)
class KernelTime:
    """Modeled execution time breakdown (seconds)."""

    compute_s: float
    dram_s: float
    l2_s: float
    const_s: float
    launch_s: float
    #: Memory-level-parallelism bound: per-warp latency chains divided by
    #: the device's resident-warp complement (0 when not computed).
    latency_s: float = 0.0
    #: L1-served key loads (intra-level reuse): no global traffic, but the
    #: load-store unit and L1 array are still occupied one line per request.
    l1_s: float = 0.0

    @property
    def memory_s(self) -> float:
        return self.dram_s + self.l2_s + self.const_s + self.l1_s

    @property
    def total_s(self) -> float:
        """Max-overlap roofline plus launch overhead."""
        return max(self.compute_s, self.memory_s, self.latency_s) + self.launch_s

    def throughput(self, n_queries: int) -> float:
        """Modeled queries per second."""
        t = self.total_s
        return n_queries / t if t > 0 else 0.0


def l2_resident_levels(
    layout: HarmoniaLayout, device: DeviceSpec, row_stride: int
) -> np.ndarray:
    """Boolean per level: does the cumulative key-region footprint from the
    root through this level still fit in L2?

    Upper levels are touched by every warp, so once they fit they stay hot;
    this is the standard inclusive-cache working-set argument.
    """
    sizes = np.diff(layout.level_starts) * row_stride
    cumulative = np.cumsum(sizes)
    return cumulative <= device.l2_bytes


def latency_bound_seconds(
    metrics: KernelMetrics, device: DeviceSpec = TITAN_V
) -> float:
    """Memory-level-parallelism lower bound.

    Each warp's traversal is a dependent chain: one memory wait per level
    (DRAM or L2 latency per the locality split).  The device overlaps
    ``n_sms × resident_warps_per_sm`` such chains; when that product can't
    cover the batch's total chain cycles, latency — not bandwidth — is the
    binding constraint (small batches, shallow occupancy).  Validated
    against the event-driven SM simulator (:mod:`repro.gpusim.eventsim`).
    """
    if metrics.n_warps == 0:
        return 0.0
    total_tx = metrics.key_transactions + metrics.child_transactions
    chain_cycles = 0.0
    for lvl in range(metrics.height):
        tx = int(total_tx[lvl])
        if tx == 0 and int(metrics.requests[lvl]) == 0:
            continue
        if metrics.dram_transactions is not None and tx:
            dram_frac = min(float(metrics.dram_transactions[lvl]) / tx, 1.0)
        else:
            dram_frac = 1.0
        chain_cycles += (
            dram_frac * device.dram_latency_cycles
            + (1.0 - dram_frac) * device.l2_latency_cycles
        )
    total_chain = chain_cycles * metrics.n_warps
    parallel = device.n_sms * device.resident_warps_per_sm
    return total_chain / parallel / (device.clock_ghz * 1e9)


def estimate_kernel_time(
    metrics: KernelMetrics,
    layout: HarmoniaLayout,
    device: DeviceSpec = TITAN_V,
    row_stride: int = None,
    include_latency_bound: bool = True,
) -> KernelTime:
    """Convert kernel counters into modeled time."""
    if row_stride is None:
        row_stride = align_up(layout.slots * 8, device.cache_line_bytes)

    # Compute: warp steps over all SMs.
    compute_cycles = metrics.total_warp_steps * device.cycles_per_step / device.n_sms
    compute_s = compute_cycles / (device.clock_ghz * 1e9)

    # Memory: split transactions into DRAM misses and L2 hits.  Prefer the
    # temporal-locality annotation (reuse-window model) when the simulator
    # recorded it; otherwise fall back to static working-set residency.
    if metrics.dram_transactions is not None:
        dram_tx = metrics.total_dram_transactions
        l2_tx = metrics.total_l2_transactions
    else:
        resident = l2_resident_levels(layout, device, row_stride)
        per_level_tx = metrics.key_transactions + metrics.child_transactions
        l2_tx = int(per_level_tx[resident[: metrics.height]].sum())
        dram_tx = int(per_level_tx[~resident[: metrics.height]].sum())
        dram_tx += metrics.value_transactions  # values are never resident

    line = device.cache_line_bytes
    dram_s = dram_tx * line / (device.dram_bandwidth_gbs * 1e9)
    l2_s = l2_tx * line / (device.l2_bandwidth_gbs * 1e9)

    # Constant/read-only accesses: one access per warp per level is nearly
    # free but charge an issue cycle each so it is not literally zero.
    const_cycles = (
        metrics.const_requests + metrics.readonly_requests
    ) / device.n_sms
    const_s = const_cycles / (device.clock_ghz * 1e9)

    # L1-served key loads (a narrow group re-crossing a line it already
    # fetched this level) move no global data, but each still reads one
    # line out of the L1 array — charge that at L2-class on-chip bandwidth
    # so intra-level reuse is cheap, not free.
    l1_s = metrics.l1_requests * line / (device.l2_bandwidth_gbs * 1e9)

    launch_s = device.launch_overhead_us * 1e-6
    latency_s = (
        latency_bound_seconds(metrics, device) if include_latency_bound else 0.0
    )
    return KernelTime(
        compute_s=compute_s,
        dram_s=dram_s,
        l2_s=l2_s,
        const_s=const_s,
        launch_s=launch_s,
        latency_s=latency_s,
        l1_s=l1_s,
    )


def estimate_sort_time(
    n: int, passes: int, device: DeviceSpec = TITAN_V, payload_bytes: int = 8
) -> float:
    """Modeled seconds for ``passes`` radix passes over ``n`` 8-byte keys.

    Each counting pass of a key+payload radix sort performs a histogram
    sweep (read), a scatter sweep (read), and a scattered write whose poor
    coalescing roughly doubles its effective traffic — about four effective
    key+payload sweeps per pass, bandwidth-bound, plus a kernel-launch
    overhead per pass.  This is the CUB-like "time proportional to sorted
    bits" behaviour PSA's cost argument relies on (§4.1.2).
    """
    if n <= 0 or passes <= 0:
        return 0.0
    bytes_per_pass = 4 * (8 + payload_bytes) * n
    stream_s = passes * bytes_per_pass / (device.dram_bandwidth_gbs * 1e9)
    return stream_s + passes * device.launch_overhead_us * 1e-6


def modeled_throughput(
    metrics: KernelMetrics,
    layout: HarmoniaLayout,
    device: DeviceSpec = TITAN_V,
    sort_s: float = 0.0,
    row_stride: int = None,
) -> float:
    """End-to-end modeled queries/second including preprocessing time."""
    kt = estimate_kernel_time(metrics, layout, device, row_stride)
    total = kt.total_s + sort_s
    return metrics.n_queries / total if total > 0 else 0.0


__all__ = [
    "KernelTime",
    "l2_resident_levels",
    "estimate_kernel_time",
    "estimate_sort_time",
    "modeled_throughput",
]
