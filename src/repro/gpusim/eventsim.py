"""Event-driven SM simulator — the roofline model's validator.

`repro.gpusim.perfmodel` converts counters to time with closed-form
bounds; this module checks those bounds against an explicit simulation of
one streaming multiprocessor: ``R`` resident warps, each an alternating
sequence of *compute* segments (which serialize on the SM's issue
resource) and *memory* segments (fixed latency, unlimited overlap — the
classic latency-hiding model).  The simulated makespan must sit at or
above every analytical bound and close to their max when one resource
dominates; tests pin that relationship.

The simulation is exact for its model (a single-server queue whose jobs
take vacations), implemented as an O(E log R) event loop — small inputs
only; the closed-form bounds remain the scalable path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Sequence, Tuple


from repro.errors import ConfigError
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.metrics import KernelMetrics


@dataclass(frozen=True)
class WarpTask:
    """One warp's work: (compute_cycles, memory_latency_cycles) segments,
    executed strictly in order (the memory wait follows its compute)."""

    segments: Tuple[Tuple[float, float], ...]

    @property
    def compute_cycles(self) -> float:
        return sum(c for c, _ in self.segments)

    @property
    def memory_cycles(self) -> float:
        return sum(m for _, m in self.segments)


def simulate_sm(tasks: Sequence[WarpTask]) -> float:
    """Makespan (cycles) of ``tasks`` on one SM.

    The issue resource serves one compute segment at a time (FIFO among
    ready warps); memory waits overlap freely.
    """
    if not tasks:
        return 0.0
    # (ready_time, tie_breaker, task_index, segment_index)
    heap: List[Tuple[float, int, int, int]] = [
        (0.0, i, i, 0) for i in range(len(tasks))
    ]
    heapq.heapify(heap)
    issue_free = 0.0
    makespan = 0.0
    tie = len(tasks)
    while heap:
        ready, _, ti, si = heapq.heappop(heap)
        compute, mem = tasks[ti].segments[si]
        start = max(ready, issue_free)
        end_compute = start + compute
        issue_free = end_compute
        done = end_compute + mem
        makespan = max(makespan, done)
        if si + 1 < len(tasks[ti].segments):
            tie += 1
            heapq.heappush(heap, (done, tie, ti, si + 1))
    return makespan


def analytical_bounds(tasks: Sequence[WarpTask]) -> dict:
    """The two lower bounds the roofline uses, for this task set:

    * issue bound — total compute cycles (the resource is serial);
    * latency bound — the longest single warp's critical path.
    """
    if not tasks:
        return {"issue": 0.0, "critical_path": 0.0}
    issue = sum(t.compute_cycles for t in tasks)
    critical = max(t.compute_cycles + t.memory_cycles for t in tasks)
    return {"issue": issue, "critical_path": critical}


def warp_tasks_from_metrics(
    metrics: KernelMetrics,
    device: DeviceSpec = TITAN_V,
    n_warps: int = None,
) -> List[WarpTask]:
    """Synthesize a representative per-warp task list from kernel counters.

    Each level becomes one (compute, memory) segment: compute is the
    level's mean warp steps × ``cycles_per_step``; memory is the DRAM/L2
    latency mix the locality annotation implies.  ``n_warps`` defaults to
    one SM's resident complement.
    """
    if metrics.n_warps == 0:
        return []
    if n_warps is None:
        n_warps = min(device.resident_warps_per_sm, metrics.n_warps)
    if n_warps <= 0:
        raise ConfigError("n_warps must be positive")

    segments = []
    total_tx = metrics.key_transactions + metrics.child_transactions
    for lvl in range(metrics.height):
        compute = (
            metrics.warp_steps[lvl] / metrics.n_warps * device.cycles_per_step
        )
        tx = int(total_tx[lvl])
        if metrics.dram_transactions is not None and tx:
            dram_frac = min(float(metrics.dram_transactions[lvl]) / tx, 1.0)
        else:
            dram_frac = 1.0
        latency = (
            dram_frac * device.dram_latency_cycles
            + (1.0 - dram_frac) * device.l2_latency_cycles
        )
        # No memory wait for levels that issued no loads at all.
        if tx == 0 and metrics.requests[lvl] == 0:
            latency = 0.0
        segments.append((float(compute), float(latency)))
    task = WarpTask(segments=tuple(segments))
    return [task] * n_warps


def validate_roofline(
    metrics: KernelMetrics,
    device: DeviceSpec = TITAN_V,
    n_warps: int = None,
) -> dict:
    """Run the event simulation for one SM's complement of this kernel's
    warps and compare with the closed-form bounds.

    Returns ``{"simulated", "issue", "critical_path", "hiding_factor"}``
    where ``hiding_factor`` = simulated / max(bounds) — 1.0 means the
    bound is tight (perfect latency hiding), larger means residual
    exposure the roofline optimistically ignores.
    """
    tasks = warp_tasks_from_metrics(metrics, device, n_warps)
    simulated = simulate_sm(tasks)
    bounds = analytical_bounds(tasks)
    floor = max(bounds.values()) if bounds else 0.0
    return {
        "simulated": simulated,
        "issue": bounds["issue"],
        "critical_path": bounds["critical_path"],
        "hiding_factor": simulated / floor if floor else 1.0,
    }


__all__ = [
    "WarpTask",
    "simulate_sm",
    "analytical_bounds",
    "warp_tasks_from_metrics",
    "validate_roofline",
]
