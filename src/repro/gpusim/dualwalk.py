"""Memory-transaction model of the dual-tree merge-join kernel.

The join kernel (docs/join.md) has two memory phases, both friendlier
than per-key probing:

* **Probe-side leaf scan** — ``tree_a``'s consecutive leaf block is read
  front to back.  A sequential sweep is perfectly coalesced: one
  transaction per cache line of the (row-aligned) leaf region, with no
  rereads and no divergence — the cheapest access pattern a GPU has.
* **Hinted descent** — ``tree_b``'s internal levels are walked by the
  compacted frontier: each *distinct* node at each level is fetched
  once, however many probes route through it, and subtrees no probe
  lands in are never fetched at all (the JZ-tree dual-walk prune).
  Transaction count per level is therefore
  ``distinct_nodes × lines_per_row`` — exactly the quantity the host
  engine reports as ``unique_nodes_per_level``.

The naive baseline is the standard Harmonia search kernel
(:func:`~repro.gpusim.kernels.simulate_harmonia_search`) over the same
probe batch — per-warp gathers at every level, priced by the coalescing
model.  ``simulate_dual_walk`` reports both so the ``ext_join``
experiment can correlate the measured host-side speedup with the
modeled transaction cut.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.layout import HarmoniaLayout
from repro.core.search import traverse_batch
from repro.errors import ConfigError
from repro.gpusim.coalesce import align_up
from repro.gpusim.device import DeviceSpec, TITAN_V
from repro.gpusim.kernels import simulate_harmonia_search


@dataclass(frozen=True)
class DualWalkMetrics:
    """Transaction accounting of one simulated dual-walk join."""

    n_probes: int
    height_b: int
    #: Coalesced sequential read of tree_a's leaf key+value rows.
    leaf_scan_transactions: int
    #: Frontier-compacted fetches of tree_b's internal + leaf rows.
    descent_transactions: int
    #: The per-key Harmonia search kernel on the same probes.
    naive_transactions: int
    #: Distinct tree_b nodes touched per level (the pruned frontier).
    unique_nodes_per_level: np.ndarray
    group_size: int
    device: str

    @property
    def total_transactions(self) -> int:
        return self.leaf_scan_transactions + self.descent_transactions

    @property
    def transaction_speedup(self) -> float:
        """Naive / dual-walk transaction ratio (>1 = the join kernel
        moves fewer cache lines than per-key probing)."""
        total = self.total_transactions
        if total == 0:
            return 1.0
        return self.naive_transactions / total

    def record_to(self, rec) -> None:
        rec.gauge("gpusim.dualwalk.leaf_scan_tx",
                  float(self.leaf_scan_transactions))
        rec.gauge("gpusim.dualwalk.descent_tx",
                  float(self.descent_transactions))
        rec.gauge("gpusim.dualwalk.naive_tx",
                  float(self.naive_transactions))
        rec.gauge("gpusim.dualwalk.tx_speedup",
                  float(self.transaction_speedup))


def simulate_dual_walk(
    layout_a: HarmoniaLayout,
    layout_b: HarmoniaLayout,
    device: DeviceSpec = TITAN_V,
    group_size: int = 4,
    probes: Optional[np.ndarray] = None,
) -> DualWalkMetrics:
    """Price a merge-join of ``layout_a`` (probe side) into ``layout_b``
    (build side) in memory transactions.

    ``probes`` defaults to ``layout_a``'s full visible key stream (the
    merge-join probe batch); pass a subset to model a filtered join.
    ``group_size`` configures the naive baseline's NTG width.
    """
    if not isinstance(layout_a, HarmoniaLayout) or \
            not isinstance(layout_b, HarmoniaLayout):
        raise ConfigError("simulate_dual_walk needs two HarmoniaLayouts")
    if probes is None:
        probes = layout_a.all_keys()
    probes = np.asarray(probes, dtype=np.int64)
    line = device.cache_line_bytes

    # Probe-side scan: leaf rows are contiguous and row-aligned the same
    # way the kernel address model strides them; a front-to-back sweep
    # costs the region's line count once for keys and once for values.
    row_bytes = align_up(layout_a.slots * 8, line)
    lines_per_row_a = row_bytes // line
    leaf_scan_tx = 2 * int(layout_a.n_leaves) * lines_per_row_a

    # Hinted descent: one fetch per distinct node per level (the
    # frontier after monotone pruning) — the exact node sets come from
    # the reference traversal of the probe batch.
    uniq = np.zeros(layout_b.height, dtype=np.int64)
    if probes.size:
        trace = traverse_batch(layout_b, probes)
        for lvl in range(layout_b.height):
            uniq[lvl] = np.unique(trace.node_idx[lvl]).size
    lines_per_row_b = align_up(layout_b.slots * 8, line) // line
    descent_tx = int(uniq.sum()) * lines_per_row_b

    # Naive baseline: the per-key Harmonia search kernel on the same
    # probe stream (sorted, so it already benefits from PSA adjacency —
    # the comparison is conservative for the dual walk).
    if probes.size:
        naive = simulate_harmonia_search(
            layout_b, probes, group_size, device=device
        )
        naive_tx = int(naive.gld_transactions)
    else:
        naive_tx = 0

    return DualWalkMetrics(
        n_probes=int(probes.size),
        height_b=int(layout_b.height),
        leaf_scan_transactions=leaf_scan_tx,
        descent_transactions=descent_tx,
        naive_transactions=naive_tx,
        unique_nodes_per_level=uniq,
        group_size=int(group_size),
        device=device.name,
    )


__all__ = ["DualWalkMetrics", "simulate_dual_walk"]
