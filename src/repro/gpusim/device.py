"""Device descriptions for the SIMT model.

Numbers are public datasheet values for the two GPUs the paper evaluates on
(TITAN V for the headline results, Tesla K80 for the NTG model validation).
Only the quantities the model actually consumes appear here; everything has
a datasheet or CUDA-programming-guide provenance noted inline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import CONST_MEMORY_BUDGET_BYTES
from repro.errors import ConfigError
from repro.utils.validation import ensure_positive, ensure_power_of_two


@dataclass(frozen=True)
class DeviceSpec:
    """The GPU parameters the simulator and performance model consume."""

    name: str
    #: Threads per warp (CUDA: 32 on every shipped architecture).
    warp_size: int = 32
    #: Bytes per global-memory cache line / memory transaction granularity
    #: (CUDA programming guide: 128-byte L1 lines, 32-byte sectors; the
    #: paper reasons in 128-byte lines — §4.1.2 example, K=16 keys).
    cache_line_bytes: int = 128
    #: Streaming multiprocessors.
    n_sms: int = 80
    #: SM clock in GHz.
    clock_ghz: float = 1.455
    #: Constant memory (64 KB on all CUDA GPUs — paper footnote 1).
    const_mem_bytes: int = 64 * 1024
    #: Constant memory the index may actually pin — physical size minus
    #: kernel-parameter/driver headroom.  Single source:
    #: :data:`repro.constants.CONST_MEMORY_BUDGET_BYTES`.  The simulator's
    #: caching-depth split (which upper levels of the prefix-sum region are
    #: const-served) is computed against this, never the physical size.
    const_budget_bytes: int = CONST_MEMORY_BUDGET_BYTES
    #: Per-SM read-only / texture cache.
    readonly_cache_bytes: int = 64 * 1024
    #: Device L2 cache.
    l2_bytes: int = 4608 * 1024
    #: Peak DRAM bandwidth, GB/s.
    dram_bandwidth_gbs: float = 652.8
    #: Aggregate L2 bandwidth, GB/s (≈3-4× DRAM on Volta-class parts).
    l2_bandwidth_gbs: float = 2155.0
    #: Cycles one warp-wide compute step (chunk load issue + compares +
    #: ballot + boundary arithmetic + branch) occupies of an SM's issue
    #: bandwidth.  The sequence is dependent, so ~16 issue slots per step is
    #: the model's calibrated unit of compute cost (the one tuned constant;
    #: see EXPERIMENTS.md "calibration").
    cycles_per_step: float = 16.0
    #: Kernel / sort-pass launch overhead in microseconds.
    launch_overhead_us: float = 5.0
    #: Effective host↔device (PCIe 3.0 x16) bandwidth, GB/s — used by the
    #: batch-pipeline model (HB+Tree's transfer/compute overlap modes).
    pcie_bandwidth_gbs: float = 12.0
    #: Average DRAM round-trip latency in cycles (Volta ≈ 400-500; used by
    #: the interval/latency bound and the event-driven SM validator).
    dram_latency_cycles: float = 440.0
    #: Average L2-hit latency in cycles (Volta ≈ 190-220).
    l2_latency_cycles: float = 200.0
    #: Warps an SM keeps resident to hide latency (Volta max 64; realistic
    #: occupancy for these kernels ≈ 48).
    resident_warps_per_sm: int = 48

    def __post_init__(self) -> None:
        ensure_power_of_two("warp_size", self.warp_size)
        ensure_power_of_two("cache_line_bytes", self.cache_line_bytes)
        ensure_positive("n_sms", self.n_sms)
        for attr in ("clock_ghz", "dram_bandwidth_gbs", "l2_bandwidth_gbs",
                     "cycles_per_step"):
            if getattr(self, attr) <= 0:
                raise ConfigError(f"{attr} must be positive")
        ensure_positive("const_budget_bytes", self.const_budget_bytes)
        if self.const_budget_bytes > self.const_mem_bytes:
            raise ConfigError(
                f"const_budget_bytes {self.const_budget_bytes} exceeds "
                f"physical const_mem_bytes {self.const_mem_bytes}"
            )

    @property
    def keys_per_cacheline(self) -> int:
        """8-byte keys per transaction line (K in Equation 2)."""
        return self.cache_line_bytes // 8

    def dram_bytes_per_cycle(self) -> float:
        return self.dram_bandwidth_gbs / self.clock_ghz

    def l2_bytes_per_cycle(self) -> float:
        return self.l2_bandwidth_gbs / self.clock_ghz


#: The paper's primary evaluation GPU (§5.1): NVIDIA TITAN V (Volta GV100,
#: 80 SMs, 1.455 GHz boost, 652.8 GB/s HBM2, 4.5 MB L2).
TITAN_V = DeviceSpec(name="TITAN V")

#: The paper's secondary GPU (§4.2): Tesla K80 (one GK210: 13 SMs,
#: 0.875 GHz, 240 GB/s, 1.5 MB L2).
TESLA_K80 = DeviceSpec(
    name="Tesla K80",
    n_sms=13,
    clock_ghz=0.875,
    l2_bytes=1536 * 1024,
    dram_bandwidth_gbs=240.0,
    l2_bandwidth_gbs=750.0,
    readonly_cache_bytes=48 * 1024,
)

__all__ = ["DeviceSpec", "TITAN_V", "TESLA_K80"]
