"""Temporal-locality model: which transactions reach DRAM vs hit L2.

The per-warp coalescing counters say how many transactions a kernel issues;
they do not say which of those are *misses*.  PSA's whole end-to-end win
(Figure 8, Figure 13) is temporal: after partial sorting, consecutive
queries touch the same or adjacent cache lines, so a line fetched by one
warp is still L2-resident when its neighbours need it — while random-order
queries sweep a leaf-level working set far larger than L2 and miss almost
every time.

We model this with the classic *cold-misses-per-block* estimate: split the
issue stream into blocks whose footprint is about the L2 capacity, and
charge one DRAM transaction per distinct line per block; every further
touch inside the block is an L2 hit.  This is exact for streaming (sorted)
access and a good upper bound for random access, and it needs only the
line *ranges* each query touches — no cycle-level cache simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.gpusim.device import DeviceSpec

#: Multiplier separating (block, line) pairs in one sort key.  Line indices
#: in the simulator stay far below 2**40 (addresses below 2**42, 128-byte
#: lines).
_BLOCK_STRIDE = np.int64(1) << np.int64(40)


@dataclass
class LevelSpans:
    """Per-query contiguous line ranges touched at one tree level."""

    #: First line index per query.
    start: np.ndarray
    #: Last line index per query (inclusive).
    end: np.ndarray
    #: Which queries actually touch memory at this level (default: all).
    mask: Optional[np.ndarray] = None


def _expand(spans: LevelSpans) -> Tuple[np.ndarray, np.ndarray]:
    """Expand ranges to (query_index, line_index) pairs."""
    start, end = spans.start, spans.end
    if spans.mask is not None:
        keep = spans.mask
        start = start[keep]
        end = end[keep]
        qidx = np.nonzero(keep)[0]
    else:
        qidx = np.arange(start.size)
    counts = (end - start + 1).astype(np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    total = int(counts.sum())
    rep_q = np.repeat(qidx, counts)
    base = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - base
    lines = np.repeat(start, counts) + offsets
    return rep_q, lines


def unique_lines_per_block(
    spans: LevelSpans, block_of_query: np.ndarray
) -> int:
    """Count distinct (block, line) pairs — the modeled DRAM transactions
    for this level."""
    qidx, lines = _expand(spans)
    if lines.size == 0:
        return 0
    combo = block_of_query[qidx] * _BLOCK_STRIDE + lines
    return int(np.unique(combo).size)


def choose_block_queries(
    total_lines_touched: int, n_queries: int, device: DeviceSpec
) -> int:
    """Queries per reuse block: enough that the block's touched footprint is
    roughly the L2 capacity."""
    if n_queries == 0:
        return 1
    l2_lines = device.l2_bytes // device.cache_line_bytes
    lines_per_query = max(total_lines_touched / n_queries, 1e-9)
    return max(1, int(l2_lines / lines_per_query))


def dram_transactions_per_level(
    level_spans: List[LevelSpans],
    n_queries: int,
    device: DeviceSpec,
    resident_fraction: float = 0.5,
) -> np.ndarray:
    """Modeled DRAM (miss) transactions per level for an issue-ordered
    batch, one reuse block size shared by all levels.

    Levels whose *entire touched footprint* stays below
    ``resident_fraction`` of L2 are treated as cache-resident: each line
    misses once in the whole run, not once per block.  This captures what
    an LRU cache actually does with heavily-reused small sets (upper tree
    levels, the prefix-sum array) — without it, a short reuse window would
    absurdly charge the root line once per block.
    """
    total_lines = 0
    for spans in level_spans:
        if spans.mask is not None:
            counts = (spans.end - spans.start + 1)[spans.mask]
        else:
            counts = spans.end - spans.start + 1
        total_lines += int(counts.sum())
    block_q = choose_block_queries(total_lines, n_queries, device)
    block_of_query = (np.arange(n_queries, dtype=np.int64) // block_q)
    resident_budget = resident_fraction * device.l2_bytes / device.cache_line_bytes
    zero_blocks = np.zeros(n_queries, dtype=np.int64)

    out = []
    for spans in level_spans:
        global_unique = unique_lines_per_block(spans, zero_blocks)
        if global_unique <= resident_budget:
            out.append(global_unique)  # hot set: one cold miss per line
        else:
            out.append(unique_lines_per_block(spans, block_of_query))
    return np.array(out, dtype=np.int64)


__all__ = [
    "LevelSpans",
    "unique_lines_per_block",
    "choose_block_queries",
    "dram_transactions_per_level",
]
