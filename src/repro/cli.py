"""``harmonia-tool`` — build, query, inspect and simulate indexes from the
shell.

    harmonia-tool build  --random 100000 --out index.npz --fanout 64
    harmonia-tool build  --keys keys.txt --out index.npz
    harmonia-tool query  index.npz 42 4711
    harmonia-tool range  index.npz 100 200
    harmonia-tool stats  index.npz
    harmonia-tool simulate index.npz --queries 65536 --device k80
    harmonia-tool obs record --out obs/       # recorded run + trace + report
    harmonia-tool obs record --shards 2       # + traced sharded requests
    harmonia-tool obs report obs/snapshot.json
    harmonia-tool obs diff A.json B.json      # counter/gauge deltas
    harmonia-tool obs validate obs/snapshot.json
    harmonia-tool obs flight                  # list flight-recorder dumps
    harmonia-tool obs flight DUMP.json        # render one dump

(The figure-regeneration CLI is separate: ``harmonia-experiments``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.constants import NOT_FOUND
from repro.core import HarmoniaTree, SearchConfig, layout_stats, load_tree, save_tree
from repro.errors import ReproError
from repro.utils.validation import ensure_key_array


def _read_keys(path: str) -> np.ndarray:
    """Keys from a ``.npy``/``.npz`` array or a text file of integers."""
    if path.endswith(".npy"):
        return ensure_key_array(np.load(path))
    if path.endswith(".npz"):
        with np.load(path) as data:
            first = list(data)[0]
            return ensure_key_array(data[first])
    with open(path) as fh:
        values = [int(line) for line in fh if line.strip()]
    return ensure_key_array(np.asarray(values, dtype=np.int64))


def _cmd_build(args: argparse.Namespace) -> int:
    if args.random is not None:
        from repro.workloads.generators import make_key_set

        keys = make_key_set(args.random, rng=args.seed)
        values = None
    else:
        keys = np.unique(_read_keys(args.keys))
        values = None
    tree = HarmoniaTree.from_sorted(keys, values, fanout=args.fanout,
                                    fill=args.fill)
    save_tree(tree, args.out)
    st = layout_stats(tree.layout)
    print(f"built {args.out}: {st.n_keys} keys, fanout {st.fanout}, "
          f"height {st.height}, key region {st.key_region_bytes / 1e6:.2f} MB, "
          f"child region {st.child_region_bytes / 1e3:.2f} KB")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    tree = load_tree(args.index)
    if args.targets:
        targets = np.asarray([int(t) for t in args.targets], dtype=np.int64)
    elif args.file:
        targets = _read_keys(args.file)
    else:
        targets = ensure_key_array(
            np.asarray([int(l) for l in sys.stdin if l.strip()],
                       dtype=np.int64)
        )
    cfg = SearchConfig.full() if args.optimized else SearchConfig.baseline_tree()
    out = tree.search_batch(targets, cfg)
    misses = 0
    for key, value in zip(targets, out):
        if value == NOT_FOUND:
            print(f"{key}\tMISS")
            misses += 1
        else:
            print(f"{key}\t{value}")
    print(f"# {targets.size - misses}/{targets.size} hits", file=sys.stderr)
    return 0


def _cmd_range(args: argparse.Namespace) -> int:
    tree = load_tree(args.index)
    keys, values = tree.range_search(args.lo, args.hi)
    for k, v in zip(keys, values):
        print(f"{k}\t{v}")
    print(f"# {keys.size} pairs in [{args.lo}, {args.hi}]", file=sys.stderr)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    tree = load_tree(args.index)
    st = layout_stats(tree.layout)
    for key, value in st.to_dict().items():
        print(f"{key:26s} {value}")
    print(f"{'const_resident_levels':26s} {st.const_resident_levels()}"
          f" / {st.height}")
    for lvl in st.levels:
        print(f"  level {lvl.level}: {lvl.n_nodes} nodes, "
              f"occupancy {lvl.mean_occupancy:.0%} "
              f"(min {lvl.min_keys}, max {lvl.max_keys} keys)")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.gpusim import TESLA_K80, TITAN_V, simulate_harmonia_search
    from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
    from repro.workloads.datasets import miniaturized_device
    from repro.workloads.generators import uniform_queries

    tree = load_tree(args.index)
    base = {"titanv": TITAN_V, "k80": TESLA_K80}[args.device]
    device = miniaturized_device(len(tree), args.queries, base)
    rng = np.random.default_rng(args.seed)
    queries = uniform_queries(tree.layout.all_keys(), args.queries, rng=rng)
    prep = tree.prepare_queries(queries, SearchConfig.full())
    metrics = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=device
    )
    sort_s = estimate_sort_time(args.queries, prep.psa.sort_passes, device)
    tp = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
    print(f"device                 {device.name}")
    print(f"queries                {args.queries}")
    print(f"psa sorted bits        {prep.psa.bits_sorted} "
          f"({prep.psa.sort_passes} passes)")
    print(f"ntg group size         {prep.group_size}")
    for key, value in metrics.summary().items():
        print(f"{key:22s} {value}")
    print(f"modeled throughput     {tp / 1e9:.3f} Gq/s")
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    """Demo run of the sharded service tier: build, serve a mixed
    search/update workload across worker processes, report per-shard
    stats (and per-batch skew/rebalance when asked)."""
    import os
    import time

    from repro.shard import ShardedTree
    from repro.workloads.generators import make_key_set, uniform_queries
    from repro.workloads.mixes import PAPER_UPDATE_MIX, make_update_batch

    rng = np.random.default_rng(args.seed)
    keys = make_key_set(args.keys, rng=args.seed)
    n_ops = max(args.batch // 4, 1)
    print(f"sharding {keys.size} keys across {args.shards} workers "
          f"(batch {args.batch} queries + {n_ops} ops, "
          f"{args.batches} rounds)")
    import contextlib

    import repro.obs as obs
    from repro.obs.export import write_chrome_trace, write_snapshot
    from repro.obs.schema import validate_snapshot

    # --trace-out wraps the whole run in a recording: the router mints
    # trace ids, worker registries merge back, and the merged snapshot +
    # multi-process Chrome trace land in the given directory.
    recording = obs.recording() if args.trace_out else contextlib.nullcontext()
    with recording as rec, \
            ShardedTree.from_sorted(keys, n_shards=args.shards,
                                    fanout=args.fanout) as st:
        t0 = time.perf_counter()
        for _ in range(args.batches):
            st.search_many(uniform_queries(keys, args.batch, rng=rng))
            st.apply_batch(
                make_update_batch(keys, n_ops, PAPER_UPDATE_MIX, rng=rng)
            )
        wall = time.perf_counter() - t0
        revived = st.health_check()
        rebalanced = st.rebalance(args.rebalance_threshold)
        done = args.batches * (args.batch + n_ops)
        print(f"served {done} requests in {wall:.3f}s "
              f"({done / wall / 1e6:.3f} Mreq/s), skew {st.skew():.3f}"
              + (", rebalanced" if rebalanced else "")
              + (f", revived {revived}" if revived else ""))
        for row in st.stats():
            lo = "-inf" if row["range_lo"] is None else row["range_lo"]
            hi = "+inf" if row["range_hi"] is None else row["range_hi"]
            print(f"  shard {row['shard']}: {row['n_keys']} keys, "
                  f"epoch {row['epoch']}, restarts {row['restarts']}, "
                  f"range ({lo}, {hi}]")
        if args.trace_out:
            snapshot = rec.snapshot()
            os.makedirs(args.trace_out, exist_ok=True)
            snap_path = write_snapshot(
                snapshot, os.path.join(args.trace_out, "snapshot.json")
            )
            trace_path = write_chrome_trace(
                rec, os.path.join(args.trace_out, "trace.json")
            )
            print(f"snapshot: {snap_path}")
            print(f"chrome trace: {trace_path} "
                  f"({len(rec.remote_processes()) + 1} process lanes)")
            for p in validate_snapshot(snapshot):
                print(f"harmonia-tool: obs: {p}", file=sys.stderr)
                return 1
    return 0


def _cmd_join(args: argparse.Namespace) -> int:
    """Build two trees from key files and merge-join them (docs/join.md):
    the first tree's leaf region streams through the second's hinted
    dual walk; ``--trace-out`` records the join.* metrics + spans."""
    import contextlib
    import os
    import time

    import repro.obs as obs
    from repro.join import TileConfig, merge_join
    from repro.obs.export import write_chrome_trace, write_snapshot
    from repro.obs.schema import validate_snapshot

    keys_a = np.unique(_read_keys(args.keys_a))
    keys_b = np.unique(_read_keys(args.keys_b))
    tree_a = HarmoniaTree.from_sorted(keys_a, None, fanout=args.fanout)
    tree_b = HarmoniaTree.from_sorted(keys_b, None, fanout=args.fanout)
    tile = None if args.tile is None else TileConfig(tile_size=args.tile)

    recording = obs.recording() if args.trace_out else contextlib.nullcontext()
    with recording as rec:
        t0 = time.perf_counter()
        result = merge_join(
            tree_a, tree_b, mode=args.mode, tile=tile,
            hinted=not args.no_hint,
        )
        wall = time.perf_counter() - t0
        print(f"{args.mode} join: {keys_a.size} probe keys x "
              f"{keys_b.size} build keys -> {result.keys.size} rows "
              f"in {wall:.3f}s (selectivity {result.selectivity:.1%}, "
              f"{'hinted' if not args.no_hint else 'unhinted'}"
              + (f", tile {args.tile}" if args.tile else "") + ")")
        shown = min(result.keys.size, args.limit)
        for i in range(shown):
            row = f"{result.keys[i]}\t{result.values_a[i]}"
            if result.values_b is not None:
                row += f"\t{result.values_b[i]}"
            print(row)
        if result.keys.size > shown:
            print(f"# ... {result.keys.size - shown} more rows",
                  file=sys.stderr)
        if args.trace_out:
            snapshot = rec.snapshot()
            os.makedirs(args.trace_out, exist_ok=True)
            snap_path = write_snapshot(
                snapshot, os.path.join(args.trace_out, "snapshot.json")
            )
            trace_path = write_chrome_trace(
                rec, os.path.join(args.trace_out, "trace.json")
            )
            print(f"snapshot: {snap_path}")
            print(f"chrome trace: {trace_path}")
            for p in validate_snapshot(snapshot):
                print(f"harmonia-tool: obs: {p}", file=sys.stderr)
                return 1
    return 0


def _cmd_obs_record(args: argparse.Namespace) -> int:
    """One instrumented end-to-end run: overlapped stream + simulated
    kernel under a single recording, exported as snapshot + Chrome trace.

    This is the acceptance run for the observability layer: the trace
    shows the §4.1.3 sort/traverse overlap on separate thread tracks, and
    the snapshot carries both ``engine.unique_nodes.l*`` and
    ``gpusim.transactions_per_warp`` for ``obs report``.
    """
    import os

    import repro.obs as obs
    from repro.gpusim import simulate_harmonia_search
    from repro.obs.export import write_chrome_trace, write_snapshot
    from repro.obs.report import render_report
    from repro.obs.schema import validate_snapshot
    from repro.workloads.datasets import miniaturized_device
    from repro.workloads.generators import make_key_set, uniform_queries

    rng = np.random.default_rng(args.seed)
    keys = make_key_set(args.keys, rng=args.seed)
    tree = HarmoniaTree.from_sorted(keys, fanout=args.fanout)
    queries = uniform_queries(tree.layout.all_keys(), args.queries, rng=rng)
    cfg = SearchConfig(
        stream_batch=max(args.queries // 8, 1), stream_mode="overlap"
    )

    with obs.recording() as rec:
        tree.search_stream(queries, cfg)
        sim_n = min(args.queries, 1 << 12)
        prep = tree.prepare_queries(queries[:sim_n], SearchConfig.full())
        device = miniaturized_device(len(tree), sim_n)
        simulate_harmonia_search(
            tree.layout, prep.queries, prep.group_size, device=device
        )
        if args.shards:
            # One traced sharded batch: the recording makes the router
            # mint trace ids, so worker spans merge back and the Chrome
            # trace grows one process lane per worker.
            from repro.shard import ShardedTree

            with ShardedTree.from_sorted(
                keys, n_shards=args.shards, fanout=args.fanout
            ) as st:
                st.search_many(queries[: 1 << 12])

    snapshot = rec.snapshot()
    problems = validate_snapshot(snapshot)
    os.makedirs(args.out, exist_ok=True)
    snap_path = write_snapshot(snapshot, os.path.join(args.out, "snapshot.json"))
    trace_path = write_chrome_trace(rec, os.path.join(args.out, "trace.json"))
    print(render_report(snapshot))
    print(f"snapshot: {snap_path}")
    print(f"chrome trace: {trace_path} (load in chrome://tracing or "
          "https://ui.perfetto.dev)")
    if problems:
        for p in problems:
            print(f"harmonia-tool: obs: {p}", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.export import load_metrics
    from repro.obs.report import render_report

    print(render_report(load_metrics(args.snapshot)), end="")
    return 0


def _cmd_obs_diff(args: argparse.Namespace) -> int:
    from repro.obs.export import load_metrics
    from repro.obs.report import render_diff

    print(render_diff(load_metrics(args.a), load_metrics(args.b),
                      label_a=args.a, label_b=args.b), end="")
    return 0


def _cmd_obs_flight(args: argparse.Namespace) -> int:
    """Inspect the always-on flight recorder.

    With a dump file: render it (identity, latency percentiles, the most
    recent events).  Without: list the dumps in the flight directory
    (``$HARMONIA_FLIGHT_DIR``, default: the system temp dir) — that is
    where crashed shard workers leave their rings.
    """
    import glob
    import json
    import os

    from repro.obs.flight import flight_dir

    if args.dump is None:
        d = flight_dir()
        if d is None:
            print("flight dumps disabled (HARMONIA_FLIGHT_DIR is empty)")
            return 0
        found = sorted(glob.glob(os.path.join(d, "harmonia-flight-*.json")))
        if not found:
            print(f"no flight dumps in {d}")
            return 0
        for path in found:
            try:
                with open(path, encoding="utf-8") as fh:
                    data = json.load(fh)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"{path}: unreadable ({exc})")
                continue
            print(f"{path}: pid {data.get('pid')} "
                  f"reason={data.get('reason')!r} "
                  f"events={data.get('events_recorded')} "
                  f"dropped={data.get('dropped')}")
        return 0

    with open(args.dump, encoding="utf-8") as fh:
        data = json.load(fh)
    print(f"== flight dump: {args.dump} ==")
    print(f"pid {data.get('pid')}  reason={data.get('reason')!r}  "
          f"capacity {data.get('capacity')}  "
          f"recorded {data.get('events_recorded')}  "
          f"dropped {data.get('dropped')}")
    latency = data.get("latency", {})
    if latency:
        print("-- latency (s) --")
        for op, row in latency.items():
            print(f"  {op:<20} n={row.get('count'):<8} "
                  f"p50={row.get('p50_s'):.6g} "
                  f"p95={row.get('p95_s'):.6g} "
                  f"p99={row.get('p99_s'):.6g}")
    events = data.get("events", [])
    tail = events[-args.tail:] if args.tail else events
    if tail:
        print(f"-- last {len(tail)} events --")
        for e in tail:
            print(f"  #{e.get('seq'):<8} {e.get('kind'):<12} "
                  f"{e.get('detail')}")
    return 0


def _cmd_obs_validate(args: argparse.Namespace) -> int:
    from repro.obs.export import load_metrics
    from repro.obs.schema import validate_snapshot

    problems = validate_snapshot(load_metrics(args.snapshot))
    if problems:
        for p in problems:
            print(f"{args.snapshot}: {p}")
        return 1
    print(f"{args.snapshot}: ok")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="harmonia-tool",
        description="Build, query, inspect and simulate Harmonia indexes.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    b = sub.add_parser("build", help="bulk-build an index")
    src = b.add_mutually_exclusive_group(required=True)
    src.add_argument("--keys", help="file of keys (.txt/.npy/.npz)")
    src.add_argument("--random", type=int, help="generate N random keys")
    b.add_argument("--out", required=True)
    b.add_argument("--fanout", type=int, default=64)
    b.add_argument("--fill", type=float, default=0.7)
    b.add_argument("--seed", type=int, default=0)
    b.set_defaults(func=_cmd_build)

    q = sub.add_parser("query", help="point lookups")
    q.add_argument("index")
    q.add_argument("targets", nargs="*", help="keys (default: stdin)")
    q.add_argument("--file", help="file of query keys")
    q.add_argument("--no-optimized", dest="optimized", action="store_false",
                   help="skip PSA/NTG preprocessing")
    q.set_defaults(func=_cmd_query, optimized=True)

    r = sub.add_parser("range", help="range scan [LO, HI]")
    r.add_argument("index")
    r.add_argument("lo", type=int)
    r.add_argument("hi", type=int)
    r.set_defaults(func=_cmd_range)

    s = sub.add_parser("stats", help="structural statistics")
    s.add_argument("index")
    s.set_defaults(func=_cmd_stats)

    m = sub.add_parser("simulate", help="run the GPU model on the index")
    m.add_argument("index")
    m.add_argument("--queries", type=int, default=1 << 14)
    m.add_argument("--device", choices=("titanv", "k80"), default="titanv")
    m.add_argument("--seed", type=int, default=0)
    m.set_defaults(func=_cmd_simulate)

    sh = sub.add_parser(
        "shard",
        help="run a mixed workload through the sharded multi-process tier",
    )
    sh.add_argument("--keys", type=int, default=1 << 17)
    sh.add_argument("--shards", type=int, default=2)
    sh.add_argument("--batches", type=int, default=4)
    sh.add_argument("--batch", type=int, default=1 << 14,
                    help="queries per round (ops per round = batch / 4)")
    sh.add_argument("--fanout", type=int, default=64)
    sh.add_argument("--rebalance-threshold", type=float, default=1.5)
    sh.add_argument("--seed", type=int, default=0)
    sh.add_argument("--trace-out", default=None,
                    help="record the run with cross-process tracing and "
                         "write snapshot.json + trace.json here")
    sh.set_defaults(func=_cmd_shard)

    j = sub.add_parser(
        "join",
        help="merge-join two key files through the dual-tree walk",
    )
    j.add_argument("keys_a", help="probe-side keys (.npy/.npz/text)")
    j.add_argument("keys_b", help="build-side keys (.npy/.npz/text)")
    j.add_argument("--mode", choices=["inner", "semi", "anti"],
                   default="inner")
    j.add_argument("--fanout", type=int, default=64)
    j.add_argument("--tile", type=int, default=None,
                   help="bounded-memory tile size (queries per tile)")
    j.add_argument("--no-hint", action="store_true",
                   help="probe per tile through the plain engine instead "
                        "of the hinted dual walk")
    j.add_argument("--limit", type=int, default=10,
                   help="result rows to print (default 10)")
    j.add_argument("--trace-out", default=None,
                   help="directory for the recorded snapshot.json + "
                        "trace.json of the join")
    j.set_defaults(func=_cmd_join)

    o = sub.add_parser(
        "obs", help="observability: record / report / diff / validate"
    )
    osub = o.add_subparsers(dest="obs_command", required=True)

    orec = osub.add_parser(
        "record",
        help="run an instrumented stream + simulation, write snapshot "
             "and Chrome trace",
    )
    orec.add_argument("--out", default="obs-run",
                      help="output directory (default: obs-run)")
    orec.add_argument("--keys", type=int, default=1 << 16)
    orec.add_argument("--queries", type=int, default=1 << 16)
    orec.add_argument("--fanout", type=int, default=32)
    orec.add_argument("--seed", type=int, default=0)
    orec.add_argument("--shards", type=int, default=0,
                      help="also run one traced batch through an N-shard "
                           "service (adds per-worker process lanes)")
    orec.set_defaults(func=_cmd_obs_record)

    orep = osub.add_parser("report", help="render a snapshot as text")
    orep.add_argument("snapshot")
    orep.set_defaults(func=_cmd_obs_report)

    odiff = osub.add_parser(
        "diff", help="counter/gauge/histogram deltas between two snapshots"
    )
    odiff.add_argument("a")
    odiff.add_argument("b")
    odiff.set_defaults(func=_cmd_obs_diff)

    oval = osub.add_parser(
        "validate", help="check a snapshot against the metric catalogue"
    )
    oval.add_argument("snapshot")
    oval.set_defaults(func=_cmd_obs_validate)

    ofl = osub.add_parser(
        "flight",
        help="list flight-recorder dumps, or render one dump file",
    )
    ofl.add_argument("dump", nargs="?", default=None,
                     help="a dump file to render (default: list the "
                          "flight directory)")
    ofl.add_argument("--tail", type=int, default=20,
                     help="events to show from the end (default: 20)")
    ofl.set_defaults(func=_cmd_obs_flight)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, FileNotFoundError, ValueError) as exc:
        print(f"harmonia-tool: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
