"""Harmonia: a high-throughput B+tree for GPUs — full reproduction.

Reproduces Yan, Lin, Peng & Zhang, *Harmonia: A High Throughput B+tree for
GPUs* (PPoPP 2019) as a pure-Python library: the two-region tree layout,
the PSA and NTG optimizations, batch updates with Algorithm 1 locking, the
HB+Tree comparator, and a simulated SIMT GPU substrate that regenerates
every figure of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import HarmoniaTree, SearchConfig

    keys = np.arange(0, 1_000_000, 2)
    tree = HarmoniaTree.from_sorted(keys, fanout=64)
    values = tree.search_batch(np.array([2, 4, 5]), SearchConfig.full())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.constants import DEFAULT_FANOUT, KEY_MAX, NOT_FOUND
from repro.core import (
    BatchQueryEngine,
    EngineStats,
    EpochManager,
    HarmoniaLayout,
    HarmoniaTree,
    RecordStore,
    SearchConfig,
    StreamExecutor,
    StreamStats,
    UpdateConfig,
    ValueHeap,
    compact,
    layout_stats,
    load_layout,
    load_tree,
    merge_layouts,
    recommend_fanout,
    save_layout,
    save_tree,
)
from repro.core.update import Operation
from repro.obs import MetricsRegistry, TraceConfig
from repro.btree import ImplicitBPlusTree, RegularBPlusTree, bulk_load
from repro.baselines import CPUBTreeSearcher, HBTree
from repro.gpusim import DeviceSpec, TESLA_K80, TITAN_V

__version__ = "1.0.0"

__all__ = [
    "HarmoniaTree",
    "HarmoniaLayout",
    "BatchQueryEngine",
    "EngineStats",
    "StreamExecutor",
    "StreamStats",
    "SearchConfig",
    "UpdateConfig",
    "MetricsRegistry",
    "TraceConfig",
    "EpochManager",
    "Operation",
    "save_layout",
    "load_layout",
    "save_tree",
    "load_tree",
    "layout_stats",
    "RecordStore",
    "ValueHeap",
    "merge_layouts",
    "compact",
    "recommend_fanout",
    "RegularBPlusTree",
    "ImplicitBPlusTree",
    "bulk_load",
    "HBTree",
    "CPUBTreeSearcher",
    "DeviceSpec",
    "TITAN_V",
    "TESLA_K80",
    "DEFAULT_FANOUT",
    "KEY_MAX",
    "NOT_FOUND",
    "__version__",
]
