"""LSD radix sort with partial (top-N-bit) variants and a cost model.

A least-significant-digit radix sort over ``d``-bit digits makes
``ceil(bits / d)`` stable counting passes, each touching every element once;
total work is therefore proportional to the number of *digit passes* — the
property PSA exploits to cut sorting cost by sorting only the top ``N`` bits
(§4.1.2: "for these bit-wise sorting algorithms, the execution time is
proportional to the sorted bits").

Keys here are non-negative int64 views of the query batch (B+tree keys in
the evaluation are uniform in [0, 2^63)), so no sign-flip pass is needed;
:func:`radix_argsort` asserts that precondition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

import repro.obs as obs
from repro.constants import KEY_BITS
from repro.errors import ConfigError

#: Digit width in bits.  8 matches common GPU radix implementations
#: (256-bucket histogram per pass).
DEFAULT_DIGIT_BITS = 8


def radix_passes(bits: int, digit_bits: int = DEFAULT_DIGIT_BITS) -> int:
    """Number of counting passes needed to sort ``bits`` key bits."""
    if bits < 0:
        raise ConfigError(f"bits must be >= 0, got {bits}")
    if digit_bits <= 0:
        raise ConfigError(f"digit_bits must be positive, got {digit_bits}")
    return -(-bits // digit_bits)  # ceil


@dataclass(frozen=True)
class RadixSortResult:
    """Outcome of a (partial) radix argsort.

    ``order`` is the permutation: ``keys[order]`` is (partially) sorted.
    ``passes`` counts the stable counting passes executed — the unit of the
    cost model.  ``bits_sorted`` records how much of the key participated.
    """

    order: np.ndarray
    passes: int
    bits_sorted: int

    def inverse(self) -> np.ndarray:
        """Permutation mapping sorted positions back to original positions:
        ``results_in_original_order = sorted_results[inverse_of_order]``.

        Satisfies ``inverse()[order] == arange(n)``.  Computed once and
        cached — restore paths that look the inverse up repeatedly (or a
        direct scatter ``out[order] = sorted_results``, which never needs
        it) no longer pay an O(n) scatter per lookup.
        """
        cached = self.__dict__.get("_inverse")
        if cached is None:
            cached = np.empty_like(self.order)
            cached[self.order] = np.arange(self.order.size, dtype=self.order.dtype)
            object.__setattr__(self, "_inverse", cached)
        return cached


def _counting_pass(keys: np.ndarray, order: np.ndarray, shift: int, mask: int) -> np.ndarray:
    """One stable counting pass on digit ``(keys >> shift) & mask``.

    A true O(n + B) counting pass over ``B = mask + 1`` buckets: the digit
    array is narrowed to the smallest unsigned dtype covering the bucket
    range, and NumPy's stable argsort on that array dispatches to its C
    radix kernel — per byte exactly one histogram → exclusive-scan →
    stable-scatter counting pass.  Narrowing is what makes the cost model
    honest: on an int64 digit array the kernel histograms all eight bytes
    every pass (~6× the work at 2^16 keys), so sort time stopped scaling
    with the digit passes §4.1.2 counts.
    """
    digits = (keys.take(order) >> shift) & mask
    if mask < (1 << 8):
        digits = digits.astype(np.uint8)
    elif mask < (1 << 16):
        digits = digits.astype(np.uint16)
    return order.take(np.argsort(digits, kind="stable"))


def radix_argsort(
    keys: np.ndarray, digit_bits: int = DEFAULT_DIGIT_BITS, key_bits: int = KEY_BITS
) -> RadixSortResult:
    """Full stable radix argsort of non-negative integer ``keys``."""
    return partial_radix_argsort(keys, bits=key_bits, digit_bits=digit_bits, key_bits=key_bits)


def partial_radix_argsort(
    keys: np.ndarray,
    bits: int,
    digit_bits: int = DEFAULT_DIGIT_BITS,
    key_bits: int = KEY_BITS,
) -> RadixSortResult:
    """Stable argsort on only the most-significant ``bits`` of each key.

    Equivalent to a full LSD radix sort that skips the low
    ``key_bits - bits`` bits: elements equal on the top bits keep their
    input order (stability), exactly the PSA grouping semantics — queries
    land in the right *group*, unordered within it (§4.1.2, Figure 6c).
    """
    arr = np.asarray(keys)
    if arr.ndim != 1:
        raise ConfigError(f"keys must be 1-D, got shape {arr.shape}")
    if not 0 <= bits <= key_bits:
        raise ConfigError(f"bits must be in [0, {key_bits}], got {bits}")
    if arr.size and int(arr.min()) < 0:
        # Signed keys: flip the sign bit to get an order-preserving
        # unsigned image (the standard radix trick), and sort the full
        # 64-bit width — a signed range spans the top of the bit space.
        arr = arr.astype(np.uint64) ^ np.uint64(1 << 63)
        key_bits = 64

    order = np.arange(arr.size, dtype=np.int64)
    if bits == 0 or arr.size <= 1:
        return RadixSortResult(order=order, passes=0, bits_sorted=0)

    # LSD passes over exactly the top ``bits`` bits: full digits from the
    # bottom of the participating range [key_bits - bits, key_bits), with
    # the final (most-significant) pass narrowed to the remaining
    # ``bits % digit_bits`` bits — so a 19-bit partial sort with 8-bit
    # digits runs passes of 8, 8 and 3 bits.  No bits outside the request
    # are touched, keeping the executed passes equal to
    # :func:`radix_passes` and ``bits_sorted`` equal to ``bits``, which is
    # what pins measured cost to the §4.1.2 pass model.
    digit_bits = min(digit_bits, bits)
    passes = 0
    n_passes = radix_passes(bits, digit_bits)
    start = key_bits - bits
    for p in range(n_passes):
        shift = start + p * digit_bits
        width = min(digit_bits, key_bits - shift)
        order = _counting_pass(arr, order, shift, (1 << width) - 1)
        passes += 1
    rec = obs.active
    if rec.enabled:
        rec.counter("sort.passes", passes)
        rec.counter("sort.keys", int(arr.size))
    return RadixSortResult(order=order, passes=passes, bits_sorted=bits)


def full_sort_cost(n: int, key_bits: int = KEY_BITS, digit_bits: int = DEFAULT_DIGIT_BITS) -> float:
    """Model cost (element-passes) of a full sort of ``n`` keys."""
    return float(n * radix_passes(key_bits, digit_bits))


def partial_sort_cost(
    n: int, bits: int, key_bits: int = KEY_BITS, digit_bits: int = DEFAULT_DIGIT_BITS
) -> float:
    """Model cost (element-passes) of a top-``bits`` partial sort."""
    if not 0 <= bits <= key_bits:
        raise ConfigError(f"bits must be in [0, {key_bits}], got {bits}")
    return float(n * radix_passes(bits, digit_bits))


__all__ = [
    "DEFAULT_DIGIT_BITS",
    "RadixSortResult",
    "radix_passes",
    "radix_argsort",
    "partial_radix_argsort",
    "full_sort_cost",
    "partial_sort_cost",
]
