"""Bit-wise (radix) sorting substrate.

The paper's PSA optimization (§4.1) relies on two properties of GPU radix
sorts like CUB's [12]: they are *stable* and their **execution time is
proportional to the number of sorted bits**.  :mod:`repro.sort.radix`
implements an LSD radix sort with exactly those properties, including
partial sorts restricted to the most-significant ``N`` bits, plus the cost
model the Figure 8 experiment uses.
"""

from repro.sort.radix import (
    RadixSortResult,
    full_sort_cost,
    partial_radix_argsort,
    partial_sort_cost,
    radix_argsort,
    radix_passes,
)

__all__ = [
    "RadixSortResult",
    "radix_argsort",
    "partial_radix_argsort",
    "radix_passes",
    "full_sort_cost",
    "partial_sort_cost",
]
