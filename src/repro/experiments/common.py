"""Shared plumbing for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.workloads.datasets import Scale, get_scale


@dataclass
class ExperimentResult:
    """A figure reproduction: rows of measurements plus provenance."""

    experiment: str  #: e.g. "fig11"
    title: str
    scale: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Paper-reported reference points, for side-by-side printing.
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **fields: Any) -> None:
        self.rows.append(fields)

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------ rendering

    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def to_table(self) -> str:
        """GitHub-style markdown table of the rows."""
        cols = self.columns()
        if not cols:
            return "(no rows)"
        widths = {
            c: max(len(c), *(len(str(r.get(c, ""))) for r in self.rows))
            for c in cols
        }
        header = "| " + " | ".join(c.ljust(widths[c]) for c in cols) + " |"
        sep = "|-" + "-|-".join("-" * widths[c] for c in cols) + "-|"
        lines = [header, sep]
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in cols)
                + " |"
            )
        return "\n".join(lines)

    def render(self) -> str:
        parts = [f"## {self.experiment}: {self.title}", f"(scale: {self.scale})", ""]
        parts.append(self.to_table())
        if self.paper_reference:
            parts.append("")
            parts.append("Paper reference: " + ", ".join(
                f"{k}={v}" for k, v in self.paper_reference.items()
            ))
        for note in self.notes:
            parts.append(f"- {note}")
        return "\n".join(parts)

    def print(self) -> None:  # pragma: no cover — console convenience
        print(self.render())


def resolve_scale(scale) -> Scale:
    """Accept a Scale or a scale name."""
    if isinstance(scale, Scale):
        return scale
    return get_scale(scale)


def geomean(values: Sequence[float]) -> float:
    import math

    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def build_eval_point(n_keys: int, n_queries: int, seed: int, fanout: int = 64,
                     fill: float = 0.7):
    """The standard evaluation setup (§5.1 at configurable scale): a
    ``fanout``-64 tree of ``n_keys`` uniform keys and a uniform query batch.

    ``fill=0.7`` approximates insertion-built occupancy (ln 2 ≈ 0.69).
    Returns ``(HarmoniaTree, keys, queries)``.
    """
    import numpy as np

    from repro.core import HarmoniaTree
    from repro.workloads.generators import make_key_set, uniform_queries

    rng = np.random.default_rng(seed)
    keys = make_key_set(n_keys, rng=rng)
    tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=fill)
    queries = uniform_queries(keys, n_queries, rng=rng)
    return tree, keys, queries


__all__ = ["ExperimentResult", "resolve_scale", "geomean", "build_eval_point"]
