"""Extension — §4.1.3's sort/traverse overlap, measured against the model.

The paper hides PSA's sort cost by overlapping the CPU sort of the next
query batch with the kernel of the current one (§4.1.3); the repo's
:mod:`repro.gpusim.pipeline` has modeled that double-buffering analytically
since PR 0.  This experiment runs the *actual* streaming executor
(:class:`repro.core.stream.StreamExecutor`) in its ``serial`` and
``overlap`` modes over the same traffic and puts three numbers side by
side per mode:

* measured wall clock;
* the pipeline model's ``serial`` and ``double_buffer`` totals evaluated
  on the *measured* steady-state stage times (sort ↦ H2D, traverse ↦
  kernel, scatter ↦ D2H);
* the hiding condition itself — steady-state sort ≤ steady-state traverse
  per batch, which is what makes the overlap free on a multicore host.

On a single-CPU host (the container this repo grows in has one) the two
stages time-share, so overlap mode cannot beat serial by more than
measurement noise — the model rows make that legible: ``double_buffer``
only pulls ahead of ``serial`` by ``min(sort, traverse)`` per batch, and
with one core the executor's wall tracks the *serial* model in both modes.
The shape check therefore asserts the honest invariants (sort is hidden,
the model orders correctly, overlap adds no real overhead and loses
nothing) rather than a speedup the hardware cannot produce.
"""

from __future__ import annotations

import numpy as np

from repro.core.stream import StreamExecutor
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.workloads.datasets import scaled_tree_sizes


def run(scale="default", seed: int = 0,
        trace_out: str = None) -> ExperimentResult:
    """``trace_out`` (a directory path) additionally captures one
    *recorded* overlap run — after the timed loops, so recording overhead
    never touches the measured rows — and writes the obs snapshot plus the
    Chrome trace of the §4.1.3 timeline there."""
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[-1]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
    layout = tree.layout
    batch = max(1 << 13, sc.n_queries // 4)

    result = ExperimentResult(
        experiment="ext_overlap",
        title="Streaming sort/traverse overlap vs the pipeline model",
        scale=sc.name,
        paper_reference={
            "claim": "§4.1.3 — sorting the next batch of queries is "
            "overlapped with the current batch's processing, so the PSA "
            "sort leaves the critical path"
        },
    )

    reference = None
    for mode in ("serial", "overlap"):
        executor = StreamExecutor(layout, batch_size=batch, mode=mode)
        out = executor.run(queries)  # warm slot buffers + packed leaves
        st = executor.last_stats
        for _ in range(4):  # best of 4: thread scheduling is noisy
            out = executor.run(queries)
            if executor.last_stats.wall_s < st.wall_s:
                st = executor.last_stats
        if reference is None:
            reference = out.copy()
        else:
            assert np.array_equal(out, reference)
        result.add_row(
            mode=mode,
            n_batches=st.n_batches,
            batch_size=st.batch_size,
            bits_sorted=st.bits_sorted,
            cpu_count=st.cpu_count,
            wall_ms=round(st.wall_s * 1e3, 2),
            steady_sort_ms=round(st.steady_sort_s * 1e3, 3),
            steady_traverse_ms=round(st.steady_traverse_s * 1e3, 3),
            steady_scatter_ms=round(st.steady_scatter_s * 1e3, 3),
            sort_hidden=st.sort_hidden,
            overlapped_ms=round(st.overlapped_s * 1e3, 3),
            occupancy=round(st.occupancy, 3),
            model_serial_ms=round(st.model_total_s("serial") * 1e3, 2),
            model_db_ms=round(st.model_total_s("double_buffer") * 1e3, 2),
        )
    if trace_out is not None:
        import os

        import repro.obs as obs
        from repro.obs.export import write_chrome_trace, write_snapshot

        executor = StreamExecutor(layout, batch_size=batch, mode="overlap")
        with obs.recording() as rec:
            traced = executor.run(queries)
        assert np.array_equal(traced, reference)
        os.makedirs(trace_out, exist_ok=True)
        write_snapshot(rec.snapshot(),
                       os.path.join(trace_out, "ext_overlap.snapshot.json"))
        write_chrome_trace(rec,
                           os.path.join(trace_out, "ext_overlap.trace.json"))
        result.note(f"obs snapshot + Chrome trace written to {trace_out}")
    result.note(
        "shape criteria: both modes agree bit-for-bit; steady-state sort "
        "fits under the traversal (the §4.1.3 hiding condition); the "
        "double-buffer model never exceeds the serial model; overlap mode "
        "costs at most 15% + 1ms over serial in wall clock (the "
        "thread-scheduling tax on one core; ahead on multicore)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by_mode = {r["mode"]: r for r in result.rows}
    serial, overlap = by_mode["serial"], by_mode["overlap"]
    return (
        overlap["sort_hidden"]
        and all(r["model_db_ms"] <= r["model_serial_ms"] + 1e-9 for r in result.rows)
        and overlap["wall_ms"] <= serial["wall_ms"] * 1.15 + 1.0
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
