"""Figure 14 — batch update throughput: Harmonia vs HB+tree.

Paper: with a 5%-insert / 95%-update mix in 4096K-operation batches,
Harmonia's CPU batch update (auxiliary nodes + deferred movement) averages
≈70% of HB+tree's update throughput — "acceptable" because the query phase
dominates the scenario (read/write ≈ 35:1 in TPC-H, §3.2).

Both pipelines here are real executions (wall clock), not model numbers:
Algorithm 1's locking, the auxiliary-node staging and the movement pass all
actually run.
"""

from __future__ import annotations

import time

from repro.baselines.hbtree import HBTree
from repro.core import HarmoniaTree, UpdateConfig
from repro.experiments.common import ExperimentResult, geomean, resolve_scale
from repro.workloads.datasets import scaled_tree_sizes
from repro.workloads.generators import make_key_set
from repro.workloads.mixes import PAPER_UPDATE_MIX, make_update_batch


def run(scale="default", seed: int = 0, n_threads: int = 4) -> ExperimentResult:
    sc = resolve_scale(scale)
    result = ExperimentResult(
        experiment="fig14",
        title="Batch update throughput (5% insert / 95% update)",
        scale=sc.name,
        paper_reference={"harmonia_vs_hb": "≈0.7x", "absolute": "tens of Mops/s on a 28-core Xeon"},
    )
    ratios = []
    for n_keys in scaled_tree_sizes(sc):
        keys = make_key_set(n_keys, rng=seed)
        ops = make_update_batch(
            keys, sc.update_batch, mix=PAPER_UPDATE_MIX, rng=seed + 1
        )

        tree = HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7)
        t0 = time.perf_counter()
        res = tree.apply_batch(ops, UpdateConfig(n_threads=n_threads))
        harmonia_s = time.perf_counter() - t0
        tree.check_invariants()

        hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)
        counts = hb.apply_batch(ops, n_threads=n_threads)
        hb_s = counts["total_s"]

        ha_tp = len(ops) / harmonia_s
        hb_tp = len(ops) / hb_s
        ratios.append(ha_tp / hb_tp)
        result.add_row(
            log2_tree_size=n_keys.bit_length() - 1,
            batch_ops=len(ops),
            harmonia_mops=round(ha_tp / 1e6, 3),
            hb_mops=round(hb_tp / 1e6, 3),
            ratio=round(ha_tp / hb_tp, 2),
            harmonia_apply_s=round(res.timer.get("apply"), 4),
            harmonia_movement_s=round(res.timer.get("movement"), 4),
            hb_sync_s=round(counts["sync_s"], 4),
        )
    result.note(f"geomean throughput ratio: {geomean(ratios):.2f}x")
    result.note(
        "shape criterion: Harmonia comparable to HB+ — geomean ratio >= "
        "0.45 and no size below 0.25 (paper: 0.7x; both pipelines here are "
        "wall-clock measurements, so per-size ratios carry timing noise)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    ratios = [r["ratio"] for r in result.rows]
    return geomean(ratios) >= 0.45 and min(ratios) >= 0.25


if __name__ == "__main__":  # pragma: no cover
    run().print()
