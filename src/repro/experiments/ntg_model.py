"""§4.2 (in-text) — NTG model choice vs empirically best group size.

Paper: "the NTG size of this model is basically consistent with the NTG
size of the best performance" across fanouts 8..128 on Tesla K80 and
TITAN V (e.g. GS=2 for fanout 64 and GS=4 for fanout 128 on the K80).
"""

from __future__ import annotations

from repro.analysis.model_check import ntg_model_sweep
from repro.experiments.common import ExperimentResult, resolve_scale
from repro.gpusim.device import TESLA_K80, TITAN_V


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = {"smoke": 1 << 13, "default": 1 << 16}.get(sc.name, 1 << 18)
    n_queries = min(sc.n_queries, 1 << 14)
    validations = ntg_model_sweep(
        fanouts=(8, 16, 32, 64, 128),
        devices=(TITAN_V, TESLA_K80),
        rng=seed,
        n_keys=n_keys,
        n_queries=n_queries,
    )
    result = ExperimentResult(
        experiment="ntg_model",
        title="NTG model group size vs exhaustive best (per fanout, per GPU)",
        scale=sc.name,
        paper_reference={
            "consistency": "model ≈ best for all fanouts on K80 and TITAN V"
        },
    )
    for v in validations:
        result.add_row(**v.row())
    result.note(
        "shape criterion: the model's pick performs within 10% of the "
        "empirical best for at least 8 of the 10 grid points"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    consistent = sum(1 for r in result.rows if r["model_within_10pct"])
    return consistent >= 8


if __name__ == "__main__":  # pragma: no cover
    run().print()
