"""Figure 8 — sorted vs partially-sorted vs original query batches.

Paper: completely sorting a batch speeds the search kernel ≈22% but the
sort overhead (>25% of the search time) makes the *total* ≈7% slower;
partial sorting keeps the kernel gain at ≈35% of the sort cost, netting
≈10% end-to-end improvement.  Reported normalized to the original (unsorted)
search time, across tree sizes 2^23..2^26 (scaled here).
"""

from __future__ import annotations

from repro.core.psa import fully_sorted_batch, identity_batch, prepare_batch
from repro.core.ntg import fanout_group_size
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import TITAN_V, simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_kernel_time, estimate_sort_time
from repro.workloads.datasets import scaled_tree_sizes


def _one_size(n_keys: int, n_queries: int, seed: int, device=TITAN_V):
    tree, keys, queries = build_eval_point(n_keys, n_queries, seed)
    layout = tree.layout
    gs = fanout_group_size(layout.fanout, device.warp_size)
    space_bits = layout.key_space_bits()

    variants = {
        "original": identity_batch(queries),
        "sorted": fully_sorted_batch(queries),  # all 64 bits
        "ps": prepare_batch(
            queries,
            tree_size=n_keys,
            keys_per_cacheline=device.keys_per_cacheline,
            key_bits=space_bits,
        ),
    }
    out = {}
    for name, psa in variants.items():
        metrics = simulate_harmonia_search(
            layout, psa.queries, gs, device=device, early_exit=False
        )
        kt = estimate_kernel_time(metrics, layout, device)
        sort_s = estimate_sort_time(n_queries, psa.sort_passes, device)
        out[name] = {
            "search_s": kt.total_s,
            "sort_s": sort_s,
            "total_s": kt.total_s + sort_s,
            "passes": psa.sort_passes,
        }
    return out


def run(scale="default", seed: int = 0) -> ExperimentResult:
    from repro.workloads.datasets import scaled_device

    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_queries = sc.n_queries
    result = ExperimentResult(
        experiment="fig08",
        title="Sorted / partially-sorted search time, normalized to original",
        scale=sc.name,
        paper_reference={
            "sorted_total": "≈1.07 (slower)",
            "ps_total": "≈0.90 (10% faster)",
            "full_sort_overhead": ">25% of search time",
        },
    )
    for n_keys in scaled_tree_sizes(sc):
        data = _one_size(n_keys, n_queries, seed, device=device)
        base = data["original"]["search_s"]
        for name in ("original", "sorted", "ps"):
            d = data[name]
            result.add_row(
                log2_tree_size=n_keys.bit_length() - 1,
                variant=name,
                search_norm=round(d["search_s"] / base, 3),
                sort_norm=round(d["sort_s"] / base, 3),
                total_norm=round(d["total_s"] / base, 3),
                sort_passes=d["passes"],
            )
    result.note(
        "shape criteria: sorted kernel faster than original; partial sort "
        "total faster than both original and fully-sorted totals; partial "
        "sort cost well below full sort cost"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by_size: dict = {}
    for row in result.rows:
        by_size.setdefault(row["log2_tree_size"], {})[row["variant"]] = row
    for variants in by_size.values():
        orig, srt, ps = variants["original"], variants["sorted"], variants["ps"]
        if not (srt["search_norm"] < orig["search_norm"]):
            return False
        if not (ps["total_norm"] <= orig["total_norm"]):
            return False
        if not (ps["total_norm"] < srt["total_norm"]):
            return False
        if not (ps["sort_norm"] <= 0.5 * srt["sort_norm"] + 1e-9):
            return False
    return True


if __name__ == "__main__":  # pragma: no cover
    run().print()
