"""Figure 11 — overall query throughput: Harmonia vs HB+tree.

Paper: on a TITAN V, Harmonia reaches up to 3.6 billion queries/second and
averages ≈3.4× HB+tree's GPU throughput across tree sizes 2^23..2^26 with
uniform queries.

We report *modeled* GPU throughput (the SIMT counters through the roofline
model — the number whose shape the paper constrains) alongside measured
wall-clock throughput of the vectorized CPU execution (a NumPy program, so
its absolute numbers are not GPU numbers; its column exists for honesty).
"""

from __future__ import annotations

import time

from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import (
    ExperimentResult,
    build_eval_point,
    geomean,
    resolve_scale,
)
from repro.gpusim import TITAN_V, simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_tree_sizes


def harmonia_point(tree, queries, device=TITAN_V):
    """Modeled + measured throughput of the full Harmonia pipeline."""
    prep = tree.prepare_queries(queries, SearchConfig.full())
    metrics = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=device
    )
    sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, device)
    modeled = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
    t0 = time.perf_counter()
    tree.search_batch(queries, SearchConfig.full())
    wall = queries.size / (time.perf_counter() - t0)
    return modeled, wall, metrics


def hbtree_point(keys, queries, fanout=64, fill=0.7, device=TITAN_V):
    hb = HBTree.from_sorted(keys, fanout=fanout, fill=fill)
    metrics = hb.simulate_search(queries, device=device)
    modeled = modeled_throughput(metrics, hb._layout, device)
    t0 = time.perf_counter()
    hb.search_batch(queries)
    wall = queries.size / (time.perf_counter() - t0)
    return modeled, wall, metrics


def run(scale="default", seed: int = 0) -> ExperimentResult:
    from repro.workloads.datasets import scaled_device

    sc = resolve_scale(scale)
    device = scaled_device(sc)
    result = ExperimentResult(
        experiment="fig11",
        title="Overall query throughput: HB+ vs Harmonia",
        scale=sc.name,
        paper_reference={
            "harmonia_peak": "3.6 Gq/s",
            "speedup": "≈3.4x over HB+ at every size",
        },
    )
    speedups = []
    for n_keys in scaled_tree_sizes(sc):
        tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
        ha_model, ha_wall, _ = harmonia_point(tree, queries, device=device)
        hb_model, hb_wall, _ = hbtree_point(keys, queries, device=device)
        speedup = ha_model / hb_model if hb_model else 0.0
        speedups.append(speedup)
        result.add_row(
            log2_tree_size=n_keys.bit_length() - 1,
            hb_modeled_gqs=round(hb_model / 1e9, 3),
            harmonia_modeled_gqs=round(ha_model / 1e9, 3),
            modeled_speedup=round(speedup, 2),
            hb_wall_mqs=round(hb_wall / 1e6, 2),
            harmonia_wall_mqs=round(ha_wall / 1e6, 2),
        )
    result.note(f"geomean modeled speedup: {geomean(speedups):.2f}x")
    result.note(
        "shape criteria: Harmonia faster at every size; geomean modeled "
        "speedup within [2.5, 5.0]"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    ratios = [r["modeled_speedup"] for r in result.rows]
    return all(r > 1.0 for r in ratios) and 2.5 <= geomean(ratios) <= 5.0


if __name__ == "__main__":  # pragma: no cover
    run().print()
