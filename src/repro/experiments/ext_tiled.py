"""Extension — bounded-memory tiled batch search (FPGA discipline).

The level-wise FPGA batch-search paper (PAPERS.md) bounds on-chip memory
by processing a large batch through the tree level by level in fixed
tiles.  The host analog (:class:`repro.join.tiles.TileScheduler`,
docs/join.md) drives each tile through the frontier-compacted engine
with recycled scratch, so the resident traversal footprint is O(tile)
however large the batch.

This experiment sweeps tile sizes over one large batch and reports, per
tile size, the *measured* peak resident footprint (staging ring + engine
scratch, the ``stream.tile_peak_bytes`` gauge) against the untiled
engine's whole-batch scratch, plus the throughput cost of tiling —
values pinned identical to the untiled run first.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import BatchQueryEngine
from repro.experiments.common import (
    ExperimentResult,
    build_eval_point,
    resolve_scale,
)
from repro.join import TileConfig, TileScheduler
from repro.workloads.datasets import scaled_tree_sizes

_clock = time.perf_counter


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = _clock()
        fn()
        best = min(best, _clock() - t0)
    return best


def run(scale="default", seed: int = 0,
        trace_out: str = None) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[-1]
    n_queries = max(sc.n_queries, 1 << 16)
    tree, keys, queries = build_eval_point(n_keys, n_queries, seed)
    layout = tree.layout

    result = ExperimentResult(
        experiment="ext_tiled",
        title="Bounded-memory tiled batch search (level-wise FPGA "
              "discipline)",
        scale=sc.name,
        paper_reference={
            "claim": "beyond the paper — level-wise tiling: a batch of "
            "any size runs in fixed-size tiles with recycled per-tile "
            "scratch, so peak traversal memory is O(tile), not O(batch)"
        },
    )

    engine = BatchQueryEngine(layout)
    baseline = engine.execute(queries)
    untiled_s = _best_of(lambda: engine.execute(queries))
    untiled_bytes = engine.scratch_nbytes
    result.add_row(
        tile_size=0,
        tiles=1,
        peak_bytes=untiled_bytes,
        peak_ratio=1.0,
        wall_ms=round(untiled_s * 1e3, 3),
        throughput_ratio=1.0,
    )

    for shift in (12, 14, 16):
        tile = TileConfig(tile_size=1 << shift)
        sched = TileScheduler(BatchQueryEngine(layout), tile)
        out = sched.run(queries)
        assert np.array_equal(out, baseline)
        tiled_s = _best_of(lambda: sched.run(queries))
        result.add_row(
            tile_size=tile.tile_size,
            tiles=sched.last_tiles,
            peak_bytes=sched.last_peak_bytes,
            peak_ratio=round(sched.last_peak_bytes / untiled_bytes, 4),
            wall_ms=round(tiled_s * 1e3, 3),
            throughput_ratio=round(untiled_s / tiled_s, 3),
        )

    if trace_out is not None:
        import os

        import repro.obs as obs
        from repro.obs.export import write_chrome_trace, write_snapshot

        sched = TileScheduler(
            BatchQueryEngine(layout), TileConfig(tile_size=1 << 14)
        )
        with obs.recording() as rec:
            traced = sched.run(queries)
        assert np.array_equal(traced, baseline)
        os.makedirs(trace_out, exist_ok=True)
        write_snapshot(rec.snapshot(),
                       os.path.join(trace_out, "ext_tiled.snapshot.json"))
        write_chrome_trace(rec,
                           os.path.join(trace_out, "ext_tiled.trace.json"))
        result.note(f"obs snapshot + Chrome trace written to {trace_out}")

    result.note(
        "shape criteria: every tiled run byte-identical to the untiled "
        "engine; measured peak footprint shrinks monotonically with tile "
        "size and the smallest tile stays under 25% of the untiled "
        "scratch; throughput stays within 35% of untiled at the largest "
        "tile (per-tile dispatch overhead shrinks as tiles grow)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    untiled = result.rows[0]
    tiled = result.rows[1:]
    peaks = [r["peak_bytes"] for r in tiled]
    return (
        untiled["peak_ratio"] == 1.0
        and peaks == sorted(peaks)
        and tiled[0]["peak_ratio"] <= 0.25
        and tiled[-1]["throughput_ratio"] >= 0.65
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
