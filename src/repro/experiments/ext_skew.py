"""Extension — query-distribution sensitivity.

The paper evaluates uniform queries only ("the most commonly used
distributions in prior B+tree evaluations").  This experiment sweeps the
distributions other index papers report — zipf-skewed, normally clustered,
sequential — and measures how each changes the full pipeline's modeled
throughput and PSA's coalescing benefit.  Expected physics: skew and
clustering *increase* locality, so Harmonia's advantage grows; PSA's
marginal value shrinks when the input already arrives clustered.
"""

from __future__ import annotations

import numpy as np

from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_device, scaled_tree_sizes
from repro.workloads.generators import (
    normal_queries,
    sequential_queries,
    uniform_queries,
    zipf_queries,
)


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, _ = build_eval_point(n_keys, sc.n_queries, seed)
    rng = np.random.default_rng(seed + 11)
    nq = sc.n_queries

    batches = {
        "uniform": uniform_queries(keys, nq, rng=rng),
        "zipf(1.2)": zipf_queries(keys, nq, alpha=1.2, rng=rng),
        "normal(σ=0.02)": normal_queries(keys, nq, spread=0.02, rng=rng),
        "sequential": sequential_queries(keys, nq),
    }

    result = ExperimentResult(
        experiment="ext_skew",
        title="Distribution sensitivity of the full Harmonia pipeline",
        scale=sc.name,
        paper_reference={"paper_workload": "uniform only (§5.1)"},
    )
    tp_by_dist = {}
    for name, queries in batches.items():
        row = {"distribution": name}
        for label, cfg in (("full", SearchConfig.full()),
                           ("no_psa", SearchConfig(use_psa=False, ntg="model"))):
            prep = tree.prepare_queries(queries, cfg)
            metrics = simulate_harmonia_search(
                tree.layout, prep.queries, prep.group_size, device=device
            )
            sort_s = estimate_sort_time(nq, prep.psa.sort_passes, device)
            tp = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
            row[f"{label}_gqs"] = round(tp / 1e9, 3)
            if label == "full":
                tp_by_dist[name] = tp
        row["psa_gain"] = round(row["full_gqs"] / row["no_psa_gqs"], 2)
        result.add_row(**row)
    result.note(
        "shape criteria: every distribution is at least as fast as uniform "
        "under the full pipeline; PSA's gain is largest for uniform input; "
        "for already-sequential input PSA cannot help (gain <= ~1, the sort "
        "is pure overhead)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["distribution"]: r for r in result.rows}
    uniform = by["uniform"]
    others_fast = all(
        r["full_gqs"] >= 0.95 * uniform["full_gqs"] for r in result.rows
    )
    psa_uniform_best = all(
        uniform["psa_gain"] >= r["psa_gain"] - 0.05
        for r in result.rows
    )
    seq_psa_no_help = by["sequential"]["psa_gain"] <= 1.05
    return others_fast and psa_uniform_best and seq_psa_no_help


if __name__ == "__main__":  # pragma: no cover
    run().print()
