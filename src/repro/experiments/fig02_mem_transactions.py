"""Figure 2 — average memory transactions per warp (gap analysis).

Paper setup: height-4, fanout-8 regular B+tree on the GPU, 4 queries per
32-thread warp, uniform random targets.  Paper numbers: worst 3.25,
measured 3.16, best 1.0 — i.e. unoptimized concurrent queries sit at ~97%
of the worst case.
"""

from __future__ import annotations

from repro.analysis.gaps import memory_transaction_gap
from repro.experiments.common import ExperimentResult, resolve_scale


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_queries = min(sc.n_queries, 200_000)
    gap = memory_transaction_gap(n_queries=n_queries, rng=seed)
    result = ExperimentResult(
        experiment="fig02",
        title="Average memory transactions per warp (regular GPU B+tree)",
        scale=sc.name,
        paper_reference={"worst": 3.25, "queries": 3.16, "best": 1.0},
    )
    for row in gap.rows():
        result.add_row(**row)
    result.note(
        "shape criterion: measured within 10% of worst case and several x "
        "the best case"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by_case = {r["case"]: r["avg_mem_transactions_per_warp"] for r in result.rows}
    return (
        by_case["queries"] >= 0.9 * by_case["worst"]
        and by_case["queries"] >= 2.0 * by_case["best"]
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
