"""Figure 13 — impact of each design choice.

Paper ladder (normalized to HB+tree, across tree sizes): Harmonia tree
structure alone ≈1.4×; + PSA ≈2×; + PSA + NTG ≈3.4×.
"""

from __future__ import annotations

from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import (
    ExperimentResult,
    build_eval_point,
    geomean,
    resolve_scale,
)
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_tree_sizes

#: The ablation ladder: (row label, SearchConfig, early_exit for the kernel).
#: The first two rungs keep the traditional full-node comparison semantics;
#: early exit is part of NTG (§4.2).
LADDER = (
    ("harmonia_tree", SearchConfig.baseline_tree(), False),
    ("tree_psa", SearchConfig.tree_psa(), False),
    ("tree_psa_ntg", SearchConfig.full(), True),
)


def run(scale="default", seed: int = 0) -> ExperimentResult:
    from repro.workloads.datasets import scaled_device

    sc = resolve_scale(scale)
    device = scaled_device(sc)
    result = ExperimentResult(
        experiment="fig13",
        title="Design-choice ablation (modeled speedup over HB+tree)",
        scale=sc.name,
        paper_reference={
            "harmonia_tree": "≈1.4x",
            "tree_psa": "≈2x",
            "tree_psa_ntg": "≈3.4x",
        },
    )
    ladder_speedups = {name: [] for name, _, _ in LADDER}
    for n_keys in scaled_tree_sizes(sc):
        tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
        hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)
        tp_hb = modeled_throughput(
            hb.simulate_search(queries, device=device), hb._layout, device
        )
        row = {"log2_tree_size": n_keys.bit_length() - 1,
               "hb_modeled_gqs": round(tp_hb / 1e9, 3)}
        for name, cfg, early_exit in LADDER:
            prep = tree.prepare_queries(queries, cfg)
            metrics = simulate_harmonia_search(
                tree.layout, prep.queries, prep.group_size,
                device=device, early_exit=early_exit,
            )
            sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, device)
            tp = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
            speedup = tp / tp_hb if tp_hb else 0.0
            row[f"{name}_x"] = round(speedup, 2)
            ladder_speedups[name].append(speedup)
        result.add_row(**row)
    for name, values in ladder_speedups.items():
        result.note(f"geomean {name}: {geomean(values):.2f}x")
    result.note(
        "shape criteria: monotone ladder at every size; full Harmonia "
        "geomean within [2.5, 5.0]"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    fulls = []
    for row in result.rows:
        tree_x = row["harmonia_tree_x"]
        psa_x = row["tree_psa_x"]
        full_x = row["tree_psa_ntg_x"]
        if not (1.0 < tree_x <= psa_x <= full_x):
            return False
        fulls.append(full_x)
    return 2.5 <= geomean(fulls) <= 5.0


if __name__ == "__main__":  # pragma: no cover
    run().print()
