"""Extension — fanout sweep for the full Harmonia pipeline.

The paper fixes fanout 64 for its throughput plots (footnote 2 notes real
deployments use 64 or 128) and sweeps fanout only for the Figure 10 /
NTG analyses.  This experiment completes the picture: end-to-end modeled
throughput across fanouts 8..128, with the NTG-chosen group size and the
tree height alongside — showing the flat-tree-vs-fat-node trade the
designer actually navigates.
"""

from __future__ import annotations

import numpy as np

from repro.core import HarmoniaTree, SearchConfig
from repro.experiments.common import ExperimentResult, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_device, scaled_tree_sizes
from repro.workloads.generators import make_key_set, uniform_queries

FANOUTS = (8, 16, 32, 64, 128)


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    # The fanout trade is a memory-hierarchy effect: on a cache-resident
    # toy tree every fanout streams from L2 and the sweep degenerates to
    # pure issue-slot counting (which always favors the narrowest groups).
    # Keep the tree large enough that leaf levels genuinely miss.
    n_keys = max(scaled_tree_sizes(sc)[0], 131_072)
    rng = np.random.default_rng(seed)
    keys = make_key_set(n_keys, rng=rng)
    queries = uniform_queries(keys, sc.n_queries, rng=rng)

    result = ExperimentResult(
        experiment="ext_fanout",
        title="Fanout sweep: full Harmonia pipeline (modeled)",
        scale=sc.name,
        paper_reference={"paper_fanout": "64 for throughput plots (§5.1)"},
    )
    for fanout in FANOUTS:
        tree = HarmoniaTree.from_sorted(keys, fanout=fanout, fill=0.7)
        prep = tree.prepare_queries(queries, SearchConfig.full())
        metrics = simulate_harmonia_search(
            tree.layout, prep.queries, prep.group_size, device=device
        )
        sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, device)
        tp = modeled_throughput(metrics, tree.layout, device, sort_s=sort_s)
        result.add_row(
            fanout=fanout,
            height=tree.height,
            ntg_gs=prep.group_size,
            modeled_gqs=round(tp / 1e9, 3),
            gld_tx_per_query=round(metrics.gld_transactions / queries.size, 2),
        )
    result.note(
        "shape criteria: height is non-increasing in fanout; the smallest "
        "fanout (8) is never the throughput optimum — some wider fanout "
        "wins once NTG trims the useless comparisons (the model peaks at a "
        "moderate fanout where tree depth and per-node traffic balance)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    heights = [r["height"] for r in result.rows]
    if heights != sorted(heights, reverse=True):
        return False
    by = {r["fanout"]: r for r in result.rows}
    wider_best = max(by[f]["modeled_gqs"] for f in (16, 32, 64, 128))
    return wider_best > by[8]["modeled_gqs"]


if __name__ == "__main__":  # pragma: no cover
    run().print()
