"""§4.1.2 (in-text) — sorted-bit sweep validating Equation 2.

Paper: for B=64-bit keys, a 2^23-key tree and 16-key cache lines, Equation
2 gives N=19; sorting just those 19 bits achieves the same per-warp memory
transactions as a complete sort at ≈35% of its cost.

We sweep the sorted-bit count around the Equation-2 optimum and report
average memory transactions per warp plus the modeled sort-cost fraction.
"""

from __future__ import annotations


from repro.core.ntg import fanout_group_size
from repro.core.psa import optimal_sort_bits, prepare_batch, sort_cost_ratio
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import TITAN_V, simulate_harmonia_search
from repro.workloads.datasets import scaled_tree_sizes


def run(scale="default", seed: int = 0) -> ExperimentResult:
    from repro.workloads.datasets import scaled_device

    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[0]
    device = scaled_device(sc, TITAN_V)
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
    layout = tree.layout
    space_bits = layout.key_space_bits()
    n_opt = optimal_sort_bits(n_keys, device.keys_per_cacheline)
    gs = fanout_group_size(layout.fanout, device.warp_size)

    result = ExperimentResult(
        experiment="psa_bits",
        title="Partially-sorted bit count vs memory transactions (Eq. 2)",
        scale=sc.name,
        paper_reference={
            "eq2_bits(T=2^23,K=16)": 19,
            "partial_cost": "≈35% of full sort",
        },
    )
    result.note(f"Equation 2 optimum at this scale: N = {n_opt} bits")

    candidates = sorted(
        {0, max(n_opt - 8, 1), max(n_opt - 4, 1), n_opt,
         min(n_opt + 4, space_bits), space_bits}
    )
    full_tx = None
    for bits in candidates:
        psa = prepare_batch(queries, bits=bits, key_bits=space_bits)
        metrics = simulate_harmonia_search(
            layout, psa.queries, gs, device=device, early_exit=False
        )
        tx_per_warp = metrics.avg_transactions_per_warp()
        if bits == space_bits:
            full_tx = tx_per_warp
        result.add_row(
            sorted_bits=bits,
            is_eq2_optimum=bits == n_opt,
            avg_mem_transactions_per_warp=round(tx_per_warp, 3),
            dram_transactions=metrics.total_dram_transactions,
            sort_cost_fraction=round(sort_cost_ratio(bits), 3),
        )
    result.note(
        "shape criteria: Eq.2 bits reach within 15% of the fully-sorted "
        "per-warp transactions at well under half the sort cost"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    full = max(result.rows, key=lambda r: r["sorted_bits"])
    opt = next(r for r in result.rows if r["is_eq2_optimum"])
    none = next(r for r in result.rows if r["sorted_bits"] == 0)
    close_to_full = (
        opt["avg_mem_transactions_per_warp"]
        <= 1.15 * full["avg_mem_transactions_per_warp"]
    )
    cheaper = opt["sort_cost_fraction"] <= 0.5 * full["sort_cost_fraction"]
    better_than_none = (
        opt["dram_transactions"] < none["dram_transactions"]
    )
    return close_to_full and cheaper and better_than_none


if __name__ == "__main__":  # pragma: no cover
    run().print()
