"""Figure 10 — proportion of queries accessing the different node parts.

Paper: for fanouts 8..128 (trees built by insertion), ~80% of per-level
searches resolve within the front 50% of the node's key region — the
motivation for narrowed thread groups.
"""

from __future__ import annotations

from repro.analysis.node_usage import quarter_sweep
from repro.experiments.common import ExperimentResult, resolve_scale

FANOUTS = (8, 16, 32, 64, 128)


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    keys_per_tree = {"smoke": 4_000, "default": 20_000}.get(sc.name, 60_000)
    n_queries = min(sc.n_queries, 20_000)
    dists = quarter_sweep(
        fanouts=FANOUTS,
        keys_per_tree=keys_per_tree,
        n_queries=n_queries,
        rng=seed,
    )
    result = ExperimentResult(
        experiment="fig10",
        title="Fraction of per-level searches landing in each node quarter",
        scale=sc.name,
        paper_reference={"front_half": "≈0.8 for every fanout"},
    )
    for d in dists:
        result.add_row(**d.row())
    result.note(
        "shape criterion: mean front_half >= 0.72 and every fanout >= 0.6 "
        "(per-fanout values fluctuate with insertion-order occupancy at "
        "reduced tree sizes)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    fronts = [r["front_half"] for r in result.rows]
    return min(fronts) >= 0.6 and sum(fronts) / len(fronts) >= 0.72


if __name__ == "__main__":  # pragma: no cover
    run().print()
