"""Figure-regeneration harness — one module per evaluation figure.

Each ``figNN_*`` module exposes ``run(scale=..., seed=...) ->
ExperimentResult`` printing the same rows/series the paper reports, plus a
``shape_ok(result)`` predicate encoding DESIGN.md's shape-acceptance
criteria.  ``runner`` is the CLI (``harmonia-experiments``).
"""

from repro.experiments.common import ExperimentResult

__all__ = ["ExperimentResult"]
