"""Extension — dual-tree merge-join: hinted walk vs per-key probing.

JZ-tree's dual tree walks (PAPERS.md) join two trees by descending both
at once and pruning subtree pairs whose key ranges cannot overlap.  The
Harmonia analog (:func:`repro.join.merge_join`, docs/join.md) flattens
that recursion into level order: ``tree_a``'s leaf region is already the
sorted probe stream, and the hinted engine walk
(:meth:`~repro.core.engine.BatchQueryEngine.execute_hinted`) carries a
frontier of (node, lower-bound) pairs down ``tree_b``, skipping every
subtree no probe lands in.

This experiment joins a probe tree against build trees of varying
overlap and puts three quantities side by side per workload:

* measured host wall clock of the hinted join vs the same probe stream
  through per-key ``search_many`` (the naive baseline);
* the engine's per-level distinct-node counts — the pruning made
  visible (disjoint key ranges ⇒ frontier collapses to one path);
* the dual-walk kernel model's transaction accounting
  (:func:`repro.gpusim.simulate_dual_walk`): probe-side sequential leaf
  scan + hinted descent vs the simulated per-key kernel.

Joins are verified byte-identical to the numpy sort-merge reference on
every row before any timing is reported.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.tree import HarmoniaTree
from repro.experiments.common import (
    ExperimentResult,
    build_eval_point,
    resolve_scale,
)
from repro.gpusim import simulate_dual_walk
from repro.join import merge_join, sort_merge_reference
from repro.workloads.datasets import scaled_tree_sizes

_clock = time.perf_counter


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = _clock()
        fn()
        best = min(best, _clock() - t0)
    return best


def run(scale="default", seed: int = 0,
        trace_out: str = None) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[-1]
    rng = np.random.default_rng(seed)

    tree_b, keys_b, _ = build_eval_point(n_keys, sc.n_queries, seed)
    space = int(keys_b.max()) + 1

    result = ExperimentResult(
        experiment="ext_join",
        title="Dual-tree merge-join: hinted walk vs per-key probing",
        scale=sc.name,
        paper_reference={
            "claim": "beyond the paper — JZ-tree dual walks: joining two "
            "trees prunes every subtree pair whose key ranges are "
            "disjoint; the frontier-compacted engine's hinted walk is "
            "that prune in level order"
        },
    )

    workloads = (
        ("overlapping", keys_b[rng.random(keys_b.size) < 0.5]),
        ("interleaved", np.unique(rng.integers(0, space, n_keys // 2))),
        ("disjoint", np.arange(space, space + n_keys // 4, dtype=np.int64)),
    )
    for name, keys_a in workloads:
        tree_a = HarmoniaTree.from_sorted(
            keys_a, keys_a % 1009 + 1, fanout=tree_b.fanout
        )
        res = merge_join(tree_a, tree_b, mode="inner")
        ref = sort_merge_reference(
            tree_a._merged_items(), tree_b._merged_items(), "inner"
        )
        assert np.array_equal(res.keys, ref.keys)
        assert np.array_equal(res.values_b, ref.values_b)

        hinted_s = _best_of(
            lambda: merge_join(tree_a, tree_b, mode="inner")
        )
        probe_keys = tree_a._merged_items()[0]
        naive_s = _best_of(lambda: tree_b.search_many(probe_keys))
        stats = tree_b.last_engine_stats  # hinted run rebinds after this
        merge_join(tree_a, tree_b, mode="inner")
        hstats = tree_b.last_engine_stats

        model = simulate_dual_walk(tree_a.layout, tree_b.layout)
        result.add_row(
            workload=name,
            n_probes=res.n_probes,
            selectivity=round(res.selectivity, 4),
            hinted_ms=round(hinted_s * 1e3, 3),
            naive_ms=round(naive_s * 1e3, 3),
            speedup=round(naive_s / hinted_s, 3),
            hinted_node_reads=hstats.total_node_reads,
            naive_node_reads=stats.total_node_reads,
            frontier_per_level=[
                int(u) for u in hstats.unique_nodes_per_level
            ],
            model_dualwalk_tx=model.total_transactions,
            model_naive_tx=model.naive_transactions,
            model_tx_speedup=round(model.transaction_speedup, 3),
        )

    if trace_out is not None:
        import os

        import repro.obs as obs
        from repro.obs.export import write_chrome_trace, write_snapshot

        tree_a = HarmoniaTree.from_sorted(
            workloads[0][1], None, fanout=tree_b.fanout
        )
        with obs.recording() as rec:
            merge_join(tree_a, tree_b, mode="inner")
        os.makedirs(trace_out, exist_ok=True)
        write_snapshot(rec.snapshot(),
                       os.path.join(trace_out, "ext_join.snapshot.json"))
        write_chrome_trace(rec,
                           os.path.join(trace_out, "ext_join.trace.json"))
        result.note(f"obs snapshot + Chrome trace written to {trace_out}")

    result.note(
        "shape criteria: every join byte-identical to the sort-merge "
        "reference; the hinted walk reads no more nodes than the naive "
        "path on every workload; the disjoint join's frontier collapses "
        "to one path per level (total subtree prune); the dual-walk "
        "kernel model prices fewer transactions than per-key probing"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["workload"]: r for r in result.rows}
    disjoint = by["disjoint"]
    return (
        all(r["hinted_node_reads"] <= r["naive_node_reads"]
            for r in result.rows)
        and all(f <= 1 for f in disjoint["frontier_per_level"][:-1])
        and all(r["model_tx_speedup"] > 1.0 for r in result.rows)
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
