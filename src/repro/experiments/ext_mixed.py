"""Extension — sustained throughput vs. write fraction.

The paper's batch-update design is justified by read-dominated workloads
("a high read/write ratio (about 35:1) in TPC-H", §3.2).  This experiment
quantifies the trade end to end: alternating query and update phases
through the :class:`~repro.core.epoch.EpochManager`, sweeping the write
fraction, reporting sustained combined operation throughput (wall clock)
and where the TPC-H-like 35:1 point sits on the curve.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import EpochManager, HarmoniaTree, SearchConfig, UpdateConfig
from repro.experiments.common import ExperimentResult, resolve_scale
from repro.workloads.datasets import scaled_tree_sizes
from repro.workloads.generators import make_key_set, uniform_queries
from repro.workloads.mixes import UpdateMix, make_update_batch

WRITE_FRACTIONS = (0.0, 1 / 36, 0.1, 0.3, 0.5)


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[0]
    round_ops = min(sc.n_queries, 1 << 14)
    rng = np.random.default_rng(seed)
    keys = make_key_set(n_keys, rng=rng)

    result = ExperimentResult(
        experiment="ext_mixed",
        title="Sustained throughput vs write fraction (phase pipeline)",
        scale=sc.name,
        paper_reference={"tpch_ratio": "read:write ≈ 35:1 (§3.2)"},
    )
    mix = UpdateMix(insert=0.05, update=0.95)
    for wf in WRITE_FRACTIONS:
        em = EpochManager(
            HarmoniaTree.from_sorted(keys, fanout=64, fill=0.7),
            update_config=UpdateConfig(n_threads=4),
        )
        n_writes = int(round(round_ops * wf))
        n_reads = round_ops - n_writes
        total_ops = 0
        t0 = time.perf_counter()
        for _ in range(2):  # two rounds for steadier numbers
            if n_reads:
                queries = uniform_queries(keys, n_reads, rng=rng)
                em.search_batch(queries, SearchConfig.full())
                total_ops += n_reads
            if n_writes:
                ops = make_update_batch(keys, n_writes, mix=mix,
                                        rng=rng.integers(1 << 30))
                em.submit_many(ops)
                em.flush()
                total_ops += n_writes
        elapsed = time.perf_counter() - t0
        result.add_row(
            write_fraction=round(wf, 3),
            is_tpch_point=abs(wf - 1 / 36) < 1e-6,
            combined_kops=round(total_ops / elapsed / 1e3, 1),
            epochs=em.epoch,
        )
    result.note(
        "shape criteria: throughput decreases monotonically (within noise) "
        "in the write fraction, and the TPC-H-like point retains >= 15% of "
        "read-only throughput.  Note updates are inherently ~2 orders of "
        "magnitude costlier per op than batched reads (the paper's own "
        "numbers: 3.6 Gq/s reads vs ~40 Mops/s updates), so even a 35:1 "
        "read-dominant mix spends most wall clock in the update phase — "
        "which is exactly why the paper batches and defers them"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    rows = result.rows
    kops = [r["combined_kops"] for r in rows]
    monotone = all(b <= a * 1.05 for a, b in zip(kops, kops[1:]))
    read_only = kops[0]
    tpch = next(r for r in rows if r["is_tpch_point"])["combined_kops"]
    return monotone and tpch >= 0.15 * read_only


if __name__ == "__main__":  # pragma: no cover
    run().print()
