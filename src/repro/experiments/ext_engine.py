"""Extension — frontier compaction: the host-side PSA payoff, priced.

Figure 12 shows PSA's win as a drop in ``gld_transactions``: grouped
queries touch fewer distinct cache lines per warp.  The host-side batch
engine (:mod:`repro.core.engine`) exploits the *same* locality — a
PSA-grouped frontier is run-length encoded, so each tree node is read
once per level instead of once per query.  This experiment measures both
sides of the correspondence on one batch:

* wall-clock: naive broadcast traversal vs the compacted engine (and the
  sharded multi-worker variant);
* counters: the engine's ``unique_nodes_per_level`` total vs the
  simulator's ``gld_transactions``, for a PSA-grouped batch and for the
  arrival-order batch — both counters must move the same way, because
  they count the same thing (distinct memory locations per step).
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import BatchQueryEngine
from repro.core.psa import identity_batch, prepare_batch
from repro.core.search import search_batch
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.workloads.datasets import scaled_device, scaled_tree_sizes


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_keys = scaled_tree_sizes(sc)[-1]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
    layout = tree.layout
    # Narrowed thread groups (§4.2's regime): many queries per warp, so
    # the simulated transaction count actually depends on query adjacency
    # — a fanout-wide group serves one query per warp and cannot coalesce
    # across queries, hiding exactly the effect this experiment measures.
    gs = 2

    result = ExperimentResult(
        experiment="ext_engine",
        title="Frontier-compacted host engine: PSA locality on the CPU path",
        scale=sc.name,
        paper_reference={
            "claim": "§4.1 / Fig 12 — grouped queries coalesce memory traffic; "
            "the host analog is one node read per distinct node per level"
        },
    )

    engine = BatchQueryEngine(layout)
    sharded = BatchQueryEngine(layout, n_workers=4, min_parallel=1 << 12)
    for label, psa in (
        ("arrival", identity_batch(queries)),
        ("psa", prepare_batch(queries, tree_size=layout.n_keys,
                              key_bits=layout.key_space_bits())),
    ):
        issued = psa.queries
        engine.execute(issued, issue_sorted=psa.issue_sorted)  # warm scratch
        t_naive = _best_of(lambda: search_batch(layout, issued))
        t_comp = _best_of(
            lambda: engine.execute(issued, issue_sorted=psa.issue_sorted)
        )
        t_shard = _best_of(
            lambda: sharded.execute(issued, issue_sorted=psa.issue_sorted)
        )
        stats = engine.last_stats
        metrics = simulate_harmonia_search(layout, issued, gs, device=device)
        result.add_row(
            order=label,
            n_queries=issued.size,
            naive_ms=round(t_naive * 1e3, 2),
            compacted_ms=round(t_comp * 1e3, 2),
            sharded_ms=round(t_shard * 1e3, 2),
            speedup=round(t_naive / t_comp, 2),
            unique_nodes=stats.total_node_reads,
            compaction_ratio=round(stats.compaction_ratio, 1),
            gld_tx=metrics.gld_transactions,
        )
    result.note(
        "shape criteria: PSA lowers both the engine's distinct-node count "
        "and the simulated gld_transactions (same locality, two substrates); "
        "compaction reads fewer node rows than the naive path on every order"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by_order = {r["order"]: r for r in result.rows}
    arrival, psa = by_order["arrival"], by_order["psa"]
    return (
        psa["unique_nodes"] <= arrival["unique_nodes"]
        and psa["gld_tx"] <= arrival["gld_tx"]
        and all(r["compaction_ratio"] > 1.0 for r in result.rows)
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
