"""Figure 12 — nvprof-style profile: Harmonia normalized to HB+tree.

Paper: Harmonia issues 22% of HB+tree's global memory transactions, has 66%
of its memory divergence (transactions per request), and 113% of its warp
coherence.

Also includes the DESIGN.md ablation: the same kernel with the prefix-sum
child region forced out of constant memory (``cached_children=False``),
quantifying how much of the transaction win the cache-resident child region
contributes.

Two per-level extensions (harmonia.cuh fidelity):

* the per-level NTG kernel (``ntg_degrees[depth]``) next to the global
  single-width kernel, with one row per tree level showing the degree and
  the key-transaction drop where the degree narrows below the global
  width — more queries per warp round share the same node lines;
* a constrained constant-budget run (64 B — eight prefix-sum entries)
  that pushes the caching depth above the deepest internal level, so
  spilled child lookups pay real global transactions — the honesty check
  for trees whose child region outgrows the 48 KB budget.
"""

from __future__ import annotations

from dataclasses import replace

from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.gpusim.device import TITAN_V
from repro.workloads.datasets import scaled_tree_sizes

#: Constant budget for the constrained ablation row — eight prefix-sum
#: entries, small enough that even a toy tree's *internal* levels (the only
#: ones that perform child lookups) spill past it.
TINY_CONST_BUDGET = 64


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)

    hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)
    m_hb = hb.simulate_search(queries)

    prep = tree.prepare_queries(queries, SearchConfig.full())
    degrees = prep.ntg_degrees or (prep.group_size,) * tree.layout.height
    m_ha = simulate_harmonia_search(tree.layout, prep.queries, prep.group_size)
    m_ha_uncached = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, cached_children=False
    )
    m_pl = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, ntg_degrees=degrees
    )
    tiny = replace(TITAN_V, const_budget_bytes=TINY_CONST_BUDGET)
    m_tiny = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, device=tiny
    )

    result = ExperimentResult(
        experiment="fig12",
        title="Profile data normalized to HB+tree",
        scale=sc.name,
        paper_reference={
            "global_mem_transactions": 0.22,
            "memory_divergence": 0.66,
            "warp_coherence": 1.13,
        },
    )

    def add(system, m):
        result.add_row(
            system=system,
            gld_transactions_norm=round(m.gld_transactions / m_hb.gld_transactions, 3),
            memory_divergence_norm=round(
                m.transactions_per_request / m_hb.transactions_per_request, 3
            ),
            warp_coherence_norm=round(m.warp_coherence / m_hb.warp_coherence, 3),
        )

    add("hbtree", m_hb)
    add("harmonia", m_ha)
    add("harmonia (per-level ntg)", m_pl)
    add("harmonia (children in global mem)", m_ha_uncached)
    add(f"harmonia ({TINY_CONST_BUDGET} B const budget)", m_tiny)
    for lvl in range(tree.layout.height):
        result.add_row(
            system=f"level {lvl}",
            ntg_degree=int(degrees[lvl]),
            global_group_size=int(prep.group_size),
            key_tx_global=int(m_ha.key_transactions[lvl]),
            key_tx_per_level=int(m_pl.key_transactions[lvl]),
            caching_depth=m_ha.caching_depth,
            caching_depth_tiny=m_tiny.caching_depth,
        )
    result.note(
        "shape criteria: Harmonia transactions ≤ 0.45×, divergence < 1×, "
        "coherence > 1× of HB+; un-caching the child region increases "
        "transactions"
    )
    result.note(
        "per-level criteria: ntg_degrees non-increasing with depth; key "
        "transactions strictly drop at every level whose degree narrows "
        "below the global width; shrinking the const budget below the "
        "child region raises gld_transactions (spilled lookups pay global "
        "cost)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["system"]: r for r in result.rows if "gld_transactions_norm" in r}
    ha = by["harmonia"]
    unc = by["harmonia (children in global mem)"]
    tiny = by[f"harmonia ({TINY_CONST_BUDGET} B const budget)"]
    levels = [r for r in result.rows if r["system"].startswith("level ")]
    degrees = [r["ntg_degree"] for r in levels]
    monotone = all(a >= b for a, b in zip(degrees, degrees[1:]))
    narrowed_drop = all(
        r["key_tx_per_level"] < r["key_tx_global"]
        for r in levels
        if r["ntg_degree"] < r["global_group_size"]
    )
    return (
        ha["gld_transactions_norm"] <= 0.45
        and ha["memory_divergence_norm"] < 1.0
        and ha["warp_coherence_norm"] > 1.0
        and unc["gld_transactions_norm"] > ha["gld_transactions_norm"]
        and monotone
        and narrowed_drop
        and tiny["gld_transactions_norm"] > ha["gld_transactions_norm"]
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
