"""Figure 12 — nvprof-style profile: Harmonia normalized to HB+tree.

Paper: Harmonia issues 22% of HB+tree's global memory transactions, has 66%
of its memory divergence (transactions per request), and 113% of its warp
coherence.

Also includes the DESIGN.md ablation: the same kernel with the prefix-sum
child region forced out of constant memory (``cached_children=False``),
quantifying how much of the transaction win the cache-resident child region
contributes.
"""

from __future__ import annotations

from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import simulate_harmonia_search
from repro.workloads.datasets import scaled_tree_sizes


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)

    hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)
    m_hb = hb.simulate_search(queries)

    prep = tree.prepare_queries(queries, SearchConfig.full())
    m_ha = simulate_harmonia_search(tree.layout, prep.queries, prep.group_size)
    m_ha_uncached = simulate_harmonia_search(
        tree.layout, prep.queries, prep.group_size, cached_children=False
    )

    result = ExperimentResult(
        experiment="fig12",
        title="Profile data normalized to HB+tree",
        scale=sc.name,
        paper_reference={
            "global_mem_transactions": 0.22,
            "memory_divergence": 0.66,
            "warp_coherence": 1.13,
        },
    )

    def add(system, m):
        result.add_row(
            system=system,
            gld_transactions_norm=round(m.gld_transactions / m_hb.gld_transactions, 3),
            memory_divergence_norm=round(
                m.transactions_per_request / m_hb.transactions_per_request, 3
            ),
            warp_coherence_norm=round(m.warp_coherence / m_hb.warp_coherence, 3),
        )

    add("hbtree", m_hb)
    add("harmonia", m_ha)
    add("harmonia (children in global mem)", m_ha_uncached)
    result.note(
        "shape criteria: Harmonia transactions ≤ 0.45×, divergence < 1×, "
        "coherence > 1× of HB+; un-caching the child region increases "
        "transactions"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["system"]: r for r in result.rows}
    ha = by["harmonia"]
    unc = by["harmonia (children in global mem)"]
    return (
        ha["gld_transactions_norm"] <= 0.45
        and ha["memory_divergence_norm"] < 1.0
        and ha["warp_coherence_norm"] > 1.0
        and unc["gld_transactions_norm"] > ha["gld_transactions_norm"]
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
