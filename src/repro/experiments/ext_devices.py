"""Extension — cross-GPU scaling: TITAN V vs Tesla K80.

The paper runs its NTG validation on both GPUs but plots throughput only
for the TITAN V.  This experiment runs the full pipeline on both device
models: the speedup *over HB+ on the same device* should be portable even
though absolute throughput scales with the hardware.
"""

from __future__ import annotations


from repro.baselines.hbtree import HBTree
from repro.core import SearchConfig
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim import TESLA_K80, TITAN_V, simulate_harmonia_search
from repro.gpusim.perfmodel import estimate_sort_time, modeled_throughput
from repro.workloads.datasets import scaled_device, scaled_tree_sizes


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, queries = build_eval_point(n_keys, sc.n_queries, seed)
    hb = HBTree.from_sorted(keys, fanout=64, fill=0.7)

    result = ExperimentResult(
        experiment="ext_devices",
        title="Full pipeline on TITAN V vs Tesla K80 (modeled)",
        scale=sc.name,
        paper_reference={
            "titan_v": "primary evaluation GPU",
            "k80": "NTG validation GPU (§4.2)",
        },
    )
    for base in (TITAN_V, TESLA_K80):
        device = scaled_device(sc, base)
        prep = tree.prepare_queries(
            queries, SearchConfig.full().with_(warp_size=device.warp_size)
        )
        m_ha = simulate_harmonia_search(
            tree.layout, prep.queries, prep.group_size, device=device
        )
        sort_s = estimate_sort_time(queries.size, prep.psa.sort_passes, device)
        tp_ha = modeled_throughput(m_ha, tree.layout, device, sort_s=sort_s)
        m_hb = hb.simulate_search(queries, device=device)
        tp_hb = modeled_throughput(m_hb, hb._layout, device)
        result.add_row(
            device=base.name,
            harmonia_gqs=round(tp_ha / 1e9, 3),
            hb_gqs=round(tp_hb / 1e9, 3),
            speedup=round(tp_ha / tp_hb, 2),
            ntg_gs=prep.group_size,
        )
    result.note(
        "shape criteria: the TITAN V is absolutely faster than the K80 for "
        "both systems; Harmonia beats HB+ on both devices"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    by = {r["device"]: r for r in result.rows}
    titan = by["TITAN V"]
    k80 = by["Tesla K80"]
    return (
        titan["harmonia_gqs"] > k80["harmonia_gqs"]
        and titan["hb_gqs"] > k80["hb_gqs"]
        and all(r["speedup"] > 1.0 for r in result.rows)
    )


if __name__ == "__main__":  # pragma: no cover
    run().print()
