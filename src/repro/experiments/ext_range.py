"""Extension — range-query throughput: Harmonia vs the pointer layout.

§3.2.1 claims range queries are fast *because the key region is one
consecutive array*; the paper asserts it without a plot.  This experiment
prices the claim: the same range batch scanned over Harmonia's packed leaf
block vs a pointer layout whose leaves are pointer-fat and chained.
"""

from __future__ import annotations

import numpy as np

from repro.core.ntg import fanout_group_size
from repro.experiments.common import ExperimentResult, build_eval_point, resolve_scale
from repro.gpusim.kernels import SimConfig
from repro.gpusim.perfmodel import estimate_kernel_time
from repro.gpusim.range_scan import simulate_range_scan
from repro.workloads.datasets import scaled_device, scaled_tree_sizes
from repro.workloads.generators import range_query_bounds


def run(scale="default", seed: int = 0) -> ExperimentResult:
    sc = resolve_scale(scale)
    device = scaled_device(sc)
    n_keys = scaled_tree_sizes(sc)[0]
    tree, keys, _ = build_eval_point(n_keys, sc.n_queries, seed)
    layout = tree.layout
    gs = fanout_group_size(layout.fanout, device.warp_size)
    rng = np.random.default_rng(seed + 3)

    result = ExperimentResult(
        experiment="ext_range",
        title="Range-query scan: Harmonia layout vs pointer layout",
        scale=sc.name,
        paper_reference={
            "claim": "§3.2.1 — consecutive key region makes range queries fast"
        },
    )
    n_ranges = min(sc.n_queries // 8, 4_096)
    for span in (16, 256, 4_096):
        los, his = range_query_bounds(keys, n_ranges, span_keys=span, rng=rng)
        rows = {}
        for structure in ("harmonia", "regular_pointer"):
            cfg = SimConfig(structure=structure, group_size=gs,
                            early_exit=False,
                            cached_children=(structure == "harmonia"),
                            device=device)
            metrics, scanned = simulate_range_scan(layout, los, his, cfg)
            kt = estimate_kernel_time(metrics, layout, device)
            rows[structure] = {
                "tx": metrics.gld_transactions,
                "time_s": kt.total_s,
                "keys_per_s": float(scanned.sum()) / kt.total_s,
            }
        ha, rp = rows["harmonia"], rows["regular_pointer"]
        result.add_row(
            span_keys=span,
            n_ranges=n_ranges,
            harmonia_mkeys_s=round(ha["keys_per_s"] / 1e6, 1),
            pointer_mkeys_s=round(rp["keys_per_s"] / 1e6, 1),
            speedup=round(ha["keys_per_s"] / rp["keys_per_s"], 2),
            tx_ratio=round(ha["tx"] / rp["tx"], 3),
        )
    result.note(
        "shape criteria: Harmonia scans faster at every span; its advantage "
        "does not shrink as spans grow (streaming beats pointer-chasing)"
    )
    return result


def shape_ok(result: ExperimentResult) -> bool:
    speedups = [r["speedup"] for r in result.rows]
    return all(s > 1.0 for s in speedups) and speedups[-1] >= 0.9 * speedups[0]


if __name__ == "__main__":  # pragma: no cover
    run().print()
